PY := PYTHONPATH=src python
BENCH_BASELINE := /tmp/BENCH_engine.baseline.json
GOLDEN_TMP := /tmp/repro-golden-check
GOLDEN_SCENARIOS := verify-small gathering-line-k3 thm31-sweep atlas-programs \
        rendezvous-relabel-line gathering-crash-k3
FAULT_TMP := /tmp/repro-fault-smoke
FAULT_SCENARIOS := rendezvous-relabel-line gathering-crash-k3

.PHONY: test lint lint-invariants bench-smoke bench-engine scenarios-smoke \
        bench-scenarios check-regression golden-diff fault-smoke

test:
	$(PY) -m pytest -x -q

# Ruff over everything CI lints; same invocation as the CI lint job
# (install the pinned toolchain with: pip install -r requirements-ci.txt).
lint:
	ruff check src tests benchmarks

# The cross-layer invariant gate (RPR001-RPR006), exactly as CI runs it.
# Pure stdlib: needs nothing beyond the interpreter.
lint-invariants:
	$(PY) -m repro.lint src --format json

# Quick benchmark smokes: refresh BENCH_engine.json (engine + lowering
# sections) and the first gathering grid's JSON result in seconds.
bench-smoke:
	$(PY) benchmarks/bench_engine.py --quick
	$(PY) benchmarks/bench_gathering.py --quick
	$(PY) benchmarks/bench_lowering.py --quick
	$(PY) benchmarks/bench_kernel.py --quick

# Full-size engine-backend benchmark (the numbers quoted in the README).
bench-engine:
	$(PY) benchmarks/bench_engine.py

# Bench regression gate, exactly as CI runs it: snapshot the committed
# BENCH_engine.json, refresh it via bench-smoke, compare with tolerance.
check-regression:
	cp BENCH_engine.json $(BENCH_BASELINE)
	$(MAKE) bench-smoke
	$(PY) benchmarks/check_regression.py \
	    --baseline $(BENCH_BASELINE) --current BENCH_engine.json \
	    --require throughput --require delay_sweep \
	    --require lowering --require kernel

# Golden row-level drift gate, exactly as CI runs it: re-run the golden
# scenarios and `scenarios diff` them against the checked-in goldens.
golden-diff:
	mkdir -p $(GOLDEN_TMP)
	@for name in $(GOLDEN_SCENARIOS); do \
	    echo "== $$name"; \
	    $(PY) -m repro scenarios run $$name --save --out $(GOLDEN_TMP) \
	        > /dev/null || exit 1; \
	    $(PY) -m repro scenarios diff $(GOLDEN_TMP)/$$name.json \
	        benchmarks/results/golden/$$name.json || exit 1; \
	done

# Fault-model smoke: run every fault-injected scenario on the reference
# AND compiled backends, require identical verdict rows (the faulted
# parity contract), then exercise the supervised-pool suite.
fault-smoke:
	mkdir -p $(FAULT_TMP)/reference $(FAULT_TMP)/compiled
	@for name in $(FAULT_SCENARIOS); do \
	    echo "== $$name"; \
	    $(PY) -m repro scenarios run $$name --backend reference \
	        --save --out $(FAULT_TMP)/reference > /dev/null || exit 1; \
	    $(PY) -m repro scenarios run $$name --backend compiled \
	        --save --out $(FAULT_TMP)/compiled > /dev/null || exit 1; \
	    $(PY) -m repro scenarios diff $(FAULT_TMP)/reference/$$name.json \
	        $(FAULT_TMP)/compiled/$$name.json || exit 1; \
	done
	$(PY) -m pytest tests/sim/test_faults.py tests/sim/test_supervised.py -q

# Quick pass over the scenario registry (the experiment tables, small grids).
scenarios-smoke:
	$(PY) -m repro experiments --quick

# Regenerate every benchmark's JSON result under benchmarks/results/.
bench-scenarios:
	$(PY) -m pytest benchmarks/ -q
