PY := PYTHONPATH=src python
# Scratch root for every gate's temporary artifacts.  CI points this at
# the runner's temp dir; locally it defaults to /tmp.  Nothing below
# hardcodes /tmp directly.
RESULTS_TMP ?= /tmp
BENCH_BASELINE := $(RESULTS_TMP)/BENCH_engine.baseline.json
GOLDEN_TMP := $(RESULTS_TMP)/repro-golden-check
GOLDEN_SCENARIOS := verify-small gathering-line-k3 thm31-sweep atlas-programs \
        rendezvous-relabel-line gathering-crash-k3
FAULT_TMP := $(RESULTS_TMP)/repro-fault-smoke
FAULT_SCENARIOS := rendezvous-relabel-line gathering-crash-k3
TELEMETRY_TMP := $(RESULTS_TMP)/repro-telemetry-smoke
ATLAS_TMP := $(RESULTS_TMP)/repro-atlas-smoke
ATLAS_FIXTURE := tests/scenarios/fixtures/atlas-v0.sqlite
KERNEL_CHECK_TMP := $(RESULTS_TMP)/repro-kernel-cache-check

.PHONY: test lint lint-invariants bench-smoke bench-engine scenarios-smoke \
        bench-scenarios check-regression golden-diff fault-smoke \
        telemetry-smoke atlas-smoke kernel-cache-check

test:
	$(PY) -m pytest -x -q

# Ruff over everything CI lints; same invocation as the CI lint job
# (install the pinned toolchain with: pip install -r requirements-ci.txt).
lint:
	ruff check src tests benchmarks

# The cross-layer invariant gate (RPR001-RPR006), exactly as CI runs it.
# Pure stdlib: needs nothing beyond the interpreter.
lint-invariants:
	$(PY) -m repro.lint src --format json

# Quick benchmark smokes: refresh BENCH_engine.json (engine + lowering
# sections) and the first gathering grid's JSON result in seconds.
bench-smoke:
	$(PY) benchmarks/bench_engine.py --quick
	$(PY) benchmarks/bench_gathering.py --quick
	$(PY) benchmarks/bench_lowering.py --quick
	$(PY) benchmarks/bench_kernel.py --quick

# Full-size engine-backend benchmark (the numbers quoted in the README).
bench-engine:
	$(PY) benchmarks/bench_engine.py

# Bench regression gate, exactly as CI runs it: snapshot the committed
# BENCH_engine.json, refresh it via bench-smoke, compare with tolerance.
check-regression:
	cp BENCH_engine.json $(BENCH_BASELINE)
	$(MAKE) bench-smoke
	$(PY) benchmarks/check_regression.py \
	    --baseline $(BENCH_BASELINE) --current BENCH_engine.json \
	    --require throughput --require delay_sweep \
	    --require lowering --require kernel \
	    --require telemetry_overhead

# Golden row-level drift gate, exactly as CI runs it: re-run the golden
# scenarios and `scenarios diff` them against the checked-in goldens.
golden-diff:
	mkdir -p $(GOLDEN_TMP)
	@for name in $(GOLDEN_SCENARIOS); do \
	    echo "== $$name"; \
	    $(PY) -m repro scenarios run $$name --save --out $(GOLDEN_TMP) \
	        > /dev/null || exit 1; \
	    $(PY) -m repro scenarios diff $(GOLDEN_TMP)/$$name.json \
	        benchmarks/results/golden/$$name.json || exit 1; \
	done

# Fault-model smoke: run every fault-injected scenario on the reference
# AND compiled backends, require identical verdict rows (the faulted
# parity contract), then exercise the supervised-pool suite.
fault-smoke:
	mkdir -p $(FAULT_TMP)/reference $(FAULT_TMP)/compiled
	@for name in $(FAULT_SCENARIOS); do \
	    echo "== $$name"; \
	    $(PY) -m repro scenarios run $$name --backend reference \
	        --save --out $(FAULT_TMP)/reference > /dev/null || exit 1; \
	    $(PY) -m repro scenarios run $$name --backend compiled \
	        --save --out $(FAULT_TMP)/compiled > /dev/null || exit 1; \
	    $(PY) -m repro scenarios diff $(FAULT_TMP)/reference/$$name.json \
	        $(FAULT_TMP)/compiled/$$name.json || exit 1; \
	done
	$(PY) -m pytest tests/sim/test_faults.py tests/sim/test_supervised.py -q

# Observability smoke: run a kernel-eligible scenario instrumented,
# cold then warm against an on-disk table cache, and check the full
# telemetry contract (dispatch tiers reported, phase durations account
# for elapsed time, warm run sees cache hits, event stream parses, the
# offline report renders).  The warm run is a NEW process, so its hits
# prove the cache crosses process boundaries.
telemetry-smoke:
	rm -rf $(TELEMETRY_TMP) && mkdir -p $(TELEMETRY_TMP)/cache
	@echo "== cold (empty kernel cache)"
	REPRO_KERNEL_CACHE=$(TELEMETRY_TMP)/cache $(PY) -m repro scenarios run \
	    delays-line --backend auto --telemetry=$(TELEMETRY_TMP)/cold.jsonl \
	    --save --out $(TELEMETRY_TMP)/cold > /dev/null
	$(PY) benchmarks/check_telemetry.py $(TELEMETRY_TMP)/cold/delays-line.json \
	    --expect-events $(TELEMETRY_TMP)/cold.jsonl
	@echo "== warm (cache populated, fresh process)"
	REPRO_KERNEL_CACHE=$(TELEMETRY_TMP)/cache $(PY) -m repro scenarios run \
	    delays-line --backend auto --telemetry=$(TELEMETRY_TMP)/warm.jsonl \
	    --save --out $(TELEMETRY_TMP)/warm > /dev/null
	$(PY) benchmarks/check_telemetry.py $(TELEMETRY_TMP)/warm/delays-line.json \
	    --expect-cache-hits --expect-events $(TELEMETRY_TMP)/warm.jsonl
	@echo "== offline report"
	$(PY) -m repro telemetry report $(TELEMETRY_TMP)/warm.jsonl
	$(PY) -m pytest tests/telemetry -q

# Atlas memoization gate, exactly as CI runs it: init a fresh database,
# bulk-import the checked-in results (incl. golden/), then run the same
# scenario twice against it — the cold leg must record an atlas.miss and
# really dispatch, the warm leg must be an atlas.hit with ZERO backend
# dispatch (verified from the live event stream) and save a byte-identical
# payload.  Finally migrate the committed v0 fixture database forward and
# require its exported JSON to match the goldens byte for byte.
atlas-smoke:
	rm -rf $(ATLAS_TMP) && mkdir -p $(ATLAS_TMP)
	@echo "== init + bulk import"
	$(PY) -m repro atlas init --db $(ATLAS_TMP)/atlas.sqlite
	$(PY) -m repro atlas import benchmarks/results --db $(ATLAS_TMP)/atlas.sqlite
	$(PY) -m repro atlas stats --db $(ATLAS_TMP)/atlas.sqlite
	@echo "== cold run (atlas miss, real dispatch)"
	$(PY) -m repro scenarios run delays-line --atlas=$(ATLAS_TMP)/atlas.sqlite \
	    --telemetry=$(ATLAS_TMP)/cold.jsonl --save --out $(ATLAS_TMP)/cold \
	    > /dev/null
	$(PY) benchmarks/check_telemetry.py $(ATLAS_TMP)/cold/delays-line.json \
	    --expect-atlas=miss --expect-events $(ATLAS_TMP)/cold.jsonl
	@echo "== warm run (atlas hit, zero dispatch)"
	$(PY) -m repro scenarios run delays-line --atlas=$(ATLAS_TMP)/atlas.sqlite \
	    --telemetry=$(ATLAS_TMP)/warm.jsonl --save --out $(ATLAS_TMP)/warm \
	    > /dev/null
	$(PY) benchmarks/check_telemetry.py $(ATLAS_TMP)/warm/delays-line.json \
	    --expect-atlas=hit --expect-events $(ATLAS_TMP)/warm.jsonl
	cmp $(ATLAS_TMP)/cold/delays-line.json $(ATLAS_TMP)/warm/delays-line.json
	@echo "== export round-trip"
	$(PY) -m repro atlas export delays-line --db $(ATLAS_TMP)/atlas.sqlite \
	    --out $(ATLAS_TMP)/exported
	cmp $(ATLAS_TMP)/exported/delays-line.json $(ATLAS_TMP)/cold/delays-line.json
	@echo "== v0 schema migration"
	cp $(ATLAS_FIXTURE) $(ATLAS_TMP)/v0.sqlite
	$(PY) -m repro atlas init --db $(ATLAS_TMP)/v0.sqlite
	$(PY) -m repro atlas export --all --db $(ATLAS_TMP)/v0.sqlite \
	    --out $(ATLAS_TMP)/migrated
	@for name in $(GOLDEN_SCENARIOS); do \
	    echo "== migrated $$name"; \
	    $(PY) -m repro scenarios diff $(ATLAS_TMP)/migrated/$$name.json \
	        benchmarks/results/golden/$$name.json || exit 1; \
	    cmp $(ATLAS_TMP)/migrated/$$name.json \
	        benchmarks/results/golden/$$name.json || exit 1; \
	done
	$(PY) -m pytest tests/scenarios/test_atlas_store.py \
	    tests/scenarios/test_atlas_runner.py tests/scenarios/test_atlas_cli.py -q

# CI kernel-cache gate: with REPRO_KERNEL_CACHE pointing at a persisted
# cache directory (actions/cache keeps it across runs), populate it once,
# then require a FRESH process to report kernel.table.disk_hit > 0 — the
# only hit kind an empty in-process memo can produce.
kernel-cache-check:
ifndef REPRO_KERNEL_CACHE
	$(error REPRO_KERNEL_CACHE must point at the persisted kernel cache directory)
endif
	@echo "== populate $(REPRO_KERNEL_CACHE)"
	$(PY) -m repro scenarios run delays-line --backend auto > /dev/null
	@echo "== fresh process must hit the on-disk table cache"
	rm -rf $(KERNEL_CHECK_TMP) && mkdir -p $(KERNEL_CHECK_TMP)
	$(PY) -m repro scenarios run delays-line --backend auto \
	    --telemetry=$(KERNEL_CHECK_TMP)/warm.jsonl --save \
	    --out $(KERNEL_CHECK_TMP) > /dev/null
	$(PY) benchmarks/check_telemetry.py $(KERNEL_CHECK_TMP)/delays-line.json \
	    --expect-disk-hits --expect-events $(KERNEL_CHECK_TMP)/warm.jsonl

# Quick pass over the scenario registry (the experiment tables, small grids).
scenarios-smoke:
	$(PY) -m repro experiments --quick

# Regenerate every benchmark's JSON result under benchmarks/results/.
bench-scenarios:
	$(PY) -m pytest benchmarks/ -q
