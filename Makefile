PY := PYTHONPATH=src python
BENCH_BASELINE := /tmp/BENCH_engine.baseline.json
GOLDEN_TMP := /tmp/repro-golden-check
GOLDEN_SCENARIOS := verify-small gathering-line-k3 thm31-sweep atlas-programs \
        rendezvous-relabel-line gathering-crash-k3
FAULT_TMP := /tmp/repro-fault-smoke
FAULT_SCENARIOS := rendezvous-relabel-line gathering-crash-k3
TELEMETRY_TMP := /tmp/repro-telemetry-smoke

.PHONY: test lint lint-invariants bench-smoke bench-engine scenarios-smoke \
        bench-scenarios check-regression golden-diff fault-smoke \
        telemetry-smoke

test:
	$(PY) -m pytest -x -q

# Ruff over everything CI lints; same invocation as the CI lint job
# (install the pinned toolchain with: pip install -r requirements-ci.txt).
lint:
	ruff check src tests benchmarks

# The cross-layer invariant gate (RPR001-RPR006), exactly as CI runs it.
# Pure stdlib: needs nothing beyond the interpreter.
lint-invariants:
	$(PY) -m repro.lint src --format json

# Quick benchmark smokes: refresh BENCH_engine.json (engine + lowering
# sections) and the first gathering grid's JSON result in seconds.
bench-smoke:
	$(PY) benchmarks/bench_engine.py --quick
	$(PY) benchmarks/bench_gathering.py --quick
	$(PY) benchmarks/bench_lowering.py --quick
	$(PY) benchmarks/bench_kernel.py --quick

# Full-size engine-backend benchmark (the numbers quoted in the README).
bench-engine:
	$(PY) benchmarks/bench_engine.py

# Bench regression gate, exactly as CI runs it: snapshot the committed
# BENCH_engine.json, refresh it via bench-smoke, compare with tolerance.
check-regression:
	cp BENCH_engine.json $(BENCH_BASELINE)
	$(MAKE) bench-smoke
	$(PY) benchmarks/check_regression.py \
	    --baseline $(BENCH_BASELINE) --current BENCH_engine.json \
	    --require throughput --require delay_sweep \
	    --require lowering --require kernel \
	    --require telemetry_overhead

# Golden row-level drift gate, exactly as CI runs it: re-run the golden
# scenarios and `scenarios diff` them against the checked-in goldens.
golden-diff:
	mkdir -p $(GOLDEN_TMP)
	@for name in $(GOLDEN_SCENARIOS); do \
	    echo "== $$name"; \
	    $(PY) -m repro scenarios run $$name --save --out $(GOLDEN_TMP) \
	        > /dev/null || exit 1; \
	    $(PY) -m repro scenarios diff $(GOLDEN_TMP)/$$name.json \
	        benchmarks/results/golden/$$name.json || exit 1; \
	done

# Fault-model smoke: run every fault-injected scenario on the reference
# AND compiled backends, require identical verdict rows (the faulted
# parity contract), then exercise the supervised-pool suite.
fault-smoke:
	mkdir -p $(FAULT_TMP)/reference $(FAULT_TMP)/compiled
	@for name in $(FAULT_SCENARIOS); do \
	    echo "== $$name"; \
	    $(PY) -m repro scenarios run $$name --backend reference \
	        --save --out $(FAULT_TMP)/reference > /dev/null || exit 1; \
	    $(PY) -m repro scenarios run $$name --backend compiled \
	        --save --out $(FAULT_TMP)/compiled > /dev/null || exit 1; \
	    $(PY) -m repro scenarios diff $(FAULT_TMP)/reference/$$name.json \
	        $(FAULT_TMP)/compiled/$$name.json || exit 1; \
	done
	$(PY) -m pytest tests/sim/test_faults.py tests/sim/test_supervised.py -q

# Observability smoke: run a kernel-eligible scenario instrumented,
# cold then warm against an on-disk table cache, and check the full
# telemetry contract (dispatch tiers reported, phase durations account
# for elapsed time, warm run sees cache hits, event stream parses, the
# offline report renders).  The warm run is a NEW process, so its hits
# prove the cache crosses process boundaries.
telemetry-smoke:
	rm -rf $(TELEMETRY_TMP) && mkdir -p $(TELEMETRY_TMP)/cache
	@echo "== cold (empty kernel cache)"
	REPRO_KERNEL_CACHE=$(TELEMETRY_TMP)/cache $(PY) -m repro scenarios run \
	    delays-line --backend auto --telemetry=$(TELEMETRY_TMP)/cold.jsonl \
	    --save --out $(TELEMETRY_TMP)/cold > /dev/null
	$(PY) benchmarks/check_telemetry.py $(TELEMETRY_TMP)/cold/delays-line.json \
	    --expect-events $(TELEMETRY_TMP)/cold.jsonl
	@echo "== warm (cache populated, fresh process)"
	REPRO_KERNEL_CACHE=$(TELEMETRY_TMP)/cache $(PY) -m repro scenarios run \
	    delays-line --backend auto --telemetry=$(TELEMETRY_TMP)/warm.jsonl \
	    --save --out $(TELEMETRY_TMP)/warm > /dev/null
	$(PY) benchmarks/check_telemetry.py $(TELEMETRY_TMP)/warm/delays-line.json \
	    --expect-cache-hits --expect-events $(TELEMETRY_TMP)/warm.jsonl
	@echo "== offline report"
	$(PY) -m repro telemetry report $(TELEMETRY_TMP)/warm.jsonl
	$(PY) -m pytest tests/telemetry -q

# Quick pass over the scenario registry (the experiment tables, small grids).
scenarios-smoke:
	$(PY) -m repro experiments --quick

# Regenerate every benchmark's JSON result under benchmarks/results/.
bench-scenarios:
	$(PY) -m pytest benchmarks/ -q
