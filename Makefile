PY := PYTHONPATH=src python

.PHONY: test bench-smoke bench-engine

test:
	$(PY) -m pytest -x -q

# Quick engine-backend benchmark: refreshes BENCH_engine.json in seconds.
bench-smoke:
	$(PY) benchmarks/bench_engine.py --quick

# Full-size engine-backend benchmark (the numbers quoted in the README).
bench-engine:
	$(PY) benchmarks/bench_engine.py
