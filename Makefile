PY := PYTHONPATH=src python

.PHONY: test bench-smoke bench-engine scenarios-smoke bench-scenarios

test:
	$(PY) -m pytest -x -q

# Quick benchmark smokes: refresh BENCH_engine.json (engine + lowering
# sections) and the first gathering grid's JSON result in seconds.
bench-smoke:
	$(PY) benchmarks/bench_engine.py --quick
	$(PY) benchmarks/bench_gathering.py --quick
	$(PY) benchmarks/bench_lowering.py --quick

# Full-size engine-backend benchmark (the numbers quoted in the README).
bench-engine:
	$(PY) benchmarks/bench_engine.py

# Quick pass over the scenario registry (the experiment tables, small grids).
scenarios-smoke:
	$(PY) -m repro experiments --quick

# Regenerate every benchmark's JSON result under benchmarks/results/.
bench-scenarios:
	$(PY) -m pytest benchmarks/ -q
