"""Shared test configuration.

Hypothesis is derandomized so the suite is reproducible in CI and in the
recorded test_output.txt; individual suites opt into more examples where
the extra coverage is worth the time.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
