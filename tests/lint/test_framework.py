"""Framework semantics: suppression round-trips, RPR000 audits, path
predicates, reporters, and the CLI contract (exit codes 0/1/2)."""

import ast
import json
from pathlib import Path

from repro.lint import Analyzer, SourceFile
from repro.lint.cli import main
from repro.lint.report import SCHEMA, render_json, render_text
from repro.lint.rules import default_rules, rule_table

FIXTURES = Path(__file__).parent / "fixtures"


def run_on(path):
    return Analyzer(default_rules()).run([str(path)])


# ---------------------------------------------------------------------------
# suppression round-trip
# ---------------------------------------------------------------------------


def test_suppression_with_reason_silences_the_finding():
    findings, _ = run_on(FIXTURES / "suppression" / "annotated.py")
    assert findings == []


def test_reasonless_suppression_is_audited_and_does_not_filter():
    findings, _ = run_on(FIXTURES / "suppression" / "reasonless.py")
    by_code = {f.code for f in findings}
    # the directive itself is flagged AND the finding it tried to hide
    # still fires
    assert by_code == {"RPR000", "RPR003"}
    rpr000 = next(f for f in findings if f.code == "RPR000")
    assert "no reason" in rpr000.message


def test_unknown_code_suppression_is_rpr000(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "import random\n"
        "x = random.random()  # repro-lint: disable=XYZ9 -- nice try\n"
    )
    findings, _ = run_on(f)
    assert {f.code for f in findings} == {"RPR000", "RPR003"}
    assert "unknown code" in next(
        f for f in findings if f.code == "RPR000"
    ).message


def test_standalone_suppression_covers_only_the_next_line(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "import random\n"
        "# repro-lint: disable=RPR003 -- covers line 3 only\n"
        "a = random.random()\n"
        "b = random.random()\n"
    )
    findings, _ = run_on(f)
    assert [x.line for x in findings] == [4]


def test_suppression_only_silences_listed_codes(tmp_path):
    f = tmp_path / "mod.py"
    f.write_text(
        "import random, time\n"
        "a = random.random()  # repro-lint: disable=RPR005 -- wrong code\n"
    )
    findings, _ = run_on(f)
    assert {x.code for x in findings} == {"RPR003"}


def test_parse_error_reports_rpr000(tmp_path):
    f = tmp_path / "broken.py"
    f.write_text("def f(:\n")
    findings, _ = run_on(f)
    assert [x.code for x in findings] == ["RPR000"]
    assert "does not parse" in findings[0].message


# ---------------------------------------------------------------------------
# path predicate
# ---------------------------------------------------------------------------


def _sf(display):
    return SourceFile(
        Path(display), display, "m", "", ast.parse(""), []
    )


def test_matches_file_suffix_on_whole_segments():
    assert _sf("src/repro/sim/kernel.py").matches("sim/kernel.py")
    assert not _sf("src/repro/sim/notkernel.py").matches("kernel.py")
    assert not _sf("src/repro/othersim/kernel.py").matches("sim/kernel.py")


def test_matches_directory_segment_anywhere():
    assert _sf("benchmarks/bench_engine.py").matches("benchmarks/")
    assert _sf("x/benchmarks/deep/mod.py").matches("benchmarks/")
    assert not _sf("src/benchmarks.py").matches("benchmarks/")


# ---------------------------------------------------------------------------
# reporters
# ---------------------------------------------------------------------------


def test_json_report_schema():
    findings, files = run_on(FIXTURES / "rpr003" / "fail")
    doc = json.loads(render_json(findings, len(files), ["whatever"]))
    assert doc["schema"] == SCHEMA == "repro.lint-report/v1"
    assert doc["paths"] == ["whatever"]
    assert doc["files"] == len(files)
    assert doc["summary"]["total"] == len(findings) == 4
    assert doc["summary"]["by_code"] == {"RPR003": 4}
    entry = doc["findings"][0]
    assert set(entry) == {"code", "rule", "path", "line", "col", "message"}


def test_text_report_summarizes_by_code():
    findings, files = run_on(FIXTURES / "rpr003" / "fail")
    out = render_text(findings, len(files))
    assert "RPR003: 4" in out
    clean = render_text([], 7)
    assert clean == "clean: 0 findings across 7 file(s)"


def test_rule_table_lists_all_six_rules():
    table = rule_table()
    assert [code for code, _, _ in table] == [
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
    ]
    assert all(contract for _, _, contract in table)


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------


def test_cli_exit_zero_on_clean_tree(capsys):
    assert main([str(FIXTURES / "rpr001" / "ok")]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exit_one_on_findings(capsys):
    assert main([str(FIXTURES / "rpr001" / "fail")]) == 1
    assert "RPR001" in capsys.readouterr().out


def test_cli_exit_two_on_bad_path(capsys):
    assert main(["definitely/not/a/path"]) == 2
    assert "error" in capsys.readouterr().err


def test_cli_json_format(capsys):
    assert main([str(FIXTURES / "rpr005" / "fail"), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == SCHEMA


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
        assert code in out
