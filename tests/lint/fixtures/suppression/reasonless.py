"""Suppression fixture: a reasonless directive is itself a finding
(RPR000) and does NOT suppress — the RPR003 below still fires."""

import random


def pick(options):
    return random.choice(options)  # repro-lint: disable=RPR003
