"""Suppression fixture: every directive here carries a reason, so the
file analyzes clean despite three would-be findings."""

import random
import time


def pick(options):
    return random.choice(options)  # repro-lint: disable=RPR003 -- fixture: same-line suppression with a reason


def stamp():
    # repro-lint: disable=RPR003 -- fixture: standalone suppression covers the next line
    return time.time()


def fresh():
    return random.Random()  # repro-lint: disable=RPR003 -- fixture: reasons are mandatory and this is one
