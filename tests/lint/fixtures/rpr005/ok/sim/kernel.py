"""RPR005 passing fixture: every kernel allocation pins its dtype."""

import numpy as np


def build_table(n):
    table = np.zeros(n, dtype=np.int64)
    ids = np.arange(n, dtype=np.int64)
    return table, ids
