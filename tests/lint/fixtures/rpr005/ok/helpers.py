"""RPR005 scope fixture: outside the kernel layers the dtype rule is
silent — this default-dtype allocation must NOT be flagged."""

import numpy as np


def scratch(n):
    return np.zeros(n)
