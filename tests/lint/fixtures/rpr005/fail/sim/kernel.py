"""RPR005 failing fixture: kernel allocation without an explicit dtype."""

import numpy as np


def build_table(n):
    # BUG under RPR005: platform-default dtype breaks content-addressed
    # cache keys and memmap round-trips
    return np.zeros(n)
