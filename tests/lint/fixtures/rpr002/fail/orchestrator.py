"""RPR002 failing fixture: degrade errors absorbed at the wrong layer."""

from repro.errors import BudgetExceededError, KernelUnsupported


def absorb_budget(run):
    try:
        return run()
    except BudgetExceededError:
        # BUG under RPR002: only scenarios/backends.py and the *_auto
        # dispatchers may absorb a degrade signal.
        return None


def absorb_unsupported(run):
    try:
        return run()
    except KernelUnsupported:
        return None


def swallow_everything(run):
    try:
        return run()
    except Exception:
        # BUG under RPR002: broad except with neither re-raise nor logging.
        return None
