"""RPR002 passing fixture: the one layer allowed to absorb degrades."""

from repro.errors import BudgetExceededError, KernelUnsupported, LoweringError


def run_with_fallback(fast, slow):
    try:
        return fast()
    except (BudgetExceededError, KernelUnsupported, LoweringError):
        return slow()
