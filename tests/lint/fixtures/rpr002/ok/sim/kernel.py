"""RPR002 passing fixture: *_auto dispatchers and disciplined broad excepts."""

import logging

from repro.errors import KernelUnsupported

log = logging.getLogger(__name__)


def sweep_delays_auto(fast, slow):
    # ``*_auto`` dispatchers in sim/kernel.py are the sanctioned
    # vectorized-to-reference downgrade point.
    try:
        return fast()
    except KernelUnsupported:
        return slow()


def reraising_probe(run):
    try:
        return run()
    except Exception:
        # broad, but re-raises: nothing is swallowed
        raise


def logging_probe(run):
    try:
        return run()
    except Exception as exc:
        # broad, but surfaced through logging before degrading
        log.warning("probe failed: %s", exc)
        return None
