"""RPR001 passing fixture: every threading idiom the rule accepts."""


def run_leaf(tree, agent, faults=None):
    return (tree, agent, faults)


def run_keyword(tree, agent, faults=None):
    return run_leaf(tree, agent, faults=faults)


def run_positional(tree, agent, faults=None):
    return run_leaf(tree, agent, faults)


def run_expanded(tree, agent, faults=None):
    # ``**extra`` forwarding counts as threading (the backends.py idiom).
    extra = {"faults": faults}
    return run_leaf(tree, agent, **extra)


def run_guarded(tree, agent, faults=None):
    if faults is None:
        # provably fault-free branch: the un-threaded call is fine here
        return run_leaf(tree, agent)
    return run_leaf(tree, agent, faults=faults)


def run_early_exit(tree, agent, faults=None):
    if faults:
        return run_leaf(tree, agent, faults=faults)
    # fall-through is fault-free once the truthy branch terminated
    return run_leaf(tree, agent)
