"""RPR001 failing fixture: a faults-accepting caller drops the plan."""


def run_leaf(tree, agent, faults=None):
    return (tree, agent, faults)


def run_sweep(tree, agent, faults=None):
    # BUG under RPR001: run_leaf accepts `faults` but the call below does
    # not thread it, silently running the leaf fault-free.
    return run_leaf(tree, agent)
