"""RPR006 failing fixture: a backend missing protocol surface."""


class Backend:
    # BUG under RPR006: the protocol class itself is missing run_pairs
    # and sweep_gathering.
    def run(self):
        raise NotImplementedError

    def run_gathering(self):
        raise NotImplementedError

    def run_many(self):
        raise NotImplementedError

    def run_gathering_many(self):
        raise NotImplementedError

    def sweep_delays(self):
        raise NotImplementedError


class ShardBackend:
    # BUG under RPR006: named like a backend, defines almost nothing and
    # inherits nothing.
    def run(self):
        return None
