"""RPR006 passing fixture: the full protocol, direct and inherited."""


class Backend:
    def run(self):
        raise NotImplementedError

    def run_gathering(self):
        raise NotImplementedError

    def run_many(self):
        raise NotImplementedError

    def run_gathering_many(self):
        raise NotImplementedError

    def sweep_delays(self):
        raise NotImplementedError

    def sweep_gathering(self):
        raise NotImplementedError

    def run_pairs(self):
        raise NotImplementedError


class ReferenceBackend(Backend):
    # overriding a subset is fine: the rest arrives through the MRO
    def run(self):
        return None

    def sweep_gathering(self):
        return None


class StackedBackend(ReferenceBackend):
    # depth-2 inheritance still reaches the whole surface
    def run_pairs(self):
        return None
