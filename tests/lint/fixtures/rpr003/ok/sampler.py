"""RPR003 passing fixture: seeded RNG objects only."""

import random


def pick(options, seed):
    rng = random.Random(seed)
    return rng.choice(options)


def forked(rng: random.Random, options):
    # method calls on an already-constructed Random are fine: the seed
    # obligation sits at construction time
    return rng.sample(options, 1)
