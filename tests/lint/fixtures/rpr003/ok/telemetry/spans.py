"""RPR003 passing fixture: monotonic-only span timing in telemetry."""

import time
from time import perf_counter


def span_seconds():
    started = time.monotonic()
    return time.monotonic() - started


def precise_span_seconds():
    started = perf_counter()
    return perf_counter() - started
