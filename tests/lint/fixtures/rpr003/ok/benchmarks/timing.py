"""RPR003 passing fixture: benchmarks/ is on the wall-clock allowlist."""

import time


def measure(run):
    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0
