"""RPR003 failing fixture: unseeded randomness and wall-clock reads."""

import random
import time


def pick(options):
    # BUG under RPR003: module-level RNG, no seed anywhere in sight
    return random.choice(options)


def fresh_rng():
    # BUG under RPR003: Random() without a seed argument
    return random.Random()


def stamp():
    # BUG under RPR003: wall clock outside the timing allowlist
    return time.time()
