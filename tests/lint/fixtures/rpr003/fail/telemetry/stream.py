"""RPR003 failing fixture: wall clock inside the telemetry layer.

The telemetry directory is granted monotonic-family clocks for span
timing, but absolute timestamps in event payloads are still a
determinism violation.
"""

import time


def stamp_event(record):
    # BUG under RPR003: telemetry may measure durations, never moments
    record["timestamp"] = time.time()
    return record
