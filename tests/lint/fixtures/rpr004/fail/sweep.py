"""RPR004 failing fixture: unpicklable payloads into the fan-out."""

from repro.sim.batch import BatchJob, run_batch


def sweep(tree, starts):
    def local_agent(obs):
        return obs

    jobs = [
        # BUG under RPR004: lambda prototype cannot cross the pool boundary
        BatchJob(tree, lambda obs: 0, s, s + 1)
        for s in starts
    ]
    # BUG under RPR004: locally-defined function into a batch entry point
    jobs.append(BatchJob(tree, local_agent, 0, 1))
    return run_batch(jobs)
