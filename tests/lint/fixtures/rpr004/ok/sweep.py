"""RPR004 passing fixture: module-level payloads pickle fine."""

from repro.sim.batch import BatchJob, run_batch


def module_agent(obs):
    return obs


def sweep(tree, starts):
    jobs = [BatchJob(tree, module_agent, s, s + 1) for s in starts]
    return run_batch(jobs)
