"""The gate applied to the gate: the shipped tree must analyze clean,
and un-threading a real fault plan must make it dirty again (the PR's
acceptance criterion, exercised on the actual sim sources)."""

import shutil
from pathlib import Path

from repro.lint import Analyzer
from repro.lint.rules import default_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def run_on(path):
    findings, files = Analyzer(default_rules()).run([str(path)])
    return findings, files


def test_src_tree_is_clean():
    findings, files = run_on(SRC)
    assert findings == [], "\n".join(f.render() for f in findings)
    assert len(files) > 50  # sanity: the whole package was actually loaded


def test_unthreading_a_real_fault_plan_fails_the_gate(tmp_path):
    # Copy the real gathering dispatcher plus its faulted twins, then
    # delete ONE `faults=faults,` at a call site: RPR001 must fire.
    sim = tmp_path / "sim"
    sim.mkdir()
    for name in ("multi.py", "faults.py"):
        shutil.copy(SRC / "repro" / "sim" / name, sim / name)

    findings, _ = run_on(tmp_path)
    assert [f for f in findings if f.code == "RPR001"] == []

    text = (sim / "multi.py").read_text()
    assert "faults=faults," in text
    (sim / "multi.py").write_text(text.replace("faults=faults,", "", 1))

    findings, _ = run_on(tmp_path)
    dropped = [f for f in findings if f.code == "RPR001"]
    assert len(dropped) == 1
    assert dropped[0].path.endswith("sim/multi.py")
    assert "run_gathering_faulted" in dropped[0].message


def test_unthreading_in_the_kernel_layer_fails_the_gate(tmp_path):
    # Same criterion at the kernel seam: sim/kernel.py's exact-sweep
    # entry points thread `faults=` into the reference fallbacks.
    sim = tmp_path / "sim"
    sim.mkdir()
    for name in ("kernel.py", "compiled.py", "gathering_solver.py"):
        shutil.copy(SRC / "repro" / "sim" / name, sim / name)

    findings, _ = run_on(tmp_path)
    assert [f for f in findings if f.code == "RPR001"] == []

    text = (sim / "kernel.py").read_text()
    assert "faults=faults" in text
    (sim / "kernel.py").write_text(text.replace("faults=faults,", "", 1))

    findings, _ = run_on(tmp_path)
    assert [f for f in findings if f.code == "RPR001"], (
        "removing faults= threading from sim/kernel.py must trip RPR001"
    )
