"""Per-rule fixture corpus: each RPR rule fires on its failing snippet
and stays silent on the passing one (the acceptance criterion for the
invariant-analyzer PR)."""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, Analyzer
from repro.lint.rules import default_rules

FIXTURES = Path(__file__).parent / "fixtures"


def run_on(path: Path):
    findings, _files = Analyzer(default_rules()).run([str(path)])
    return findings


def codes(findings) -> set[str]:
    return {f.code for f in findings}


# (rule dir, expected code, finding count on the failing fixture)
CASES = [
    ("rpr001", "RPR001", 1),
    ("rpr002", "RPR002", 3),
    ("rpr003", "RPR003", 4),
    ("rpr004", "RPR004", 2),
    ("rpr006", "RPR006", 2),
]


@pytest.mark.parametrize("subdir,code,n_fail", CASES)
def test_rule_fires_on_failing_fixture(subdir, code, n_fail):
    findings = run_on(FIXTURES / subdir / "fail")
    assert codes(findings) == {code}
    assert len(findings) == n_fail


@pytest.mark.parametrize("subdir,code,n_fail", CASES)
def test_rule_silent_on_passing_fixture(subdir, code, n_fail):
    assert run_on(FIXTURES / subdir / "ok") == []


def test_rpr005_fires_only_inside_kernel_paths():
    # the failing corpus places the default-dtype allocation under a
    # sim/kernel.py path; an identical allocation elsewhere is ignored
    findings = run_on(FIXTURES / "rpr005" / "fail")
    assert codes(findings) == {"RPR005"} and len(findings) == 1
    assert findings[0].path.endswith("sim/kernel.py")
    assert run_on(FIXTURES / "rpr005" / "ok") == []


def test_every_rule_has_a_fixture_pair():
    covered = {c for c, *_ in CASES} | {"rpr005"}
    assert covered == {cls.code.lower() for cls in ALL_RULES}
    for sub in sorted(covered):
        assert list((FIXTURES / sub / "fail").rglob("*.py")), sub
        assert list((FIXTURES / sub / "ok").rglob("*.py")), sub


def test_rpr003_telemetry_wall_clock_message_is_specific():
    # telemetry/ gets monotonic clocks; a time.time() there must still
    # fire, with the telemetry-specific message
    findings = [
        f for f in run_on(FIXTURES / "rpr003" / "fail")
        if "telemetry" in f.path
    ]
    (finding,) = findings
    assert "telemetry" in finding.message
    assert "monotonic" in finding.message


def test_rpr001_message_names_caller_and_callee():
    (finding,) = run_on(FIXTURES / "rpr001" / "fail")
    assert "'run_sweep'" in finding.message
    assert "'run_leaf'" in finding.message


def test_rpr006_reports_exact_missing_methods():
    findings = run_on(FIXTURES / "rpr006" / "fail")
    by_msg = "\n".join(f.message for f in findings)
    assert "run_pairs" in by_msg and "sweep_gathering" in by_msg
