"""Tests for Synchro (Sub-stage 2.1) and the rendezvous path navigator."""

import random

from repro.agents import NULL_PORT, STAY, Ctx, Registers
from repro.core import explo_bis_routine, synchro_routine
from repro.core.rendezvous_path import (
    RendezvousPathNavigator,
    rendezvous_path_num_edges,
)
from repro.trees import (
    complete_binary_tree,
    contract,
    line,
    random_relabel,
    subdivide,
)


def drive(tree, start, routine_factory):
    """Run a routine; return (value, rounds, final_pos, positions)."""
    ctx = Ctx(NULL_PORT, tree.degree(start))
    regs = Registers()
    gen = routine_factory(ctx, regs)
    pos = start
    rounds = 0
    visited = [start]
    try:
        action = next(gen)
        while True:
            if action == STAY:
                obs = (NULL_PORT, tree.degree(pos))
            else:
                pos, in_port = tree.move(pos, action % tree.degree(pos))
                obs = (in_port, tree.degree(pos))
            visited.append(pos)
            rounds += 1
            action = gen.send(obs)
    except StopIteration as stop:
        return stop.value, rounds, pos, visited


def explo_then(extra):
    """Compose: Explo-bis first, then `extra(ctx, regs, explo_result)`."""

    def factory(ctx, regs):
        result = yield from explo_bis_routine(ctx, regs)
        yield from extra(ctx, regs, result)
        return result

    return factory


class TestSynchro:
    def test_returns_to_vhat(self):
        t = line(9)
        for start in (0, 8):
            _, _, pos, _ = drive(t, start, explo_then(synchro_routine))
            assert pos == start  # leaves are their own v̂

    def test_duration_equal_from_both_extremities(self):
        """Claim 4.2's engine: identical action multisets => equal duration."""
        rng = random.Random(4)
        t = random_relabel(subdivide(complete_binary_tree(2), 2), rng)
        durations = set()
        for start in (3, 4, 5, 6):  # leaves of the base tree
            _, rounds, _, _ = drive(t, start, explo_then(synchro_routine))
            durations.add(rounds)
        assert len(durations) == 1

    def test_visits_whole_tree(self):
        t = line(7)
        _, _, _, visited = drive(t, 0, explo_then(synchro_routine))
        assert set(visited) == set(range(t.n))

    def test_trivial_contraction_is_noop(self):
        # A star contracts to itself with a central node: T' has no central
        # edge, but Synchro still works (it's only *called* in the symmetric
        # case; here we check it terminates and returns home).
        from repro.trees import star

        t = star(3)
        _, rounds, pos, _ = drive(t, 1, explo_then(synchro_routine))
        assert pos == 1


class TestRendezvousPathNavigator:
    def _traverse(self, tree, start, nu, ell, central_port, speed):
        def factory(ctx, regs):
            nav = RendezvousPathNavigator(nu, ell, central_port)
            yield from nav.traverse(ctx, regs, speed)

        return drive(tree, start, factory)

    def test_ends_at_other_extremity(self):
        t = line(9)  # T' = both endpoints; central path = the whole line
        c = contract(t)
        _, rounds, pos, _ = self._traverse(t, 0, c.nu, t.num_leaves, 0, 1)
        assert pos == 8
        _, rounds2, pos2, _ = self._traverse(t, 8, c.nu, t.num_leaves, 0, 1)
        assert pos2 == 0
        assert rounds == rounds2  # same instruction sequence, same length

    def test_speed_multiplies_rounds(self):
        t = line(7)
        c = contract(t)
        _, r1, _, _ = self._traverse(t, 0, c.nu, 2, 0, 1)
        _, r3, _, _ = self._traverse(t, 0, c.nu, 2, 0, 3)
        assert r3 == 3 * r1  # idle (speed-1) rounds before every move

    def test_length_matches_formula(self):
        t = line(11)
        c = contract(t)
        _, rounds, _, _ = self._traverse(t, 0, c.nu, 2, 0, 1)
        expected = rendezvous_path_num_edges(t.n, c.nu, 2, chain_len=t.n - 1)
        assert rounds == expected

    def test_on_branching_tree(self):
        rng = random.Random(8)
        t = random_relabel(subdivide(complete_binary_tree(2), 1), rng)
        c = contract(t)
        tp = c.contracted
        from repro.trees import find_center, port_preserving_automorphism

        center = find_center(tp)
        assert center.is_edge
        f = port_preserving_automorphism(tp)
        if f is None:
            return  # random labeling broke symmetry; nothing to traverse
        x, y = center.edge
        u = c.to_original[x]
        port = tp.port(x, y)
        _, _, pos, _ = self._traverse(t, u, c.nu, t.num_leaves, port, 2)
        assert pos == c.to_original[y]

    def test_double_traverse_returns(self):
        t = line(9)
        c = contract(t)

        def factory(ctx, regs):
            nav = RendezvousPathNavigator(c.nu, 2, 0)
            yield from nav.traverse(ctx, regs, 2)
            yield from nav.traverse(ctx, regs, 2)

        _, _, pos, _ = drive(t, 0, factory)
        assert pos == 0
