"""Integration tests for the full Theorem 4.1 agent.

The paper's guarantee: for every tree, every port labeling, and every non
perfectly symmetrizable pair of initial positions, two identical agents
with simultaneous start rendezvous.  We verify it exhaustively on small
trees and by random sweeps on larger ones.
"""

import random

import pytest

from repro.core import rendezvous_agent, solve
from repro.errors import InfeasibleRendezvousError
from repro.sim import run_rendezvous
from repro.trees import (
    all_labelings,
    all_trees,
    binomial_tree,
    complete_binary_tree,
    line,
    perfectly_symmetrizable,
    random_relabel,
    random_tree,
    subdivide,
)


class TestExhaustiveSmall:
    def test_all_trees_all_feasible_pairs_canonical_labeling(self):
        for n in range(2, 9):
            for t in all_trees(n):
                for u in range(n):
                    for v in range(u + 1, n):
                        if perfectly_symmetrizable(t, u, v):
                            continue
                        r = solve(t, u, v, max_outer=10)
                        assert r.met, (n, u, v, t.debug_string())

    def test_all_labelings_of_small_lines(self):
        """Lines stress the symmetric-contraction path; sweep every labeling."""
        for n in (4, 5, 6):
            t = line(n)
            for lab in all_labelings(t):
                for u in range(n):
                    for v in range(u + 1, n):
                        if perfectly_symmetrizable(lab, u, v):
                            continue
                        r = solve(lab, u, v, max_outer=10)
                        assert r.met, (n, u, v, lab.debug_string())

    def test_random_labelings_n7(self):
        rng = random.Random(5)
        for t in all_trees(7):
            lab = random_relabel(t, rng)
            for u in range(7):
                for v in range(u + 1, 7):
                    if perfectly_symmetrizable(lab, u, v):
                        continue
                    assert solve(lab, u, v, max_outer=10).met


class TestPaperExamples:
    def test_complete_binary_tree_leaves(self):
        """Paper §1: two leaves of a complete binary tree are topologically
        symmetric but NOT perfectly symmetrizable — rendezvous succeeds."""
        t = complete_binary_tree(3)
        r = solve(t, 7, 14)
        assert r.met

    def test_odd_line_endpoints(self):
        t = line(9)
        r = solve(t, 0, 8)
        assert r.met

    def test_binomial_tree(self):
        """Paper §4.1: binomial trees are the example where both agents may
        end at the two roots of the two halves."""
        t = binomial_tree(4)
        rng = random.Random(2)
        lab = random_relabel(t, rng)
        count = 0
        for u in range(t.n):
            for v in range(u + 1, t.n):
                if perfectly_symmetrizable(lab, u, v):
                    continue
                count += 1
                if count % 13 == 0:  # sample: full sweep is large
                    assert solve(lab, u, v, max_outer=10).met

    def test_infeasible_raises(self):
        t = line(8)
        with pytest.raises(InfeasibleRendezvousError):
            solve(t, 0, 7)

    def test_infeasible_can_run_anyway(self):
        t = line(4)
        r = solve(t, 0, 3, check_feasibility=False, max_rounds=30_000)
        assert not r.met
        assert not r.feasible


class TestScaling:
    def test_larger_random_trees(self):
        rng = random.Random(11)
        for _ in range(6):
            t = random_relabel(random_tree(rng.randrange(15, 45), rng), rng)
            pairs = 0
            while pairs < 3:
                u, v = rng.randrange(t.n), rng.randrange(t.n)
                if u == v or perfectly_symmetrizable(t, u, v):
                    continue
                pairs += 1
                assert solve(t, u, v, max_outer=12).met

    def test_subdivided_trees_keep_working(self):
        """Growing n at fixed ℓ (the memory-gap regime)."""
        rng = random.Random(3)
        base = complete_binary_tree(2)
        for times in (1, 4, 9):
            t = random_relabel(subdivide(base, times), rng)
            u, v = 3, 6  # two leaves of the base tree (ids preserved)
            assert not perfectly_symmetrizable(t, u, v)
            assert solve(t, u, v, max_outer=12).met

    def test_memory_scales_with_leaves_not_nodes(self):
        """Declared bits must be flat in n at fixed ℓ (up to the loglog
        prime counters) — the headline upper bound."""
        base = complete_binary_tree(2)
        bits = []
        for times in (0, 3, 9):
            t = subdivide(base, times)
            r = solve(t, 3, 6, max_outer=10)
            assert r.met
            bits.append(r.memory.declared)
        assert max(bits) - min(bits) <= 4  # only prime/outer counters may drift


class TestDeterminism:
    def test_same_instance_same_outcome(self):
        t = line(11)
        a = solve(t, 2, 7)
        b = solve(t, 2, 7)
        assert a.outcome.meeting_round == b.outcome.meeting_round
        assert a.outcome.meeting_node == b.outcome.meeting_node

    def test_agent_clone_restarts_fresh(self):
        proto = rendezvous_agent(max_outer=5)
        t = line(5)
        out1 = run_rendezvous(t, proto, 0, 2, max_rounds=50_000)
        out2 = run_rendezvous(t, proto, 0, 2, max_rounds=50_000)
        assert out1.met == out2.met
        assert out1.meeting_round == out2.meeting_round
