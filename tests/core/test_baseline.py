"""Tests for the arbitrary-delay baseline agent (Θ(log n) bits)."""

import random

from repro.core import baseline_agent, invariant_rank, solve_with_delay
from repro.sim import run_rendezvous
from repro.trees import (
    all_trees,
    are_symmetric_for_labeling,
    edge_colored_line,
    find_center,
    line,
    port_preserving_automorphism,
    random_relabel,
    random_tree,
    star,
)


class TestInvariantRank:
    def test_symmetric_pairs_share_rank(self):
        t = edge_colored_line(6)
        f = port_preserving_automorphism(t)
        assert f is not None
        x, y = find_center(t).edge
        for w in range(t.n):
            assert invariant_rank(t, x, y, w) == invariant_rank(t, x, y, f[w])

    def test_nonsymmetric_get_distinct_ranks(self):
        t = edge_colored_line(8)
        f = port_preserving_automorphism(t)
        x, y = find_center(t).edge
        for u in range(t.n):
            for v in range(t.n):
                if v in (u, f[u]):
                    continue
                assert invariant_rank(t, x, y, u) != invariant_rank(t, x, y, v)

    def test_rank_range(self):
        t = edge_colored_line(10)
        x, y = find_center(t).edge
        ranks = {invariant_rank(t, x, y, w) for w in range(t.n)}
        assert ranks == set(range(t.n // 2))  # orbits have size exactly 2


class TestBaselineDelays:
    def test_exhaustive_small_with_delays(self):
        rng = random.Random(8)
        for n in range(2, 7):
            for t in all_trees(n):
                lab = random_relabel(t, rng)
                for u in range(n):
                    for v in range(u + 1, n):
                        if are_symmetric_for_labeling(lab, u, v):
                            continue
                        for delay in (0, 5, 17):
                            r = solve_with_delay(lab, u, v, delay)
                            assert r.met, (n, u, v, delay)

    def test_large_delay(self):
        t = line(9)
        r = solve_with_delay(t, 1, 5, 500)
        assert r.met

    def test_both_delay_sides(self):
        t = star(4)
        for delayed in (1, 2):
            r = solve_with_delay(t, 1, 2, 9, delayed=delayed)
            assert r.met

    def test_symmetric_positions_never_meet(self):
        """On a symmetric labeling, mirror positions are infeasible even
        with delay 0 — the baseline runs forever."""
        t = edge_colored_line(6)
        f = port_preserving_automorphism(t)
        u = 1
        out = run_rendezvous(
            t, baseline_agent(), u, f[u], max_rounds=40_000
        )
        assert not out.met

    def test_memory_report_is_log_n(self):
        """Declared register bits grow like log n on lines."""
        bits = []
        for m in (8, 16, 32, 64):
            t = edge_colored_line(m)
            r = solve_with_delay(t, 1, m - 3, 3)
            assert r.met
            bits.append(r.memory.declared)
        assert bits == sorted(bits)
        assert bits[-1] > bits[0]


class TestBaselineCases:
    def test_central_node_case(self):
        rng = random.Random(2)
        t = random_relabel(star(5), rng)
        r = solve_with_delay(t, 1, 4, 11)
        # Meeting may happen en route (the exploring agent can step onto the
        # sleeping one) or at the central node; both count as rendezvous.
        assert r.met

    def test_asymmetric_central_edge_case(self):
        from repro.trees import Tree

        # central edge with different-shaped halves
        t = Tree.from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4)])
        assert find_center(t).is_edge
        r = solve_with_delay(t, 0, 3, 4)
        assert r.met

    def test_random_trees_random_delays(self):
        rng = random.Random(21)
        for _ in range(8):
            t = random_relabel(random_tree(rng.randrange(4, 18), rng), rng)
            tries = 0
            while tries < 30:
                u, v = rng.randrange(t.n), rng.randrange(t.n)
                tries += 1
                if u == v or are_symmetric_for_labeling(t, u, v):
                    continue
                delay = rng.randrange(0, 60)
                r = solve_with_delay(t, u, v, delay, delayed=rng.choice((1, 2)))
                assert r.met, (t.debug_string(), u, v, delay)
                break
