"""Larger-scale end-to-end runs (still laptop-friendly)."""

import random


from repro.core import solve
from repro.trees import (
    complete_binary_tree,
    line,
    perfectly_symmetrizable,
    random_relabel,
    random_tree,
    subdivide,
)


class TestScale:
    def test_line_60(self):
        rng = random.Random(1)
        t = random_relabel(line(60), rng)
        pairs = [(0, 31), (5, 40), (13, 47)]
        for u, v in pairs:
            if perfectly_symmetrizable(t, u, v):
                continue
            r = solve(t, u, v, max_outer=12)
            assert r.met, (u, v)

    def test_binary_tree_height_5(self):
        rng = random.Random(2)
        t = random_relabel(complete_binary_tree(5), rng)  # 63 nodes, 32 leaves
        assert solve(t, 31, 62, max_outer=10).met

    def test_subdivided_deep(self):
        rng = random.Random(3)
        t = random_relabel(subdivide(complete_binary_tree(2), 20), rng)  # 127 nodes
        assert solve(t, 3, 6, max_outer=10).met

    def test_random_100(self):
        rng = random.Random(4)
        t = random_relabel(random_tree(100, rng), rng)
        done = 0
        while done < 3:
            u, v = rng.randrange(t.n), rng.randrange(t.n)
            if u == v or perfectly_symmetrizable(t, u, v):
                continue
            assert solve(t, u, v, max_outer=12).met
            done += 1
