"""Tests for memory accounting helpers and the public solve API."""

import pytest

from repro.core import (
    estimate_round_budget,
    log_bits,
    loglog_bits,
    measure_memory,
    memory_report,
    rendezvous_agent,
    solve,
    solve_with_delay,
    upper_bound_bits,
)
from repro.core.baseline import baseline_agent
from repro.errors import InfeasibleRendezvousError
from repro.trees import complete_binary_tree, line, star, subdivide


class TestBitHelpers:
    def test_log_bits(self):
        assert log_bits(0) == 1
        assert log_bits(1) == 1
        assert log_bits(2) == 2
        assert log_bits(7) == 3
        assert log_bits(8) == 4
        assert log_bits(255) == 8

    def test_loglog_bits_grows_very_slowly(self):
        assert loglog_bits(10) <= loglog_bits(10**6) <= loglog_bits(10**12)
        assert loglog_bits(10**12) <= 6

    def test_upper_bound_bits_monotone(self):
        assert upper_bound_bits(100, 4) <= upper_bound_bits(100, 64)
        assert upper_bound_bits(100, 4) <= upper_bound_bits(10**9, 4)


class TestMeasureMemory:
    def test_solo_measurement_declares_registers(self):
        t = line(9)
        report = measure_memory(t, 0, rendezvous_agent(max_outer=2),
                                estimate_round_budget(t, 2))
        assert report.declared > 0
        assert report.used <= report.declared
        assert "explo_nu" in report.registers

    def test_flat_under_subdivision(self):
        base = complete_binary_tree(2)
        r1 = measure_memory(base, 3, rendezvous_agent(max_outer=2),
                            estimate_round_budget(base, 2))
        big = subdivide(base, 7)
        r2 = measure_memory(big, 3, rendezvous_agent(max_outer=2),
                            estimate_round_budget(big, 2))
        assert r1.declared == r2.declared

    def test_baseline_memory_grows_with_n(self):
        r1 = measure_memory(line(8), 0, baseline_agent(), 600)
        r2 = measure_memory(line(64), 0, baseline_agent(), 20_000)
        assert r2.declared > r1.declared

    def test_report_str(self):
        t = line(7)
        report = measure_memory(t, 0, rendezvous_agent(max_outer=1),
                                estimate_round_budget(t, 1))
        text = str(report)
        assert "declared" in text and "bound" in text


class TestSolveAPI:
    def test_memory_attached_to_result(self):
        r = solve(line(9), 1, 4)
        assert r.met
        assert r.memory is not None

    def test_infeasible_raise_and_override(self):
        t = line(6)
        with pytest.raises(InfeasibleRendezvousError):
            solve(t, 1, 4)  # mirror pair: perfectly symmetrizable
        # NB: perfect symmetrizability quantifies over labelings; under the
        # canonical labeling the pair may be non-symmetric and the agents
        # can actually meet.  Use the mirror-symmetric labeling, where
        # Fact 1.1's impossibility bites for real:
        from repro.trees import are_symmetric_for_labeling, edge_colored_line

        sym = edge_colored_line(6)
        assert are_symmetric_for_labeling(sym, 1, 4)
        r = solve(sym, 1, 4, check_feasibility=False, max_rounds=20_000)
        assert not r.met and not r.feasible

    def test_custom_agent_injection(self):
        r = solve(line(7), 0, 3, agent=rendezvous_agent(max_outer=3))
        assert r.met

    def test_budget_override(self):
        r = solve(line(7), 0, 3, max_rounds=50)
        # tiny budget may or may not meet; must not crash and must respect it
        assert r.outcome.rounds_executed <= 50

    def test_estimate_budget_monotone(self):
        assert estimate_round_budget(line(9), 2) < estimate_round_budget(line(9), 6)
        assert estimate_round_budget(line(9), 3) < estimate_round_budget(line(33), 3)

    def test_solve_with_delay_star(self):
        r = solve_with_delay(star(5), 1, 4, 25)
        assert r.met
        assert r.feasible

    def test_record_trace(self):
        r = solve(line(7), 0, 3, record_trace=True)
        assert r.outcome.trace is not None
        assert len(r.outcome.trace) == r.outcome.rounds_executed


class TestMemoryReportFunction:
    def test_memory_report_of_fresh_agent(self):
        agent = rendezvous_agent()
        report = memory_report(agent)
        assert report.declared == 0
        assert report.registers == {}
