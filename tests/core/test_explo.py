"""Unit tests for Explo / Explo-bis (Fact 2.1)."""

import random

import pytest

from repro.agents import NULL_PORT, Ctx, Registers
from repro.core import (
    CENTRAL_EDGE_ASYMMETRIC,
    CENTRAL_EDGE_SYMMETRIC,
    CENTRAL_NODE,
    explo_bis_routine,
    explo_routine,
)
from repro.errors import SimulationError
from repro.trees import (
    Tree,
    all_trees,
    canonical_form,
    complete_binary_tree,
    contract,
    find_center,
    line,
    random_relabel,
    random_tree,
    star,
    subdivide,
)


def run_routine(tree, start, routine_factory):
    """Drive a routine on a tree; return (result, rounds, final_position)."""
    ctx = Ctx(NULL_PORT, tree.degree(start))
    regs = Registers()
    gen = routine_factory(ctx, regs)
    pos = start
    rounds = 0
    try:
        action = next(gen)
        while True:
            if action == -1:
                obs = (NULL_PORT, tree.degree(pos))
            else:
                pos, in_port = tree.move(pos, action % tree.degree(pos))
                obs = (in_port, tree.degree(pos))
            rounds += 1
            action = gen.send(obs)
    except StopIteration as stop:
        return stop.value, rounds, pos


class TestExplo:
    def test_round_count_and_return(self):
        for t in all_trees(7):
            for v in range(t.n):
                if t.degree(v) == 2:
                    continue
                result, rounds, pos = run_routine(t, v, explo_routine)
                assert rounds == 2 * (t.n - 1)
                assert pos == v
                assert result.n == t.n
                assert canonical_form(result.tree) == canonical_form(t)

    def test_rejects_degree2_start(self):
        t = line(5)
        with pytest.raises(SimulationError):
            run_routine(t, 2, explo_routine)

    def test_single_node(self):
        t = Tree([[]], validate=False)
        result, rounds, pos = run_routine(t, 0, explo_routine)
        assert rounds == 0
        assert result.kind == CENTRAL_NODE

    def test_kind_matches_ground_truth(self):
        rng = random.Random(9)
        from repro.trees import port_preserving_automorphism

        for _ in range(30):
            t = random_relabel(random_tree(rng.randrange(2, 20), rng), rng)
            starts = [v for v in range(t.n) if t.degree(v) != 2]
            v = rng.choice(starts)
            result, _, _ = run_routine(t, v, explo_routine)
            tp = contract(t).contracted
            center = find_center(tp)
            if center.is_node:
                assert result.kind == CENTRAL_NODE
            elif port_preserving_automorphism(tp) is not None:
                assert result.kind == CENTRAL_EDGE_SYMMETRIC
            else:
                assert result.kind == CENTRAL_EDGE_ASYMMETRIC

    def test_steps_to_central_node(self):
        t = star(4)  # central node is the hub
        for leaf in range(1, 5):
            result, _, _ = run_routine(t, leaf, explo_routine)
            assert result.kind == CENTRAL_NODE
            # one basic-walk step from a leaf reaches the hub
            assert result.steps_to_target == 1

    def test_symmetric_target_is_farther_extremity(self):
        t = line(6)  # T' = the two endpoints; symmetric
        result, _, _ = run_routine(t, 0, explo_routine)
        assert result.kind == CENTRAL_EDGE_SYMMETRIC
        # target is the far endpoint: 1 T'-step away
        assert result.steps_to_target == 1
        assert result.central_port == 0


class TestCanonicalExtremityAgreement:
    def test_asymmetric_pick_agrees_across_starts(self):
        """All starting positions must name the same physical target node."""
        rng = random.Random(4)
        checked = 0
        for _ in range(60):
            t = random_relabel(random_tree(rng.randrange(4, 16), rng), rng)
            tp = contract(t).contracted
            center = find_center(tp)
            from repro.trees import port_preserving_automorphism

            if not center.is_edge or port_preserving_automorphism(tp) is not None:
                continue
            checked += 1
            physical_targets = set()
            for v in range(t.n):
                if t.degree(v) == 2:
                    continue
                result, _, _ = run_routine(t, v, explo_routine)
                assert result.kind == CENTRAL_EDGE_ASYMMETRIC
                # map the agent's private target index to the physical node:
                # replay a basic walk of `steps_to_target` T'-steps from v.
                physical_targets.add(
                    _branching_walk_end(t, v, result.steps_to_target)
                )
            assert len(physical_targets) == 1
        assert checked >= 5  # the sweep actually exercised the case


def _branching_walk_end(tree, start, count):
    if count == 0:
        return start
    node, port, seen = start, 0, 0
    while True:
        node, in_port = tree.move(node, port)
        if tree.degree(node) != 2:
            seen += 1
            if seen == count:
                return node
        port = (in_port + 1) % tree.degree(node)


class TestExploBis:
    def test_degree2_start_walks_to_leaf_first(self):
        t = line(7)
        result, rounds, pos = run_routine(t, 3, explo_bis_routine)
        # 3 steps to the leaf (port 0 goes left), then a full Explo
        assert rounds == 3 + 2 * (t.n - 1)
        assert pos == 0  # v̂ = the left leaf
        assert result.kind == CENTRAL_EDGE_SYMMETRIC

    def test_branching_start_is_plain_explo(self):
        t = complete_binary_tree(2)
        for v in [1, 3, 6]:
            result, rounds, pos = run_routine(t, v, explo_bis_routine)
            assert rounds == 2 * (t.n - 1)
            assert pos == v

    def test_duration_is_position_independent_from_branching(self):
        """Key timing property used by the Synchro analysis."""
        t = subdivide(complete_binary_tree(2), 2)
        durations = set()
        for v in range(t.n):
            if t.degree(v) != 2:
                _, rounds, _ = run_routine(t, v, explo_bis_routine)
                durations.add(rounds)
        assert len(durations) == 1

    def test_registers_scale_with_leaves_not_nodes(self):
        """Explo-bis memory is O(log ℓ): subdividing (growing n at fixed ℓ)
        must not change the declared register bits."""
        base = complete_binary_tree(2)

        def declared_bits(tree, start):
            ctx = Ctx(NULL_PORT, tree.degree(start))
            regs = Registers()
            gen = explo_bis_routine(ctx, regs)
            pos = start
            try:
                action = next(gen)
                while True:
                    if action == -1:
                        obs = (NULL_PORT, tree.degree(pos))
                    else:
                        pos, in_port = tree.move(pos, action % tree.degree(pos))
                        obs = (in_port, tree.degree(pos))
                    action = gen.send(obs)
            except StopIteration:
                pass
            return regs.bits_declared()

        small = declared_bits(base, 3)
        big = declared_bits(subdivide(base, 6), 3)
        assert small == big
