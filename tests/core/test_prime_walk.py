"""Unit + property tests for the Lemma 4.1 prime protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    blind_rendezvous_feasible,
    is_prime,
    next_prime,
    nth_prime,
    prime_line_agent,
)
from repro.sim import run_rendezvous
from repro.trees import edge_colored_line, line


class TestPrimes:
    def test_is_prime_small(self):
        primes = [x for x in range(50) if is_prime(x)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]

    def test_next_prime(self):
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(13) == 17
        assert next_prime(1) == 2

    def test_nth_prime(self):
        assert [nth_prime(i) for i in range(1, 8)] == [2, 3, 5, 7, 11, 13, 17]
        with pytest.raises(ValueError):
            nth_prime(0)

    @given(st.integers(2, 500))
    @settings(max_examples=60, deadline=None)
    def test_next_prime_is_prime_and_minimal(self, p):
        q = next_prime(p)
        assert is_prime(q) and q > p
        assert not any(is_prime(x) for x in range(p + 1, q))


class TestFeasibilityPredicate:
    def test_odd_always_feasible(self):
        assert blind_rendezvous_feasible(7, 1, 7)
        assert blind_rendezvous_feasible(5, 2, 4)

    def test_even_mirror_infeasible(self):
        assert not blind_rendezvous_feasible(6, 2, 5)
        assert not blind_rendezvous_feasible(8, 1, 8)
        assert blind_rendezvous_feasible(8, 1, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            blind_rendezvous_feasible(5, 3, 3)


class TestPrimeProtocolOnLines:
    def test_feasible_pairs_meet_exhaustive(self):
        """Lemma 4.1: on every path up to 10 nodes, every feasible pair
        meets (canonical and edge-colored labelings)."""
        for m in range(2, 11):
            for variant in (line(m), edge_colored_line(m)) if m >= 2 else (line(m),):
                for a in range(1, m + 1):
                    for b in range(a + 1, m + 1):
                        if not blind_rendezvous_feasible(m, a, b):
                            continue
                        out = run_rendezvous(
                            variant, prime_line_agent(), a - 1, b - 1,
                            max_rounds=100_000,
                        )
                        assert out.met, (m, a, b)

    def test_mirror_pairs_never_meet_on_mirror_labeling(self):
        """On the mirror-symmetric labeling, mirror pairs are symmetric and
        the protocol (correctly) fails forever — they keep crossing."""
        for m in (6, 8):
            t = edge_colored_line(m)
            from repro.trees import are_symmetric_for_labeling

            for a in range(1, m + 1):
                b = m + 1 - a
                if b <= a:
                    continue
                if not are_symmetric_for_labeling(t, a - 1, b - 1):
                    continue  # labeling not mirror-symmetric for this m
                out = run_rendezvous(
                    t, prime_line_agent(6), a - 1, b - 1, max_rounds=60_000
                )
                assert not out.met, (m, a, b)

    def test_prime_index_scales_slowly(self):
        """The highest prime needed grows ~log m: for m <= 41 the first few
        primes always suffice for endpoint starts."""
        for m in (5, 9, 17, 33, 41):
            out = run_rendezvous(
                line(m), prime_line_agent(6), 0, m - 2, max_rounds=500_000
            )
            assert out.met

    def test_memory_is_loglog(self):
        """Registers of the prime agent hold only the prime and its index."""
        agent = prime_line_agent(4)
        out = run_rendezvous(line(21), agent, 0, 12, max_rounds=500_000)
        assert out.met
        executed = out.agents[0]
        report = executed.registers.report()
        assert set(report) <= {"prime_p", "prime_k"}
        # p stays tiny: within the first few primes
        assert report["prime_p"][1] <= 13
