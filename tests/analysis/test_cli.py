"""Tests for the command-line interface."""

import pytest

from repro.cli import build_tree, main


class TestBuildTree:
    def test_specs(self):
        assert build_tree("line:9").n == 9
        assert build_tree("star:5").n == 6
        assert build_tree("binary:3").n == 15
        assert build_tree("binomial:4").n == 16
        assert build_tree("spider:2,3").n == 6
        assert build_tree("random:12").n == 12
        assert build_tree("subdivided:2").n == 7 + 6 * 2
        assert build_tree("colored:9").n == 9

    def test_random_seeded(self):
        assert build_tree("random:15", seed=4) == build_tree("random:15", seed=4)

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            build_tree("torus:9")


class TestCommands:
    def test_solve(self, capsys):
        rc = main(["solve", "--tree", "line:7", "-u", "0", "-v", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "met=True" in out

    def test_solve_infeasible(self, capsys):
        rc = main(["solve", "--tree", "line:6", "-u", "0", "-v", "5"])
        assert rc == 1
        assert "infeasible" in capsys.readouterr().out

    def test_baseline(self, capsys):
        rc = main(["baseline", "--tree", "star:4", "-u", "1", "-v", "3",
                   "--delay", "9"])
        assert rc == 0
        assert "met=True" in capsys.readouterr().out

    def test_delays(self, capsys):
        rc = main(["delays", "--tree", "colored:9", "--agent", "alternator",
                   "-u", "0", "-v", "5", "--max-delay", "3"])
        out = capsys.readouterr().out
        assert rc == 2  # even delays stay symmetric: some choices never meet
        assert "certified-never" in out and "met" in out

    def test_delays_unknown_agent(self):
        with pytest.raises(SystemExit):
            main(["delays", "--agent", "warp:3"])

    def test_atlas(self, capsys):
        rc = main(["atlas", "-n", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 4  # header + 3 trees

    def test_thm31(self, capsys):
        rc = main(["thm31", "--max-k", "2"])
        assert rc == 0
        assert "True" in capsys.readouterr().out

    def test_thm42(self, capsys):
        rc = main(["thm42", "--max-pause", "1"])
        assert rc == 0
        assert "True" in capsys.readouterr().out

    def test_thm43(self, capsys):
        rc = main(["thm43", "--states", "3", "-i", "4"])
        assert rc == 0
        assert "certified = True" in capsys.readouterr().out

    def test_solve_with_relabel(self, capsys):
        rc = main(["solve", "--tree", "binary:2", "-u", "3", "-v", "6",
                   "--relabel", "--seed", "5"])
        assert rc == 0


class TestNewCommands:
    def test_verify(self, capsys):
        rc = main(["verify", "-n", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "failures: 0" in out

    def test_gather(self, capsys):
        rc = main(["gather", "--tree", "spider:2,2,2", "--starts", "1,3,5",
                   "--delays", "0,5,11"])
        assert rc == 0
        assert "gathered=True" in capsys.readouterr().out

    def test_viz_ascii(self, capsys):
        rc = main(["viz", "--tree", "star:3", "--marks", "1=here"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "<here>" in out

    def test_viz_dot(self, capsys):
        rc = main(["viz", "--tree", "line:4", "--dot"])
        assert rc == 0
        assert "graph tree {" in capsys.readouterr().out
