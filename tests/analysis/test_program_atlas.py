"""Tests for the program memory atlas (lowering → minimization → bounds)."""

import pytest

from repro.agents import counting_program, counting_walker, lowered_for
from repro.agents.lowering import _LOWERING_CACHE
from repro.analysis.program_atlas import (
    DEFAULT_ATLAS_GRID,
    program_atlas_rows,
)
from repro.scenarios import Runner, get_scenario


SMALL_GRID = {
    "counting-program:2": ["line:9", "line:21"],
    "thm41": ["star:4"],
    "baseline": ["binary:2"],
}


@pytest.fixture(scope="module")
def rows():
    return [r.to_dict() for r in program_atlas_rows(SMALL_GRID)]


class TestAtlasRows:
    def test_one_row_per_cell(self, rows):
        assert [(r["program"], r["tree"]) for r in rows] == [
            ("counting-program:2", "line:9"),
            ("counting-program:2", "line:21"),
            ("thm41", "star:4"),
            ("baseline", "binary:2"),
        ]

    def test_minimized_never_exceeds_raw(self, rows):
        for row in rows:
            assert row["min_states"] <= row["raw_states"], row
            assert row["bits_min"] <= row["bits_raw"], row

    def test_thm41_shrinks_strictly(self, rows):
        (thm41,) = [r for r in rows if r["program"] == "thm41"]
        assert thm41["route"] == "B"
        assert thm41["min_states"] < thm41["raw_states"]

    def test_route_a_matches_the_handwritten_walker(self, rows):
        row = rows[0]
        assert row["route"] == "A"
        assert row["min_states"] == counting_walker(2).num_states
        # minimized machine is a genuine line automaton: the Thm 3.1
        # adversary was built against it and certified
        assert row["defeat_edges"] is not None

    def test_every_quotient_verified(self, rows):
        assert all(r["equiv"] for r in rows)

    def test_gap_pairs_bits_with_the_floor(self, rows):
        for row in rows:
            assert row["lb_bits"] >= 1
            assert row["gap"] == round(row["bits_min"] / row["lb_bits"], 2)

    def test_default_grid_covers_the_program_library(self):
        programs = {p.split(":")[0] for p in DEFAULT_ATLAS_GRID}
        assert programs == {
            "counting-program", "pausing-program", "thm41", "baseline", "prime",
        }


class TestAtlasCaching:
    def test_lowering_cached_across_trees(self):
        proto = counting_program(2)
        a = lowered_for(proto, [1, 2])
        b = lowered_for(proto, [2, 1])  # same alphabet, different order
        assert a is b
        assert proto in _LOWERING_CACHE

    def test_refusals_are_cached(self):
        from repro.errors import LoweringError
        from repro.scenarios.spec import build_agent

        proto = build_agent("thm41", 0)
        with pytest.raises(LoweringError):
            lowered_for(proto, [1, 2])
        cached = _LOWERING_CACHE[proto]
        (entry,) = cached.values()
        assert isinstance(entry, LoweringError)
        with pytest.raises(LoweringError):
            lowered_for(proto, [1, 2])


class TestAtlasScenario:
    def test_backend_parity_and_ok(self):
        reference = Runner(backend="reference").run(
            "atlas-programs", params={"programs": SMALL_GRID}
        )
        compiled = Runner(backend="compiled").run(
            "atlas-programs", params={"programs": SMALL_GRID}
        )
        assert reference.ok and compiled.ok
        assert reference.rows == compiled.rows

    def test_budget_trip_degrades_to_honest_row(self):
        result = Runner().run(
            "atlas-programs",
            params={
                "programs": {"prime": ["line:5"]},  # unbounded: never lassos
                "trace_budget": 2_000,
            },
        )
        (row,) = result.rows
        assert row["route"] == "budget"
        assert not result.ok

    def test_registry_entry_is_the_default_grid(self):
        spec = get_scenario("atlas-programs")
        assert {k: tuple(v) for k, v in spec.param("programs").items()} == (
            DEFAULT_ATLAS_GRID
        )
