"""Tests for the stage-timeline analyzer."""

from repro.analysis import format_timeline, stage_timeline
from repro.core import rendezvous_agent
from repro.sim import run_solo
from repro.trees import line, star, subdivide, complete_binary_tree


class TestStageTimeline:
    def test_symmetric_run_has_all_stages(self):
        run = run_solo(line(9), 0, rendezvous_agent(max_outer=2), 30_000)
        phases = stage_timeline(run)
        names = [p.name for p in phases]
        assert names[0] == "explo"
        assert "synchro" in names
        assert any(n.startswith("outer(") for n in names)

    def test_explo_duration_matches_theory(self):
        t = line(9)
        run = run_solo(t, 0, rendezvous_agent(max_outer=1), 30_000)
        phases = {p.name: p for p in stage_timeline(run)}
        # Stage 1 from a leaf: exactly 2(n-1) rounds
        assert phases["explo"].duration == 2 * (t.n - 1)

    def test_easy_case_timeline(self):
        run = run_solo(star(4), 1, rendezvous_agent(max_outer=1), 1000)
        names = [p.name for p in stage_timeline(run)]
        assert names == ["explo", "walk_and_wait"]

    def test_outer_iterations_ordered(self):
        run = run_solo(line(7), 0, rendezvous_agent(max_outer=3), 200_000)
        outers = [p for p in stage_timeline(run) if p.name.startswith("outer(")]
        assert len(outers) >= 2
        starts = [p.start_round for p in outers]
        assert starts == sorted(starts)

    def test_format_timeline(self):
        run = run_solo(
            subdivide(complete_binary_tree(2), 1), 3,
            rendezvous_agent(max_outer=1), 60_000,
        )
        text = format_timeline(stage_timeline(run))
        assert "phase" in text and "explo" in text

    def test_unfinished_run_open_ended(self):
        run = run_solo(line(15), 0, rendezvous_agent(max_outer=9), 500)
        phases = stage_timeline(run)
        assert phases[-1].end_round is None
        assert phases[-1].duration is None
