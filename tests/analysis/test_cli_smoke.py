"""CLI coverage smoke test (satellite of the unified-scenario PR).

Invokes EVERY registered subcommand on a tiny instance and asserts exit
code 0.  The argv table below is checked against the parser's actual
subcommand list, so adding a CLI command without a smoke entry fails
loudly here.
"""

import argparse

import pytest

from repro.cli import _parser, main

# tiny-instance argv per subcommand; every entry must exit 0
SMOKE_ARGV = {
    "solve": ["--tree", "line:7", "-u", "0", "-v", "4"],
    "baseline": ["--tree", "star:4", "-u", "1", "-v", "3", "--delay", "3"],
    # random:2 @ seed 4 on line:3 meets under every delay choice (rc 0)
    "delays": ["--tree", "line:3", "--agent", "random:2", "--seed", "4",
               "-u", "0", "-v", "1", "--max-delay", "3"],
    "atlas": ["-n", "4"],
    "atlas-programs": [],
    "gap": ["--subdivisions", "0,1"],
    "thm31": ["--max-k", "1"],
    "thm42": ["--max-pause", "1"],
    "thm43": ["--states", "3", "-i", "4"],
    "verify": ["-n", "4"],
    "gather": ["--tree", "spider:2,2,2", "--starts", "1,3,5"],
    "gather-sweep": ["--tree", "line:9", "--agent", "counting:2",
                     "--starts", "0,1,3", "--delays", "0,0,0;1,0,2"],
    "lower": ["baseline", "--tree", "star:4"],
    # the invariant gate itself: src/ must be clean (exit 0) at all times
    "lint-invariants": ["src"],
    "viz": ["--tree", "star:3"],
    "report": [],
    "experiments": ["--quick"],
    "scenarios": ["run", "delays-line"],
    # offline aggregation over a committed sample stream (pytest runs
    # from the repo root, same as the Makefile gates)
    "telemetry": ["report", "tests/telemetry/sample_events.jsonl"],
}


def registered_subcommands() -> set[str]:
    parser = _parser()
    action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return set(action.choices)


def test_smoke_table_covers_every_subcommand():
    assert registered_subcommands() == set(SMOKE_ARGV)


@pytest.mark.parametrize("command", sorted(SMOKE_ARGV))
def test_subcommand_exits_zero(command, capsys):
    rc = main([command, *SMOKE_ARGV[command]])
    out = capsys.readouterr().out
    assert rc == 0, f"{command} exited {rc}:\n{out}"
    assert out.strip(), f"{command} printed nothing"


@pytest.mark.parametrize("name", ["gathering-line-k4", "gathering-spider-k3"])
def test_gathering_scenarios_run_with_backend_parity(name, capsys):
    """`repro scenarios run <gathering>` prints identical outcome tables
    under --backend reference and --backend compiled."""
    tables = {}
    for backend in ("reference", "compiled"):
        rc = main(["scenarios", "run", name, "--backend", backend])
        assert rc == 0
        tables[backend] = capsys.readouterr().out.split("\nscenario=")[0]
    assert tables["reference"] == tables["compiled"]


def test_scenarios_list_names_everything(capsys):
    from repro.scenarios import scenario_names

    assert main(["scenarios", "list"]) == 0
    out = capsys.readouterr().out
    for name in scenario_names():
        assert name in out


def test_scenarios_list_shows_backend_eligibility(capsys):
    """The eligibility column distinguishes native automata, lowerable
    register programs, and backend-agnostic analysis kinds."""
    assert main(["scenarios", "list"]) == 0
    lines = {ln.split()[0]: ln for ln in capsys.readouterr().out.splitlines()}
    assert "native" in lines["delays-line"]
    assert "lowerable" in lines["verify-small"]
    assert "lowerable" in lines["success-families"]
    assert "agnostic" in lines["atlas"]
    # specs whose agent string needs executor-supplied parameters fall
    # back to the kind's annotation, never to "?" (thm31-sweep's agent
    # is the bare family name "counting")
    assert "native" in lines["thm31-sweep"]


def test_lower_rejects_malformed_agent_spec_cleanly(capsys):
    # "counting" without its :K parameter: one clean error line, no
    # ValueError traceback (the command promises degrade, never a crash)
    with pytest.raises(SystemExit) as exc:
        main(["lower", "counting", "--tree", "line:5"])
    assert "bad agent spec" in str(exc.value)


def test_lower_reports_states_and_bits(capsys):
    """`repro lower` prints lowered state counts and memory bits for
    route B, and the honest route-A refusal for start-degree-dependent
    programs (the baseline reconstructs from its start)."""
    assert main(["lower", "baseline", "--tree", "star:4"]) == 0
    out = capsys.readouterr().out
    assert "lowerable" in out
    assert "route A" in out and "route B" in out
    assert "states" in out and "bits" in out
    assert "lowered 5/5 starts" in out

    # a native automaton just reports its own size
    assert main(["lower", "counting:2", "--tree", "line:7"]) == 0
    out = capsys.readouterr().out
    assert "native" in out and "K=8" in out
