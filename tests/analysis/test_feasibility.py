"""Tests for feasibility classification."""

from repro.analysis import classify_all_pairs, classify_pair, summarize_tree
from repro.analysis.feasibility import (
    ASYMMETRIC,
    PERFECTLY_SYMMETRIZABLE,
    SYMMETRIC_FEASIBLE,
)
from repro.trees import all_trees, complete_binary_tree, line, star


class TestClassifyPair:
    def test_odd_line_endpoints(self):
        pc = classify_pair(line(7), 0, 6)
        assert pc.kind == SYMMETRIC_FEASIBLE
        assert pc.feasible

    def test_even_line_endpoints(self):
        pc = classify_pair(line(8), 0, 7)
        assert pc.kind == PERFECTLY_SYMMETRIZABLE
        assert not pc.feasible

    def test_asymmetric(self):
        pc = classify_pair(line(7), 0, 3)
        assert pc.kind == ASYMMETRIC
        assert pc.feasible

    def test_binary_tree_leaves(self):
        pc = classify_pair(complete_binary_tree(2), 3, 6)
        assert pc.kind == SYMMETRIC_FEASIBLE


class TestSummaries:
    def test_star_summary(self):
        s = summarize_tree(star(4))
        assert s.center_kind == "node"
        assert not s.symmetrizable_tree
        assert s.pairs_perfectly_symmetrizable == 0
        assert s.pairs_total == 10
        assert s.pairs_feasible == 10
        # leaves are mutually topologically symmetric: C(4,2) = 6 pairs
        assert s.pairs_symmetric_feasible == 6

    def test_even_line_summary(self):
        s = summarize_tree(line(6))
        assert s.center_kind == "edge"
        assert s.symmetrizable_tree
        # mirror pairs: (0,5), (1,4), (2,3)
        assert s.pairs_perfectly_symmetrizable == 3

    def test_counts_add_up_exhaustive(self):
        for n in range(2, 8):
            for t in all_trees(n):
                s = summarize_tree(t)
                assert (
                    s.pairs_perfectly_symmetrizable
                    + s.pairs_symmetric_feasible
                    + s.pairs_asymmetric
                    == s.pairs_total
                    == n * (n - 1) // 2
                )
                if s.center_kind == "node":
                    assert s.pairs_perfectly_symmetrizable == 0
                    assert not s.symmetrizable_tree

    def test_classify_all_pairs_iterates_all(self):
        assert len(list(classify_all_pairs(line(5)))) == 10
