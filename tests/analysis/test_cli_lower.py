"""Coverage for the ``repro lower`` subcommand (shipped in PR 4 without a
smoke test) and the ``repro atlas-programs`` table.

``lower`` has four meaningfully different paths: a native automaton
(nothing to lower), route-A success, the honest route-A refusals
(LoweringError and budget trips — the command prints the reason and goes
on to route B), and route-B budget trips (per-start "no lasso" lines).
"""

import pytest

from repro.cli import main


class TestLowerRouteA:
    def test_route_a_success_prints_state_counts(self, capsys):
        rc = main(["lower", "counting-program:2", "--tree", "line:9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lowerable" in out
        assert "route A (explicit automaton): K=41 states" in out
        # route B also ran: every start lassos
        assert "lowered 9/9 starts" in out

    def test_route_a_budget_trip_degrades(self, capsys):
        rc = main([
            "lower", "counting-program:2", "--tree", "line:9",
            "--state-budget", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0  # route B still lowers every start
        assert "route A (explicit automaton): not expressible" in out
        assert "state_budget=3" in out

    def test_lowering_error_path_for_explore_first_programs(self, capsys):
        # thm41's machine state genuinely depends on the start degree:
        # route A must refuse loudly and route B must carry the command.
        rc = main(["lower", "thm41", "--tree", "star:4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "not expressible" in out
        assert "start-degree" in out
        assert "lowered 5/5 starts" in out

    def test_native_automaton_needs_no_lowering(self, capsys):
        rc = main(["lower", "counting:2", "--tree", "line:9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "already an explicit automaton" in out
        assert "K=8" in out


class TestLowerRouteB:
    def test_trace_budget_trip_prints_no_lasso(self, capsys):
        # the unbounded prime protocol never lassos: every start degrades
        rc = main(["lower", "prime", "--tree", "line:5",
                   "--trace-budget", "2000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("no lasso within budget") == 5
        assert "lowered 0/5 starts" in out

    def test_bounded_prime_lassos(self, capsys):
        rc = main(["lower", "prime:2", "--tree", "line:5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "lowered 5/5 starts" in out
        assert "finishes after" in out


class TestLowerErrors:
    def test_bad_agent_spec_is_one_clean_line(self):
        with pytest.raises(SystemExit, match="bad agent spec"):
            main(["lower", "counting", "--tree", "line:9"])

    def test_unknown_agent_spec(self):
        with pytest.raises(SystemExit, match="bad agent spec"):
            main(["lower", "warp:3", "--tree", "line:9"])


class TestAtlasProgramsCommand:
    def test_table_and_summary(self, capsys):
        rc = main(["atlas-programs"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "min_states" in out
        assert "routes A/B" in out
        # the Theorem 4.1 agent's row shrinks strictly
        line = next(li for li in out.splitlines() if "thm41" in li and "star:4" in li)
        assert " B " in line

    def test_backend_parity(self, capsys):
        tables = {}
        for backend in ("reference", "compiled"):
            rc = main(["atlas-programs", "--backend", backend])
            assert rc == 0
            tables[backend] = capsys.readouterr().out
        assert tables["reference"] == tables["compiled"]
