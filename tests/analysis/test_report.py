"""Tests for the one-shot report generator and small-tree edge cases."""

from repro.analysis import ReportScale, generate_report
from repro.cli import main


class TestReport:
    def test_quick_report_structure(self):
        text = generate_report(
            ReportScale((0, 1), (4, 8), 40, (5, 9), (1, 2))
        )
        for heading in ("E1", "E3a", "E3b", "E4", "E7"):
            assert heading in text
        assert "exponential in bits" in text
        assert "log ℓ shape" in text

    def test_scales(self):
        q = ReportScale.quick()
        f = ReportScale.full()
        assert len(f.subdivisions) > len(q.subdivisions)
        assert max(f.thm31_ks) > max(q.thm31_ks)

    def test_cli_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = main(["report", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "# Reproduction report" in out.read_text()


class TestTinyTreeEdgeCases:
    """The whole public surface on 1- and 2-node trees."""

    def test_one_node_tree(self):
        from repro.trees import Tree, ascii_tree, contract, find_center, tree_to_json, tree_from_json
        from repro.sim import run_rendezvous
        from repro.core import rendezvous_agent

        t = Tree([[]], validate=False)
        assert find_center(t).is_node
        assert contract(t).nu == 1
        assert "(0)" in ascii_tree(t)
        assert tree_from_json(tree_to_json(t)).n == 1
        out = run_rendezvous(t, rendezvous_agent(max_outer=1), 0, 0)
        assert out.met and out.meeting_round == 0

    def test_two_node_tree(self):
        from repro.core import solve
        from repro.errors import InfeasibleRendezvousError
        from repro.trees import line, perfectly_symmetrizable

        t = line(2)
        assert perfectly_symmetrizable(t, 0, 1)
        import pytest

        with pytest.raises(InfeasibleRendezvousError):
            solve(t, 0, 1)
        r = solve(t, 0, 1, check_feasibility=False, max_rounds=5000)
        assert not r.met  # provably impossible (the two ports are both 0)

    def test_two_node_gathering_regime(self):
        from repro.core import classify_gathering
        from repro.trees import line

        regime = classify_gathering(line(2))
        assert regime.kind == "symmetric"
