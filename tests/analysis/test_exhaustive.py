"""Tests for the exhaustive verifiers (Thm 4.1 / Fact 1.1)."""

from repro.analysis import verify_fact_11_impossibility, verify_theorem_41


class TestVerifyTheorem41:
    def test_exhaustive_to_six(self):
        report = verify_theorem_41(max_n=6, random_labelings=1)
        assert report.ok, report.failures[:3]
        assert report.trees_checked == 1 + 1 + 2 + 3 + 6
        assert report.instances > 200

    def test_report_shape(self):
        report = verify_theorem_41(max_n=3, random_labelings=0)
        assert report.ok
        # n=2: the 2-node tree's only pair is perfectly symmetrizable
        # n=3: the path's 3 pairs are all feasible
        assert report.instances == 3


class TestVerifyFact11:
    def test_impossibility_to_six(self):
        report = verify_fact_11_impossibility(max_n=6, budget_rounds=40_000)
        assert report.ok, report.failures[:3]
        # only even-ish symmetric trees contribute pairs
        assert report.instances >= 4

    def test_two_node_tree(self):
        report = verify_fact_11_impossibility(max_n=2, budget_rounds=2_000)
        assert report.ok
        assert report.instances == 1  # the single mirror pair of the edge
