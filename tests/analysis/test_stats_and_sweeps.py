"""Tests for series statistics and the experiment sweep drivers."""

import math

import pytest

from repro.analysis import (
    Series,
    fit_loglog_slope,
    gap_table,
    geometric_mean,
    growth_ratios,
    memory_vs_leaves,
    memory_vs_n_fixed_leaves,
    prime_rounds_vs_path_length,
    success_sweep,
    thm31_size_vs_bits,
)
from repro.trees import all_trees


class TestStats:
    def test_series_validation(self):
        with pytest.raises(ValueError):
            Series("bad", (1.0, 2.0), (1.0,))

    def test_series_table(self):
        s = Series("s", (1.0, 2.0), (3.0, 4.0))
        assert "3" in s.table()
        assert len(s) == 2

    def test_growth_ratios(self):
        assert growth_ratios([1, 2, 4, 8]) == [2.0, 2.0, 2.0]
        assert growth_ratios([0, 5])[0] == math.inf

    def test_fit_loglog_slope_power_laws(self):
        xs = [2.0, 4.0, 8.0, 16.0]
        assert abs(fit_loglog_slope(xs, [x**2 for x in xs]) - 2.0) < 1e-9
        assert abs(fit_loglog_slope(xs, [5.0] * 4)) < 1e-9

    def test_fit_loglog_errors(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_loglog_slope([1.0, 1.0], [1.0, 2.0])

    def test_geometric_mean(self):
        assert abs(geometric_mean([1, 100]) - 10.0) < 1e-9
        with pytest.raises(ValueError):
            geometric_mean([0, 0])


class TestSweepShapes:
    """The reproduction targets: the *shape* of each curve."""

    def test_memory_flat_in_n(self):
        series, points = memory_vs_n_fixed_leaves(subdivisions=(0, 1, 3, 7))
        assert all(p.met for p in points)
        assert max(series.ys) - min(series.ys) <= 4  # flat up to loglog drift

    def test_memory_logarithmic_in_leaves(self):
        series, points = memory_vs_leaves(leaf_counts=(4, 8, 16), total_nodes=80)
        assert all(p.met for p in points)
        diffs = [b - a for a, b in zip(series.ys, series.ys[1:])]
        # roughly constant increment per doubling of ℓ => log ℓ shape
        assert all(d > 0 for d in diffs)
        assert max(diffs) - min(diffs) <= 4

    def test_thm31_exponential_in_bits(self):
        series = thm31_size_vs_bits(ks=(1, 2, 3))
        ratios = growth_ratios(series.ys)
        assert all(r > 1.3 for r in ratios)  # exponential-ish growth

    def test_prime_rounds_polynomial(self):
        series = prime_rounds_vs_path_length(lengths=(5, 9, 17))
        slope = fit_loglog_slope(series.xs, series.ys)
        assert 0.5 < slope < 3.5  # polynomial in m, not exponential

    def test_success_sweep_all_meet(self):
        trees = all_trees(6)[:4]
        points = success_sweep(trees, pairs_per_tree=2)
        assert points
        assert all(p.met for p in points)


class TestGapTable:
    def test_gap_shapes(self):
        rows = gap_table(subdivisions=(0, 1, 3, 7))
        assert all(r.delay0_met and r.arbitrary_met for r in rows)
        delay0 = [r.delay0_bits for r in rows]
        arb = [r.arbitrary_bits for r in rows]
        # delay-0 memory flat in n; arbitrary-delay memory strictly growing
        assert max(delay0) - min(delay0) <= 4
        assert arb == sorted(arb) and arb[-1] > arb[0]
        # and the baseline tracks ~2 log n
        for r in rows:
            assert abs(r.arbitrary_bits - 2 * r.reference_log) <= 3
