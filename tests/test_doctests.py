"""Run the executable examples embedded in module docstrings.

Keeps the documentation honest: every ``>>>`` block in the public modules
must actually work.
"""

import doctest

import pytest

import repro
import repro.sim.instrument
import repro.core.rendezvous

MODULES = [
    repro,
    repro.sim.instrument,
    repro.core.rendezvous,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tried = doctest.testmod(
        module, verbose=False, optionflags=doctest.ELLIPSIS
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert tried > 0, f"{module.__name__} has no doctests (update MODULES)"
    assert failures == 0
