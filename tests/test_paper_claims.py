"""Executable index of the paper's numbered claims.

Each test reproduces one internal claim of Fraigniaud-Pelc at small scale —
not the headline theorems (those live in tests/core, tests/lowerbounds and
the benchmarks) but the load-bearing intermediate claims of §4.1's proof.
Together with E1-E8 this file is the paper's table of contents in pytest
form.
"""

import random

from repro.agents import NULL_PORT, STAY, Ctx, Registers
from repro.core import (
    CENTRAL_EDGE_SYMMETRIC,
    explo_bis_routine,
    explo_routine,
    synchro_routine,
)
from repro.core.rendezvous_path import RendezvousPathNavigator
from repro.sim import run_solo
from repro.trees import (
    canonical_form,
    contract,
    line,
    random_relabel,
    random_tree,
    subdivide,
)


def drive(tree, start, factory):
    """Run a routine; return (value, rounds, final position, node sequence)."""
    ctx = Ctx(NULL_PORT, tree.degree(start))
    regs = Registers()
    gen = factory(ctx, regs)
    pos, rounds, seq = start, 0, [start]
    try:
        action = next(gen)
        while True:
            if action == STAY:
                obs = (NULL_PORT, tree.degree(pos))
            else:
                pos, in_port = tree.move(pos, action % tree.degree(pos))
                obs = (in_port, tree.degree(pos))
            seq.append(pos)
            rounds += 1
            action = gen.send(obs)
    except StopIteration as stop:
        return stop.value, rounds, pos, seq


class TestClaim41:
    """Claim 4.1: once at v̂, Explo-bis on T behaves like Explo on T'."""

    def test_explo_bis_results_match_explo_on_contraction(self):
        rng = random.Random(7)
        for _ in range(15):
            t = random_relabel(subdivide(random_tree(8, rng), 2), rng)
            c = contract(t)
            tp = c.contracted
            if tp.n < 2:
                continue
            for a in range(tp.n):
                v = c.to_original[a]
                res_t, _, _, _ = drive(t, v, explo_bis_routine)
                res_tp, _, _, _ = drive(tp, a, explo_routine)
                assert res_t.kind == res_tp.kind
                assert res_t.nu == res_tp.nu
                assert res_t.steps_to_target == res_tp.steps_to_target
                assert res_t.central_port == res_tp.central_port
                assert canonical_form(res_t.contraction.contracted) == canonical_form(
                    res_tp.tree
                )


class TestClaim42:
    """Claim 4.2: after Synchro the delay is exactly β = |L - L'|."""

    def test_delay_after_synchro(self):
        rng = random.Random(11)
        t = random_relabel(line(11), rng)

        def stage1_plus_synchro(ctx, regs):
            res = yield from explo_bis_routine(ctx, regs)
            yield from synchro_routine(ctx, regs, res)
            return res

        # L(v): rounds of the pre-Explo leaf walk = 0 for leaves, else the
        # basic-walk distance to the first leaf hit.
        durations = {}
        for v in range(t.n):
            _, rounds, _, _ = drive(t, v, stage1_plus_synchro)
            durations[v] = rounds
        leaf_duration = durations[0]
        for v in range(t.n):
            res, explo_rounds, end, _ = drive(t, v, explo_bis_routine)
            walk_to_leaf = explo_rounds - 2 * (t.n - 1)  # = L(v)
            # β between agent v and an agent starting at a leaf:
            assert durations[v] - leaf_duration == walk_to_leaf


class TestClaim43:
    """Claim 4.3: the instruction sequence traverses one common path P,
    from opposite extremities for the two agents."""

    def test_opposite_traversals_reverse_each_other(self):
        from repro.trees import edge_colored_line

        t = edge_colored_line(9)  # mirror-symmetric labeling
        c = contract(t)

        def traverse_from(start):
            def factory(ctx, regs):
                nav = RendezvousPathNavigator(c.nu, t.num_leaves, 0)
                yield from nav.traverse(ctx, regs, 1)

            _, _, end, seq = drive(t, start, factory)
            return end, seq

        end_a, seq_a = traverse_from(0)
        end_b, seq_b = traverse_from(8)
        assert end_a == 8 and end_b == 0
        # On the mirror labeling, B's walk is the mirror of A's; composed
        # with the traversal claim, B's node sequence must be A's reversed
        # (as walks of P, B starts where A ends).
        mirror = {i: 8 - i for i in range(9)}
        assert seq_b == [mirror[x] for x in seq_a]
        assert len(seq_a) == len(seq_b)


class TestClaim44AndLemma42:
    """Claim 4.4: the inter-agent delay at the outer loop's start is the
    same at every iteration; Lemma 4.2: prime-start delays are bounded by
    |t - t'| + 16nℓ."""

    def _prime_entry_rounds(self, tree, start, max_outer):
        run = run_solo(
            tree, start,
            __import__("repro.core", fromlist=["rendezvous_agent"]).rendezvous_agent(
                max_outer=max_outer
            ),
            400_000,
        )
        # prime_k flips to 1 at the start of each prime(i) execution
        return [r for r, v in run.value_series("prime_k") if v == 1], run

    def test_constant_outer_loop_delay(self):
        rng = random.Random(5)
        t = random_relabel(line(9), rng)
        ra, run_a = self._prime_entry_rounds(t, 0, 2)
        rb, run_b = self._prime_entry_rounds(t, 8, 2)
        outer_a = [r for r, _ in run_a.value_series("outer_i")]
        outer_b = [r for r, _ in run_b.value_series("outer_i")]
        count = min(len(outer_a), len(outer_b))
        deltas = {outer_b[k] - outer_a[k] for k in range(count)}
        assert len(deltas) == 1  # Claim 4.4: the delay never drifts

    def test_prime_start_delay_bounded(self):
        rng = random.Random(5)
        t = random_relabel(line(9), rng)
        ra, _ = self._prime_entry_rounds(t, 0, 1)
        rb, _ = self._prime_entry_rounds(t, 8, 1)
        n, ell = t.n, t.num_leaves
        bound = 4 * n + 16 * n * ell  # |t - t'| <= 4n, plus the Lemma 4.2 term
        for a, b in zip(ra, rb):
            assert abs(a - b) <= bound


class TestLemma44Parity:
    """Lemma 4.4 (Parity Lemma) in its exact statement."""

    def test_parity_of_distance(self):
        from repro.agents import pausing_walker
        from repro.sim import run_rendezvous
        from repro.trees import edge_colored_line

        t = edge_colored_line(12)
        out = run_rendezvous(
            t, pausing_walker(2), 2, 7, max_rounds=120, record_trace=True
        )
        trace = out.trace
        pos = trace.positions()
        q1 = q2 = 0
        initial_parity = (abs(pos[0][0] - pos[0][1])) % 2
        for k, rec in enumerate(trace.records, start=1):
            q1 += 0 if rec.moved1 else 1
            q2 += 0 if rec.moved2 else 1
            if (q1 - q2) % 2 == 0:
                assert abs(pos[k][0] - pos[k][1]) % 2 == initial_parity
            else:
                assert abs(pos[k][0] - pos[k][1]) % 2 != initial_parity


class TestFact21Footnote:
    """The 'why the farthest extremity' footnote: in the symmetric case the
    target is always across the central edge from v̂."""

    def test_farthest_extremity_is_across(self):
        rng = random.Random(13)
        for m in (6, 8, 10):
            t = random_relabel(line(m), rng)
            res, _, end, _ = drive(t, 0, explo_bis_routine)
            if res.kind != CENTRAL_EDGE_SYMMETRIC:
                continue
            # from the leaf 0 of a line, the farthest extremity of the
            # central path is the OTHER endpoint: 1 T'-step away
            assert res.steps_to_target == 1


class TestMirrorConjugacy:
    """The symmetry engine behind every impossibility argument: on a
    mirror-symmetric labeled tree, two identical agents started at mirror
    positions evolve as exact mirror images, round by round, forever."""

    def test_two_sided_tree_mirror_runs(self):
        from repro.core import rendezvous_agent
        from repro.trees import port_preserving_automorphism
        from repro.trees.sidetrees import all_side_trees, root_edge_color, two_sided_tree

        side = all_side_trees(4, root_port_up=root_edge_color(4))[5]
        ts = two_sided_tree(side, side, 4)
        f = port_preserving_automorphism(ts.tree)
        assert f is not None and f[ts.u] == ts.v

        horizon = 4000
        run_u = run_solo(ts.tree, ts.u, rendezvous_agent(max_outer=1), horizon)
        run_v = run_solo(ts.tree, ts.v, rendezvous_agent(max_outer=1), horizon)
        assert len(run_u.positions) == len(run_v.positions)
        for pu, pv in zip(run_u.positions, run_v.positions):
            assert f[pu] == pv

    def test_mirror_line_runs(self):
        from repro.core import rendezvous_agent
        from repro.trees import edge_colored_line, port_preserving_automorphism

        t = edge_colored_line(10)
        f = port_preserving_automorphism(t)
        assert f is not None
        run_a = run_solo(t, 2, rendezvous_agent(max_outer=1), 3000)
        run_b = run_solo(t, f[2], rendezvous_agent(max_outer=1), 3000)
        for pa, pb in zip(run_a.positions, run_b.positions):
            assert f[pa] == pb
