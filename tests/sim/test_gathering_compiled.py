"""Parity: the compiled gathering loop replays the reference loop exactly.

``run_gathering`` dispatches finite-state prototypes to flat transition
tables (satellite of the unified-scenario PR); the reference loop stays
the oracle and every outcome field must agree.
"""

import random

import pytest

from repro.agents import (
    Automaton,
    STAY,
    alternator,
    counting_walker,
    pausing_walker,
    random_tree_automaton,
)
from repro.sim import run_gathering, run_gathering_reference
from repro.sim.multi import _run_gathering_compiled  # noqa: F401 (dispatch target)
from repro.trees import line, random_tree, spider, star


def assert_parity(tree, agent, starts, delays=None, max_rounds=4000):
    fast = run_gathering(
        tree, agent.clone(), starts, delays=delays, max_rounds=max_rounds
    )
    ref = run_gathering_reference(
        tree, agent.clone(), starts, delays=delays, max_rounds=max_rounds
    )
    assert fast == ref


class TestGatheringParity:
    def test_line_walkers(self):
        for agent in (alternator(), counting_walker(2), pausing_walker(1)):
            assert_parity(line(9), agent, [0, 4, 8])

    def test_delays(self):
        assert_parity(line(7), counting_walker(1), [0, 3, 6], delays=[0, 2, 5])
        assert_parity(line(7), counting_walker(1), [1, 5], delays=[7, 0])

    def test_trivial_same_start(self):
        out = run_gathering(line(5), counting_walker(1), [2, 2, 2])
        assert out == run_gathering_reference(line(5), counting_walker(1), [2, 2, 2])
        assert out.gathered and out.gathering_round == 0

    def test_tree_automata_on_branching_trees(self):
        rng = random.Random(3)
        for trial in range(6):
            agent = random_tree_automaton(3, rng=rng)
            tree = random_tree(8, rng)
            starts = [0, tree.n // 2, tree.n - 1]
            delays = [rng.randrange(4) for _ in starts]
            assert_parity(tree, agent, starts, delays=delays, max_rounds=800)

    def test_spider_and_star(self):
        rng = random.Random(5)
        agent = random_tree_automaton(4, rng=rng)
        assert_parity(spider([2, 2, 2]), agent, [1, 3, 5], delays=[0, 1, 2])
        waiting = Automaton(1, {}, [STAY])
        assert_parity(star(3), waiting, [1, 2], max_rounds=50)

    def test_compiled_path_is_taken(self):
        # sanity: an Automaton prototype really goes through the tables
        from repro.sim import supports_compilation

        assert supports_compilation(counting_walker(1))

    def test_largest_cluster_tracked_identically(self):
        out_fast = run_gathering(line(6), Automaton(1, {}, [0]), [2, 4, 5],
                                 max_rounds=60)
        out_ref = run_gathering_reference(line(6), Automaton(1, {}, [0]),
                                          [2, 4, 5], max_rounds=60)
        assert out_fast.largest_cluster == out_ref.largest_cluster >= 2


class TestValidationStillApplies:
    def test_bad_starts(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run_gathering(line(4), counting_walker(1), [0, 99])
        with pytest.raises(SimulationError):
            run_gathering(line(4), counting_walker(1), [0])
        with pytest.raises(SimulationError):
            run_gathering(line(4), counting_walker(1), [0, 2], delays=[1])
