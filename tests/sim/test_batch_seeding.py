"""Deterministic-seeding audit (satellite): one scenario-level seed
threads through batch workers so multiprocess sweeps are reproducible."""

import random

from repro.agents.observations import AgentBase
from repro.sim import BatchJob, adversarial_search, derive_seed
from repro.sim.batch import _run_job
from repro.trees import edge_colored_line, line


class CoinFlipWalker(AgentBase):
    """Consults the *global* random module each step — the worst case the
    seeding contract must tame."""

    def __init__(self):
        self.state = 0

    def clone(self):
        return CoinFlipWalker()

    def start(self, degree: int) -> int:
        return 0

    def step(self, in_port: int, degree: int) -> int:
        return random.randrange(degree)


def outcome_key(out):
    return (out.met, out.meeting_round, out.rounds_executed)


class TestDeriveSeed:
    def test_stable_and_distinct(self):
        assert derive_seed(7, 1) == derive_seed(7, 1)
        assert derive_seed(7, 1) != derive_seed(7, 2)
        assert derive_seed(7, 1) != derive_seed(8, 1)
        assert derive_seed(0, "relabel", 3) == derive_seed(0, "relabel", 3)


class TestJobSeeding:
    def test_seeded_job_ignores_ambient_rng_state(self):
        job = BatchJob(line(6), CoinFlipWalker(), 0, 5,
                       max_rounds=500, seed=derive_seed(42, 0))
        random.seed(111)
        first = _run_job(job)
        random.seed(999)  # scramble: the job seed must win
        second = _run_job(job)
        assert outcome_key(first) == outcome_key(second)

    def test_unseeded_job_keeps_legacy_behavior(self):
        job = BatchJob(line(6), CoinFlipWalker(), 0, 5, max_rounds=500)
        random.seed(123)
        first = _run_job(job)
        random.seed(123)
        second = _run_job(job)
        assert outcome_key(first) == outcome_key(second)


class TestCallerRngIsolation:
    def test_adversarial_search_restores_global_state(self):
        random.seed(777)
        expected = random.Random(777).random()
        adversarial_search(edge_colored_line(6), CoinFlipWalker(),
                           delays=(0,), max_rounds=500, seed=1)
        assert random.random() == expected

    def test_run_batch_serial_restores_global_state(self):
        from repro.sim import run_batch

        jobs = [BatchJob(line(5), CoinFlipWalker(), 0, 4, max_rounds=200,
                         seed=derive_seed(3, i)) for i in range(3)]
        random.seed(42)
        expected = random.Random(42).random()
        run_batch(jobs, processes=1)
        assert random.random() == expected


class TestAdversarialSearchSeed:
    def test_serial_runs_reproduce_with_seed(self):
        tree = edge_colored_line(6)
        kwargs = dict(delays=(0, 1), max_rounds=2000, seed=5)
        a = adversarial_search(tree, CoinFlipWalker(), **kwargs)
        random.seed(31337)  # ambient state must not matter
        b = adversarial_search(tree, CoinFlipWalker(), **kwargs)
        assert a.instances_run == b.instances_run
        assert a.successes == b.successes
        assert a.max_meeting_round == b.max_meeting_round

    def test_parallel_matches_serial_with_seed(self):
        # CoinFlipWalker is defined in a test module the pool workers may
        # not import; a picklable automaton exercises the pool path, and
        # the per-job seeds ride along in the job tuples either way.
        from repro.agents import counting_walker

        tree = edge_colored_line(6)
        kwargs = dict(delays=(0, 2), max_rounds=4000, certify=True, seed=9)
        serial = adversarial_search(tree, counting_walker(1), **kwargs)
        parallel = adversarial_search(
            tree, counting_walker(1), processes=2, **kwargs
        )
        assert serial.instances_run == parallel.instances_run
        assert serial.successes == parallel.successes
        assert len(serial.failures) == len(parallel.failures)
