"""Tests for the multiprocessing fan-out (repro.sim.batch)."""

import pickle

from repro.agents import STAY, Automaton, LineAutomaton
from repro.sim import (
    BatchJob,
    GatheringJob,
    adversarial_search,
    run_batch,
    run_gathering_batch,
    run_gathering_reference,
)
from repro.trees import edge_colored_line, line, spider


def walker():
    return Automaton(1, {}, [0])


def jobs_fixture():
    t = line(6)
    return [
        BatchJob(t, walker(), u, v, delay=d, max_rounds=5000, certify=True)
        for (u, v, d) in [(0, 5, 0), (1, 4, 2), (2, 5, 1), (0, 3, 0)]
    ]


def as_verdicts(outcomes):
    return [(o.met, o.meeting_round, o.certified_never) for o in outcomes]


def test_serial_and_parallel_agree():
    serial = run_batch(jobs_fixture(), processes=1)
    parallel = run_batch(jobs_fixture(), processes=2)
    assert as_verdicts(serial) == as_verdicts(parallel)


def test_empty_batch():
    assert run_batch([]) == []


def test_unpicklable_prototype_falls_back_to_serial():
    # A transition *closure* cannot be pickled; the batch must silently run
    # serially and still return correct results.
    agent = Automaton(1, lambda s, ip, d: 0, [STAY])
    jobs = [BatchJob(line(5), agent, 1, 3, max_rounds=50, certify=True)]
    (out,) = run_batch(jobs, processes=4)
    assert out.certified_never


def test_heterogeneous_batch_with_unpicklable_later_job():
    # Regression: the picklability probe used to look at jobs[0] only, so
    # a batch whose *later* job held a closure agent crashed inside
    # pool.map (pickling a closure raises AttributeError/TypeError, which
    # the old `except (PicklingError, OSError)` did not catch either).
    closure_agent = Automaton(1, lambda s, ip, d: 0, [STAY])
    jobs = [
        BatchJob(line(5), walker(), 0, 4, max_rounds=50, certify=True),
        BatchJob(line(5), closure_agent, 1, 3, max_rounds=50, certify=True),
    ]
    first, second = run_batch(jobs, processes=4)
    assert first.met or first.certified_never  # decided, not crashed
    assert second.certified_never


def test_line_automaton_pickle_roundtrip():
    agent = LineAutomaton([(0, 1), (1, 0)], [0, 1], initial_state=1)
    agent.step(0, 2)  # advance the runtime state past the initial one
    copy = pickle.loads(pickle.dumps(agent))
    assert copy.num_states == agent.num_states
    assert copy.output == agent.output
    assert copy.initial_state == agent.initial_state
    assert copy.pi_prime() == agent.pi_prime()
    assert copy.state == agent.state  # mid-run state survives the pool hop


def gathering_jobs_fixture():
    t = spider([2, 2, 2])
    return [
        GatheringJob(t, walker(), starts, delays=delays,
                     max_rounds=4000, certify=True)
        for starts, delays in [
            ((1, 3, 5), None),
            ((1, 3, 5), (0, 1, 2)),
            ((2, 4, 6), (3, 0, 0)),
            ((1, 2, 3, 4), None),
        ]
    ]


def as_gathering_verdicts(outcomes):
    return [(o.gathered, o.gathering_round, o.certified_never) for o in outcomes]


def test_gathering_batch_serial_and_parallel_agree():
    serial = run_gathering_batch(gathering_jobs_fixture(), processes=1)
    parallel = run_gathering_batch(gathering_jobs_fixture(), processes=2)
    assert as_gathering_verdicts(serial) == as_gathering_verdicts(parallel)
    assert run_gathering_batch([]) == []


def test_gathering_batch_matches_reference_loop():
    outcomes = run_gathering_batch(gathering_jobs_fixture(), processes=2)
    for job, out in zip(gathering_jobs_fixture(), outcomes):
        ref = run_gathering_reference(
            job.tree, job.prototype, list(job.starts),
            delays=list(job.delays) if job.delays else None,
            max_rounds=job.max_rounds, certify=True,
        )
        assert (out.gathered, out.gathering_round, out.certified_never) == (
            ref.gathered, ref.gathering_round, ref.certified_never,
        )


def test_gathering_batch_unpicklable_falls_back():
    agent = Automaton(1, lambda s, ip, d: 0, [STAY])
    jobs = [
        GatheringJob(spider([2, 2, 2]), walker(), (1, 3, 5),
                     max_rounds=200, certify=True),
        GatheringJob(line(5), agent, (1, 3), max_rounds=200, certify=True),
    ]
    outcomes = run_gathering_batch(jobs, processes=4)
    assert len(outcomes) == 2
    assert all(o.gathered or o.certified_never for o in outcomes)


def test_adversarial_search_parallel_matches_serial():
    t = edge_colored_line(6)
    serial = adversarial_search(t, walker(), delays=(0, 1), max_rounds=4000, certify=True)
    parallel = adversarial_search(
        t, walker(), delays=(0, 1), max_rounds=4000, certify=True, processes=2
    )
    assert serial.instances_run == parallel.instances_run
    assert serial.successes == parallel.successes
    assert serial.undecided == parallel.undecided
    assert len(serial.failures) == len(parallel.failures)
    assert serial.max_meeting_round == parallel.max_meeting_round
