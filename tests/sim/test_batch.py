"""Tests for the multiprocessing fan-out (repro.sim.batch)."""

import pickle

from repro.agents import STAY, Automaton, LineAutomaton
from repro.sim import BatchJob, adversarial_search, run_batch
from repro.trees import edge_colored_line, line


def walker():
    return Automaton(1, {}, [0])


def jobs_fixture():
    t = line(6)
    return [
        BatchJob(t, walker(), u, v, delay=d, max_rounds=5000, certify=True)
        for (u, v, d) in [(0, 5, 0), (1, 4, 2), (2, 5, 1), (0, 3, 0)]
    ]


def as_verdicts(outcomes):
    return [(o.met, o.meeting_round, o.certified_never) for o in outcomes]


def test_serial_and_parallel_agree():
    serial = run_batch(jobs_fixture(), processes=1)
    parallel = run_batch(jobs_fixture(), processes=2)
    assert as_verdicts(serial) == as_verdicts(parallel)


def test_empty_batch():
    assert run_batch([]) == []


def test_unpicklable_prototype_falls_back_to_serial():
    # A transition *closure* cannot be pickled; the batch must silently run
    # serially and still return correct results.
    agent = Automaton(1, lambda s, ip, d: 0, [STAY])
    jobs = [BatchJob(line(5), agent, 1, 3, max_rounds=50, certify=True)]
    (out,) = run_batch(jobs, processes=4)
    assert out.certified_never


def test_line_automaton_pickle_roundtrip():
    agent = LineAutomaton([(0, 1), (1, 0)], [0, 1], initial_state=1)
    agent.step(0, 2)  # advance the runtime state past the initial one
    copy = pickle.loads(pickle.dumps(agent))
    assert copy.num_states == agent.num_states
    assert copy.output == agent.output
    assert copy.initial_state == agent.initial_state
    assert copy.pi_prime() == agent.pi_prime()
    assert copy.state == agent.state  # mid-run state survives the pool hop


def test_adversarial_search_parallel_matches_serial():
    t = edge_colored_line(6)
    serial = adversarial_search(t, walker(), delays=(0, 1), max_rounds=4000, certify=True)
    parallel = adversarial_search(
        t, walker(), delays=(0, 1), max_rounds=4000, certify=True, processes=2
    )
    assert serial.instances_run == parallel.instances_run
    assert serial.successes == parallel.successes
    assert serial.undecided == parallel.undecided
    assert len(serial.failures) == len(parallel.failures)
    assert serial.max_meeting_round == parallel.max_meeting_round
