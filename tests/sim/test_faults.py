"""Tests for the fault-model layer (repro.sim.faults).

Covers the FaultPlan value object (validation, serialization, the CLI
grammar), the semantics of each fault kind on the reference engine, the
crash-attribution field on outcomes, reference/compiled parity for
faulted runs and sweeps, and the registered fault scenarios end-to-end
on both backends.
"""

import pytest

from repro.agents import STAY, Automaton, alternator, counting_walker
from repro.errors import SimulationError
from repro.scenarios import Runner
from repro.sim import (
    CrashFault,
    FaultPlan,
    PauseFault,
    RelabelFault,
    run_gathering,
    run_rendezvous,
    run_rendezvous_faulted,
    solve_all_delays_faulted,
    solve_gathering_faulted,
)
from repro.sim.faults import (
    run_gathering_faulted_compiled,
    run_gathering_faulted_reference,
    run_rendezvous_faulted_compiled,
)
from repro.trees import edge_colored_line, line
from repro.trees.automorphism import is_symmetric_labeling


def stayer():
    return Automaton(1, {}, [STAY])


def walker():
    return Automaton(1, {}, [0])


class TestFaultPlanValidation:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(crashes=(CrashFault(0, 1),))

    def test_faults_are_sorted_canonically(self):
        plan = FaultPlan(
            crashes=(CrashFault(1, 5), CrashFault(0, 2)),
            pauses=(PauseFault(0, 7), PauseFault(1, 3, 2)),
            relabels=(RelabelFault(9), RelabelFault(4, 1)),
        )
        assert [c.round for c in plan.crashes] == [2, 5]
        assert [p.round for p in plan.pauses] == [3, 7]
        assert [r.round for r in plan.relabels] == [4, 9]

    def test_rejects_bad_crash_fields(self):
        with pytest.raises(SimulationError):
            FaultPlan(crashes=(CrashFault(-1, 3),))
        with pytest.raises(SimulationError):
            FaultPlan(crashes=(CrashFault(0, 0),))

    def test_rejects_two_crashes_for_one_agent(self):
        with pytest.raises(SimulationError):
            FaultPlan(crashes=(CrashFault(0, 2), CrashFault(0, 5)))

    def test_rejects_bad_pause_fields(self):
        with pytest.raises(SimulationError):
            FaultPlan(pauses=(PauseFault(0, 1, 0),))
        with pytest.raises(SimulationError):
            FaultPlan(pauses=(PauseFault(0, 0, 1),))

    def test_rejects_overlapping_pauses_same_agent(self):
        with pytest.raises(SimulationError):
            FaultPlan(pauses=(PauseFault(0, 2, 3), PauseFault(0, 4, 1)))
        # Back-to-back is fine; overlap is only within one agent.
        FaultPlan(pauses=(PauseFault(0, 2, 3), PauseFault(0, 5, 1)))
        FaultPlan(pauses=(PauseFault(0, 2, 3), PauseFault(1, 3, 2)))

    def test_rejects_two_relabels_in_one_round(self):
        with pytest.raises(SimulationError):
            FaultPlan(relabels=(RelabelFault(4, 0), RelabelFault(4, 1)))

    def test_horizon(self):
        assert FaultPlan().horizon == 0
        plan = FaultPlan(
            crashes=(CrashFault(0, 3),),
            pauses=(PauseFault(1, 4, 5),),  # active through round 8
            relabels=(RelabelFault(6),),
        )
        assert plan.horizon == 8

    def test_validate_for_rejects_out_of_range_agents(self):
        plan = FaultPlan(crashes=(CrashFault(2, 6),))
        plan.validate_for(3)
        with pytest.raises(SimulationError):
            plan.validate_for(2)

    def test_frozen_in_round_and_crashed_by(self):
        plan = FaultPlan(
            crashes=(CrashFault(1, 5),), pauses=(PauseFault(0, 2, 2),)
        )
        assert not plan.frozen_in_round(0, 1)
        assert plan.frozen_in_round(0, 2)
        assert plan.frozen_in_round(0, 3)
        assert not plan.frozen_in_round(0, 4)
        assert not plan.frozen_in_round(1, 4)
        assert plan.frozen_in_round(1, 5)
        assert plan.frozen_in_round(1, 10**6)  # crash-stop is forever
        assert plan.crashed_by(4) == ()
        assert plan.crashed_by(5) == (1,)
        assert plan.crashed_by(10**6) == (1,)


class TestFaultPlanSerialization:
    PLAN = FaultPlan(
        crashes=(CrashFault(2, 6),),
        pauses=(PauseFault(0, 2, 2),),
        relabels=(RelabelFault(3, 1), RelabelFault(6, 2)),
    )

    def test_json_roundtrip(self):
        assert FaultPlan.from_json(self.PLAN.to_json()) == self.PLAN
        assert FaultPlan.from_json({}) == FaultPlan()

    def test_from_json_rejects_unknown_keys(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_json({"crashes": [[0, 1]], "typo": []})

    def test_from_json_rejects_malformed_payloads(self):
        with pytest.raises(SimulationError):
            FaultPlan.from_json("crash:0@1")
        with pytest.raises(SimulationError):
            FaultPlan.from_json({"crashes": [[0]]})

    def test_parse_many_grammar(self):
        plan = FaultPlan.parse_many(
            ["crash:1@4", "pause:0@2:2", "relabel@3:5"]
        )
        assert plan.crashes == (CrashFault(1, 4),)
        assert plan.pauses == (PauseFault(0, 2, 2),)
        assert plan.relabels == (RelabelFault(3, 5),)

    def test_parse_many_defaults(self):
        plan = FaultPlan.parse_many(["pause:0@2", "relabel@3"])
        assert plan.pauses == (PauseFault(0, 2, 1),)
        assert plan.relabels == (RelabelFault(3, 0),)

    def test_parse_many_rejects_garbage(self):
        for bad in ("crash:0", "pause:x@2", "melt:0@2", "relabel@"):
            with pytest.raises(SimulationError):
                FaultPlan.parse_many([bad])

    def test_coerce(self):
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce(FaultPlan()) is None
        assert FaultPlan.coerce({}) is None
        assert FaultPlan.coerce(self.PLAN) is self.PLAN
        assert FaultPlan.coerce(self.PLAN.to_json()) == self.PLAN
        assert FaultPlan.coerce("crash:1@4") == FaultPlan(
            crashes=(CrashFault(1, 4),)
        )
        assert FaultPlan.coerce(["crash:1@4", "relabel@3:5"]) == FaultPlan(
            crashes=(CrashFault(1, 4),), relabels=(RelabelFault(3, 5),)
        )
        with pytest.raises(SimulationError):
            FaultPlan.coerce(3.14)


class TestFaultSemantics:
    def test_engines_reject_empty_plans(self):
        with pytest.raises(SimulationError):
            run_rendezvous_faulted(line(4), walker(), 0, 3, faults=None)
        with pytest.raises(SimulationError):
            run_rendezvous_faulted(line(4), walker(), 0, 3, faults={})

    def test_crashed_agent_never_moves_again(self):
        plan = FaultPlan(crashes=(CrashFault(1, 3),))
        out = run_rendezvous_faulted(
            line(8), walker(), 0, 7, faults=plan,
            max_rounds=40, record_trace=True,
        )
        frozen_pos = out.trace.records[1].pos2  # end of round 2
        for rec in out.trace.records[2:]:
            assert rec.pos2 == frozen_pos
            assert rec.action2 == STAY

    def test_paused_agent_freezes_then_resumes(self):
        plan = FaultPlan(pauses=(PauseFault(0, 2, 3),))
        out = run_rendezvous_faulted(
            line(8), walker(), 7, 0, faults=plan,
            max_rounds=12, record_trace=True,
        )
        records = {r.round_index: r for r in out.trace.records}
        for rnd in (2, 3, 4):
            assert records[rnd].action1 == STAY
        # A walker that never stays on its own moves once the pause ends.
        assert records[5].action1 != STAY

    def test_crash_is_attributed_on_the_outcome(self):
        plan = FaultPlan(crashes=(CrashFault(1, 1),))
        out = run_rendezvous_faulted(
            line(5), stayer(), 0, 3, faults=plan,
            max_rounds=200, certify=True,
        )
        assert out.certified_never
        assert out.crashed == (1,)

    def test_meeting_before_the_crash_is_not_attributed(self):
        # Schedule the crash strictly after the fault-free meeting round:
        # it never fires, so the meeting carries no crash attribution.
        tree = edge_colored_line(9)
        clean = run_rendezvous(
            tree, alternator(), 0, 5, delay=1, delayed=1, max_rounds=5000
        )
        assert clean.met
        plan = FaultPlan(crashes=(CrashFault(0, clean.meeting_round + 1),))
        out = run_rendezvous_faulted(
            tree, alternator(), 0, 5, faults=plan,
            delay=1, delayed=1, max_rounds=5000,
        )
        assert out.met
        assert out.meeting_round == clean.meeting_round
        assert out.crashed == ()

    def test_fault_free_runs_have_empty_crashed(self):
        out = run_rendezvous(line(6), counting_walker(1), 0, 1, max_rounds=100)
        assert out.crashed == ()

    def test_relabel_schedule_is_deterministic_and_symmetry_preserving(self):
        tree = edge_colored_line(9)
        plan = FaultPlan(relabels=(RelabelFault(3, 1), RelabelFault(6, 2)))
        sched_a = plan.labeling_schedule(tree)
        sched_b = plan.labeling_schedule(tree)
        assert [r for r, _ in sched_a] == [1, 3, 6]
        base = is_symmetric_labeling(tree)
        for (ra, ta), (rb, tb) in zip(sched_a, sched_b):
            assert ra == rb
            assert ta == tb  # seeded redraw: replayable
            assert is_symmetric_labeling(ta) == base

    def test_relabel_run_is_replayable(self):
        tree = edge_colored_line(9)
        plan = FaultPlan(relabels=(RelabelFault(3, 1),))
        kw = dict(faults=plan, max_rounds=5000, certify=True)
        a = run_rendezvous_faulted(tree, alternator(), 0, 5, **kw)
        b = run_rendezvous_faulted(tree, alternator(), 0, 5, **kw)
        assert (a.met, a.meeting_round, a.certified_never) == (
            b.met, b.meeting_round, b.certified_never
        )

    def test_run_rendezvous_dispatches_on_faults_kwarg(self):
        plan = FaultPlan(crashes=(CrashFault(1, 1),))
        via_engine = run_rendezvous(
            line(5), stayer(), 0, 3, faults=plan, max_rounds=200, certify=True,
        )
        direct = run_rendezvous_faulted(
            line(5), stayer(), 0, 3, faults=plan, max_rounds=200, certify=True,
        )
        assert via_engine.certified_never == direct.certified_never
        assert via_engine.crashed == direct.crashed == (1,)


class TestFaultedParity:
    """Reference loop and compiled loop agree row-for-row under faults."""

    PLANS = [
        FaultPlan(crashes=(CrashFault(1, 4),)),
        FaultPlan(pauses=(PauseFault(0, 2, 2), PauseFault(1, 3, 1))),
        FaultPlan(relabels=(RelabelFault(3, 1), RelabelFault(6, 2))),
        FaultPlan(
            crashes=(CrashFault(0, 7),),
            pauses=(PauseFault(1, 2, 2),),
            relabels=(RelabelFault(4, 3),),
        ),
    ]

    @pytest.mark.parametrize("plan", PLANS)
    def test_single_run_parity(self, plan):
        tree = edge_colored_line(9)
        for delay, delayed in [(0, 2), (1, 1), (2, 2)]:
            kw = dict(
                faults=plan, delay=delay, delayed=delayed,
                max_rounds=20000, certify=True,
            )
            ref = run_rendezvous_faulted(tree, alternator(), 0, 5, **kw)
            cmp_ = run_rendezvous_faulted_compiled(tree, alternator(), 0, 5, **kw)
            assert (ref.met, ref.meeting_round, ref.certified_never,
                    ref.crashed) == (
                cmp_.met, cmp_.meeting_round, cmp_.certified_never,
                cmp_.crashed,
            )

    @pytest.mark.parametrize("plan", PLANS)
    def test_delay_solver_matches_per_run_reference(self, plan):
        tree = edge_colored_line(9)
        verdicts = solve_all_delays_faulted(
            tree, alternator(), 0, 5, max_delay=3, faults=plan,
        )
        assert verdicts  # the sweep is never empty
        for v in verdicts:
            ref = run_rendezvous_faulted(
                tree, alternator(), 0, 5, faults=plan, delay=v.delay,
                delayed=v.delayed, max_rounds=200000, certify=True,
            )
            assert (v.met, v.meeting_round) == (ref.met, ref.meeting_round)
            assert v.certified_never == ref.certified_never
            if ref.met:
                assert v.crashed == bool(ref.crashed)

    def test_gathering_parity_and_crash_attribution(self):
        tree = line(9)
        plan = FaultPlan(
            crashes=(CrashFault(2, 6),), pauses=(PauseFault(0, 2, 2),)
        )
        for starts, delays in [((0, 1, 3), None), ((0, 2, 4), (0, 1, 2))]:
            kw = dict(faults=plan, delays=delays, max_rounds=20000, certify=True)
            ref = run_gathering_faulted_reference(
                tree, counting_walker(2), starts, **kw
            )
            cmp_ = run_gathering_faulted_compiled(
                tree, counting_walker(2), starts, **kw
            )
            assert (ref.gathered, ref.gathering_round, ref.certified_never,
                    ref.crashed) == (
                cmp_.gathered, cmp_.gathering_round, cmp_.certified_never,
                cmp_.crashed,
            )

    def test_gathering_solver_matches_per_run(self):
        tree = line(9)
        plan = FaultPlan(crashes=(CrashFault(2, 6),))
        vectors = [(0, 0, 0), (0, 1, 2), (2, 0, 1)]
        verdicts = solve_gathering_faulted(
            tree, counting_walker(2), (0, 1, 3), vectors, faults=plan,
        )
        assert len(verdicts) == len(vectors)
        for v, vec in zip(verdicts, vectors):
            ref = run_gathering(
                tree, counting_walker(2), (0, 1, 3), delays=list(vec),
                faults=plan, max_rounds=200000, certify=True,
            )
            assert (v.gathered, v.gathering_round) == (
                ref.gathered, ref.gathering_round
            )
            assert v.certified_never == ref.certified_never


class TestFaultScenarios:
    """The registered fault scenarios run identically on both backends
    and exercise the certified-never-crash verdict class."""

    @pytest.mark.parametrize(
        "name", ["rendezvous-relabel-line", "gathering-crash-k3"]
    )
    def test_reference_compiled_rows_identical(self, name):
        ref = Runner(backend="reference").run(name)
        cmp_ = Runner(backend="compiled").run(name)
        assert ref.rows == cmp_.rows
        assert ref.summary == cmp_.summary
        assert ref.ok and cmp_.ok

    def test_crash_scenario_attributes_verdicts(self):
        result = Runner().run("gathering-crash-k3")
        verdicts = {row["verdict"] for row in result.rows}
        assert "certified-never-crash" in verdicts
        assert result.summary["crashed"] == sum(
            row["verdict"] == "certified-never-crash" for row in result.rows
        )

    def test_relabel_scenario_mixes_verdicts_without_crashes(self):
        result = Runner().run("rendezvous-relabel-line")
        verdicts = {row["verdict"] for row in result.rows}
        assert verdicts == {"met", "certified-never"}
        assert "crashed" not in result.summary
