"""Unit tests for the vectorized sweep kernel (:mod:`repro.sim.kernel`).

Covers the pieces the parity property-suite doesn't: the successor
table against the compiled stepper step-for-step, the on-disk memmap
cache (roundtrip, corrupt/truncated quarantine-and-rebuild — the
``ResultStore`` contract), the ``REPRO_KERNEL=0`` kill switch, the
batched pairs surfaces on every backend, and the dict solver's
solo-prefix early break.
"""

import random

import numpy as np
import pytest

from repro.agents import Automaton
from repro.agents.library import counting_walker, pausing_walker
from repro.agents.observations import STAY
from repro.core import rendezvous_agent
from repro.errors import BudgetExceededError
from repro.scenarios.backends import (
    AutoBackend,
    CompiledBackend,
    ReferenceBackend,
)
from repro.sim import kernel as kernel_mod
from repro.sim.compiled import _make_stepper, compile_agent, solve_all_delays
from repro.sim.kernel import (
    KernelUnsupported,
    agent_table,
    kernel_available,
    run_pairs_kernel,
    solve_all_delays_auto,
    solve_all_delays_kernel,
    table_cache_key,
)
from repro.sim.traced import run_pairs_traced, run_rendezvous_traced
from repro.trees import edge_colored_line, line
from repro.trees.builders import complete_binary_tree, random_tree, star


# ----------------------------------------------------------------------
# Successor tables
# ----------------------------------------------------------------------


def _generic_automaton(tree, num_states=3, seed=17):
    """Deterministic pseudo-random table automaton valid on ``tree``."""
    rng = random.Random(seed)
    dmax = tree.max_degree()
    table = {
        (s, ip, d): rng.randrange(num_states)
        for s in range(num_states)
        for ip in range(-1, dmax)
        for d in range(1, dmax + 1)
    }
    output = [rng.randrange(-1, dmax) for _ in range(num_states)]
    return Automaton(num_states, table, output)


_TABLE_CASES = [
    (lambda: line(2), lambda _t: pausing_walker(2)),
    (lambda: edge_colored_line(9), lambda _t: pausing_walker(2)),
    (lambda: edge_colored_line(9), lambda _t: counting_walker(3)),
    (lambda: star(5), _generic_automaton),
    (lambda: complete_binary_tree(3), _generic_automaton),
    (lambda: random_tree(11, random.Random(3)), _generic_automaton),
]


@pytest.mark.parametrize("tree_factory, agent_factory", _TABLE_CASES)
def test_table_matches_compiled_stepper(tree_factory, agent_factory):
    """succ[] agrees with the scalar stepper on random walks from every
    start node."""
    tree = tree_factory()
    agent = agent_factory(tree)
    table = agent_table(agent, tree)
    compiled = compile_agent(agent, tree)
    step_one = _make_stepper(compiled, tree)
    n, width = table.n, table.width
    stride = width - 1
    for start in range(tree.n):
        st = compiled.initial_state
        # start round done by hand, as the solvers do
        cid = int(table.start_ids[start])
        a = compiled.start_action[tree.degree(start)]
        if a == STAY:
            pos, ip = start, 0
        else:
            _stride, _deg, move_to, move_in = tree.flat_move_tables()
            base = start * stride + a
            pos, ip = move_to[base], move_in[base] + 1
        assert cid == (st * n + pos) * width + ip
        for _ in range(40):
            pos, st, ip = step_one(pos, st, ip)
            cid = int(table.succ[cid])
            assert cid == (st * n + pos) * width + ip


def test_oversized_table_raises_unsupported(monkeypatch):
    monkeypatch.setattr(kernel_mod, "_MAX_TABLE_ENTRIES", 10)
    with pytest.raises(KernelUnsupported):
        agent_table(pausing_walker(2), edge_colored_line(9))


def test_auto_falls_back_on_oversized_table(monkeypatch):
    tree = edge_colored_line(9)
    agent = pausing_walker(2)
    expected = solve_all_delays(tree, agent, 0, 5, max_delay=4)
    monkeypatch.setattr(kernel_mod, "_MAX_TABLE_ENTRIES", 10)
    assert solve_all_delays_auto(tree, agent, 0, 5, max_delay=4) == expected


def test_kill_switch(monkeypatch):
    tree = edge_colored_line(7)
    agent = pausing_walker(1)
    monkeypatch.setenv("REPRO_KERNEL", "0")
    assert not kernel_available()
    with pytest.raises(KernelUnsupported):
        solve_all_delays_kernel(tree, agent, 0, 4, max_delay=3)
    # the auto wrapper still answers, via the dict solver
    assert solve_all_delays_auto(
        tree, agent, 0, 4, max_delay=3
    ) == solve_all_delays(tree, agent, 0, 4, max_delay=3)


# ----------------------------------------------------------------------
# On-disk cache hygiene (the ResultStore contract)
# ----------------------------------------------------------------------


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    kernel_mod._TABLE_CACHE.clear()
    yield tmp_path
    kernel_mod._TABLE_CACHE.clear()


def test_cache_roundtrip_serves_memmap(cache_dir):
    tree = edge_colored_line(9)
    agent = pausing_walker(2)
    built = agent_table(agent, tree)
    path = cache_dir / f"{table_cache_key(agent, tree)}.npy"
    assert path.exists()
    kernel_mod._TABLE_CACHE.clear()
    reloaded = agent_table(agent, tree)
    assert isinstance(reloaded.succ, np.memmap)
    assert np.array_equal(built.succ, reloaded.succ)
    assert np.array_equal(built.start_ids, reloaded.start_ids)


def test_corrupt_cache_file_quarantined_and_rebuilt(cache_dir):
    tree = edge_colored_line(9)
    agent = pausing_walker(2)
    built = agent_table(agent, tree)
    path = cache_dir / f"{table_cache_key(agent, tree)}.npy"
    path.write_bytes(b"this is not a numpy file")
    kernel_mod._TABLE_CACHE.clear()
    rebuilt = agent_table(agent, tree)  # never crashes the sweep
    assert np.array_equal(built.succ, rebuilt.succ)
    quarantined = path.with_name(path.name + ".corrupt")
    assert quarantined.exists()
    assert path.exists()  # rebuilt table re-persisted


def test_truncated_cache_file_quarantined_and_rebuilt(cache_dir):
    tree = edge_colored_line(9)
    agent = counting_walker(2)
    built = agent_table(agent, tree)
    path = cache_dir / f"{table_cache_key(agent, tree)}.npy"
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    kernel_mod._TABLE_CACHE.clear()
    rebuilt = agent_table(agent, tree)
    assert np.array_equal(built.succ, rebuilt.succ)
    assert path.with_name(path.name + ".corrupt").exists()


def test_wrong_shape_cache_file_quarantined(cache_dir):
    tree = edge_colored_line(9)
    agent = pausing_walker(3)
    built = agent_table(agent, tree)
    path = cache_dir / f"{table_cache_key(agent, tree)}.npy"
    np.save(path, np.zeros(7, dtype=np.int64))  # wrong size AND dtype
    kernel_mod._TABLE_CACHE.clear()
    rebuilt = agent_table(agent, tree)
    assert np.array_equal(built.succ, rebuilt.succ)
    assert path.with_name(path.name + ".corrupt").exists()


def test_sweep_through_corrupt_cache_still_answers(cache_dir):
    tree = edge_colored_line(9)
    agent = pausing_walker(2)
    expected = solve_all_delays(tree, agent, 1, 6, max_delay=5)
    path = cache_dir / f"{table_cache_key(agent, tree)}.npy"
    path.write_bytes(b"\x00" * 16)
    assert solve_all_delays_kernel(tree, agent, 1, 6, max_delay=5) == expected


# ----------------------------------------------------------------------
# Batched pairs surfaces
# ----------------------------------------------------------------------


def _pairs_for(n, seed, count=10):
    rng = random.Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def test_run_pairs_kernel_budget_semantics():
    tree = edge_colored_line(11)
    agent = counting_walker(2)
    pairs = _pairs_for(tree.n, 4)
    for max_rounds in (0, 1, 3, 50_000):
        verdicts = run_pairs_kernel(tree, agent, pairs, max_rounds=max_rounds)
        backend = CompiledBackend()
        for (u, v), got in zip(pairs, verdicts):
            ref = backend.run(tree, agent, u, v, delay=0, max_rounds=max_rounds)
            assert (ref.met, ref.meeting_round) == (got.met, got.meeting_round)
            if got.certified_never:
                assert not ref.met


@pytest.mark.parametrize("backend_cls", [ReferenceBackend, CompiledBackend, AutoBackend])
@pytest.mark.parametrize("proto_factory, kind", [
    (lambda: counting_walker(2), "native"),
    (lambda: rendezvous_agent(max_outer=4), "lowerable"),
])
def test_backend_run_pairs_parity(backend_cls, proto_factory, kind):
    """Every backend's run_pairs rows equal its own per-run loop."""
    tree = edge_colored_line(9)
    backend = backend_cls()
    proto = proto_factory()
    pairs = _pairs_for(tree.n, 11, count=8)
    budget = 5_000
    got = backend.run_pairs(tree, proto, pairs, max_rounds=budget)
    for (u, v), verdict in zip(pairs, got):
        ref = backend.run(tree, proto, u, v, delay=0, max_rounds=budget)
        assert (ref.met, ref.meeting_round) == (verdict.met, verdict.meeting_round)


def test_run_pairs_traced_matches_traced_runs():
    tree = edge_colored_line(10)
    proto = rendezvous_agent(max_outer=5)
    pairs = _pairs_for(tree.n, 7, count=12)
    for budget in (2, 200, 100_000):
        got = run_pairs_traced(tree, proto, pairs, max_rounds=budget)
        for (u, v), verdict in zip(pairs, got):
            ref = run_rendezvous_traced(tree, proto, u, v, max_rounds=budget)
            assert (ref.met, ref.meeting_round) == (verdict.met, verdict.meeting_round)


def test_run_pairs_kernel_budget_guard_unreachable():
    """run_pairs lanes are budget-bounded, so no BudgetExceededError."""
    tree = edge_colored_line(7)
    agent = pausing_walker(2)
    verdicts = run_pairs_kernel(
        tree, agent, [(0, 6), (0, 0)], max_rounds=2
    )
    assert verdicts[1].met and verdicts[1].meeting_round == 0
    assert not verdicts[0].met


# ----------------------------------------------------------------------
# Dict solver: solo-prefix early break (satellite bugfix)
# ----------------------------------------------------------------------


def _raising_mover():
    """Moves through port 0 into state 1; any transition *out of* state
    1 raises, so the compiled table holds _INVALID there and a walk
    stepping past it re-raises live."""
    def transition(state, in_port, degree):
        if state == 1:
            raise RuntimeError("stepped past first_hit")
        return 1

    return Automaton(2, transition, [0, 0])


def test_solo_prefix_breaks_at_first_hit():
    """The runner lands on the sleeper at round 1; the solver must not
    walk the remaining max_delay - 1 solo rounds (stepping twice more
    would hit the raising state and blow up — it did before the fix)."""
    stayer = Automaton(1, {}, [-1])
    verdicts = solve_all_delays(
        line(2), _raising_mover(), 0, 1,
        max_delay=10_000, delayed_sides=(2,), prototype2=stayer,
    )
    assert all(dv.met and dv.meeting_round <= 1 for dv in verdicts)


def test_solo_prefix_error_past_first_hit_still_raises():
    """Rounds before first_hit are still genuinely executed: with no hit
    the raising transition must surface, not be skipped."""
    stayer = Automaton(1, {}, [-1])
    # mover walks 0 -> 1 -> 0 (port 0 leads back down the line), never
    # touching the sleeper at node 2, then steps out of state 1
    with pytest.raises(RuntimeError):
        solve_all_delays(
            line(3), _raising_mover(), 0, 2,
            max_delay=10, delayed_sides=(2,), prototype2=stayer,
        )


def test_kernel_falls_back_when_lane_hits_invalid_entry():
    """The kernel aborts to the dict solver on _INVALID lanes so genuine
    agent errors surface identically."""
    stayer = Automaton(1, {}, [-1])
    with pytest.raises(RuntimeError):
        solve_all_delays_auto(
            line(3), _raising_mover(), 0, 2,
            max_delay=10, delayed_sides=(2,), prototype2=stayer,
        )


def test_grid_budget_scales_per_pair():
    """The grid call's guard is per-pair: a guard that fits each pair
    individually must fit the whole grid."""
    tree = edge_colored_line(9)
    agent = pausing_walker(2)
    pairs = _pairs_for(tree.n, 21, count=6)
    per_pair_configs = 4_000
    for u, v in pairs:
        solve_all_delays(tree, agent, u, v, max_delay=6,
                         max_configs=per_pair_configs)
    grid = kernel_mod.solve_delay_grid_kernel(
        tree, agent, pairs, max_delay=6, max_configs=per_pair_configs
    )
    assert len(grid) == len(pairs)


def test_kernel_budget_guard_trips():
    tree = edge_colored_line(31)
    agent = pausing_walker(2)
    with pytest.raises(BudgetExceededError):
        solve_all_delays_kernel(tree, agent, 0, 29, max_delay=64, max_configs=5)
