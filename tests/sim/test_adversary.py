"""Tests for adversarial sweeps and the Parity Lemma as a runtime property."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import STAY, Automaton, random_line_automaton
from repro.core import rendezvous_agent
from repro.sim import (
    AdversaryReport,
    FailedInstance,
    adversarial_search,
    all_start_pairs,
    feasible_start_pairs,
    labelings_for,
    run_rendezvous,
)
from repro.trees import (
    count_labelings,
    edge_colored_line,
    line,
    star,
)


class TestPairEnumeration:
    def test_all_start_pairs(self):
        assert list(all_start_pairs(line(4))) == [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
        ]

    def test_feasible_pairs_excludes_mirrors(self):
        pairs = set(feasible_start_pairs(line(6)))
        assert (0, 5) not in pairs
        assert (1, 4) not in pairs
        assert (2, 3) not in pairs
        assert (0, 4) in pairs

    def test_feasible_pairs_central_node_tree(self):
        t = star(4)
        assert len(list(feasible_start_pairs(t))) == 10  # everything


class TestLabelingBattery:
    def test_exhaustive_when_small(self):
        t = line(4)
        labs = labelings_for(t)
        assert len(labs) == count_labelings(t) == 4

    def test_sampled_when_large(self):
        t = star(6)  # 720 labelings > default would still be exhaustive...
        labs = labelings_for(t, exhaustive_limit=10, samples=5)
        assert len(labs) == 5


class TestAdversarialSearch:
    def test_good_agent_survives(self):
        t = line(5)
        report = adversarial_search(
            t, rendezvous_agent(max_outer=8), max_rounds=400_000
        )
        assert report.all_succeeded
        assert report.instances_run > 0
        assert report.max_meeting_round > 0

    def test_bad_agent_fails_and_is_reported(self):
        # The do-nothing agent cannot rendezvous anywhere.
        lazy = Automaton(1, {}, [STAY])
        t = line(4)
        report = adversarial_search(
            t, lazy, max_rounds=100, certify=True, stop_at_first_failure=True
        )
        assert not report.all_succeeded
        assert report.failures
        first = report.failures[0]
        assert first.outcome.certified_never

    def test_delay_axis(self):
        from repro.core import baseline_agent

        t = star(3)
        report = adversarial_search(
            t,
            baseline_agent(),
            delays=(0, 3),
            max_rounds=20_000,
        )
        assert report.all_succeeded
        # delay > 0 doubles the instance count for the delayed side choice
        assert report.instances_run == len(list(feasible_start_pairs(t))) * (
            len(labelings_for(t))
        ) * 3  # (0: one side) + (3: two sides)


class TestAdversaryFailurePaths:
    """The failure-side bookkeeping: FailedInstance records, the
    all_succeeded predicate, and reproducibility of a failing sweep."""

    @staticmethod
    def lazy():
        return Automaton(1, {}, [STAY])

    def failing_search(self, **kw):
        kw.setdefault("delays", (0, 1))
        kw.setdefault("max_rounds", 200)
        kw.setdefault("certify", True)
        return adversarial_search(line(4), self.lazy(), **kw)

    @staticmethod
    def failure_key(inst):
        return (
            inst.tree, inst.start1, inst.start2, inst.delay, inst.delayed,
            inst.outcome.met, inst.outcome.certified_never,
        )

    def test_every_defeat_is_recorded_with_its_full_choice(self):
        report = self.failing_search()
        assert report.instances_run == len(report.failures) > 0
        assert report.successes == 0
        assert report.max_meeting_round == 0
        assert not report.all_succeeded
        for inst in report.failures:
            assert isinstance(inst, FailedInstance)
            assert 0 <= inst.start1 < inst.tree.n
            assert 0 <= inst.start2 < inst.tree.n
            assert inst.delay in (0, 1)
            assert inst.delayed in (1, 2)
            if inst.delay == 0:  # zero delay runs one canonical side
                assert inst.delayed == 2
            assert inst.outcome.certified_never  # decided, not timed out

    def test_undecided_instances_also_block_all_succeeded(self):
        # Without certification the lazy agent's runs are undecided, not
        # certified: they count as failures AND as undecided.
        report = self.failing_search(certify=False, max_rounds=30)
        assert report.undecided == report.instances_run > 0
        assert len(report.failures) == report.instances_run
        assert not report.all_succeeded

    def test_all_succeeded_predicate(self):
        assert AdversaryReport().all_succeeded  # vacuous truth: no instances
        met = AdversaryReport(instances_run=1, successes=1, max_meeting_round=3)
        assert met.all_succeeded
        undecided_only = AdversaryReport(instances_run=1, undecided=1)
        assert not undecided_only.all_succeeded

    def test_seeded_failing_search_is_reproducible(self):
        a = self.failing_search(seed=17)
        b = self.failing_search(seed=17)
        assert a.instances_run == b.instances_run
        assert list(map(self.failure_key, a.failures)) == list(
            map(self.failure_key, b.failures)
        )

    def test_seeded_failure_set_is_process_count_independent(self):
        serial = self.failing_search(seed=17)
        pooled = self.failing_search(seed=17, processes=2)
        assert serial.instances_run == pooled.instances_run
        assert list(map(self.failure_key, serial.failures)) == list(
            map(self.failure_key, pooled.failures)
        )


class TestParityLemma:
    """Lemma 4.4 as a runtime property of the simulator."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_parity_invariant(self, seed):
        rng = random.Random(seed)
        t = edge_colored_line(2 * rng.randrange(3, 7))
        agent = random_line_automaton(rng.randrange(2, 6), rng)
        u = rng.randrange(t.n - 1)
        v = u + 1 + 2 * rng.randrange((t.n - u - 1) // 2 or 1)
        v = min(v, t.n - 1)
        if (v - u) % 2 == 0:
            v = v - 1 if v - 1 > u else v + 1
        if not (0 <= v < t.n) or u == v:
            return
        out = run_rendezvous(t, agent, u, v, max_rounds=300, record_trace=True)
        trace = out.trace
        dist = abs(u - v)  # initial distance (edge-colored line is a path)
        pos = trace.positions()
        for k in range(1, len(pos)):
            q1 = 1 - int(trace.records[k - 1].moved1)
            q2 = 1 - int(trace.records[k - 1].moved2)
            new_dist = abs(pos[k][0] - pos[k][1])
            if q1 == q2:  # both moved or both idled: parity preserved
                assert (new_dist - dist) % 2 == 0
            else:  # exactly one moved: parity flips
                assert (new_dist - dist) % 2 == 1
            dist = new_dist
