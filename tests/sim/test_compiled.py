"""Unit tests for the compiled table-driven backend and the batch solver."""

import pytest

from repro.agents import STAY, Automaton, LineAutomaton, alternator
from repro.errors import AgentProtocolError, SimulationError
from repro.sim import (
    compile_agent,
    run_rendezvous,
    run_rendezvous_compiled,
    run_rendezvous_fast,
    solve_all_delays,
    supports_compilation,
)
from repro.trees import edge_colored_line, line, random_relabel, star


def waiting_agent():
    return Automaton(1, {}, [STAY])


def port0_walker():
    return Automaton(1, {}, [0])


def pausing_line_agent():
    # 3 states: walk port 0 / pause / walk port 1 — enough to exercise
    # nontrivial state, STAY handling, and the mod-degree rule.
    table = {}
    for ip in range(-1, 3):
        for d in (1, 2, 3):
            table[(0, ip, d)] = 1
            table[(1, ip, d)] = 2
            table[(2, ip, d)] = 0
    return Automaton(3, table, [0, STAY, 1])


def outcomes_match(ref, cmp_, *, full=False):
    core = (
        ref.met == cmp_.met
        and ref.meeting_round == cmp_.meeting_round
        and ref.meeting_node == cmp_.meeting_node
        and ref.certified_never == cmp_.certified_never
    )
    if not full:
        return core
    # Met and undecided runs execute the same number of rounds, so the
    # whole observable history must agree.
    return (
        core
        and ref.rounds_executed == cmp_.rounds_executed
        and ref.crossings == cmp_.crossings
    )


class TestSingleRunParity:
    @pytest.mark.parametrize("delay,delayed", [(0, 2), (3, 1), (3, 2), (50, 2)])
    def test_walker_on_line(self, delay, delayed):
        t = line(7)
        kw = dict(delay=delay, delayed=delayed, max_rounds=5000, certify=True)
        ref = run_rendezvous(t, port0_walker(), 2, 6, **kw)
        cmp_ = run_rendezvous_compiled(t, port0_walker(), 2, 6, **kw)
        assert not ref.undecided  # a 1-state agent decides within the budget
        assert outcomes_match(ref, cmp_, full=ref.met)

    def test_chasing_walkers_meet(self):
        # Both copies slide toward node 0; the leader bounces on the 0-1
        # edge and the chaser catches it (even inter-agent distance).
        ref = run_rendezvous(line(7), port0_walker(), 2, 6)
        cmp_ = run_rendezvous_compiled(line(7), port0_walker(), 2, 6)
        assert ref.met and outcomes_match(ref, cmp_, full=True)

    def test_same_start_round_zero(self):
        out = run_rendezvous_compiled(line(5), waiting_agent(), 2, 2)
        assert out.met and out.meeting_round == 0 and out.meeting_node == 2

    def test_certified_never_matches_reference_verdict(self):
        t = line(5)
        ref = run_rendezvous(t, waiting_agent(), 1, 3, certify=True)
        cmp_ = run_rendezvous_compiled(t, waiting_agent(), 1, 3, certify=True)
        assert ref.certified_never and cmp_.certified_never
        # Brent may need a few more rounds than the first-repeat seen set,
        # but stays within a constant factor.
        assert cmp_.rounds_executed <= 4 * ref.rounds_executed + 8

    def test_undecided_respects_budget(self):
        out = run_rendezvous_compiled(line(9), waiting_agent(), 0, 8, max_rounds=17)
        assert out.undecided and out.rounds_executed == 17

    def test_trace_and_crossings_parity(self):
        t = edge_colored_line(8)
        ref = run_rendezvous(t, alternator(), 2, 3, max_rounds=60, record_trace=True)
        cmp_ = run_rendezvous_compiled(
            t, alternator(), 2, 3, max_rounds=60, record_trace=True
        )
        assert outcomes_match(ref, cmp_, full=True)
        rr = [(r.round_index, r.pos1, r.pos2, r.action1, r.action2) for r in ref.trace.records]
        cc = [(r.round_index, r.pos1, r.pos2, r.action1, r.action2) for r in cmp_.trace.records]
        assert rr == cc

    def test_pausing_agent_parity(self):
        t = edge_colored_line(9)
        budget = 5000
        for u, v in [(0, 8), (1, 5), (3, 4)]:
            ref = run_rendezvous(
                t, pausing_line_agent(), u, v, max_rounds=budget, certify=True
            )
            cmp_ = run_rendezvous_compiled(
                t, pausing_line_agent(), u, v, max_rounds=budget, certify=True
            )
            assert outcomes_match(ref, cmp_)

    def test_validation_errors(self):
        with pytest.raises(SimulationError):
            run_rendezvous_compiled(line(3), waiting_agent(), 0, 9)
        with pytest.raises(SimulationError):
            run_rendezvous_compiled(line(3), waiting_agent(), 0, 1, delay=-1)
        with pytest.raises(SimulationError):
            run_rendezvous_compiled(line(3), waiting_agent(), 0, 1, delayed=3)
        with pytest.raises(SimulationError):
            run_rendezvous_compiled(line(3), baseline_like_program(), 0, 1)

    def test_agent_error_surfaces_like_reference(self):
        # A LineAutomaton is undefined on degree-3 nodes; both backends
        # must raise the same protocol error when the agent observes one.
        # The second agent sleeps so the walkers don't just meet at the
        # center: agent 1 enters the hub in round 1 and observes degree 3
        # in round 2.
        agent = LineAutomaton([(0, 0)], [0])
        with pytest.raises(AgentProtocolError):
            run_rendezvous(star(3), agent, 1, 2, delay=5, delayed=2, max_rounds=10)
        with pytest.raises(AgentProtocolError):
            run_rendezvous_compiled(
                star(3), agent, 1, 2, delay=5, delayed=2, max_rounds=10
            )


def baseline_like_program():
    """A non-automaton AgentBase stand-in (no compiled support)."""

    class P:
        def start(self, degree):
            return STAY

        def step(self, in_port, degree):
            return STAY

        def clone(self):
            return P()

    return P()


class TestDispatch:
    def test_automaton_routes_to_compiled(self):
        assert supports_compilation(waiting_agent())
        out = run_rendezvous_fast(line(5), waiting_agent(), 1, 3, certify=True)
        assert out.certified_never

    def test_program_falls_back_to_reference(self):
        proto = baseline_like_program()
        assert not supports_compilation(proto)
        out = run_rendezvous_fast(line(5), proto, 1, 3, max_rounds=12)
        assert out.undecided and out.rounds_executed == 12

    def test_compilation_memoized_across_relabelings(self):
        import random

        agent = pausing_line_agent()
        t1 = edge_colored_line(9)
        t2 = random_relabel(line(9), random.Random(1))
        c1 = compile_agent(agent, t1)
        c2 = compile_agent(agent, t1)
        c3 = compile_agent(agent, t2)
        assert c1 is c2  # same tree shape -> cached
        assert c1 is c3  # relabeled line: same (stride, degree set)


class TestAllDelaysSolver:
    def reference_sweep(self, tree, agent, u, v, max_delay, budget=200_000):
        rows = {}
        for theta in range(max_delay + 1):
            for side in (1, 2):
                out = run_rendezvous(
                    tree, agent, u, v,
                    delay=theta, delayed=side, max_rounds=budget, certify=True,
                )
                assert not out.undecided, "reference budget too small for parity"
                rows[(theta, side)] = (out.met, out.meeting_round, out.certified_never)
        return rows

    def test_matches_per_delay_reference(self):
        t = edge_colored_line(9)
        agent = pausing_line_agent()
        u, v = 1, 6
        ref = self.reference_sweep(t, agent, u, v, 8)
        for dv in solve_all_delays(t, agent, u, v, max_delay=8):
            assert ref[(dv.delay, dv.delayed)] == (
                dv.met, dv.meeting_round, dv.certified_never,
            )

    def test_never_meeting_family(self):
        t = line(6)
        ref = self.reference_sweep(t, waiting_agent(), 1, 4, 5, budget=1000)
        for dv in solve_all_delays(t, waiting_agent(), 1, 4, max_delay=5):
            assert dv.certified_never and not dv.met
            assert ref[(dv.delay, dv.delayed)] == (False, None, True)

    def test_prefix_meeting_on_sleeping_agent(self):
        # port-0 walker reaches the sleeper's node during the delay phase:
        # the meeting round must saturate at the solo hitting time.
        t = line(4)
        verdicts = {
            (dv.delay, dv.delayed): dv
            for dv in solve_all_delays(t, port0_walker(), 3, 0, max_delay=10)
        }
        ref = run_rendezvous(t, port0_walker(), 3, 0, delay=10, delayed=2)
        assert ref.met
        dv = verdicts[(10, 2)]
        assert dv.met and dv.meeting_round == ref.meeting_round

    def test_same_start_all_met_at_zero(self):
        for dv in solve_all_delays(line(5), waiting_agent(), 2, 2, max_delay=3):
            assert dv.met and dv.meeting_round == 0

    def test_zero_delay_emitted_once(self):
        # At theta = 0 both sides are the same adversary choice; the solver
        # reports it once (side 2, matching the sweep convention).
        vs = solve_all_delays(line(5), waiting_agent(), 0, 3, max_delay=2)
        assert [(dv.delay, dv.delayed) for dv in vs] == [
            (0, 2), (1, 1), (1, 2), (2, 1), (2, 2),
        ]
        same = solve_all_delays(line(5), waiting_agent(), 2, 2, max_delay=1)
        assert [(dv.delay, dv.delayed) for dv in same] == [(0, 2), (1, 1), (1, 2)]

    def test_delayed_sides_subset_and_order(self):
        vs = solve_all_delays(
            line(5), waiting_agent(), 0, 3, max_delay=2, delayed_sides=(2,)
        )
        assert [(dv.delay, dv.delayed) for dv in vs] == [(0, 2), (1, 2), (2, 2)]

    def test_validation(self):
        with pytest.raises(SimulationError):
            solve_all_delays(line(3), waiting_agent(), 0, 9, max_delay=1)
        with pytest.raises(SimulationError):
            solve_all_delays(line(3), waiting_agent(), 0, 1, max_delay=-1)
        with pytest.raises(SimulationError):
            solve_all_delays(
                line(3), waiting_agent(), 0, 1, max_delay=1, delayed_sides=(3,)
            )
        with pytest.raises(SimulationError):
            solve_all_delays(line(3), baseline_like_program(), 0, 1, max_delay=1)

    def test_max_configs_guard(self):
        with pytest.raises(SimulationError):
            solve_all_delays(
                edge_colored_line(9), pausing_line_agent(), 1, 6,
                max_delay=4, max_configs=2,
            )
