"""Unit tests for the synchronous rendezvous engine."""

import pytest

from repro.agents import STAY, Automaton, alternator
from repro.errors import SimulationError
from repro.sim import run_rendezvous
from repro.trees import edge_colored_line, line, star


def waiting_agent():
    """An agent that never moves."""
    return Automaton(1, {}, [STAY])


def port0_walker():
    """Always exits through port 0: on a line it slides to node 0 and bounces."""
    return Automaton(1, {}, [0])


class TestBasics:
    def test_same_start_meets_at_round_zero(self):
        out = run_rendezvous(line(5), waiting_agent(), 2, 2)
        assert out.met and out.meeting_round == 0 and out.meeting_node == 2

    def test_two_waiters_never_meet_certified(self):
        out = run_rendezvous(line(5), waiting_agent(), 1, 3, certify=True)
        assert not out.met
        assert out.certified_never
        assert out.rounds_executed < 10

    def test_parallel_walkers_merge(self):
        # Both copies walk port 0 (toward node 0 on the canonical line);
        # the leader bounces at node 0 and meets the chaser.
        out = run_rendezvous(line(6), port0_walker(), 2, 4)
        assert out.met
        assert out.meeting_round == 3
        assert out.meeting_node == 1

    def test_delay_applied_to_agent2(self):
        # With delay, agent 2 sits still; agent 1 walks onto it.
        out = run_rendezvous(line(4), port0_walker(), 3, 0, delay=100, delayed=2)
        assert out.met
        assert out.meeting_node == 0
        assert out.meeting_round == 3

    def test_delay_applied_to_agent1(self):
        out = run_rendezvous(line(4), port0_walker(), 3, 0, delay=100, delayed=1)
        # agent 2 at node 0 bounces between 0 and 1 (port 0 at node 0 goes
        # to 1, port 0 at node 1 goes back to 0); agent 1 asleep at 3.
        # They meet only after agent 1 starts moving toward 0... but agent 2
        # oscillates on {0,1} and agent 1 stops at... both walk port 0:
        # agent 1 reaches the 0-1 oscillation region and they meet or swap.
        assert out.met or out.rounds_executed >= 100

    def test_round_budget_respected(self):
        out = run_rendezvous(line(9), waiting_agent(), 0, 8, max_rounds=17)
        assert out.undecided is True
        assert out.rounds_executed == 17

    def test_crossing_detection(self):
        # On the 8-node edge-colored line, port 0 from node 2 leads to 3 and
        # port 0 from node 3 leads to 2: alternators started there swap
        # along the edge in round 1 (a crossing, not a meeting).
        t = edge_colored_line(8)
        out = run_rendezvous(t, alternator(), 2, 3, max_rounds=200, record_trace=True)
        assert not out.met or out.meeting_round > 1
        assert out.crossings > 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            run_rendezvous(line(3), waiting_agent(), 0, 9)
        with pytest.raises(SimulationError):
            run_rendezvous(line(3), waiting_agent(), 0, 1, delay=-1)
        with pytest.raises(SimulationError):
            run_rendezvous(line(3), waiting_agent(), 0, 1, delayed=3)


class TestTraceRecording:
    def test_trace_shapes(self):
        out = run_rendezvous(
            line(5), port0_walker(), 1, 4, max_rounds=50, record_trace=True
        )
        assert out.trace is not None
        assert out.trace.start1 == 1 and out.trace.start2 == 4
        assert len(out.trace) == out.rounds_executed
        first = out.trace.records[0]
        assert first.pos1 == 0  # walker moved 1 -> 0 in round 1

    def test_idle_counts(self):
        out = run_rendezvous(
            line(6), waiting_agent(), 0, 5, max_rounds=10, record_trace=True
        )
        q1, q2 = out.trace.idle_counts(10)
        assert q1 == q2 == 10

    def test_positions_series(self):
        out = run_rendezvous(
            line(6), port0_walker(), 2, 5, max_rounds=10, record_trace=True
        )
        pos = out.trace.positions()
        assert pos[0] == (2, 5)
        # port-0 walker strictly decreases until reaching node 0
        assert pos[1] == (1, 4)


class TestMeetingSemantics:
    def test_meeting_with_not_yet_started_agent_counts(self):
        # Agent 2 delayed forever-ish; agent 1 walks onto its start node.
        out = run_rendezvous(line(3), port0_walker(), 2, 0, delay=1000, delayed=2)
        assert out.met
        assert out.meeting_round == 2

    def test_star_center_meeting(self):
        out = run_rendezvous(star(3), port0_walker(), 1, 2)
        assert out.met
        assert out.meeting_node == 0
        assert out.meeting_round == 1

    def test_swap_is_not_meeting(self):
        # Two alternators that cross inside an edge do NOT rendezvous.
        t = edge_colored_line(4)
        out = run_rendezvous(
            t, alternator(), 1, 2, max_rounds=64, certify=True, record_trace=True
        )
        # whatever happens, any round where they swapped is not a meeting
        for prev, nxt in zip(out.trace.positions(), out.trace.positions()[1:]):
            if prev[0] == nxt[1] and prev[1] == nxt[0]:
                assert nxt[0] != nxt[1]
