"""Tests for the solo instrumentation runner."""

import pytest

from repro.agents import STAY, Automaton
from repro.core import rendezvous_agent
from repro.errors import SimulationError
from repro.sim import run_solo
from repro.trees import line, star


class TestRunSolo:
    def test_positions_recorded(self):
        walker = Automaton(1, {}, [0])
        run = run_solo(line(5), 3, walker, 3)
        assert run.positions == [2, 1, 0]
        assert run.final_position == 0
        assert run.rounds == 3

    def test_register_events_ordered(self):
        run = run_solo(line(9), 0, rendezvous_agent(max_outer=1), 10_000)
        rounds = [ev.round_index for ev in run.register_events]
        assert rounds == sorted(rounds)
        assert run.register_events  # the Thm 4.1 agent declares counters

    def test_first_change_and_series(self):
        run = run_solo(line(9), 0, rendezvous_agent(max_outer=1), 10_000)
        first = run.first_change("explo_nu")
        assert first is not None
        series = run.value_series("explo_nu")
        assert series[0][0] == first
        assert run.first_change("no_such_register") is None

    def test_finished_flag(self):
        # easy case (central node): the agent walks to the hub and returns.
        run = run_solo(star(4), 1, rendezvous_agent(max_outer=1), 100)
        assert run.finished
        assert run.final_position == 0  # waiting at the hub

    def test_automaton_agents_supported(self):
        bouncer = Automaton(1, {}, [STAY])
        run = run_solo(line(4), 2, bouncer, 10)
        assert run.positions == [2] * 10
        assert run.register_events == []

    def test_validation(self):
        with pytest.raises(SimulationError):
            run_solo(line(4), 9, rendezvous_agent(), 10)

    def test_budget_respected(self):
        run = run_solo(line(21), 0, rendezvous_agent(max_outer=5), 37)
        assert run.rounds == 37
        assert not run.finished


class TestTradeoff:
    def test_rows_complete(self):
        from repro.analysis import reps_factor_tradeoff, stress_instances

        pool = stress_instances(sizes=(7, 9), pairs_per_tree=2)
        rows = reps_factor_tradeoff(factors=(2, 5), instances=pool)
        assert len(rows) == 2
        for row in rows:
            assert row.success_rate == 1.0
            assert row.worst_round >= row.mean_round >= 1

    def test_stress_instances_feasible(self):
        from repro.analysis import stress_instances
        from repro.trees import perfectly_symmetrizable

        for tree, u, v in stress_instances(sizes=(9,), pairs_per_tree=4):
            assert not perfectly_symmetrizable(tree, u, v)
