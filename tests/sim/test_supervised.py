"""Tests for the supervised sweep pool (repro.sim.supervise).

The pool's contract: per-job wall-clock timeouts, bounded retry with
backoff, dead-worker detection and respawn, structured JobFailure rows
instead of batch-wide crashes, checkpointed resume, and no leaked
worker processes on any path.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.agents import STAY, Automaton, alternator
from repro.scenarios.backends import BatchedBackend
from repro.scenarios.spec import ScenarioError
from repro.sim import (
    BatchJob,
    GatheringJob,
    JobFailure,
    SweepCheckpoint,
    job_fingerprint,
    run_batch,
    run_batch_supervised,
    run_gathering_batch,
    run_gathering_batch_supervised,
)
from repro.sim.supervise import decode_outcome, encode_outcome
from repro.trees import line, spider


def walker():
    return Automaton(1, {}, [0])


class KillerAgent:
    """Duck-typed agent that SIGKILLs its worker process on start —
    simulates an OOM-killed / externally killed worker mid-job."""

    def start(self, degree):
        os.kill(os.getpid(), signal.SIGKILL)

    def step(self, in_port, degree):
        return STAY

    def clone(self):
        return KillerAgent()


def healthy_jobs():
    t = line(6)
    return [
        BatchJob(t, walker(), u, v, delay=d, max_rounds=5000, certify=True)
        for (u, v, d) in [(0, 5, 0), (1, 4, 2), (2, 5, 1), (0, 3, 0)]
    ]


def hang_job():
    """Alternator 0<->8 on a plain line never meets; without
    certification the run spins to max_rounds — minutes of wall clock,
    an effective hang for a sub-second timeout."""
    return BatchJob(
        line(9), alternator(), 0, 8,
        delay=0, certify=False, max_rounds=10**9,
    )


def as_verdicts(outcomes):
    return [(o.met, o.meeting_round, o.certified_never) for o in outcomes]


def assert_no_leaked_workers():
    deadline = time.monotonic() + 5.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


class TestHealthyPaths:
    def test_pooled_matches_plain_batch(self):
        plain = run_batch(healthy_jobs(), processes=2)
        supervised = run_batch_supervised(healthy_jobs(), processes=2)
        assert as_verdicts(supervised) == as_verdicts(plain)
        assert_no_leaked_workers()

    def test_supervised_outcomes_carry_no_trace_or_agents(self):
        for out in run_batch_supervised(healthy_jobs(), processes=2):
            assert out.trace is None
            assert out.agents == ()

    def test_serial_path_matches(self):
        plain = run_batch(healthy_jobs(), processes=1)
        supervised = run_batch_supervised(healthy_jobs(), processes=1)
        assert as_verdicts(supervised) == as_verdicts(plain)

    def test_empty_batch(self):
        assert run_batch_supervised([]) == []
        assert run_gathering_batch_supervised([]) == []

    def test_unpicklable_jobs_fall_back_to_serial(self):
        closure_agent = Automaton(1, lambda s, ip, d: 0, [STAY])
        jobs = [BatchJob(line(5), closure_agent, 1, 3, max_rounds=50, certify=True)]
        # A timeout cannot preempt in-process work, but the batch must
        # still complete instead of failing on the pickle hop.
        (out,) = run_batch_supervised(jobs, processes=4, timeout=30.0)
        assert out.certified_never

    def test_gathering_supervised_matches_plain(self):
        t = spider([2, 2, 2])
        jobs = [
            GatheringJob(t, walker(), starts, delays=delays,
                         max_rounds=4000, certify=True)
            for starts, delays in [((1, 3, 5), None), ((2, 4, 6), (3, 0, 0))]
        ]
        plain = run_gathering_batch(jobs, processes=2)
        supervised = run_gathering_batch_supervised(jobs, processes=2)
        assert [(o.gathered, o.gathering_round, o.certified_never)
                for o in supervised] == [
            (o.gathered, o.gathering_round, o.certified_never) for o in plain
        ]
        assert_no_leaked_workers()


class TestFailureKinds:
    def test_timeout_yields_structured_failure(self):
        jobs = [hang_job()] + healthy_jobs()[:2]
        results = run_batch_supervised(
            jobs, processes=2, timeout=1.0, retries=0
        )
        failure = results[0]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "timeout"
        assert failure.index == 0
        assert failure.attempts == 1
        # The hung slot must not poison its neighbors.
        assert as_verdicts(results[1:]) == as_verdicts(
            run_batch(healthy_jobs()[:2], processes=1)
        )
        assert_no_leaked_workers()

    def test_retries_are_counted_and_bounded(self):
        results = run_batch_supervised(
            [hang_job()], processes=1, timeout=0.4, retries=2, backoff=0.05
        )
        (failure,) = results
        assert isinstance(failure, JobFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 3  # 1 initial + 2 retries

    def test_killed_worker_is_detected_and_respawned(self):
        jobs = [
            healthy_jobs()[0],
            BatchJob(line(5), KillerAgent(), 0, 4, max_rounds=50),
            healthy_jobs()[1],
        ]
        results = run_batch_supervised(jobs, processes=2, retries=1)
        failure = results[1]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "crash"
        assert failure.attempts == 2
        # Neighbors completed even though a pool worker died mid-batch.
        assert not isinstance(results[0], JobFailure)
        assert not isinstance(results[2], JobFailure)
        assert_no_leaked_workers()

    def test_in_job_errors_are_deterministic_and_never_retried(self):
        bad = BatchJob(line(5), walker(), 0, 99, max_rounds=50)  # start off-tree
        results = run_batch_supervised(
            [bad] + healthy_jobs()[:1], processes=2, retries=3
        )
        failure = results[0]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "error"
        assert failure.attempts == 1  # retrying would reproduce it
        assert "SimulationError" in failure.message
        assert not isinstance(results[1], JobFailure)

    def test_serial_path_reports_errors_too(self):
        bad = BatchJob(line(5), walker(), 0, 99, max_rounds=50)
        results = run_batch_supervised([bad], processes=1)
        (failure,) = results
        assert isinstance(failure, JobFailure)
        assert failure.kind == "error"


class TestCheckpointing:
    def test_checkpoint_records_and_resumes(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        jobs = healthy_jobs()
        first = run_batch_supervised(jobs[:2], processes=2, checkpoint=path)
        assert len(path.read_text().splitlines()) == 2

        full = run_batch_supervised(jobs, processes=2, checkpoint=path)
        # The two finished cells were replayed, the rest computed fresh.
        assert len(path.read_text().splitlines()) == len(jobs)
        assert as_verdicts(full) == as_verdicts(run_batch(jobs, processes=1))
        assert as_verdicts(full[:2]) == as_verdicts(first)

    def test_checkpoint_resume_skips_failures(self, tmp_path):
        # Failures are not checkpointed: a re-run must re-attempt them.
        path = tmp_path / "sweep.jsonl"
        jobs = [hang_job()] + healthy_jobs()[:1]
        run_batch_supervised(
            jobs, processes=2, timeout=0.6, retries=0, checkpoint=path
        )
        assert len(path.read_text().splitlines()) == 1  # only the healthy cell
        ckpt = SweepCheckpoint(path)
        assert job_fingerprint(0, jobs[0]) not in ckpt.load()
        assert job_fingerprint(1, jobs[1]) in ckpt.load()

    def test_checkpoint_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        jobs = healthy_jobs()[:2]
        run_batch_supervised(jobs, processes=1, checkpoint=path)
        with path.open("a") as fh:
            fh.write('{"fingerprint": "dead", "outco')  # torn mid-write
        loaded = SweepCheckpoint(path).load()
        assert len(loaded) == 2
        # And a resume over the damaged file still completes cleanly.
        results = run_batch_supervised(jobs, processes=1, checkpoint=path)
        assert as_verdicts(results) == as_verdicts(run_batch(jobs, processes=1))

    def test_fingerprints_are_stable_and_positional(self):
        jobs = healthy_jobs()
        assert job_fingerprint(0, jobs[0]) == job_fingerprint(0, jobs[0])
        assert job_fingerprint(0, jobs[0]) != job_fingerprint(1, jobs[0])
        assert job_fingerprint(0, jobs[0]) != job_fingerprint(0, jobs[1])


class TestOutcomeCodec:
    def test_rendezvous_roundtrip(self):
        (out,) = run_batch(healthy_jobs()[:1], processes=1)
        back = decode_outcome(encode_outcome(out))
        assert (back.met, back.meeting_round, back.meeting_node,
                back.rounds_executed, back.certified_never, back.crossings,
                back.crashed) == (
            out.met, out.meeting_round, out.meeting_node,
            out.rounds_executed, out.certified_never, out.crossings,
            out.crashed,
        )
        assert back.trace is None and back.agents == ()

    def test_gathering_roundtrip(self):
        job = GatheringJob(spider([2, 2, 2]), walker(), (1, 3, 5),
                           max_rounds=400, certify=True)
        (out,) = run_gathering_batch([job], processes=1)
        back = decode_outcome(encode_outcome(out))
        assert (back.gathered, back.gathering_round, back.gathering_node,
                back.positions, back.largest_cluster, back.certified_never,
                back.crashed) == (
            out.gathered, out.gathering_round, out.gathering_node,
            out.positions, out.largest_cluster, out.certified_never,
            out.crashed,
        )

    def test_codec_rejects_foreign_payloads(self):
        with pytest.raises(TypeError):
            encode_outcome(object())
        with pytest.raises(ValueError):
            decode_outcome({"type": "martian"})


class TestBatchedBackendIntegration:
    def test_supervised_backend_surfaces_failures_as_scenario_errors(self):
        backend = BatchedBackend(processes=2, timeout=0.8, retries=0)
        with pytest.raises(ScenarioError) as exc:
            backend.run_many([hang_job()] + healthy_jobs()[:1])
        assert "timeout" in str(exc.value)
        assert_no_leaked_workers()

    def test_supervised_backend_healthy_grid_matches_plain(self):
        backend = BatchedBackend(processes=2, timeout=60.0)
        plain = BatchedBackend(processes=2)
        assert as_verdicts(backend.run_many(healthy_jobs())) == as_verdicts(
            plain.run_many(healthy_jobs())
        )

    def test_backend_checkpoint_roundtrip(self, tmp_path):
        path = tmp_path / "backend.jsonl"
        backend = BatchedBackend(processes=2, checkpoint=path)
        first = backend.run_many(healthy_jobs())
        again = backend.run_many(healthy_jobs())
        assert as_verdicts(first) == as_verdicts(again)
        assert len(path.read_text().splitlines()) == len(healthy_jobs())


class _ScriptedConn:
    """Stand-in for the worker's pipe end: scripted recv, captured send."""

    def __init__(self, messages):
        self.messages = list(messages)
        self.sent = []

    def recv(self):
        if not self.messages:
            raise EOFError
        msg = self.messages.pop(0)
        if isinstance(msg, BaseException):
            raise msg
        return msg

    def send(self, payload):
        self.sent.append(payload)


class _RaisingJob:
    """Duck-typed job whose execution raises a scripted exception."""

    seed = None

    def __init__(self, exc):
        self.exc = exc

    def apply(self, run):
        raise self.exc


class TestWorkerLoopSignalDiscipline:
    """The worker loop absorbs job errors structurally but must never
    absorb KeyboardInterrupt/SystemExit (narrowed in the invariant-
    analyzer PR: the shutdown catch is EOFError/OSError only)."""

    def test_keyboard_interrupt_on_recv_propagates(self):
        from repro.sim.supervise import _worker_loop

        with pytest.raises(KeyboardInterrupt):
            _worker_loop(_ScriptedConn([KeyboardInterrupt()]), "rendezvous")

    def test_keyboard_interrupt_inside_a_job_propagates(self):
        from repro.sim.supervise import _worker_loop

        conn = _ScriptedConn([(0, 1, _RaisingJob(KeyboardInterrupt()))])
        with pytest.raises(KeyboardInterrupt):
            _worker_loop(conn, "rendezvous")
        assert conn.sent == []  # never classified as a retryable error

    def test_system_exit_inside_a_job_propagates(self):
        from repro.sim.supervise import _worker_loop

        conn = _ScriptedConn([(0, 1, _RaisingJob(SystemExit(3)))])
        with pytest.raises(SystemExit):
            _worker_loop(conn, "rendezvous")
        assert conn.sent == []

    def test_eof_means_clean_shutdown(self):
        from repro.sim.supervise import _worker_loop

        _worker_loop(_ScriptedConn([]), "rendezvous")  # returns, no raise

    def test_job_exceptions_become_error_payloads(self):
        from repro.sim.supervise import _worker_loop

        conn = _ScriptedConn([(5, 2, _RaisingJob(ValueError("boom"))), None])
        _worker_loop(conn, "rendezvous")
        assert conn.sent == [("error", 5, 2, "ValueError: boom", None)]

    def test_collecting_worker_ships_telemetry_batch_on_error(self):
        from repro.sim.supervise import _worker_loop

        conn = _ScriptedConn([(5, 2, _RaisingJob(ValueError("boom"))), None])
        _worker_loop(conn, "rendezvous", collect=True)
        ((tag, index, attempt, message, batch),) = conn.sent
        assert (tag, index, attempt, message) == ("error", 5, 2, "ValueError: boom")
        assert isinstance(batch, dict)  # partial batch still ships


class TestSupervisedTelemetry:
    def test_failures_carry_durations(self):
        results = run_batch_supervised(
            [hang_job()], processes=1, timeout=0.4, retries=1, backoff=0.05
        )
        (failure,) = results
        assert isinstance(failure, JobFailure)
        assert failure.attempts == 2
        assert len(failure.attempt_seconds) == 2
        assert all(d > 0 for d in failure.attempt_seconds)
        assert failure.duration_seconds == pytest.approx(
            sum(failure.attempt_seconds)
        )

    def test_serial_error_failures_carry_durations(self):
        bad = BatchJob(line(5), walker(), 0, 99, max_rounds=50)
        (failure,) = run_batch_supervised([bad], processes=1)
        assert isinstance(failure, JobFailure)
        assert failure.attempt_seconds != ()
        assert failure.duration_seconds >= 0

    def test_pooled_run_merges_worker_telemetry(self):
        from repro.telemetry import Telemetry, use

        telem = Telemetry()
        with use(telem):
            run_batch_supervised(healthy_jobs(), processes=2)
        snap = telem.snapshot()
        n = len(healthy_jobs())
        assert snap["counters"]["supervise.job.started"] == n
        assert snap["counters"]["supervise.job.finished"] == n
        assert snap["spans"]["supervise/job"]["count"] == n
        assert snap["spans"]["supervise/job"]["seconds"] > 0
        assert_no_leaked_workers()

    def test_serial_run_counts_lifecycle(self):
        from repro.telemetry import Telemetry, use

        telem = Telemetry()
        with use(telem):
            run_batch_supervised(healthy_jobs(), processes=1)
        snap = telem.snapshot()
        n = len(healthy_jobs())
        assert snap["counters"]["supervise.job.started"] == n
        assert snap["counters"]["supervise.job.finished"] == n

    def test_no_telemetry_means_bare_protocol(self):
        # With the default NullTelemetry, workers are spawned with
        # collect=False and replies carry None in the batch slot —
        # verified indirectly: results identical, nothing raised.
        plain = run_batch(healthy_jobs(), processes=1)
        supervised = run_batch_supervised(healthy_jobs(), processes=2)
        assert as_verdicts(supervised) == as_verdicts(plain)
