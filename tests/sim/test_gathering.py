"""Tests for the k-agent gathering extension."""

import random

import pytest

from repro.agents import STAY, Automaton
from repro.core import classify_gathering, gather
from repro.errors import SimulationError
from repro.sim import run_gathering
from repro.trees import (
    complete_binary_tree,
    line,
    random_relabel,
    spider,
    star,
    subdivide,
)


def waiting_agent():
    return Automaton(1, {}, [STAY])


def port0_walker():
    return Automaton(1, {}, [0])


class TestRunGathering:
    def test_same_start_trivial(self):
        out = run_gathering(line(5), waiting_agent(), [2, 2, 2])
        assert out.gathered and out.gathering_round == 0

    def test_walkers_merge_at_line_end(self):
        out = run_gathering(line(6), port0_walker(), [2, 4, 5], max_rounds=50)
        # all slide toward node 0 and bunch up at the 0-1 bounce
        assert out.largest_cluster >= 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            run_gathering(line(4), waiting_agent(), [1])
        with pytest.raises(SimulationError):
            run_gathering(line(4), waiting_agent(), [0, 9])
        with pytest.raises(SimulationError):
            run_gathering(line(4), waiting_agent(), [0, 1], delays=[1])

    def test_budget(self):
        out = run_gathering(line(9), waiting_agent(), [0, 4, 8], max_rounds=25)
        assert not out.gathered
        assert out.rounds_executed == 25
        assert out.positions == (0, 4, 8)


class TestClassifyGathering:
    def test_central_node(self):
        regime = classify_gathering(star(5))
        assert regime.kind == "central_node" and regime.guaranteed and regime.easy

    def test_symmetric(self):
        regime = classify_gathering(line(9))
        assert regime.kind == "symmetric" and not regime.guaranteed

    def test_asymmetric_edge(self):
        from repro.trees import double_broom

        # two hubs with different bristle counts: T' = hubs + leaves, central
        # edge between the hubs, halves non-isomorphic => asymmetric
        t = double_broom(3, 2, 3)
        regime = classify_gathering(t)
        assert regime.kind == "central_edge_asymmetric"
        assert regime.easy


class TestGatherAlgorithm:
    def test_three_agents_star_like(self):
        rng = random.Random(3)
        t = random_relabel(spider([2, 3, 4]), rng)
        outcome, regime = gather(t, [2, 5, 9])
        assert regime.kind == "central_node"
        assert outcome.gathered

    def test_four_agents_binary_tree(self):
        rng = random.Random(5)
        t = random_relabel(complete_binary_tree(3), rng)
        outcome, regime = gather(t, [7, 9, 12, 14])
        assert regime.easy
        assert outcome.gathered

    def test_delays_in_easy_regime(self):
        rng = random.Random(7)
        t = random_relabel(subdivide(spider([2, 2, 3]), 1), rng)
        outcome, regime = gather(t, [1, 4, 8], delays=[0, 17, 40])
        assert regime.kind == "central_node"
        assert outcome.gathered

    def test_symmetric_regime_reports_not_guaranteed(self):
        t = line(9)
        outcome, regime = gather(t, [0, 4], max_rounds=200_000)
        assert regime.kind == "symmetric"
        # two agents: this is plain rendezvous and should still meet
        assert outcome.gathered
