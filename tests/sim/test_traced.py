"""Unit tests for route-B lowering: solo traces, mirrors, suffix links."""

import random

import pytest

from repro.agents import AgentProgram, Ctx, NULL_PORT, STAY, move, stay
from repro.core import baseline_agent, rendezvous_agent
from repro.errors import BudgetExceededError, SimulationError
from repro.sim import run_rendezvous
from repro.sim.multi import run_gathering_reference
from repro.sim.traced import (
    ACTIVE,
    CYCLED,
    FINISHED,
    GLOBAL_TRACE_CACHE,
    MirrorTrace,
    SoloTrace,
    TraceCache,
    ensure_lasso,
    run_gathering_traced,
    run_rendezvous_traced,
    solo_trace,
    sweep_delays_traced,
    sweep_gathering_traced,
    traced_automaton,
)
from repro.trees import edge_colored_line, line
from repro.trees.automorphism import port_preserving_automorphism


def walker3():
    def prog(start_degree, regs):
        ctx = Ctx(NULL_PORT, start_degree)
        regs.declare("s", 3)
        for k in range(3):
            regs["s"] = k
            yield from move(ctx, 0)

    return AgentProgram(prog)


def perpetual_walker():
    def prog(start_degree, regs):
        ctx = Ctx(NULL_PORT, start_degree)
        regs.declare("k", 2)
        while True:
            for k in range(2):
                regs["k"] = k
                yield from move(ctx, 0)
            yield from stay(ctx, 1)
            yield from move(ctx, 1)

    return AgentProgram(prog)


class TestSoloTrace:
    def test_finished_trace_folds_constant(self):
        t = line(6)
        trace = SoloTrace(t, walker3(), 1)
        trace.extend(50)
        assert trace.status == FINISHED
        m = trace.rounds_recorded
        final = trace.positions[m]
        for k in (m, m + 1, m + 7, m + 500):
            assert trace.position_after(k) == final
            if k > m:
                assert trace.action_at(k) == STAY

    def test_cycled_trace_folds_periodically(self):
        t = edge_colored_line(7)
        trace = SoloTrace(t, perpetual_walker(), 2)
        trace.extend(100_000)
        assert trace.status == CYCLED
        c, lam = trace.cycle_start, trace.cycle_len
        for k in range(c + 1, c + lam + 1):
            assert trace.position_after(k) == trace.position_after(k + lam)
            assert trace.action_at(k) == trace.action_at(k + lam)

    def test_trace_matches_reference_positions(self):
        # the trace's per-round positions equal a reference solo drive
        t = line(9)
        agent = perpetual_walker()
        trace = SoloTrace(t, agent, 4)
        trace.extend(60)
        clone = agent.clone()
        pos = 4
        raw = clone.start(t.degree(pos))
        from repro.agents.observations import resolve_action

        for rnd in range(1, 61):
            a = resolve_action(raw, t.degree(pos))
            if a == STAY:
                obs = (NULL_PORT, t.degree(pos))
            else:
                pos, ip = t.move(pos, a)
                obs = (ip, t.degree(pos))
            assert trace.position_after(rnd) == pos
            assert trace.action_at(rnd) == a
            raw = clone.step(*obs)

    def test_ensure_lasso_budget_error(self):
        # the Thm 4.1 agent needs ~1e6 rounds to finish: a small budget
        # must raise the budget error (the degrade signal), not hang
        trace = SoloTrace(line(8), rendezvous_agent(max_outer=10), 0)
        with pytest.raises(BudgetExceededError):
            ensure_lasso(trace, 500)
        assert trace.status == ACTIVE  # still honest, still extendable

    def test_invalid_start_rejected(self):
        with pytest.raises(SimulationError):
            SoloTrace(line(3), walker3(), 7)


class TestTracedAutomaton:
    def test_finished_trace_rolls_into_chain(self):
        t = line(6)
        trace = ensure_lasso(SoloTrace(t, walker3(), 1), 100)
        aut = traced_automaton(trace)
        assert aut.num_states == trace.rounds_recorded
        # replay through the automaton: same resolved actions
        state = aut.initial_state
        for rnd in range(1, 10):
            assert aut.output[state] == trace.action_at(rnd)
            state = aut.transition(state, 0, 2)

    def test_cycled_trace_closes_the_lasso(self):
        t = edge_colored_line(7)
        trace = ensure_lasso(SoloTrace(t, perpetual_walker(), 2), 100_000)
        aut = traced_automaton(trace)
        state = aut.initial_state
        for rnd in range(1, 3 * trace.rounds_recorded):
            assert aut.output[state] == trace.action_at(rnd)
            state = aut.transition(state, 0, 2)

    def test_requires_a_lassoed_trace(self):
        trace = SoloTrace(line(8), rendezvous_agent(max_outer=10), 0)
        trace.extend(100)
        with pytest.raises(SimulationError):
            traced_automaton(trace)


class TestMirrorTrace:
    def test_mirror_costs_zero_interpretation(self):
        t = edge_colored_line(6)
        f = port_preserving_automorphism(t)
        assert f is not None
        cache = TraceCache()
        agent = baseline_agent()
        src = cache.get(t, agent, 0)
        src.extend(50)
        mirror = cache.get(t, agent, f[0])
        assert isinstance(mirror, MirrorTrace)
        assert mirror.agent is None  # never interpreted
        mirror.extend(50)
        for rnd in range(1, 51):
            assert mirror.position_after(rnd) == f[src.position_after(rnd)]
            assert mirror.action_at(rnd) == src.action_at(rnd)

    def test_mirror_equals_direct_interpretation(self):
        t = edge_colored_line(6)
        f = port_preserving_automorphism(t)
        agent = baseline_agent()
        cache = TraceCache()
        src = cache.get(t, agent, 1)
        src.extend(1)  # make it the registered real trace
        mirror = cache.get(t, agent, f[1])
        direct = SoloTrace(t, agent, f[1])
        mirror.extend(200)
        direct.extend(200)
        upto = min(mirror.rounds_recorded, direct.rounds_recorded)
        assert mirror.positions[:upto + 1] == direct.positions[:upto + 1]
        assert mirror.actions[:upto] == direct.actions[:upto]


class TestSuffixLinking:
    def test_thm41_traces_link_across_starts(self):
        # all starts of one symmetric-ish line converge to the canonical
        # figure-2 loop; sibling traces must link instead of re-interpreting
        rng = random.Random(3)
        from repro.trees.labelings import random_relabel

        t = random_relabel(line(12), rng)
        cache = TraceCache()
        proto = rendezvous_agent(max_outer=10)
        traces = [cache.get(t, proto, s) for s in range(t.n)]
        for tr in traces:
            tr.extend(4000)
        linked = [tr for tr in traces if tr._link is not None]
        assert linked, "no sibling trace linked on a symmetric line"
        for tr in linked:
            src, off = tr._link
            # linked rounds replay the source exactly
            for rnd in range(tr._link_round, min(tr.rounds_recorded, 4000) + 1):
                assert tr.positions[rnd] == src.positions[rnd + off]

    def test_linked_traces_keep_reference_parity(self):
        rng = random.Random(3)
        from repro.trees.labelings import random_relabel

        t = random_relabel(line(12), rng)
        proto = rendezvous_agent(max_outer=10)
        ref_proto = rendezvous_agent(max_outer=10)
        for (u, v) in [(0, 11), (1, 10), (2, 9), (3, 8)]:
            ref = run_rendezvous(t, ref_proto, u, v, max_rounds=60_000)
            low = run_rendezvous_traced(t, proto, u, v, max_rounds=60_000)
            assert (ref.met, ref.meeting_round, ref.meeting_node) == (
                low.met, low.meeting_round, low.meeting_node
            )


class TestTracedRuns:
    def test_rendezvous_parity_with_delays(self):
        t = line(9)
        proto = baseline_agent()
        for (u, v, delay, delayed) in [
            (1, 5, 0, 2), (0, 7, 3, 1), (2, 8, 5, 2), (4, 4, 0, 2),
        ]:
            ref = run_rendezvous(
                t, baseline_agent(), u, v,
                delay=delay, delayed=delayed, max_rounds=50_000,
            )
            low = run_rendezvous_traced(
                t, proto, u, v,
                delay=delay, delayed=delayed, max_rounds=50_000,
            )
            assert (ref.met, ref.meeting_round, ref.meeting_node,
                    ref.crossings) == (
                low.met, low.meeting_round, low.meeting_node, low.crossings
            )

    def test_certifies_never_meeting_program_agents(self):
        # the reference engine cannot certify programs (no finite state
        # attribute); the traced backend can, via machine-state lassos
        t = edge_colored_line(4)
        f = port_preserving_automorphism(t)
        u = 0
        ref = run_rendezvous(
            t, baseline_agent(), u, f[u], max_rounds=50_000, certify=True
        )
        low = run_rendezvous_traced(
            t, baseline_agent(), u, f[u], max_rounds=50_000, certify=True
        )
        assert ref.undecided  # the oracle can only run out its budget
        assert low.certified_never  # lowering turns that into proof

    def test_record_trace_matches_reference(self):
        t = line(7)
        ref = run_rendezvous(
            t, baseline_agent(), 1, 5,
            delay=2, max_rounds=5000, record_trace=True,
        )
        low = run_rendezvous_traced(
            t, baseline_agent(), 1, 5,
            delay=2, max_rounds=5000, record_trace=True,
        )
        rr = [(r.round_index, r.pos1, r.pos2, r.action1, r.action2)
              for r in ref.trace.records]
        ll = [(r.round_index, r.pos1, r.pos2, r.action1, r.action2)
              for r in low.trace.records]
        assert rr == ll

    def test_outcome_agents_are_fresh_clones(self):
        out = run_rendezvous_traced(line(7), baseline_agent(), 1, 5,
                                    max_rounds=5000)
        assert out.met
        for agent in out.agents:
            assert agent.registers.report() == {}  # unexecuted, documented

    def test_gathering_parity(self):
        t = line(8)
        proto = baseline_agent()
        for starts, delays in [
            ([0, 3, 6], None), ([1, 4, 7], [0, 1, 2]), ([0, 2, 5, 7], None),
        ]:
            ref = run_gathering_reference(
                t, baseline_agent(), starts, delays=delays, max_rounds=50_000
            )
            low = run_gathering_traced(
                t, proto, starts, delays=delays, max_rounds=50_000
            )
            assert (ref.gathered, ref.gathering_round, ref.gathering_node,
                    ref.largest_cluster) == (
                low.gathered, low.gathering_round, low.gathering_node,
                low.largest_cluster
            )


class TestTracedSweeps:
    def test_delay_sweep_matches_per_delay_reference(self):
        t = line(6)
        proto = baseline_agent()
        for dv in sweep_delays_traced(t, proto, 0, 3, max_delay=6):
            ref = run_rendezvous(
                t, baseline_agent(), 0, 3,
                delay=dv.delay, delayed=dv.delayed, max_rounds=100_000,
            )
            assert ref.met == dv.met
            if dv.met:
                assert ref.meeting_round == dv.meeting_round

    def test_same_start_sweep_meets_at_round_zero(self):
        verdicts = sweep_delays_traced(line(6), baseline_agent(), 2, 2,
                                       max_delay=3)
        assert all(dv.met and dv.meeting_round == 0 for dv in verdicts)

    def test_gathering_sweep_matches_reference(self):
        t = line(8)
        proto = baseline_agent()
        vectors = [[0, 0, 0], [0, 1, 2], [2, 1, 0]]
        verdicts = sweep_gathering_traced(t, proto, [0, 3, 6], vectors)
        for vec, gv in zip(vectors, verdicts):
            ref = run_gathering_reference(
                t, baseline_agent(), [0, 3, 6], delays=vec, max_rounds=100_000
            )
            assert ref.gathered == gv.gathered
            if gv.gathered:
                assert ref.gathering_round == gv.gathering_round

    def test_unlassoable_trace_raises_budget_error(self):
        with pytest.raises(BudgetExceededError):
            sweep_delays_traced(
                line(8), rendezvous_agent(max_outer=10), 0, 5,
                max_delay=4, trace_budget=500,
            )


class TestLinkEdgeCases:
    def test_link_inside_source_cycle_folds_past_raw_region(self):
        """A link landing *inside* the source's cycle shifts the cycle
        range past the source's recorded rounds; the carry-over must
        complete it through the source's fold, not crash indexing."""
        t = edge_colored_line(7)
        agent = perpetual_walker()
        src = SoloTrace(t, agent, 2)
        src.extend(100_000)
        assert src.status == CYCLED
        c, lam = src.cycle_start, src.cycle_len

        twin = SoloTrace(t, agent, 2)  # identical trajectory: twin(t)=src(t)
        r = c + max(lam // 2, 1)
        twin.extend(r)
        assert twin.status == ACTIVE
        twin._link = (src, 0)
        twin._link_round = r
        twin._extend_linked(r + 1)
        assert twin.status == CYCLED
        for k in range(1, c + 3 * lam):
            assert twin.position_after(k) == src.position_after(k)
            assert twin.action_at(k) == src.action_at(k)

    def test_mutual_links_are_refused(self):
        t = line(7)
        agent = baseline_agent()
        a = SoloTrace(t, agent, 0)
        b = SoloTrace(t, agent, 1)
        c = SoloTrace(t, agent, 2)
        a._link = (b, 3)
        # b must not link back into its own chain ...
        assert b._resolve_link(a, 10, 7) is None
        # ... while an unrelated trace flattens through to the root
        assert c._resolve_link(a, 10, 7) == (b, 6)


class TestCacheEviction:
    def test_dead_trees_leave_the_cache(self):
        import gc

        cache = TraceCache()
        proto = baseline_agent()
        for _ in range(10):
            t = line(6)
            cache.get(t, proto, 1).extend(20)
            del t
        gc.collect()
        per_tree = cache._by_proto[proto]
        assert len(per_tree) == 0, "trace entries pinned their dead trees"


class TestCacheSharing:
    def test_traces_are_shared_per_prototype_tree_start(self):
        t = line(7)
        proto = baseline_agent()
        a = solo_trace(t, proto, 2)
        b = solo_trace(t, proto, 2)
        assert a is b
        assert solo_trace(t, proto, 3) is not a
        assert solo_trace(t, baseline_agent(), 2) is not a  # other prototype
        assert solo_trace(t, proto, 2, cache=False) is not a

    def test_global_cache_clear(self):
        t = line(5)
        proto = baseline_agent()
        a = solo_trace(t, proto, 1)
        GLOBAL_TRACE_CACHE.clear()
        assert solo_trace(t, proto, 1) is not a
