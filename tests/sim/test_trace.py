"""Unit tests for the trace container and errors module."""

import pytest

from repro.agents import STAY, Automaton
from repro.errors import (
    AgentProtocolError,
    ConstructionError,
    InfeasibleRendezvousError,
    InvalidLabelingError,
    InvalidPortError,
    InvalidTreeError,
    ReproError,
    SimulationError,
)
from repro.sim import run_rendezvous
from repro.sim.trace import RoundRecord, Trace
from repro.trees import line


class TestTraceContainer:
    def test_append_and_len(self):
        t = Trace(0, 3)
        t.append(RoundRecord(1, 1, 2, 0, 0))
        t.append(RoundRecord(2, 2, 2, 0, STAY))
        assert len(t) == 2

    def test_moved_flags(self):
        rec = RoundRecord(1, 0, 1, STAY, 1)
        assert not rec.moved1 and rec.moved2

    def test_positions_includes_start(self):
        t = Trace(4, 7)
        t.append(RoundRecord(1, 3, 7, 0, STAY))
        assert t.positions() == [(4, 7), (3, 7)]

    def test_idle_counts_partial_window(self):
        t = Trace(0, 1)
        t.append(RoundRecord(1, 0, 2, STAY, 0))
        t.append(RoundRecord(2, 1, 2, 0, STAY))
        t.append(RoundRecord(3, 1, 2, STAY, STAY))
        assert t.idle_counts(2) == (1, 1)
        assert t.idle_counts(3) == (2, 2)

    def test_trace_round_trip_from_engine(self):
        walker = Automaton(1, {}, [0])
        out = run_rendezvous(line(5), walker, 0, 4, max_rounds=6, record_trace=True)
        assert out.trace is not None
        for rec in out.trace.records:
            assert 0 <= rec.pos1 < 5 and 0 <= rec.pos2 < 5


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            InvalidTreeError,
            InvalidPortError,
            InvalidLabelingError,
            SimulationError,
            AgentProtocolError,
            InfeasibleRendezvousError,
            ConstructionError,
        ):
            assert issubclass(exc, ReproError)

    def test_catchable_at_base(self):
        with pytest.raises(ReproError):
            raise InvalidPortError("x")

    def test_distinct_branches(self):
        assert not issubclass(SimulationError, InvalidTreeError)
        assert not issubclass(AgentProtocolError, SimulationError)
