"""Tests for standalone non-meeting certificates."""

import pytest

from repro.agents import STAY, Automaton, alternator, pausing_walker
from repro.errors import SimulationError
from repro.sim.certificates import JointConfig, build_certificate
from repro.trees import edge_colored_line, line


def waiting_agent():
    return Automaton(1, {}, [STAY])


class TestBuildCertificate:
    def test_two_waiters(self):
        cert = build_certificate(line(5), waiting_agent(), 0, 4)
        assert cert.verify()
        assert len(cert.cycle) == 1  # the static configuration repeats at once

    def test_mirror_alternators(self):
        # symmetric labeling + mirror starts: eternal crossing
        t = edge_colored_line(6)
        cert = build_certificate(t, alternator(), 1, 4)
        assert cert.verify()
        assert cert.lasso_length >= 2

    def test_with_delay(self):
        from repro.lowerbounds import build_thm31_instance

        inst = build_thm31_instance(pausing_walker(1), verify=False)
        cert = build_certificate(
            inst.tree,
            pausing_walker(1),
            inst.start1,
            inst.start2,
            delay=inst.delay,
            delayed=inst.delayed,
        )
        assert cert.verify()

    def test_meeting_instance_rejected(self):
        walker = Automaton(1, {}, [0])
        with pytest.raises(SimulationError):
            build_certificate(line(6), walker, 2, 4)

    def test_same_start_rejected(self):
        with pytest.raises(SimulationError):
            build_certificate(line(4), waiting_agent(), 1, 1)

    def test_budget_exhaustion(self):
        t = edge_colored_line(12)
        with pytest.raises(SimulationError):
            build_certificate(t, alternator(), 1, 10, max_rounds=2)


class TestVerifyRejectsTampering:
    def _cert(self):
        return build_certificate(edge_colored_line(6), alternator(), 1, 4)

    def test_tampered_cycle_fails(self):
        cert = self._cert()
        bad_cfg = JointConfig(0, 0, -1, 0, 0, -1)  # a meeting configuration
        from dataclasses import replace

        bad = replace(cert, cycle=(bad_cfg,) + cert.cycle[1:])
        assert not bad.verify()

    def test_truncated_cycle_fails(self):
        cert = self._cert()
        if len(cert.cycle) < 2:
            pytest.skip("cycle too short to truncate")
        from dataclasses import replace

        bad = replace(cert, cycle=cert.cycle[:-1])
        assert not bad.verify()

    def test_empty_cycle_rejected(self):
        cert = self._cert()
        from dataclasses import replace

        with pytest.raises(SimulationError):
            replace(cert, cycle=()).verify()
