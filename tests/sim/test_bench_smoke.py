"""Tier-1 smoke run of the engine benchmark (satellite of the compiled
backend PR): keeps BENCH_engine.json fresh and guards the headline
speedups against regression without leaving the tier-1 time budget."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_bench_engine():
    path = REPO_ROOT / "benchmarks" / "bench_engine.py"
    spec = importlib.util.spec_from_file_location("bench_engine", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_engine"] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.bench_smoke
def test_bench_engine_quick_emits_json(tmp_path):
    # Emit into tmp_path: the versioned BENCH_engine.json at the repo root
    # is refreshed only by `make bench-smoke` / `make bench-engine`, so a
    # plain pytest run never dirties the working tree.
    payload = load_bench_engine().main(quick=True, out_dir=tmp_path)

    path = tmp_path / "BENCH_engine.json"
    assert path.exists()
    on_disk = json.loads(path.read_text())
    assert on_disk["bench"] == "engine-backends"
    assert on_disk["throughput"]["compiled_rounds_per_sec"] > 0
    assert on_disk["throughput"]["reference_rounds_per_sec"] > 0

    # Correctness gates hard; wall-clock ratios gate loosely (both sides
    # are timed back-to-back in-process, so the ratio is stable, but CI
    # boxes are noisy — the honest bar lives in the recorded JSON).
    sweep = payload["delay_sweep"]
    assert sweep["verdicts_match"], "batch solver diverged from the reference"
    assert sweep["speedup"] >= 5
    assert payload["throughput"]["speedup"] > 1.0


def load_bench_gathering():
    path = REPO_ROOT / "benchmarks" / "bench_gathering.py"
    spec = importlib.util.spec_from_file_location("bench_gathering", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_gathering"] = module
    spec.loader.exec_module(module)
    return module


def load_bench_lowering():
    path = REPO_ROOT / "benchmarks" / "bench_lowering.py"
    spec = importlib.util.spec_from_file_location("bench_lowering", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_lowering"] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.bench_smoke
def test_bench_lowering_quick_records_speedup(tmp_path):
    # Quick mode runs the strong-sharing subset of the success-families
    # grid plus a small lowered verify-small, merging a "lowering"
    # section into BENCH_engine.json (in tmp_path — the versioned file
    # is refreshed only by `make bench-smoke`).
    section = load_bench_lowering().main(quick=True, out_dir=tmp_path)

    on_disk = json.loads((tmp_path / "BENCH_engine.json").read_text())
    assert on_disk["lowering"]["success_families_grid"]["pairs"] > 0

    grid = section["success_families_grid"]
    # Correctness gates hard; the wall-clock ratio gates loosely (CI
    # boxes are noisy — the honest >= 5x bar lives in the recorded JSON
    # from the full `benchmarks/bench_lowering.py` run).
    assert grid["verdicts_match"], "lowered grid diverged from the reference"
    assert grid["speedup"] >= 3
    # the lowered verify-small grid ran end to end and persisted
    verify = section["verify_small"]
    assert verify["backend"] == "compiled"
    assert all(row["failures"] == 0 for row in verify["rows"])
    assert (tmp_path / "verify-small.json").exists()


def load_bench_kernel():
    path = REPO_ROOT / "benchmarks" / "bench_kernel.py"
    spec = importlib.util.spec_from_file_location("bench_kernel", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_kernel"] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.bench_smoke
def test_bench_kernel_quick_records_speedup(tmp_path):
    # Quick mode sweeps the QUICK_FAMILIES subset of the success
    # families grid through the frontier kernel and merges a "kernel"
    # section into BENCH_engine.json (in tmp_path — the versioned file
    # is refreshed only by `make bench-smoke`).
    section = load_bench_kernel().main(quick=True, out_dir=tmp_path)

    on_disk = json.loads((tmp_path / "BENCH_engine.json").read_text())
    assert on_disk["kernel"]["success_families_grid"]["pairs"] > 0

    grid = section["success_families_grid"]
    # Correctness gates hard; the wall-clock ratio gates loosely (CI
    # boxes are noisy — the honest >= 5x bar lives in the recorded JSON
    # from the full `benchmarks/bench_kernel.py` run).
    assert grid["verdicts_match"], "kernel grid diverged from the dict solver"
    assert grid["reference_match"], "kernel grid diverged from the reference"
    assert grid["speedup"] >= 3
    sweep = section["sweep_511"]
    assert sweep["verdicts_match"], "kernel sweep diverged"
    cache = section["table_cache"]
    assert cache["tables"] > 0 and cache["entries"] > 0


@pytest.mark.bench_smoke
def test_bench_gathering_quick_emits_result(tmp_path):
    # Quick mode runs the first gathering grid and persists its
    # schema-validated result into tmp_path (never the working tree).
    results = load_bench_gathering().main(quick=True, out_dir=tmp_path)

    (name,) = results
    path = tmp_path / f"{name}.json"
    assert path.exists()
    on_disk = json.loads(path.read_text())
    assert on_disk["kind"] == "gathering_sweep"
    assert on_disk["summary"]["ok"] is True
    assert on_disk["summary"]["undecided"] == 0
    # the registry defaults exercise both verdict classes
    verdicts = {row["verdict"] for row in on_disk["rows"]}
    assert verdicts == {"met", "certified-never"}
