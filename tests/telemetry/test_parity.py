"""Telemetry parity: observing a run must not change it.

The acceptance contract for the observability layer: for the same spec,
a run under an active Telemetry produces byte-identical rows and
summaries to a run under the default NullTelemetry, on every backend —
and a disabled run's payload carries no telemetry key at all, so stored
goldens are unaffected.
"""

import pytest

from repro.scenarios import Runner
from repro.scenarios.spec import DelayPolicy, ScenarioSpec
from repro.scenarios.store import validate_payload
from repro.telemetry import SCHEMA, Telemetry, use

BACKENDS = ("reference", "compiled", "auto")


def spec():
    return ScenarioSpec(
        name="parity-delays",
        kind="delay_sweep",
        tree="colored:9",
        agent="alternator",
        pairs=((0, 5),),
        delays=DelayPolicy.sweep(6),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_rows_and_summary_identical_with_and_without_telemetry(backend):
    plain = Runner(backend=backend).run(spec())
    telem = Telemetry()
    observed = Runner(backend=backend).run(spec(), telemetry=telem)
    assert observed.rows == plain.rows
    assert observed.summary == plain.summary
    assert observed.ok == plain.ok
    assert observed.spec_hash() == plain.spec_hash()


@pytest.mark.parametrize("backend", BACKENDS)
def test_disabled_payload_has_no_telemetry_key(backend):
    result = Runner(backend=backend).run(spec())
    payload = result.to_payload()
    assert "telemetry" not in payload
    validate_payload(payload)


def test_enabled_payload_carries_schema_versioned_block():
    result = Runner(backend="auto").run(spec(), telemetry=Telemetry())
    payload = result.to_payload()
    block = payload["telemetry"]
    assert block["schema"] == SCHEMA
    for key in ("counters", "spans", "phases", "events"):
        assert isinstance(block[key], dict)
    validate_payload(payload)


def test_auto_backend_reports_its_dispatch_tier():
    telem = Telemetry()
    Runner(backend="auto").run(spec(), telemetry=telem)
    counters = telem.snapshot()["counters"]
    tiers = [k for k in counters if k.startswith("backend.dispatch.")]
    assert tiers, counters
    # alternator on a colored line is kernel-eligible: the delay sweep
    # must report the exact tier, not a silent per-run degrade
    assert "backend.dispatch.sweep_delays.exact" in counters


def test_phases_cover_the_run():
    telem = Telemetry()
    result = Runner(backend="auto").run(spec(), telemetry=telem)
    phases = result.telemetry["phases"]
    assert set(phases) == {"resolve", "execute"}
    # execute is timed by the same wall the runner's elapsed_seconds
    # uses; it must account for (almost) all of it
    assert phases["execute"] <= result.elapsed_seconds + 0.05
    assert phases["execute"] >= 0


def test_ambient_context_is_picked_up_without_explicit_seam():
    telem = Telemetry()
    with use(telem):
        result = Runner(backend="auto").run(spec())
    assert result.telemetry is not None
    assert result.telemetry["counters"]


def test_explicit_seam_wins_over_ambient():
    ambient, explicit = Telemetry(), Telemetry()
    with use(ambient):
        Runner(backend="auto").run(spec(), telemetry=explicit)
    assert explicit.snapshot()["counters"]
    assert ambient.snapshot()["counters"] == {}


def test_runner_level_seam():
    telem = Telemetry()
    result = Runner(backend="auto", telemetry=telem).run(spec())
    assert result.telemetry is not None
    assert telem.snapshot()["counters"]
