"""Unit tests for the telemetry primitives (repro.telemetry.core).

The contract under test: counters/spans/events aggregate correctly,
``export_batch``/``merge`` round-trip across a (simulated) process
boundary, the contextvar plumbing restores cleanly, and the default
``NullTelemetry`` is a complete no-op that still satisfies the full
interface.
"""

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    SCHEMA,
    NullTelemetry,
    Telemetry,
    current,
    use,
)


class TestCounters:
    def test_count_accumulates(self):
        t = Telemetry()
        t.count("a")
        t.count("a", 2)
        t.count("b")
        snap = t.snapshot()
        assert snap["counters"] == {"a": 3, "b": 1}

    def test_snapshot_counters_are_sorted(self):
        t = Telemetry()
        for name in ("zeta", "alpha", "mid"):
            t.count(name)
        assert list(t.snapshot()["counters"]) == ["alpha", "mid", "zeta"]


class TestSpans:
    def test_span_records_count_and_seconds(self):
        t = Telemetry()
        with t.span("work"):
            pass
        with t.span("work"):
            pass
        snap = t.snapshot()
        assert snap["spans"]["work"]["count"] == 2
        assert snap["spans"]["work"]["seconds"] >= 0

    def test_span_records_on_exception(self):
        t = Telemetry()
        with pytest.raises(ValueError):
            with t.span("work"):
                raise ValueError("boom")
        assert t.snapshot()["spans"]["work"]["count"] == 1

    def test_phase_shows_up_in_phases(self):
        t = Telemetry()
        with t.phase("resolve"):
            pass
        snap = t.snapshot()
        assert "resolve" in snap["phases"]
        assert snap["phases"]["resolve"] >= 0

    def test_add_span_aggregates_externally_timed_work(self):
        t = Telemetry()
        t.add_span("job", 0.5)
        t.add_span("job", 0.25, n=2)
        span = t.snapshot()["spans"]["job"]
        assert span["count"] == 3
        assert span["seconds"] == pytest.approx(0.75)


class TestEvents:
    def test_events_count_per_name(self):
        t = Telemetry()
        t.event("fallback", reason="x")
        t.event("fallback", reason="y")
        assert t.snapshot()["events"] == {"fallback": 2}

    def test_events_stream_to_sink(self):
        emitted = []

        class Sink:
            def emit(self, record):
                emitted.append(record)

        t = Telemetry(sink=Sink())
        t.event("fallback", reason="x")
        assert emitted == [{"event": "fallback", "reason": "x"}]


class TestBatchRoundTrip:
    def test_export_then_merge_reproduces_aggregates(self):
        src = Telemetry()
        src.count("c", 3)
        src.add_span("s", 1.5)
        src.event("e")
        with src.phase("p"):
            pass

        dst = Telemetry()
        dst.count("c")
        dst.merge(src.export_batch())
        snap = dst.snapshot()
        assert snap["counters"]["c"] == 4
        assert snap["spans"]["s"] == {"count": 1, "seconds": 1.5}
        assert snap["events"]["e"] == 1
        assert "p" in snap["phases"]

    def test_merge_none_batch_is_a_noop(self):
        t = Telemetry()
        t.count("c")
        t.merge(None)
        assert t.snapshot()["counters"] == {"c": 1}

    def test_batch_is_plain_picklable_data(self):
        import pickle

        t = Telemetry()
        t.count("c")
        t.add_span("s", 0.1)
        batch = pickle.loads(pickle.dumps(t.export_batch()))
        fresh = Telemetry()
        fresh.merge(batch)
        assert fresh.snapshot()["counters"]["c"] == 1


class TestSnapshotShape:
    def test_schema_version(self):
        assert Telemetry().snapshot()["schema"] == SCHEMA == "repro.telemetry/v1"

    def test_all_sections_present_even_when_empty(self):
        snap = Telemetry().snapshot()
        for key in ("counters", "spans", "phases", "events"):
            assert snap[key] == {}


class TestContextPlumbing:
    def test_default_is_the_null_telemetry(self):
        assert current() is NULL_TELEMETRY
        assert not current().enabled

    def test_use_installs_and_restores(self):
        t = Telemetry()
        with use(t):
            assert current() is t
        assert current() is NULL_TELEMETRY

    def test_use_restores_on_exception(self):
        t = Telemetry()
        with pytest.raises(RuntimeError):
            with use(t):
                raise RuntimeError
        assert current() is NULL_TELEMETRY

    def test_use_nests(self):
        outer, inner = Telemetry(), Telemetry()
        with use(outer):
            with use(inner):
                assert current() is inner
            assert current() is outer


class TestNullTelemetry:
    def test_complete_noop_interface(self):
        n = NullTelemetry()
        n.count("x")
        n.event("x", detail=1)
        n.add_span("x", 1.0)
        n.merge({"counters": {"x": 1}})
        with n.span("x"):
            pass
        with n.phase("x"):
            pass
        assert n.snapshot() is None
        assert not n.enabled

    def test_shared_instance_is_disabled(self):
        assert not NULL_TELEMETRY.enabled
