"""Tests for JSONL event sinks and offline aggregation.

The durability contract mirrors SweepCheckpoint's: per-record flush on
write, torn-tail tolerance on read (a killed writer costs at most one
record, never the stream).
"""

import json

from repro.telemetry import (
    JsonlSink,
    Telemetry,
    aggregate_events,
    read_events,
    summary_rows,
)


class TestJsonlSink:
    def test_one_sorted_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"event": "b", "z": 1, "a": 2})
        sink.emit({"event": "c"})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert lines[0] == '{"a": 2, "event": "b", "z": 1}'

    def test_lazy_open_no_file_until_first_emit(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()
        sink.emit({"event": "x"})
        assert path.exists()
        sink.close()

    def test_appends_across_sinks(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for name in ("first", "second"):
            sink = JsonlSink(path)
            sink.emit({"event": name})
            sink.close()
        records, skipped = read_events(path)
        assert [r["event"] for r in records] == ["first", "second"]
        assert skipped == 0

    def test_telemetry_streams_events_and_spans(self, tmp_path):
        path = tmp_path / "events.jsonl"
        t = Telemetry(sink=JsonlSink(path))
        t.event("fallback", reason="budget")
        with t.span("work"):
            pass
        t.sink.close()
        records, skipped = read_events(path)
        assert skipped == 0
        assert {r["event"] for r in records} == {"fallback", "span"}


class TestReadEvents:
    def test_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "nope.jsonl") == ([], 0)

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with path.open("w") as fh:
            fh.write(json.dumps({"event": "good"}) + "\n")
            fh.write('{"event": "torn", "par')  # writer died mid-line
        records, skipped = read_events(path)
        assert [r["event"] for r in records] == ["good"]
        assert skipped == 1

    def test_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with path.open("w") as fh:
            fh.write('{"not_an_event": 1}\n')
            fh.write('[1, 2, 3]\n')
            fh.write('\n')
            fh.write(json.dumps({"event": "good"}) + "\n")
        records, skipped = read_events(path)
        assert [r["event"] for r in records] == ["good"]
        assert skipped == 2  # the blank line costs nothing


class TestAggregateEvents:
    def test_rebuilds_span_aggregates(self):
        snap = aggregate_events([
            {"event": "span", "name": "work", "seconds": 0.5},
            {"event": "span", "name": "work", "seconds": 0.25},
            {"event": "fallback", "reason": "x"},
        ])
        assert snap["spans"]["work"] == {"count": 2, "seconds": 0.75}
        assert snap["events"] == {"fallback": 1}
        assert snap["schema"] == "repro.telemetry/v1"

    def test_roundtrip_through_a_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        t = Telemetry(sink=JsonlSink(path))
        t.event("kernel.fallback", reason="budget")
        t.add_span("kernel/table_build", 0.125)
        t.sink.close()
        records, _ = read_events(path)
        snap = aggregate_events(records)
        assert snap["spans"]["kernel/table_build"]["seconds"] == 0.125
        assert snap["events"]["kernel.fallback"] == 1


class TestSummaryRows:
    def test_rows_cover_every_section(self):
        t = Telemetry()
        t.count("c")
        t.event("e")
        with t.phase("p"):
            pass
        t.add_span("s", 0.5)
        rows = summary_rows(t.snapshot())
        kinds = {(r["metric"], r["kind"]) for r in rows}
        assert ("phase/p", "phase") in kinds
        assert ("c", "counter") in kinds
        assert ("e", "event") in kinds
        assert ("s", "span") in kinds

    def test_rows_render_through_format_rows(self):
        from repro.scenarios.runner import format_rows

        t = Telemetry()
        t.count("c", 2)
        text = format_rows(summary_rows(t.snapshot()))
        assert "metric" in text and "c" in text
