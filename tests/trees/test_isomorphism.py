"""Tests for explicit isomorphism witnesses."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import (
    all_trees,
    complete_binary_tree,
    line,
    random_relabel,
    random_tree,
    star,
)
from repro.trees.isomorphism import (
    find_isomorphism,
    find_port_isomorphism,
    find_rooted_isomorphism,
)


def _check_unlabeled(t1, t2, f):
    assert sorted(f.keys()) == list(range(t1.n))
    assert sorted(f.values()) == list(range(t2.n))
    for u, v in t1.edges():
        assert f[v] in t2.neighbors(f[u])


def _check_ports(t1, t2, f):
    _check_unlabeled(t1, t2, f)
    for u, v in t1.edges():
        assert t1.port(u, v) == t2.port(f[u], f[v])
        assert t1.port(v, u) == t2.port(f[v], f[u])


class TestFindIsomorphism:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_renumbering_witness(self, seed):
        rng = random.Random(seed)
        t = random_tree(rng.randrange(2, 25), rng)
        perm = list(range(t.n))
        rng.shuffle(perm)
        t2 = t.renumber_nodes(perm)
        f = find_isomorphism(t, t2)
        assert f is not None
        _check_unlabeled(t, t2, f)

    def test_nonisomorphic_rejected(self):
        trees = all_trees(7)
        for i, a in enumerate(trees):
            for b in trees[i + 1 :]:
                assert find_isomorphism(a, b) is None

    def test_size_mismatch(self):
        assert find_isomorphism(line(4), line(5)) is None

    def test_center_kind_mismatch(self):
        assert find_isomorphism(line(4), star(3)) is None


class TestFindPortIsomorphism:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_renumbering_preserves_ports(self, seed):
        rng = random.Random(seed)
        t = random_relabel(random_tree(rng.randrange(2, 25), rng), rng)
        perm = list(range(t.n))
        rng.shuffle(perm)
        t2 = t.renumber_nodes(perm)
        f = find_port_isomorphism(t, t2)
        assert f is not None
        _check_ports(t, t2, f)

    def test_relabeling_breaks_port_isomorphism_sometimes(self):
        # NB: stars are port-isomorphic to ALL their relabelings (leaves can
        # chase the permuted ports), so use a path, where the only node
        # bijections are identity/mirror and interior port flips break them.
        rng = random.Random(3)
        t = line(5)
        hits = 0
        for _ in range(20):
            t2 = random_relabel(t, rng)
            if find_port_isomorphism(t, t2) is None:
                hits += 1
        assert hits > 0

    def test_star_relabelings_always_port_isomorphic(self):
        rng = random.Random(4)
        t = star(4)
        for _ in range(10):
            t2 = random_relabel(t, rng)
            f = find_port_isomorphism(t, t2)
            assert f is not None
            _check_ports(t, t2, f)

    def test_unlabeled_still_found_after_relabel(self):
        rng = random.Random(5)
        t = complete_binary_tree(3)
        t2 = random_relabel(t, rng)
        assert find_isomorphism(t, t2) is not None


class TestRootedIsomorphism:
    def test_rooted_match_with_marks(self):
        t = complete_binary_tree(2)
        f = find_rooted_isomorphism(t, 0, t, 0)
        assert f is not None and f[0] == 0

    def test_rooted_mismatch(self):
        t = line(5)
        assert find_rooted_isomorphism(t, 0, t, 2) is None

    def test_half_restriction(self):
        t = line(6)  # central edge (2, 3)
        f = find_rooted_isomorphism(t, 2, t, 3, block1=3, block2=2)
        assert f is not None
        assert f[2] == 3 and f[0] == 5
