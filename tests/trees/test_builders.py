"""Unit tests for tree family builders."""

import random

import pytest

from repro.errors import InvalidTreeError
from repro.trees import (
    all_trees,
    binomial_tree,
    broom,
    caterpillar,
    complete_binary_tree,
    double_broom,
    double_star,
    line,
    random_bounded_degree_tree,
    random_tree,
    spider,
    star,
    subdivide,
)


class TestDeterministicFamilies:
    def test_line(self):
        t = line(5)
        assert t.n == 5
        assert t.num_leaves == 2
        assert t.diameter() == 4

    def test_line_minimum(self):
        assert line(1).n == 1
        with pytest.raises(InvalidTreeError):
            line(0)

    def test_star(self):
        t = star(6)
        assert t.n == 7
        assert t.num_leaves == 6

    def test_spider(self):
        t = spider([2, 3, 1])
        assert t.n == 7
        assert t.num_leaves == 3
        assert t.degree(0) == 3
        assert t.eccentricity(0) == 3

    def test_spider_rejects_empty_leg(self):
        with pytest.raises(InvalidTreeError):
            spider([2, 0])

    def test_caterpillar(self):
        t = caterpillar(4, [1, 0, 2, 1])
        assert t.n == 8
        # Spine ends carry hairs here, so the only leaves are the 4 hairs.
        assert t.num_leaves == 4
        assert t.max_degree() == 4  # node 2: two spine edges + two hairs

    def test_broom(self):
        t = broom(3, 4)
        assert t.n == 8
        assert t.num_leaves == 5  # 4 bristles + handle end
        assert t.degree(3) == 5

    def test_double_broom(self):
        t = double_broom(4, 3, 3)
        assert t.n == 11
        assert t.num_leaves == 6
        assert t.degree(0) == 4
        assert t.degree(4) == 4

    def test_complete_binary_tree(self):
        t = complete_binary_tree(3)
        assert t.n == 15
        assert t.num_leaves == 8
        assert t.degree(0) == 2
        assert t.max_degree() == 3

    def test_complete_binary_tree_height_zero(self):
        assert complete_binary_tree(0).n == 1

    def test_binomial_tree(self):
        for k in range(5):
            t = binomial_tree(k)
            assert t.n == 2**k
        t = binomial_tree(3)
        assert t.degree(0) == 3  # root of B_3 has degree 3

    def test_double_star(self):
        t = double_star(4)
        assert t.n == 9
        assert t.degree(0) == 4
        assert t.degree(2) == 4
        assert t.degree(1) == 2

    def test_subdivide(self):
        t = star(3)
        t2 = subdivide(t, 2)
        assert t2.n == 4 + 3 * 2
        assert t2.num_leaves == 3  # leaf count preserved
        assert subdivide(t, 0) is t


class TestRandomFamilies:
    def test_random_tree_sizes(self):
        rng = random.Random(7)
        for n in [1, 2, 3, 10, 50]:
            t = random_tree(n, rng)
            assert t.n == n

    def test_random_tree_distribution_touches_both_extremes(self):
        rng = random.Random(3)
        shapes = set()
        for _ in range(60):
            t = random_tree(5, rng)
            shapes.add(t.num_leaves)
        assert 2 in shapes  # a path shows up
        assert 4 in shapes  # a star shows up

    def test_random_bounded_degree(self):
        rng = random.Random(11)
        for _ in range(20):
            t = random_bounded_degree_tree(40, 3, rng)
            assert t.n == 40
            assert t.max_degree() <= 3

    def test_bounded_degree_rejects_impossible(self):
        with pytest.raises(InvalidTreeError):
            random_bounded_degree_tree(5, 1)


class TestExhaustiveEnumeration:
    def test_counts_match_oeis(self):
        # Number of non-isomorphic trees on n nodes: 1, 1, 1, 2, 3, 6, 11, 23
        expected = {1: 1, 2: 1, 3: 1, 4: 2, 5: 3, 6: 6, 7: 11, 8: 23}
        for n, count in expected.items():
            assert len(all_trees(n)) == count

    def test_all_valid(self):
        for t in all_trees(7):
            assert t.n == 7


class TestExtendedFamilies:
    def test_complete_kary_tree(self):
        import pytest
        from repro.trees import complete_kary_tree

        t = complete_kary_tree(3, 2)
        assert t.n == 13
        assert t.num_leaves == 9
        assert t.degree(0) == 3
        assert t.max_degree() == 4
        assert complete_kary_tree(2, 0).n == 1
        with pytest.raises(InvalidTreeError):
            complete_kary_tree(1, 3)
        with pytest.raises(InvalidTreeError):
            complete_kary_tree(2, -1)

    def test_lobster(self):
        import pytest
        from repro.trees import lobster

        t = lobster(4, [1, 0, 2, 1], [2, 0, 1, 0])
        assert t.n == 4 + 4 + 4  # spine + arms + legs (2 + 2*1 legs)
        assert t.num_leaves == 5
        with pytest.raises(InvalidTreeError):
            lobster(3, [1, 1], [0, 0])
        with pytest.raises(InvalidTreeError):
            lobster(2, [1, -1], [0, 0])

    def test_lobster_feasibility_and_solve(self):
        from repro.core import solve
        from repro.trees import lobster, perfectly_symmetrizable

        t = lobster(5, [1, 1, 0, 1, 1], [1, 0, 0, 0, 1])
        pairs = [
            (u, v)
            for u in range(t.n)
            for v in range(u + 1, t.n)
            if not perfectly_symmetrizable(t, u, v)
        ]
        for u, v in pairs[:5]:
            assert solve(t, u, v, max_outer=8).met
