"""Unit tests for the contraction T' (degree-2 suppression)."""

import random


from repro.trees import (
    all_trees,
    complete_binary_tree,
    contract,
    line,
    random_tree,
    spider,
    star,
    subdivide,
)


class TestContractionBasics:
    def test_line_contracts_to_edge(self):
        c = contract(line(10))
        assert c.nu == 2
        assert c.to_original == (0, 9)
        assert c.path_length(0, 0) == 9
        assert c.degree2_nodes_on(0, 0) == tuple(range(1, 9))

    def test_single_node(self):
        c = contract(line(1))
        assert c.nu == 1

    def test_two_nodes(self):
        c = contract(line(2))
        assert c.nu == 2
        assert c.contracted.num_edges == 1

    def test_no_degree2_is_identity_shape(self):
        t = star(4)
        c = contract(t)
        assert c.nu == t.n
        assert c.contracted.degrees() == t.degrees()

    def test_subdivision_has_same_contraction_shape(self):
        t = complete_binary_tree(3)
        base = contract(t)
        fat = contract(subdivide(t, 3))
        assert fat.nu == base.nu
        assert sorted(fat.contracted.degrees()) == sorted(base.contracted.degrees())

    def test_ports_inherited_at_branching_nodes(self):
        t = subdivide(spider([2, 2, 2]), 1)
        c = contract(t)
        i = c.from_original[0]  # the spider center
        assert c.contracted.degree(i) == 3
        # every contracted edge from the center goes to a leaf of the spider
        for p in range(3):
            path = c.paths[(i, p)]
            assert path[0] == 0
            assert t.degree(path[-1]) == 1

    def test_leaf_bound_nu_le_2l_minus_1(self):
        rng = random.Random(5)
        for _ in range(40):
            t = random_tree(rng.randrange(2, 60), rng)
            c = contract(t)
            assert c.nu <= 2 * t.num_leaves - 1

    def test_exhaustive_small(self):
        for n in range(2, 9):
            for t in all_trees(n):
                c = contract(t)
                # node set of T' == nodes of degree != 2
                expected = [u for u in range(t.n) if t.degree(u) != 2]
                assert list(c.to_original) == expected
                # every contracted path's interior is all degree-2
                for (a, p), path in c.paths.items():
                    for w in path[1:-1]:
                        assert t.degree(w) == 2
                    assert c.to_original[a] == path[0]

    def test_path_symmetry(self):
        """The path behind edge (a,p) reversed is the path behind its twin."""
        t = subdivide(star(3), 2)
        c = contract(t)
        for (a, p), path in c.paths.items():
            b = c.contracted.move(a, p)[0]
            q = c.contracted.move(a, p)[1]
            assert c.paths[(b, q)] == tuple(reversed(path))


class TestContractionErrors:
    def test_every_tree_contracts(self):
        # No valid tree can fail (a tree always has leaves), so contract is total.
        for n in range(1, 8):
            for t in all_trees(n):
                contract(t)
