"""Unit + property tests for basic walks, counter walks, reconstruction."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import (
    TranscriptReconstructor,
    all_trees,
    basic_walk,
    basic_walk_first_hit,
    basic_walk_until_branching,
    canonical_form,
    complete_binary_tree,
    counter_basic_walk,
    counter_basic_walk_until_branching,
    line,
    random_relabel,
    random_tree,
    star,
    subdivide,
)


def _random_tree_and_start(seed):
    rng = random.Random(seed)
    t = random_relabel(random_tree(rng.randrange(2, 40), rng), rng)
    return t, rng.randrange(t.n)


class TestBasicWalk:
    def test_closes_after_2n_minus_2(self):
        for t in all_trees(7):
            for v in range(t.n):
                walk = basic_walk(t, v)
                assert len(walk) == 2 * (t.n - 1)
                assert walk[-1].to_node == v

    def test_traverses_every_edge_twice(self):
        t = complete_binary_tree(3)
        walk = basic_walk(t, 5)
        traversed = {}
        for s in walk:
            traversed[(s.from_node, s.to_node)] = traversed.get(
                (s.from_node, s.to_node), 0
            ) + 1
        assert all(c == 1 for c in traversed.values())
        assert len(traversed) == 2 * t.num_edges

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_closure_property(self, seed):
        t, v = _random_tree_and_start(seed)
        walk = basic_walk(t, v)
        assert walk[-1].to_node == v
        # never returns to start with all edges covered before the end
        covered = set()
        for i, s in enumerate(walk[:-1]):
            covered.add(frozenset((s.from_node, s.to_node)))
            if s.to_node == v:
                assert len(covered) < t.num_edges or i == len(walk) - 1

    def test_degree2_pass_through(self):
        """At degree-2 nodes the basic walk passes straight through."""
        t = subdivide(star(3), 3)
        for s_prev, s_next in zip(basic_walk(t, 0), basic_walk(t, 0)[1:]):
            if t.degree(s_prev.to_node) == 2:
                assert s_next.out_port == 1 - s_prev.in_port

    def test_counter_walk_reverses(self):
        """cbw from the end of a bw, entering by the last in-port, undoes it."""
        for seed in range(10):
            t, v = _random_tree_and_start(seed)
            steps = 2 * (t.n - 1)
            fwd = basic_walk(t, v, steps)
            last = fwd[-1]
            back = counter_basic_walk(t, last.to_node, last.in_port, steps)
            fwd_nodes = [s.from_node for s in fwd]
            back_nodes = [s.to_node for s in back]
            assert back_nodes == fwd_nodes[::-1]

    def test_start_port_offset(self):
        t = star(3)
        walk = basic_walk(t, 0, 2, start_port=1)
        assert walk[0].to_node == t.neighbors(0)[1]


class TestBranchingBoundedWalks:
    def test_bw_counts_branching_arrivals(self):
        t = subdivide(star(3), 2)  # center deg 3, leaves deg 1, rest deg 2
        walk = basic_walk_until_branching(t, 0, 2)
        branch_arrivals = [s for s in walk if t.degree(s.to_node) != 2]
        assert len(branch_arrivals) == 2
        assert t.degree(walk[-1].to_node) != 2

    def test_bw_full_tour_of_contraction(self):
        from repro.trees import contract

        t = subdivide(complete_binary_tree(2), 1)
        c = contract(t)
        nu = c.nu
        start = 3  # a leaf of the binary tree: degree != 2, lives in T'
        assert t.degree(start) != 2
        walk = basic_walk_until_branching(t, start, 2 * (nu - 1))
        assert walk[-1].to_node == start  # closed tour of T'

    def test_cbw_reverses_bw(self):
        # The reversal property is anchored at branching nodes (the paper
        # only ever issues bw(j)/cbw(j) from extremities of the central
        # path, which have degree != 2); start from a leaf.
        t = subdivide(complete_binary_tree(2), 2)
        start = 3
        assert t.degree(start) != 2
        j = 4
        fwd = basic_walk_until_branching(t, start, j)
        last = fwd[-1]
        back = counter_basic_walk_until_branching(t, last.to_node, last.in_port, j)
        assert back[-1].to_node == start

    def test_zero_count(self):
        t = line(5)
        assert basic_walk_until_branching(t, 0, 0) == []


class TestFirstHit:
    def test_line(self):
        t = line(5)
        assert basic_walk_first_hit(t, 0, 3) == 3
        assert basic_walk_first_hit(t, 2, 2) == 0

    def test_every_node_hit(self):
        for t in all_trees(6):
            for v in range(t.n):
                for w in range(t.n):
                    k = basic_walk_first_hit(t, v, w)
                    assert k is not None
                    assert 0 <= k <= 2 * (t.n - 1)


class TestReconstruction:
    def _reconstruct(self, t, v):
        rec = TranscriptReconstructor(t.degree(v))
        node = v
        port = 0
        while not rec.closed:
            nxt, in_port = t.move(node, port)
            rec.feed(port, in_port, t.degree(nxt))
            node = nxt
            port = (in_port + 1) % t.degree(node)
        return rec

    def test_round_trip_small(self):
        for t in all_trees(6):
            for v in range(t.n):
                rec = self._reconstruct(t, v)
                assert rec.steps == 2 * (t.n - 1)
                assert rec.num_nodes == t.n
                rebuilt = rec.tree()
                assert canonical_form(rebuilt) == canonical_form(t)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_random(self, seed):
        t, v = _random_tree_and_start(seed)
        rec = self._reconstruct(t, v)
        assert rec.num_nodes == t.n
        # the reconstructed tree is exactly isomorphic including ports:
        # walking it from node 0 must produce the identical port transcript.
        rebuilt = rec.tree()
        orig = [(s.out_port, s.in_port) for s in basic_walk(t, v)]
        new = [(s.out_port, s.in_port) for s in basic_walk(rebuilt, 0)]
        assert orig == new

    def test_closure_not_early(self):
        t = line(6)
        rec = TranscriptReconstructor(t.degree(2))
        node, port = 2, 0
        closed_at = []
        for step in range(2 * (t.n - 1)):
            nxt, in_port = t.move(node, port)
            rec.feed(port, in_port, t.degree(nxt))
            if rec.closed:
                closed_at.append(step + 1)
            node = nxt
            port = (in_port + 1) % t.degree(node)
        assert closed_at == [2 * (t.n - 1)]
