"""Unit tests for central node / central edge computation."""

from repro.trees import (
    all_trees,
    complete_binary_tree,
    find_center,
    line,
    spider,
    star,
)


class TestCenterBasics:
    def test_single_node(self):
        c = find_center(line(1))
        assert c.is_node and c.node == 0

    def test_two_nodes(self):
        c = find_center(line(2))
        assert c.is_edge and c.edge == (0, 1)

    def test_odd_line_has_central_node(self):
        c = find_center(line(7))
        assert c.is_node and c.node == 3

    def test_even_line_has_central_edge(self):
        c = find_center(line(8))
        assert c.is_edge and c.edge == (3, 4)

    def test_star(self):
        c = find_center(star(5))
        assert c.is_node and c.node == 0

    def test_complete_binary_tree_root_is_center(self):
        c = find_center(complete_binary_tree(4))
        assert c.is_node and c.node == 0

    def test_spider_center(self):
        c = find_center(spider([3, 3, 1]))
        # center sits on the path between the two long legs
        assert c.is_node

    def test_layers_peak_at_center(self):
        t = line(9)
        c = find_center(t)
        assert c.layers[c.node] == max(c.layers)
        assert c.layers[0] == 0 and c.layers[8] == 0


class TestCenterAgainstEccentricity:
    """The leaf-stripping center equals the metric center of the tree."""

    def _metric_centers(self, t):
        eccs = [t.eccentricity(u) for u in range(t.n)]
        best = min(eccs)
        return {u for u, e in enumerate(eccs) if e == best}

    def test_exhaustive_small_trees(self):
        for n in range(2, 9):
            for t in all_trees(n):
                c = find_center(t)
                centers = {c.node} if c.is_node else set(c.edge)
                assert centers == self._metric_centers(t), t.debug_string()
