"""Tests for the Tree-level caches shared by the simulation backends."""

import random

from repro.trees import (
    complete_binary_tree,
    line,
    random_relabel,
    random_tree,
    star,
)


def test_degree_table_matches_degrees_and_is_cached():
    t = complete_binary_tree(3)
    assert list(t.degree_table) == [t.degree(u) for u in range(t.n)]
    assert t.degree_table is t.degree_table  # built once


def test_degrees_returns_fresh_mutable_list():
    t = line(5)
    d = t.degrees()
    d[0] = 99  # callers (center peeling) mutate their copy
    assert t.degrees()[0] == 1
    assert t.degree_table[0] == 1


def test_flat_move_tables_match_move():
    rng = random.Random(7)
    for tree in [line(9), star(5), complete_binary_tree(3), random_tree(12, rng)]:
        tree = random_relabel(tree, rng)
        stride, deg, move_to, move_in = tree.flat_move_tables()
        assert stride == tree.max_degree()
        assert deg == tree.degree_table
        for u in range(tree.n):
            for p in range(tree.degree(u)):
                assert (move_to[u * stride + p], move_in[u * stride + p]) == tree.move(u, p)


def test_flat_move_tables_cached_per_object():
    t = line(6)
    assert t.flat_move_tables() is t.flat_move_tables()


def test_with_ports_gets_fresh_tables():
    t = line(4)
    _ = t.flat_move_tables()
    flipped = t.with_ports([[0], [1, 0], [1, 0], [0]])
    stride, deg, move_to, move_in = flipped.flat_move_tables()
    for u in range(flipped.n):
        for p in range(flipped.degree(u)):
            assert (move_to[u * stride + p], move_in[u * stride + p]) == flipped.move(u, p)
    # the relabeled interior nodes really do differ from the original
    assert flipped.move(1, 0) != t.move(1, 0)


def test_single_node_tree():
    from repro.trees import Tree

    t = Tree([[]])
    stride, deg, move_to, move_in = t.flat_move_tables()
    assert deg == (0,)
    assert stride == 0
