"""Tests for visualization and serialization helpers."""

import json
import random

import pytest

from repro.errors import InvalidTreeError
from repro.trees import (
    Instance,
    ascii_tree,
    annotate_instance,
    complete_binary_tree,
    instance_from_json,
    instance_to_json,
    line,
    random_relabel,
    random_tree,
    star,
    to_dot,
    tree_from_json,
    tree_to_json,
)


class TestAsciiTree:
    def test_contains_all_nodes(self):
        t = complete_binary_tree(2)
        art = ascii_tree(t)
        for v in range(t.n):
            assert f"({v})" in art

    def test_port_annotations(self):
        t = star(3)
        art = ascii_tree(t, root=0)
        assert "[0/0]" in art

    def test_marks(self):
        t = line(5)
        art = ascii_tree(t, marks={0: "agent 1", 4: "agent 2"})
        assert "<agent 1>" in art and "<agent 2>" in art

    def test_annotate_instance(self):
        art = annotate_instance(line(4), 0, 3)
        assert "agent 1" in art and "agent 2" in art

    def test_deep_path_no_recursion_error(self):
        art = ascii_tree(line(3000), root=0)
        assert art.count("\n") == 2999


class TestDot:
    def test_dot_shape(self):
        t = star(3)
        dot = to_dot(t, marks={1: "A"})
        assert dot.startswith("graph tree {")
        assert dot.count(" -- ") == t.num_edges
        assert 'taillabel="0"' in dot
        assert "lightblue" in dot


class TestTreeJson:
    def test_round_trip_preserves_everything(self):
        rng = random.Random(2)
        for _ in range(15):
            t = random_relabel(random_tree(rng.randrange(2, 30), rng), rng)
            assert tree_from_json(tree_to_json(t)) == t

    def test_rejects_unknown_schema(self):
        with pytest.raises(InvalidTreeError):
            tree_from_json(json.dumps({"schema": "nope", "n": 1, "port_to_nbr": [[]]}))

    def test_rejects_inconsistent_count(self):
        payload = json.loads(tree_to_json(line(3)))
        payload["n"] = 5
        with pytest.raises(InvalidTreeError):
            tree_from_json(json.dumps(payload))

    def test_rejects_invalid_structure(self):
        payload = {"schema": "repro.tree.v1", "n": 2, "port_to_nbr": [[1], []]}
        with pytest.raises(InvalidTreeError):
            tree_from_json(json.dumps(payload))


class TestInstanceJson:
    def test_round_trip(self):
        inst = Instance(line(8), 1, 6, delay=5, delayed=1, note="thm 3.1 demo")
        back = instance_from_json(instance_to_json(inst, indent=2))
        assert back.tree == inst.tree
        assert (back.start1, back.start2, back.delay, back.delayed) == (1, 6, 5, 1)
        assert back.note == "thm 3.1 demo"

    def test_validation(self):
        with pytest.raises(InvalidTreeError):
            Instance(line(3), 0, 9).validate()
        with pytest.raises(InvalidTreeError):
            Instance(line(3), 0, 1, delay=-1).validate()
        with pytest.raises(InvalidTreeError):
            instance_from_json(json.dumps({"schema": "bad"}))

    def test_defaults(self):
        inst = Instance(line(4), 0, 2)
        back = instance_from_json(instance_to_json(inst))
        assert back.delay == 0 and back.delayed == 2 and back.note == ""
