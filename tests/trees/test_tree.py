"""Unit tests for the Tree substrate."""

import pytest

from repro.errors import InvalidPortError, InvalidTreeError
from repro.trees import Tree, line, star


class TestConstruction:
    def test_single_node(self):
        t = Tree([[]])
        assert t.n == 1
        assert t.num_edges == 0
        assert t.leaves() == [0]

    def test_two_nodes(self):
        t = Tree([[1], [0]])
        assert t.n == 2
        assert t.degree(0) == 1
        assert t.move(0, 0) == (1, 0)

    def test_from_edges_canonical_ports(self):
        t = Tree.from_edges(3, [(0, 1), (1, 2)])
        assert t.neighbors(1) == (0, 2)
        assert t.port(1, 0) == 0
        assert t.port(1, 2) == 1

    def test_from_edges_explicit_ports(self):
        ports = {(0, 1): 0, (1, 0): 1, (1, 2): 0, (2, 1): 0}
        t = Tree.from_edges(3, [(0, 1), (1, 2)], ports=ports)
        assert t.port(1, 0) == 1
        assert t.port(1, 2) == 0
        assert t.move(2, 0) == (1, 0)  # arrives at 1 through port 0 ({1,2}'s port at 1)

    def test_from_parent_array(self):
        t = Tree.from_parent_array([None, 0, 0, 1])
        assert t.n == 4
        assert t.degree(0) == 2
        assert t.degree(1) == 2
        assert sorted(t.leaves()) == [2, 3]

    def test_rejects_disconnected(self):
        with pytest.raises(InvalidTreeError):
            Tree([[1], [0], [3], [2]])

    def test_rejects_cycle(self):
        with pytest.raises(InvalidTreeError):
            Tree([[1, 2], [0, 2], [0, 1]])

    def test_rejects_self_loop(self):
        with pytest.raises(InvalidTreeError):
            Tree([[0]])

    def test_rejects_asymmetric_adjacency(self):
        with pytest.raises(InvalidTreeError):
            Tree([[1], []])

    def test_rejects_bad_port_assignment(self):
        ports = {(0, 1): 5, (1, 0): 0, (1, 2): 1, (2, 1): 0}
        with pytest.raises(InvalidPortError):
            Tree.from_edges(3, [(0, 1), (1, 2)], ports=ports)

    def test_rejects_duplicate_port(self):
        ports = {(0, 1): 0, (1, 0): 0, (1, 2): 0, (2, 1): 0}
        with pytest.raises(InvalidPortError):
            Tree.from_edges(3, [(0, 1), (1, 2)], ports=ports)

    def test_empty_tree_rejected(self):
        with pytest.raises(InvalidTreeError):
            Tree([])


class TestQueries:
    def test_degrees_and_leaves(self):
        t = star(4)
        assert t.degree(0) == 4
        assert t.num_leaves == 4
        assert t.max_degree() == 4
        assert not t.is_leaf(0)
        assert t.is_leaf(1)

    def test_edges_iteration(self):
        t = line(4)
        assert sorted(t.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_move_round_trip(self):
        t = line(5)
        for u in range(t.n):
            for p in range(t.degree(u)):
                v, q = t.move(u, p)
                assert t.move(v, q) == (u, p)

    def test_move_bad_port(self):
        t = line(3)
        with pytest.raises(InvalidPortError):
            t.move(0, 1)

    def test_port_lookup_bad_edge(self):
        t = line(4)
        with pytest.raises(InvalidPortError):
            t.port(0, 3)


class TestMetrics:
    def test_distances_on_line(self):
        t = line(6)
        assert t.bfs_distances(0) == [0, 1, 2, 3, 4, 5]
        assert t.distance(1, 4) == 3

    def test_path(self):
        t = star(3)
        assert t.path(1, 2) == [1, 0, 2]
        assert t.path(1, 1) == [1]

    def test_diameter_and_eccentricity(self):
        assert line(7).diameter() == 6
        assert star(5).diameter() == 2
        assert line(7).eccentricity(3) == 3

    def test_subtree_nodes(self):
        t = line(5)
        assert t.subtree_nodes(1, 2) == [0, 1]
        assert t.subtree_nodes(2, 1) == [2, 3, 4]


class TestTransforms:
    def test_with_ports_swaps(self):
        t = line(3)
        t2 = t.with_ports([[0], [1, 0], [0]])
        assert t2.port(1, 0) == 1
        assert t2.port(1, 2) == 0
        assert t2.neighbors(1) == (2, 0)

    def test_with_ports_rejects_non_permutation(self):
        t = line(3)
        with pytest.raises(InvalidPortError):
            t.with_ports([[0], [0, 0], [0]])

    def test_renumber_nodes(self):
        t = line(3)
        t2 = t.renumber_nodes([2, 1, 0])
        assert t2.neighbors(1) == (2, 0)
        assert t2.degree(2) == 1

    def test_renumber_rejects_bad_mapping(self):
        with pytest.raises(InvalidTreeError):
            line(3).renumber_nodes([0, 0, 1])


class TestInterop:
    def test_networkx_round_trip(self):
        t = star(3)
        g = t.to_networkx()
        assert g.number_of_nodes() == 4
        t2 = Tree.from_networkx(g)
        assert t2.n == 4
        assert t2.num_leaves == 3

    def test_equality_and_hash(self):
        a = line(4)
        b = line(4)
        assert a == b
        assert hash(a) == hash(b)
        c = a.with_ports([[0], [1, 0], [0, 1], [0]])
        assert a != c

    def test_repr_and_debug(self):
        t = line(3)
        assert "n=3" in repr(t)
        assert "node 1" in t.debug_string()
