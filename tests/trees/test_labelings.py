"""Unit tests for port-labeling generators."""

import random

import pytest

from repro.errors import InvalidLabelingError
from repro.trees import (
    all_labelings,
    count_labelings,
    edge_colored_line,
    line,
    random_relabel,
    star,
    thm31_line_labeling,
)


class TestRandomRelabel:
    def test_preserves_topology(self):
        rng = random.Random(1)
        t = star(4)
        t2 = random_relabel(t, rng)
        assert t2.n == t.n
        assert sorted(t2.degrees()) == sorted(t.degrees())
        assert set(t2.neighbors(0)) == set(t.neighbors(0))

    def test_changes_something_eventually(self):
        rng = random.Random(1)
        t = star(4)
        assert any(random_relabel(t, rng) != t for _ in range(20))


class TestAllLabelings:
    def test_count_formula(self):
        t = star(3)
        assert count_labelings(t) == 6  # 3! at the center, 1! at leaves
        assert len(list(all_labelings(t))) == 6

    def test_all_distinct(self):
        t = line(4)
        labs = list(all_labelings(t))
        assert count_labelings(t) == 4  # 2! * 2! at the two interior nodes
        assert len(set(labs)) == len(labs) == 4

    def test_limit(self):
        t = star(3)
        assert len(list(all_labelings(t, limit=2))) == 2


class TestEdgeColoredLine:
    def test_valid_and_proper(self):
        t = edge_colored_line(9)
        # interior nodes have ports {0,1}; edge colors agree on both sides
        for i in range(1, 8):
            assert sorted(
                [t.port(i, i - 1), t.port(i, i + 1)]
            ) == [0, 1]
        for i in range(1, 7):
            # both interior extremities of edge {i, i+1} carry the same color
            assert t.port(i, i + 1) == t.port(i + 1, i)

    def test_first_color(self):
        t0 = edge_colored_line(6, first_color=0)
        t1 = edge_colored_line(6, first_color=1)
        assert t0.port(1, 2) != t1.port(1, 2)

    def test_rejects_small(self):
        with pytest.raises(InvalidLabelingError):
            edge_colored_line(1)


class TestThm31Labeling:
    def test_central_edge_gets_zero(self):
        t = thm31_line_labeling(10)  # 9 edges, central edge index 4 = (4,5)
        assert t.port(4, 5) == 0
        assert t.port(5, 4) == 0

    def test_coloring_proper_everywhere(self):
        t = thm31_line_labeling(12)
        for i in range(1, 11):
            assert sorted([t.port(i, i - 1), t.port(i, i + 1)]) == [0, 1]

    def test_mirror_symmetric_labeling(self):
        """The construction makes the line symmetric around its center."""
        from repro.trees import port_preserving_automorphism

        t = thm31_line_labeling(10)
        f = port_preserving_automorphism(t)
        assert f is not None
        assert f[0] == 9

    def test_rejects_odd_node_count(self):
        with pytest.raises(InvalidLabelingError):
            thm31_line_labeling(9)
