"""Unit tests for symmetry and perfect symmetrizability (Fact 1.1 theory)."""

import random

from repro.trees import (
    all_labelings,
    all_trees,
    are_symmetric_for_labeling,
    are_topologically_symmetric,
    canonical_form,
    complete_binary_tree,
    has_symmetrizing_labeling,
    is_symmetric_labeling,
    line,
    perfectly_symmetrizable,
    port_preserving_automorphism,
    random_relabel,
    random_tree,
    star,
)


class TestCanonicalForm:
    def test_invariant_under_renumbering(self):
        rng = random.Random(2)
        for _ in range(25):
            t = random_tree(rng.randrange(2, 25), rng)
            mapping = list(range(t.n))
            rng.shuffle(mapping)
            assert canonical_form(t) == canonical_form(t.renumber_nodes(mapping))

    def test_distinguishes_nonisomorphic(self):
        forms = [canonical_form(t) for t in all_trees(7)]
        assert len(set(forms)) == len(forms)

    def test_ignores_ports(self):
        rng = random.Random(3)
        t = star(4)
        assert canonical_form(t) == canonical_form(random_relabel(t, rng))


class TestTopologicalSymmetry:
    def test_line_endpoints(self):
        t = line(7)
        assert are_topologically_symmetric(t, 0, 6)
        assert not are_topologically_symmetric(t, 0, 5)

    def test_star_leaves(self):
        t = star(4)
        assert are_topologically_symmetric(t, 1, 4)
        assert not are_topologically_symmetric(t, 0, 1)

    def test_binary_tree_leaves(self):
        t = complete_binary_tree(2)  # nodes 3..6 are leaves
        assert are_topologically_symmetric(t, 3, 6)
        assert are_topologically_symmetric(t, 3, 4)
        assert not are_topologically_symmetric(t, 0, 3)

    def test_reflexive(self):
        t = line(5)
        assert are_topologically_symmetric(t, 2, 2)


class TestPerfectSymmetrizability:
    def test_odd_line_leaves_not_perfectly_symmetrizable(self):
        """Paper §1: an odd-node line's endpoints are topologically symmetric
        but NOT perfectly symmetrizable (central node blocks it)."""
        t = line(7)
        assert are_topologically_symmetric(t, 0, 6)
        assert not perfectly_symmetrizable(t, 0, 6)

    def test_even_line_endpoints_are_perfectly_symmetrizable(self):
        t = line(8)
        assert perfectly_symmetrizable(t, 0, 7)
        assert perfectly_symmetrizable(t, 1, 6)
        assert not perfectly_symmetrizable(t, 0, 6)  # asymmetric offsets
        assert not perfectly_symmetrizable(t, 0, 1)  # same half of the center

    def test_complete_binary_tree_not_perfectly_symmetrizable(self):
        """Paper §1: complete binary trees have a central node, so no two
        leaves are perfectly symmetrizable despite topological symmetry."""
        t = complete_binary_tree(2)
        assert not perfectly_symmetrizable(t, 3, 6)

    def test_same_half_never_symmetrizable(self):
        t = line(8)
        # 1 and 2 are on the same side of the central edge (3,4)
        assert not perfectly_symmetrizable(t, 1, 2)

    def test_symmetrizable_implies_topologically_symmetric(self):
        for n in range(2, 9):
            for t in all_trees(n):
                for u in range(t.n):
                    for v in range(u + 1, t.n):
                        if perfectly_symmetrizable(t, u, v):
                            assert are_topologically_symmetric(t, u, v)

    def test_matches_existential_definition_on_small_trees(self):
        """Definition 1.2 brute-forced: sweep all labelings and check the
        port-preserving automorphism — must agree with the direct test."""
        for n in range(2, 7):
            for t in all_trees(n):
                pairs = [
                    (u, v) for u in range(t.n) for v in range(u + 1, t.n)
                ]
                witness: dict = {p: False for p in pairs}
                for labeled in all_labelings(t):
                    f = port_preserving_automorphism(labeled)
                    if f is None:
                        continue
                    for u, v in pairs:
                        if f.get(u) == v or f.get(v) == u:
                            witness[(u, v)] = True
                for (u, v), expect in witness.items():
                    assert perfectly_symmetrizable(t, u, v) == expect, (
                        t.debug_string(),
                        (u, v),
                    )


class TestPortPreservingAutomorphism:
    def test_central_node_tree_never_symmetric(self):
        t = line(7)
        for labeled in all_labelings(t, limit=50):
            assert port_preserving_automorphism(labeled) is None

    def test_symmetric_even_line(self):
        # Canonical ports on a line: port 0 points left at interior nodes.
        # Build the mirrored labeling explicitly: 2-edge-coloring works.
        from repro.trees import edge_colored_line

        t = edge_colored_line(6)
        f = port_preserving_automorphism(t)
        # The coloring of a 6-node line: edges 0,1,0,1,0 — central edge (2,3)
        # has color 0 on both sides and halves mirror, so symmetric.
        assert f is not None
        assert f[2] == 3 and f[0] == 5

    def test_symmetry_detection_agrees_with_brute_force(self):
        import itertools

        def brute_force_symmetric(t):
            # try all nontrivial automorphism candidates via permutations
            for perm in itertools.permutations(range(t.n)):
                if all(perm[u] == u for u in range(t.n)):
                    continue
                ok = True
                for u in range(t.n):
                    if t.degree(perm[u]) != t.degree(u):
                        ok = False
                        break
                    for p in range(t.degree(u)):
                        v = t.neighbors(u)[p]
                        # port-preserving: port p at u must lead to perm[v]
                        # from perm[u] via the same port p' = p at u? No:
                        # port of {u,v} at u must equal port of {f(u),f(v)}
                        # at f(u).
                        fu, fv = perm[u], perm[v]
                        if fv not in t.neighbors(fu):
                            ok = False
                            break
                        if t.port(fu, fv) != p:
                            ok = False
                            break
                    if not ok:
                        break
                if ok:
                    return True
            return False

        for n in range(2, 6):
            for t in all_trees(n):
                for labeled in all_labelings(t):
                    assert is_symmetric_labeling(labeled) == brute_force_symmetric(
                        labeled
                    ), labeled.debug_string()

    def test_are_symmetric_for_labeling(self):
        from repro.trees import edge_colored_line

        t = edge_colored_line(6)
        assert are_symmetric_for_labeling(t, 0, 5)
        assert are_symmetric_for_labeling(t, 2, 3)
        assert not are_symmetric_for_labeling(t, 0, 4)


class TestHasSymmetrizingLabeling:
    def test_even_line(self):
        assert has_symmetrizing_labeling(line(6))
        assert not has_symmetrizing_labeling(line(7))

    def test_central_node_blocks_symmetrizing(self):
        # This tree strips down to a central NODE, so no labeling can make
        # it symmetric (paper §2.2).
        from repro.trees import Tree

        t = Tree.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (3, 5)])
        assert not has_symmetrizing_labeling(t)

    def test_central_edge_with_asymmetric_halves(self):
        # Central edge, but the two halves are non-isomorphic rooted trees.
        from repro.trees import Tree

        # Path 0-1-2-3 with extra leaves making halves differ:
        # left half rooted at 1: {0}; right half rooted at 2: {3,4}.
        t = Tree.from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4)])
        from repro.trees import find_center

        assert find_center(t).is_edge
        assert not has_symmetrizing_labeling(t)
