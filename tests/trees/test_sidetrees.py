"""Tests for the Theorem 4.3 side-tree substrate."""

import pytest

from repro.errors import ConstructionError
from repro.trees import find_center, perfectly_symmetrizable
from repro.trees.sidetrees import (
    all_side_trees,
    num_side_trees,
    root_edge_color,
    side_tree,
    two_sided_tree,
)


class TestSideTrees:
    def test_count(self):
        for i in (2, 3, 4, 5, 6):
            assert len(all_side_trees(i)) == num_side_trees(i) == 2 ** (i - 1)

    def test_pairwise_nonisomorphic(self):
        """The paper needs 2^(i-1) pairwise non-isomorphic *rooted* trees;
        rooted codes must be all distinct."""
        from repro.trees import rooted_code
        from repro.trees.automorphism import CodeInterner

        interner = CodeInterner()
        codes = set()
        for st in all_side_trees(5):
            codes.add(rooted_code(st.tree, 0, interner=interner))
        assert len(codes) == num_side_trees(5)

    def test_structure(self):
        for st in all_side_trees(4):
            t = st.tree
            assert t.max_degree() <= 3
            assert t.degree(0) == 1  # standalone root is a path endpoint
            # leaves: i - 1 hairs + the far path end + the standalone root
            assert t.num_leaves == 4 + 1
            # size: spine (i+1) + hairs (1 or 2 each)
            assert t.n == 5 + sum(1 + c for c in st.choices)

    def test_validation(self):
        with pytest.raises(ConstructionError):
            side_tree(1, ())
        with pytest.raises(ConstructionError):
            side_tree(4, (0, 1))  # wrong number of choices
        with pytest.raises(ConstructionError):
            side_tree(4, (0, 1, 0), root_port_up=2)

    def test_root_edge_color(self):
        assert root_edge_color(4) == 0
        assert root_edge_color(2) == 1
        assert root_edge_color(6) == 1
        assert root_edge_color(8) == 0
        with pytest.raises(ConstructionError):
            root_edge_color(3)


class TestTwoSidedTrees:
    def test_shape(self):
        sides = all_side_trees(4, root_port_up=root_edge_color(4))
        ts = two_sided_tree(sides[0], sides[7], 4)
        t = ts.tree
        assert t.num_leaves == 8  # ℓ = 2i
        assert t.max_degree() <= 3
        assert t.degree(ts.u) == 2 and t.degree(ts.v) == 2
        assert t.degree(ts.root1) == 2 and t.degree(ts.root2) == 2

    def test_mirror_instance_center_is_joining_middle_edge(self):
        """When the two sides are equal the tree is mirror-symmetric and
        its center is the middle edge of the joining path (the paper's
        symmetry argument hinges on this)."""
        sides = all_side_trees(4, root_port_up=0)
        ts = two_sided_tree(sides[6], sides[6], 4)
        c = find_center(ts.tree)
        assert c.is_edge
        join_nodes = set(range(2 * sides[6].size, ts.tree.n))
        assert set(c.edge) <= join_nodes

    def test_same_sides_symmetric_different_sides_not(self):
        sides = all_side_trees(4, root_port_up=root_edge_color(4))
        same = two_sided_tree(sides[3], sides[3], 4)
        assert perfectly_symmetrizable(same.tree, same.u, same.v)
        diff = two_sided_tree(sides[3], sides[4], 4)
        assert not perfectly_symmetrizable(diff.tree, diff.u, diff.v)

    def test_joining_edge_labels_mirror(self):
        """The joining path labeling is mirror-symmetric: edge colors at
        equal distances from the central edge match."""
        sides = all_side_trees(4, root_port_up=root_edge_color(4))
        ts = two_sided_tree(sides[2], sides[5], 4)
        t = ts.tree
        chain = [ts.root1] + list(range(sides[2].size + sides[5].size, t.n)) + [ts.root2]
        # interior joining edges: same label at both extremities
        for a, b in zip(chain[1:-2], chain[2:-1]):
            assert t.port(a, b) == t.port(b, a)

    def test_m_validation(self):
        sides = all_side_trees(4)
        with pytest.raises(ConstructionError):
            two_sided_tree(sides[0], sides[1], 3)
        with pytest.raises(ConstructionError):
            two_sided_tree(sides[0], sides[1], 0)

    def test_varying_m(self):
        for m in (2, 4, 6, 8):
            sides_m = all_side_trees(4, root_port_up=root_edge_color(m))
            ts = two_sided_tree(sides_m[0], sides_m[3], m)
            assert ts.tree.n == sides_m[0].size + sides_m[3].size + m
            assert ts.tree.num_leaves == 8
