"""Property tests: lowered register programs ≡ the reference engine.

The reference engine stays the oracle.  On randomized (tree, bounded-
register program, starts, delays) instances, both lowering routes must
reproduce its verdicts exactly:

- route A — :func:`repro.agents.lowering.lower_to_automaton` rolls the
  program's reachable machine states into an explicit automaton, run on
  the compiled table backend;
- route B — :func:`repro.sim.traced.run_rendezvous_traced` replays
  per-(tree, start) solo traces, and the exact sweep solvers consume the
  same traces as per-start automata (``prototype2`` /
  ``prototypes`` heterogeneous seams).

Gathering outcomes are held to the same contract.  Where the reference
engine cannot decide (programs expose no finite state, so it can never
certify non-meeting), the lowered paths may *prove* more — but must
never contradict: a lowered ``certified_never`` requires the oracle to
have not met within its decisive budget.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import AgentProgram, Ctx, NULL_PORT, move, stay
from repro.agents.lowering import lower_to_automaton
from repro.errors import BudgetExceededError, LoweringError
from repro.sim import run_rendezvous, run_rendezvous_compiled
from repro.sim.multi import run_gathering_reference
from repro.sim.traced import (
    run_gathering_traced,
    run_rendezvous_traced,
    sweep_delays_traced,
    sweep_gathering_traced,
)
from repro.trees import random_relabel, random_tree

_BUDGET = 6_000


def make_program(pattern, pause, bound, repeats):
    """A bounded-register walker: loop `pattern` ports with pauses.

    ``repeats is None`` loops forever (the trace must find the machine
    cycle); a finite ``repeats`` makes the program return (wait forever).
    """

    def program(start_degree, regs):
        ctx = Ctx(NULL_PORT, start_degree)
        regs.declare("c", bound)
        rounds = range(repeats) if repeats is not None else iter(int, 1)
        for _ in rounds:
            for port in pattern:
                regs["c"] = (regs["c"] + 1) % (bound + 1)
                yield from move(ctx, port)
            yield from stay(ctx, pause)

    return lambda: AgentProgram(program)


@st.composite
def instances(draw, max_n=8):
    n = draw(st.integers(2, max_n))
    tree_seed = draw(st.integers(0, 2**20))
    rng = random.Random(tree_seed)
    tree = random_relabel(random_tree(n, rng), rng)
    pattern = draw(st.lists(st.integers(0, 2), min_size=1, max_size=4))
    pause = draw(st.integers(0, 2))
    bound = draw(st.integers(1, 3))
    repeats = draw(st.one_of(st.none(), st.integers(1, 4)))
    factory = make_program(tuple(pattern), pause, bound, repeats)
    u = draw(st.integers(0, n - 1))
    v = draw(st.integers(0, n - 1))
    return tree, factory, u, v


def assert_verdicts_agree(ref, low):
    """Oracle vs lowered single-run contract (see module docstring)."""
    assert ref.met == low.met
    if ref.met:
        assert ref.meeting_round == low.meeting_round
        assert ref.meeting_node == low.meeting_node
        assert ref.crossings == low.crossings
    elif low.certified_never:
        assert not ref.met  # proof must never contradict the oracle


@settings(max_examples=50, deadline=None)
@given(instances(), st.integers(0, 4), st.sampled_from([1, 2]))
def test_traced_run_matches_reference(instance, delay, delayed):
    tree, factory, u, v = instance
    ref = run_rendezvous(
        tree, factory(), u, v,
        delay=delay, delayed=delayed, max_rounds=_BUDGET, certify=True,
    )
    low = run_rendezvous_traced(
        tree, factory(), u, v,
        delay=delay, delayed=delayed, max_rounds=_BUDGET, certify=True,
    )
    assert_verdicts_agree(ref, low)


@settings(max_examples=30, deadline=None)
@given(instances(), st.integers(0, 3), st.sampled_from([1, 2]))
def test_lowered_automaton_matches_reference(instance, delay, delayed):
    tree, factory, u, v = instance
    proto = factory()
    try:
        automaton = lower_to_automaton(proto, tree.degrees())
    except (LoweringError, BudgetExceededError):
        return  # failover to route B is the contract, tested above
    ref = run_rendezvous(
        tree, proto, u, v,
        delay=delay, delayed=delayed, max_rounds=_BUDGET, certify=True,
    )
    low = run_rendezvous_compiled(
        tree, automaton, u, v,
        delay=delay, delayed=delayed, max_rounds=_BUDGET, certify=True,
    )
    assert_verdicts_agree(ref, low)


@settings(max_examples=30, deadline=None)
@given(instances(max_n=7), st.integers(0, 4))
def test_traced_delay_sweep_matches_per_delay_reference(instance, max_delay):
    tree, factory, u, v = instance
    proto = factory()
    try:
        verdicts = sweep_delays_traced(
            tree, proto, u, v, max_delay=max_delay, trace_budget=200_000
        )
    except (LoweringError, BudgetExceededError):
        return  # backends degrade to budgeted per-run verdicts
    for dv in verdicts:
        if dv.met and dv.meeting_round > _BUDGET:
            continue  # exact solver is unbudgeted; oracle check too costly
        ref = run_rendezvous(
            tree, factory(), u, v,
            delay=dv.delay, delayed=dv.delayed, max_rounds=_BUDGET,
        )
        assert ref.met == dv.met
        if dv.met:
            assert ref.meeting_round == dv.meeting_round
        else:
            # the exact solver always decides: non-meeting is proof
            assert dv.certified_never and not ref.met


@st.composite
def gathering_instances(draw, max_n=8, k=3):
    tree, factory, _u, _v = draw(instances(max_n=max_n))
    starts = [draw(st.integers(0, tree.n - 1)) for _ in range(k)]
    delays = [draw(st.integers(0, 3)) for _ in range(k)]
    return tree, factory, starts, delays


@settings(max_examples=40, deadline=None)
@given(gathering_instances())
def test_traced_gathering_matches_reference(instance):
    tree, factory, starts, delays = instance
    ref = run_gathering_reference(
        tree, factory(), starts, delays=delays, max_rounds=_BUDGET, certify=True
    )
    low = run_gathering_traced(
        tree, factory(), starts, delays=delays, max_rounds=_BUDGET, certify=True
    )
    assert ref.gathered == low.gathered
    if ref.gathered:
        assert ref.gathering_round == low.gathering_round
        assert ref.gathering_node == low.gathering_node
    elif low.certified_never:
        assert not ref.gathered


@settings(max_examples=25, deadline=None)
@given(gathering_instances(max_n=7))
def test_traced_gathering_sweep_matches_reference(instance):
    tree, factory, starts, delays = instance
    proto = factory()
    try:
        (verdict,) = sweep_gathering_traced(
            tree, proto, starts, [delays], trace_budget=200_000
        )
    except (LoweringError, BudgetExceededError):
        return
    if verdict.gathered and verdict.gathering_round > _BUDGET:
        return  # exact solver is unbudgeted; oracle check too costly
    ref = run_gathering_reference(
        tree, factory(), starts, delays=delays, max_rounds=_BUDGET
    )
    assert ref.gathered == verdict.gathered
    if verdict.gathered:
        assert ref.gathering_round == verdict.gathering_round
    else:
        assert verdict.certified_never and not ref.gathered
