"""Property tests: compiled backend ≡ reference engine.

The reference engine is the oracle.  On randomized (tree, automaton,
starts, delay) instances the compiled backend must produce identical
``met`` / ``meeting_round`` / ``certified_never`` verdicts, and the
all-delays batch solver must agree with per-delay reference runs.

Budgets are sized so both backends always decide: the joint configuration
space has at most ``(n·K·(Δ+1))²`` states, the seen-set certificate fires
within one period, and Brent's anchor within a small constant factor of
it.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import Automaton
from repro.sim import run_rendezvous, run_rendezvous_compiled, solve_all_delays
from repro.trees import random_relabel, random_tree


@st.composite
def instances(draw, max_n=8, max_states=3):
    n = draw(st.integers(2, max_n))
    tree_seed = draw(st.integers(0, 2**20))
    rng = random.Random(tree_seed)
    tree = random_relabel(random_tree(n, rng), rng)
    k = draw(st.integers(1, max_states))
    dmax = tree.max_degree()
    table = {
        (s, ip, d): draw(st.integers(0, k - 1))
        for s in range(k)
        for ip in range(-1, dmax)
        for d in range(1, dmax + 1)
    }
    output = [draw(st.integers(-1, 2)) for _ in range(k)]
    agent = Automaton(k, table, output, draw(st.integers(0, k - 1)))
    u = draw(st.integers(0, n - 1))
    v = draw(st.integers(0, n - 1))
    return tree, agent, u, v


def decisive_budget(tree, agent, delay):
    period = (tree.n * agent.num_states * (tree.max_degree() + 1)) ** 2
    return 4 * period + delay + 8


@settings(max_examples=60, deadline=None)
@given(instances(), st.integers(0, 5), st.sampled_from([1, 2]))
def test_single_run_verdict_parity(instance, delay, delayed):
    tree, agent, u, v = instance
    budget = decisive_budget(tree, agent, delay)
    ref = run_rendezvous(
        tree, agent, u, v,
        delay=delay, delayed=delayed, max_rounds=budget, certify=True,
    )
    cmp_ = run_rendezvous_compiled(
        tree, agent, u, v,
        delay=delay, delayed=delayed, max_rounds=budget, certify=True,
    )
    assert not ref.undecided, "budget sized to always decide"
    assert ref.met == cmp_.met
    assert ref.meeting_round == cmp_.meeting_round
    assert ref.meeting_node == cmp_.meeting_node
    assert ref.certified_never == cmp_.certified_never
    if ref.met:  # identical executed prefix -> identical crossing counts
        assert ref.crossings == cmp_.crossings


@settings(max_examples=25, deadline=None)
@given(instances(max_n=7), st.integers(0, 6))
def test_all_delays_solver_matches_reference(instance, max_delay):
    tree, agent, u, v = instance
    budget = decisive_budget(tree, agent, max_delay)
    for dv in solve_all_delays(tree, agent, u, v, max_delay=max_delay):
        ref = run_rendezvous(
            tree, agent, u, v,
            delay=dv.delay, delayed=dv.delayed, max_rounds=budget, certify=True,
        )
        assert (ref.met, ref.meeting_round, ref.certified_never) == (
            dv.met, dv.meeting_round, dv.certified_never,
        )
