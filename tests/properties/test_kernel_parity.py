"""Property tests: vectorized kernel ≡ dict solvers ≡ reference engine.

The dict product-configuration solvers stay the oracle for the
vectorized frontier kernel (:mod:`repro.sim.kernel`), and the reference
engine stays the oracle for both.  On randomized (tree, automaton,
starts) instances:

- delay sweeps: kernel verdict lists equal :func:`solve_all_delays`
  exactly (same objects field-for-field), and spot-checked θ choices
  equal certified reference runs;
- heterogeneous pairs (``prototype2``) and lowered register programs
  (route A automata, route B traced lassos) are held to the same
  equality;
- gathering grids: :func:`solve_gathering_kernel` equals
  :func:`solve_gathering`;
- a ``max_configs`` budget trip never changes semantics: the auto
  wrapper's verdicts equal the dict solver's under the same guard, and
  both raise :class:`~repro.errors.BudgetExceededError` for the same
  genuinely-too-small guards.
"""

import random
from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import Automaton
from repro.agents.library import counting_program, pausing_program
from repro.agents.lowering import lowered_for
from repro.errors import BudgetExceededError
from repro.sim import (
    run_rendezvous,
    solve_all_delays,
    solve_all_delays_auto,
    solve_all_delays_kernel,
    solve_delay_grid_kernel,
    solve_gathering,
    solve_gathering_kernel,
)
from repro.sim.traced import lasso_automaton, solo_trace
from repro.trees import random_relabel, random_tree


@st.composite
def automaton_for(draw, tree, max_states=3):
    k = draw(st.integers(1, max_states))
    dmax = tree.max_degree()
    table = {
        (s, ip, d): draw(st.integers(0, k - 1))
        for s in range(k)
        for ip in range(-1, dmax)
        for d in range(1, dmax + 1)
    }
    output = [draw(st.integers(-1, 2)) for _ in range(k)]
    return Automaton(k, table, output, draw(st.integers(0, k - 1)))


@st.composite
def instances(draw, max_n=8, max_states=3):
    n = draw(st.integers(2, max_n))
    rng = random.Random(draw(st.integers(0, 2**20)))
    tree = random_relabel(random_tree(n, rng), rng)
    agent = draw(automaton_for(tree, max_states))
    u = draw(st.integers(0, n - 1))
    v = draw(st.integers(0, n - 1))
    return tree, agent, u, v


def decisive_budget(tree, agent, delay):
    period = (tree.n * agent.num_states * (tree.max_degree() + 1)) ** 2
    return 4 * period + delay + 8


@settings(max_examples=50, deadline=None)
@given(instances(), st.integers(0, 6),
       st.sampled_from([(1, 2), (2, 1), (1,), (2,)]))
def test_kernel_equals_dict_solver(instance, max_delay, sides):
    tree, agent, u, v = instance
    dict_v = solve_all_delays(
        tree, agent, u, v, max_delay=max_delay, delayed_sides=sides
    )
    kern_v = solve_all_delays_kernel(
        tree, agent, u, v, max_delay=max_delay, delayed_sides=sides
    )
    assert dict_v == kern_v


@settings(max_examples=15, deadline=None)
@given(instances(max_n=6), st.integers(0, 4))
def test_kernel_matches_reference(instance, max_delay):
    tree, agent, u, v = instance
    budget = decisive_budget(tree, agent, max_delay)
    for dv in solve_all_delays_kernel(tree, agent, u, v, max_delay=max_delay):
        ref = run_rendezvous(
            tree, agent, u, v,
            delay=dv.delay, delayed=dv.delayed, max_rounds=budget, certify=True,
        )
        assert (ref.met, ref.meeting_round, ref.certified_never) == (
            dv.met, dv.meeting_round, dv.certified_never,
        )


@settings(max_examples=25, deadline=None)
@given(instances(), st.integers(0, 4))
def test_kernel_heterogeneous_prototype2(instance, max_delay):
    tree, agent, u, v = instance
    rng = random.Random(u * 1009 + v)
    k2 = rng.randrange(1, 4)
    dmax = tree.max_degree()
    table2 = {
        (s, ip, d): rng.randrange(k2)
        for s in range(k2)
        for ip in range(-1, dmax)
        for d in range(1, dmax + 1)
    }
    other = Automaton(k2, table2, [rng.randrange(-1, 3) for _ in range(k2)])
    dict_v = solve_all_delays(
        tree, agent, u, v, max_delay=max_delay, prototype2=other
    )
    kern_v = solve_all_delays_kernel(
        tree, agent, u, v, max_delay=max_delay, prototype2=other
    )
    assert dict_v == kern_v


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 8), st.integers(0, 2**20), st.integers(0, 3),
       st.booleans())
def test_kernel_lowered_programs(n, seed, max_delay, use_counting):
    rng = random.Random(seed)
    tree = random_relabel(random_tree(n, rng), rng)
    program = counting_program(2) if use_counting else pausing_program(2)
    degrees = {tree.degree(x) for x in range(tree.n)}
    lowered = lowered_for(program, degrees)
    u, v = rng.randrange(n), rng.randrange(n)
    dict_v = solve_all_delays(tree, lowered, u, v, max_delay=max_delay)
    kern_v = solve_all_delays_kernel(tree, lowered, u, v, max_delay=max_delay)
    assert dict_v == kern_v


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 8), st.integers(0, 2**20), st.integers(0, 2))
def test_kernel_traced_lasso_automata(n, seed, max_delay):
    """Route B: per-start lassoed automata through the heterogeneous seam."""
    rng = random.Random(seed)
    tree = random_relabel(random_tree(n, rng), rng)
    program = pausing_program(1)
    u, v = rng.randrange(n), rng.randrange(n)
    if u == v:
        v = (v + 1) % n
    a1 = lasso_automaton(solo_trace(tree, program, u))
    a2 = lasso_automaton(solo_trace(tree, program, v))
    dict_v = solve_all_delays(
        tree, a1, u, v, max_delay=max_delay, prototype2=a2
    )
    kern_v = solve_all_delays_kernel(
        tree, a1, u, v, max_delay=max_delay, prototype2=a2
    )
    assert dict_v == kern_v


@settings(max_examples=20, deadline=None)
@given(instances(max_n=7), st.integers(2, 3), st.integers(0, 2**20))
def test_gathering_kernel_equals_dict_solver(instance, k, seed):
    tree, agent, _u, _v = instance
    rng = random.Random(seed)
    starts = [rng.randrange(tree.n) for _ in range(k)]
    vectors = list(product(range(2), repeat=k))
    dict_v = solve_gathering(tree, agent, starts, vectors)
    kern_v = solve_gathering_kernel(tree, agent, starts, vectors)
    assert dict_v == kern_v


@settings(max_examples=20, deadline=None)
@given(instances(max_n=7), st.integers(0, 4))
def test_budget_trip_preserves_dict_semantics(instance, max_delay):
    """Tiny max_configs: the auto wrapper must behave exactly like the
    dict solver under the same guard — same verdicts when the dict
    solver fits, the dict solver's own BudgetExceededError when not
    (the kernel's internal accounting never leaks through)."""
    tree, agent, u, v = instance
    try:
        expected = solve_all_delays(
            tree, agent, u, v, max_delay=max_delay, max_configs=7
        )
    except BudgetExceededError:
        expected = BudgetExceededError
    try:
        got = solve_all_delays_auto(
            tree, agent, u, v, max_delay=max_delay, max_configs=7
        )
    except BudgetExceededError:
        got = BudgetExceededError
    assert got == expected or (got is expected is BudgetExceededError)


@settings(max_examples=10, deadline=None)
@given(instances(max_n=7), st.integers(0, 3), st.integers(0, 2**20))
def test_grid_kernel_equals_per_pair(instance, max_delay, seed):
    tree, agent, _u, _v = instance
    rng = random.Random(seed)
    pairs = [
        (rng.randrange(tree.n), rng.randrange(tree.n)) for _ in range(5)
    ]
    per_pair = [
        solve_all_delays(tree, agent, u, v, max_delay=max_delay)
        for u, v in pairs
    ]
    grid = solve_delay_grid_kernel(tree, agent, pairs, max_delay=max_delay)
    assert grid == per_pair
