"""Property tests: faulted compiled backend ≡ faulted reference engine.

Same contract as test_backend_parity, with an adversary in the loop: on
randomized (tree, automaton, starts, delay, fault plan) instances the
compiled faulted loop must reproduce the reference loop's ``met`` /
``meeting_round`` / ``certified_never`` / ``crashed`` verdicts, and the
faulted all-delays solver must agree with per-choice reference runs.

Budgets extend the fault-free period bound by the plan horizon: past the
horizon the joint dynamics are autonomous again (crashed agents are
frozen obstacles, the labeling is final), so the same recurrence
argument applies to the post-horizon suffix.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import Automaton
from repro.sim import (
    CrashFault,
    FaultPlan,
    PauseFault,
    RelabelFault,
    run_rendezvous_faulted,
    solve_all_delays_faulted,
)
from repro.sim.faults import run_rendezvous_faulted_compiled
from repro.trees import random_relabel, random_tree


@st.composite
def instances(draw, max_n=8, max_states=3):
    n = draw(st.integers(2, max_n))
    tree_seed = draw(st.integers(0, 2**20))
    rng = random.Random(tree_seed)
    tree = random_relabel(random_tree(n, rng), rng)
    k = draw(st.integers(1, max_states))
    dmax = tree.max_degree()
    table = {
        (s, ip, d): draw(st.integers(0, k - 1))
        for s in range(k)
        for ip in range(-1, dmax)
        for d in range(1, dmax + 1)
    }
    output = [draw(st.integers(-1, 2)) for _ in range(k)]
    agent = Automaton(k, table, output, draw(st.integers(0, k - 1)))
    u = draw(st.integers(0, n - 1))
    v = draw(st.integers(0, n - 1))
    return tree, agent, u, v


@st.composite
def fault_plans(draw, num_agents=2, max_round=6):
    """A small non-empty plan over ``num_agents`` agents: at most one
    crash, at most one pause per agent, at most two relabels."""
    crashes = []
    crash_agent = draw(st.sampled_from([None] + list(range(num_agents))))
    if crash_agent is not None:
        crashes.append(CrashFault(crash_agent, draw(st.integers(1, max_round))))
    pauses = []
    for agent in range(num_agents):
        if draw(st.booleans()):
            pauses.append(PauseFault(
                agent, draw(st.integers(1, max_round)), draw(st.integers(1, 3))
            ))
    relabels = []
    for rnd in sorted(draw(st.sets(st.integers(1, max_round), max_size=2))):
        relabels.append(RelabelFault(rnd, draw(st.integers(0, 2**10))))
    plan = FaultPlan(tuple(crashes), tuple(pauses), tuple(relabels))
    return plan if plan else FaultPlan(crashes=(CrashFault(0, max_round),))


def decisive_budget(tree, agent, delay, plan):
    period = (tree.n * agent.num_states * (tree.max_degree() + 1)) ** 2
    return 4 * period + delay + plan.horizon + 16


@settings(max_examples=40, deadline=None)
@given(instances(), fault_plans(), st.integers(0, 5), st.sampled_from([1, 2]))
def test_faulted_single_run_verdict_parity(instance, plan, delay, delayed):
    tree, agent, u, v = instance
    budget = decisive_budget(tree, agent, delay, plan)
    kw = dict(
        faults=plan, delay=delay, delayed=delayed,
        max_rounds=budget, certify=True,
    )
    ref = run_rendezvous_faulted(tree, agent, u, v, **kw)
    cmp_ = run_rendezvous_faulted_compiled(tree, agent, u, v, **kw)
    assert ref.met or ref.certified_never, "budget sized to always decide"
    assert ref.met == cmp_.met
    assert ref.meeting_round == cmp_.meeting_round
    assert ref.meeting_node == cmp_.meeting_node
    assert ref.certified_never == cmp_.certified_never
    assert ref.crashed == cmp_.crashed
    if ref.met:  # identical executed prefix -> identical crossing counts
        assert ref.crossings == cmp_.crossings


@settings(max_examples=20, deadline=None)
@given(instances(max_n=7), fault_plans(), st.integers(0, 4))
def test_faulted_solver_matches_per_choice_reference(instance, plan, max_delay):
    tree, agent, u, v = instance
    budget = decisive_budget(tree, agent, max_delay, plan)
    for dv in solve_all_delays_faulted(
        tree, agent, u, v, max_delay=max_delay, faults=plan
    ):
        ref = run_rendezvous_faulted(
            tree, agent, u, v, faults=plan, delay=dv.delay,
            delayed=dv.delayed, max_rounds=budget, certify=True,
        )
        assert (ref.met, ref.meeting_round, ref.certified_never) == (
            dv.met, dv.meeting_round, dv.certified_never,
        )
