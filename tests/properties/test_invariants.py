"""Property-based suites over the model's core invariants (hypothesis).

Each property here is a statement the paper's proofs rely on; violating any
of them would silently break a theorem, so they get generative coverage
beyond the unit tests.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import random_line_automaton
from repro.sim import run_rendezvous
from repro.trees import (
    basic_walk,
    basic_walk_until_branching,
    canonical_form,
    contract,
    counter_basic_walk_until_branching,
    edge_colored_line,
    find_center,
    perfectly_symmetrizable,
    port_preserving_automorphism,
    random_relabel,
    random_tree,
    subdivide,
)


def _tree(seed, lo=2, hi=30):
    rng = random.Random(seed)
    return random_relabel(random_tree(rng.randrange(lo, hi), rng), rng), rng


class TestContractionInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_nu_bound_and_leaves(self, seed):
        t, _ = _tree(seed)
        c = contract(t)
        ell = t.num_leaves
        assert c.nu <= max(2 * ell - 1, 1)
        if t.n > 1:
            # leaves of T are exactly the degree-1 nodes of T'
            leaves_tp = {c.to_original[a] for a in range(c.nu)
                         if c.contracted.degree(a) == 1}
            assert leaves_tp == set(t.leaves())

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_path_lengths_sum_to_edge_count(self, seed):
        t, _ = _tree(seed, lo=3)
        c = contract(t)
        total = sum(c.path_length(a, p) for a in range(c.nu)
                    for p in range(c.contracted.degree(a)))
        assert total == 2 * t.num_edges  # every T-edge counted once per direction

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_contraction_idempotent(self, seed):
        t, _ = _tree(seed)
        tp = contract(t).contracted
        tpp = contract(tp).contracted
        assert canonical_form(tp) == canonical_form(tpp)


class TestBasicWalkProjection:
    """A basic walk in T projects onto a basic walk in T' — the identity
    Explo-bis is built on."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_projection(self, seed):
        t, rng = _tree(seed, lo=3)
        c = contract(t)
        tp = c.contracted
        if tp.n < 2:
            return
        branching = [v for v in range(t.n) if t.degree(v) != 2]
        start = rng.choice(branching)
        walk = basic_walk(t, start)
        projected = [c.from_original[s.to_node] for s in walk
                     if t.degree(s.to_node) != 2]
        expected = [s.to_node for s in basic_walk(tp, c.from_original[start])]
        assert projected == expected

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_bw_cbw_inverse(self, seed):
        t, rng = _tree(seed, lo=3)
        branching = [v for v in range(t.n) if t.degree(v) != 2]
        start = rng.choice(branching)
        j = rng.randrange(1, 5)
        fwd = basic_walk_until_branching(t, start, j)
        back = counter_basic_walk_until_branching(
            t, fwd[-1].to_node, fwd[-1].in_port, j
        )
        assert back[-1].to_node == start


class TestSymmetryInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_automorphism_is_port_preserving_involution(self, seed):
        t, _ = _tree(seed)
        f = port_preserving_automorphism(t)
        if f is None:
            return
        for u, v in f.items():
            assert f[v] == u  # involution
            assert t.degree(u) == t.degree(v)
            for p in range(t.degree(u)):
                assert f[t.neighbors(u)[p]] == t.neighbors(v)[p]

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_perfect_symmetrizability_invariant_under_relabeling(self, seed):
        t, rng = _tree(seed, hi=14)
        t2 = random_relabel(t, rng)
        for u in range(min(t.n, 5)):
            for v in range(u + 1, min(t.n, 6)):
                assert perfectly_symmetrizable(t, u, v) == perfectly_symmetrizable(
                    t2, u, v
                )

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_central_node_blocks_symmetry(self, seed):
        t, _ = _tree(seed)
        if find_center(t).is_node:
            assert port_preserving_automorphism(t) is None

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_even_subdivision_preserves_feasibility(self, seed):
        # NB: only EVEN subdivision counts preserve the center's kind (odd
        # counts flip the diameter's parity and can turn a central edge
        # into a central node, changing which pairs are symmetrizable —
        # subdivide(line(2), 1) is the smallest example).
        t, rng = _tree(seed, hi=10)
        fat = subdivide(t, 2)
        for u in range(t.n):
            for v in range(u + 1, t.n):
                # original node ids survive subdivision unchanged
                assert perfectly_symmetrizable(t, u, v) == perfectly_symmetrizable(
                    fat, u, v
                )


class TestEngineInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, seed):
        rng = random.Random(seed)
        t = edge_colored_line(rng.randrange(4, 12))
        agent = random_line_automaton(rng.randrange(2, 6), rng)
        u, v = 0, rng.randrange(1, t.n)
        a = run_rendezvous(t, agent, u, v, max_rounds=500)
        b = run_rendezvous(t, agent, u, v, max_rounds=500)
        assert (a.met, a.meeting_round, a.meeting_node) == (
            b.met,
            b.meeting_round,
            b.meeting_node,
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_certified_runs_really_never_meet(self, seed):
        rng = random.Random(seed)
        t = edge_colored_line(rng.randrange(4, 10))
        agent = random_line_automaton(rng.randrange(1, 5), rng)
        u, v = 0, rng.randrange(1, t.n)
        out = run_rendezvous(t, agent, u, v, max_rounds=50_000, certify=True)
        if out.certified_never:
            # replay WITHOUT certification for 4x the certificate horizon:
            # still no meeting
            replay = run_rendezvous(
                t, agent, u, v, max_rounds=4 * out.rounds_executed + 100
            )
            assert not replay.met
