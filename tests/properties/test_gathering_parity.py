"""Property tests: the k-agent gathering stack agrees with the oracle.

Three layers must produce identical verdicts on randomized
(tree, automaton, starts, per-agent delays) instances:

- ``run_gathering`` (compiled table loop, Brent certification) vs
  ``run_gathering_reference`` (readable loop, ``seen``-set certificate);
- ``solve_gathering`` (the shared-memo joint-configuration solver) vs
  certified per-vector runs;
- certified-never verdicts are additionally cross-checked by exhaustive
  replay: the reference loop, given a budget larger than the joint
  cycle the certificate found, must itself certify (never merely stall).

Budgets follow tests/properties/test_backend_parity.py: the joint
configuration space has at most ``(n·K·(Δ+1))^k`` states, so the
``seen``-set certificate fires within one period and Brent's anchor
within a small constant factor of it.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import run_gathering, run_gathering_reference, solve_gathering
from repro.agents import Automaton
from repro.trees import random_relabel, random_tree


@st.composite
def gathering_instances(draw, max_n=7, max_states=2, max_k=3):
    n = draw(st.integers(3, max_n))
    tree_seed = draw(st.integers(0, 2**20))
    rng = random.Random(tree_seed)
    tree = random_relabel(random_tree(n, rng), rng)
    num_states = draw(st.integers(1, max_states))
    dmax = tree.max_degree()
    table = {
        (s, ip, d): draw(st.integers(0, num_states - 1))
        for s in range(num_states)
        for ip in range(-1, dmax)
        for d in range(1, dmax + 1)
    }
    output = [draw(st.integers(-1, 2)) for _ in range(num_states)]
    agent = Automaton(num_states, table, output, draw(st.integers(0, num_states - 1)))
    k = draw(st.integers(2, max_k))
    starts = [draw(st.integers(0, n - 1)) for _ in range(k)]
    delays = [draw(st.integers(0, 4)) for _ in range(k)]
    return tree, agent, starts, delays


def decisive_budget(tree, agent, delays, k):
    period = (tree.n * agent.num_states * (tree.max_degree() + 1)) ** k
    return 4 * period + max(delays) + 8


def verdict(outcome):
    return (outcome.gathered, outcome.gathering_round, outcome.certified_never)


@settings(max_examples=50, deadline=None)
@given(gathering_instances())
def test_compiled_reference_verdict_parity(instance):
    tree, agent, starts, delays = instance
    budget = decisive_budget(tree, agent, delays, len(starts))
    ref = run_gathering_reference(
        tree, agent, starts, delays=delays, max_rounds=budget, certify=True
    )
    fast = run_gathering(
        tree, agent, starts, delays=delays, max_rounds=budget, certify=True
    )
    assert verdict(ref) == verdict(fast)
    assert not ref.undecided  # the budget is decisive by construction
    if ref.gathered:
        # On a meeting the full outcomes agree field by field; on a
        # certificate only the verdict does (the detection round and the
        # final positions depend on the cycle-detector, as documented).
        assert ref == fast


@settings(max_examples=25, deadline=None)
@given(gathering_instances())
def test_solver_matches_certified_runs(instance):
    tree, agent, starts, base = instance
    vectors = [base, [0] * len(base), list(reversed(base))]
    verdicts = solve_gathering(tree, agent, starts, vectors)
    assert [v.delays for v in verdicts] == [tuple(v) for v in vectors]
    for vec, v in zip(vectors, verdicts):
        assert v.gathered != v.certified_never  # the solver always decides
        budget = decisive_budget(tree, agent, vec, len(starts))
        ref = run_gathering_reference(
            tree, agent, starts, delays=vec, max_rounds=budget, certify=True
        )
        assert (v.gathered, v.gathering_round, v.certified_never) == verdict(ref)


@settings(max_examples=25, deadline=None)
@given(gathering_instances(max_n=6, max_states=2, max_k=3))
def test_certified_never_survives_exhaustive_replay(instance):
    tree, agent, starts, delays = instance
    (v,) = solve_gathering(tree, agent, starts, [delays])
    if not v.certified_never:
        return
    # Exhaustive replay: with a budget past the full joint period the
    # reference loop must re-derive the certificate, and no prefix of
    # the execution may gather.
    budget = decisive_budget(tree, agent, delays, len(starts))
    ref = run_gathering_reference(
        tree, agent, starts, delays=delays, max_rounds=budget, certify=True
    )
    assert not ref.gathered
    assert ref.certified_never
    uncertified = run_gathering_reference(
        tree, agent, starts, delays=delays, max_rounds=2000, certify=False
    )
    assert not uncertified.gathered
