"""Coverage for small public surfaces not exercised elsewhere."""

import random

from repro.agents import STAY, Automaton, resolve_action
from repro.analysis import thm42_size_vs_bits
from repro.lowerbounds.common import bounded_agent_placement
from repro.sim import run_solo
from repro.trees import find_center, line, perfectly_symmetrizable


class TestResolveAction:
    def test_stay_passthrough(self):
        assert resolve_action(STAY, 3) == STAY

    def test_mod_rule(self):
        assert resolve_action(7, 3) == 1
        assert resolve_action(3, 3) == 0
        assert resolve_action(0, 1) == 0

    def test_degree_zero_forces_stay(self):
        assert resolve_action(5, 0) == STAY


class TestBoundedPlacement:
    def test_geometry(self):
        for radius in (0, 1, 4, 9):
            p = bounded_agent_placement(radius)
            assert p.tree.n == 4 * radius + 7
            assert p.tree.n % 2 == 1  # central node => all pairs feasible
            assert find_center(p.tree).is_node
            assert not perfectly_symmetrizable(p.tree, p.start1, p.start2)
            # ranges [start ± radius] disjoint and interior
            assert p.start1 - radius >= 1
            assert p.start2 + radius <= p.tree.n - 2
            assert p.start1 + radius < p.start2 - radius

    def test_line_edges_property(self):
        p = bounded_agent_placement(2)
        assert p.line_edges == p.tree.num_edges


class TestThm42Sweep:
    def test_rows_shape(self):
        rows = thm42_size_vs_bits(seed=3, states=(2, 3))
        assert rows
        for bits, edges, kind, gamma in rows:
            assert bits >= 1 and edges >= 3 and gamma >= 1
            assert kind in ("drifting", "bounded")

    def test_explicit_agents(self):
        from repro.agents import alternator

        rows = thm42_size_vs_bits(agents=[alternator()])
        assert len(rows) == 1
        assert rows[0][2] == "drifting"


class TestRunSoloOptions:
    def test_without_register_recording(self):
        from repro.core import rendezvous_agent

        run = run_solo(
            line(7), 0, rendezvous_agent(max_outer=1), 500,
            record_registers=False,
        )
        assert run.register_events == []
        assert run.rounds > 0


class TestGatheringWithAutomata:
    def test_finite_state_agents_gather_too(self):
        from repro.sim import run_gathering

        walker = Automaton(1, {}, [0])
        out = run_gathering(line(5), walker, [2, 3, 4], max_rounds=60)
        # all three slide to the 0-1 bounce; they merge pairwise at least
        assert out.largest_cluster >= 2


class TestSeriesHelpers:
    def test_rows_and_table(self):
        from repro.analysis import Series

        s = Series("x", (1.0, 2.0, 4.0), (3.0, 5.0, 9.0))
        assert s.rows() == [(1.0, 3.0), (2.0, 5.0), (4.0, 9.0)]
        table = s.table("in", "out")
        assert table.splitlines()[0].strip().startswith("in")


class TestAgentLibraryEdges:
    def test_pausing_walker_zero_pause(self):
        from repro.agents import pausing_walker
        from repro.lowerbounds import simulate_infinite_line

        agent = pausing_walker(0)  # never idles: plain alternation
        run = simulate_infinite_line(agent, 20)
        assert len(run.leave_events) == 20

    def test_random_tree_automaton_determinism(self):
        from repro.agents import random_tree_automaton

        a = random_tree_automaton(4, rng=random.Random(9))
        b = random_tree_automaton(4, rng=random.Random(9))
        assert a.output == b.output
        for s in range(4):
            for i in (-1, 0, 1, 2):
                for d in (1, 2, 3):
                    assert a.transition(s, i, d) == b.transition(s, i, d)
