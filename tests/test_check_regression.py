"""The bench regression gate must trip on slowdowns and pass the baseline.

Runs ``benchmarks/check_regression.py`` the way the Makefile / CI job
does (as a subprocess), against the *committed* ``BENCH_engine.json``:
self-comparison passes, and a baseline whose timings are scaled down 3x
(equivalently: a current file 3x slower) fails with exit code 1.
"""

import json
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SCRIPT = REPO_ROOT / "benchmarks" / "check_regression.py"
BENCH = REPO_ROOT / "BENCH_engine.json"


def run_gate(baseline: pathlib.Path, current: pathlib.Path, *extra: str):
    return subprocess.run(
        [sys.executable, str(SCRIPT),
         "--baseline", str(baseline), "--current", str(current), *extra],
        capture_output=True, text=True,
    )


def scaled_copy(tmp_path: pathlib.Path, factor: float) -> pathlib.Path:
    def scale(node):
        if isinstance(node, dict):
            return {
                k: (
                    v * factor
                    if str(k).endswith("_seconds")
                    and isinstance(v, (int, float))
                    and not isinstance(v, bool)
                    else scale(v)
                )
                for k, v in node.items()
            }
        if isinstance(node, list):
            return [scale(v) for v in node]
        return node

    path = tmp_path / f"bench-x{factor}.json"
    path.write_text(json.dumps(scale(json.loads(BENCH.read_text()))))
    return path


class TestRegressionGate:
    def test_committed_baseline_passes_against_itself(self):
        proc = run_gate(BENCH, BENCH)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "within tolerance" in proc.stdout

    def test_injected_3x_slowdown_fails(self, tmp_path):
        baseline = scaled_copy(tmp_path, 1 / 3)
        proc = run_gate(baseline, BENCH)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "regressed" in proc.stdout
        # the headline best-of timings are among the tripped paths
        assert "_seconds" in proc.stdout

    def test_speedup_never_trips(self, tmp_path):
        baseline = scaled_copy(tmp_path, 3.0)
        proc = run_gate(baseline, BENCH)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_micro_timings_ride_the_floor(self, tmp_path):
        # a 3x blip on a sub-floor micro-timing alone must not fail
        payload = {"bench": "x", "solver": {"best_seconds": 0.002}}
        base = tmp_path / "base.json"
        base.write_text(json.dumps(payload))
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps({"bench": "x", "solver": {"best_seconds": 0.006}}))
        proc = run_gate(base, cur)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_structural_drift_is_reported_not_fatal(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"a": {"x_seconds": 1.0}}))
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps({"b": {"x_seconds": 1.0}}))
        proc = run_gate(base, cur)
        assert proc.returncode == 0
        assert "only in baseline" in proc.stdout
        assert "only in current" in proc.stdout

    def test_unreadable_input_is_a_usage_error(self, tmp_path):
        proc = run_gate(tmp_path / "ghost.json", BENCH)
        assert proc.returncode == 2

    @pytest.mark.parametrize("tolerance,expect", [(10.0, 0), (1.01, 1)])
    def test_tolerance_knob(self, tmp_path, tolerance, expect):
        baseline = scaled_copy(tmp_path, 0.5)  # current looks 2x slower
        proc = run_gate(baseline, BENCH, "--tolerance", str(tolerance))
        assert proc.returncode == expect, proc.stdout + proc.stderr

    def test_required_sections_present_in_committed_bench(self):
        # the Makefile's section registration, against the real file
        proc = run_gate(BENCH, BENCH,
                        "--require", "throughput", "--require", "delay_sweep",
                        "--require", "lowering", "--require", "kernel")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_missing_required_section_fails(self, tmp_path):
        payload = json.loads(BENCH.read_text())
        payload.pop("kernel")
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(payload))
        proc = run_gate(BENCH, cur, "--require", "kernel")
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "kernel" in proc.stdout

    def test_required_section_emptied_fails(self, tmp_path):
        payload = json.loads(BENCH.read_text())
        payload["kernel"] = {}
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(payload))
        proc = run_gate(BENCH, cur, "--require", "kernel")
        assert proc.returncode == 1, proc.stdout + proc.stderr
