"""Tests for register programs: Registers, Ctx, move/stay, AgentProgram."""

import pytest

from repro.agents import STAY, AgentProgram, Ctx, Registers, move, stay
from repro.errors import AgentProtocolError
from repro.trees import line


class TestRegisters:
    def test_declare_and_assign(self):
        regs = Registers()
        regs.declare("x", 10)
        regs["x"] = 7
        assert regs["x"] == 7

    def test_bound_enforced(self):
        regs = Registers()
        regs.declare("x", 3)
        with pytest.raises(AgentProtocolError):
            regs["x"] = 4
        with pytest.raises(AgentProtocolError):
            regs["x"] = -1

    def test_undeclared_rejected(self):
        regs = Registers()
        with pytest.raises(AgentProtocolError):
            regs["ghost"] = 0

    def test_redeclare_widens_never_narrows(self):
        regs = Registers()
        regs.declare("x", 3)
        regs.declare("x", 10)
        regs["x"] = 9
        regs.declare("x", 2)  # narrowing is ignored
        regs["x"] = 9  # still allowed
        assert regs.report()["x"][0] == 10

    def test_bits_declared(self):
        regs = Registers()
        regs.declare("a", 1)  # 1 bit
        regs.declare("b", 7)  # 3 bits
        regs.declare("c", 8)  # 4 bits
        assert regs.bits_declared() == 1 + 3 + 4

    def test_bits_used_tracks_peaks(self):
        regs = Registers()
        regs.declare("a", 1000)
        regs["a"] = 3
        regs["a"] = 100
        regs["a"] = 5
        assert regs.report()["a"] == (1000, 100)
        assert regs.bits_used() == 7  # ceil(log2(101))

    def test_negative_bound_rejected(self):
        regs = Registers()
        with pytest.raises(AgentProtocolError):
            regs.declare("x", -1)

    def test_initial_value(self):
        regs = Registers()
        regs.declare("x", 5, initial=4)
        assert regs["x"] == 4


class TestCtxAndMoves:
    def _drive(self, gen, tree, start):
        """Minimal driver: run a routine to completion on a tree."""
        pos = start
        log = []
        try:
            action = next(gen)
            while True:
                if action == STAY:
                    obs = (-1, tree.degree(pos))
                else:
                    pos, in_port = tree.move(pos, action % tree.degree(pos))
                    obs = (in_port, tree.degree(pos))
                log.append(pos)
                action = gen.send(obs)
        except StopIteration:
            return pos, log

    def test_move_updates_ctx(self):
        t = line(4)
        ctx = Ctx(-1, t.degree(0))

        def routine():
            yield from move(ctx, 0)
            assert ctx.degree == 2
            yield from move(ctx, (ctx.in_port + 1) % 2)

        pos, _ = self._drive(routine(), t, 0)
        assert pos == 2
        assert ctx.rounds == 2

    def test_stay_resets_in_port(self):
        t = line(3)
        ctx = Ctx(-1, t.degree(1))

        def routine():
            yield from move(ctx, 0)
            yield from stay(ctx, 2)
            assert ctx.in_port == -1  # the model's (-1, d) after null moves

        pos, _ = self._drive(routine(), t, 1)
        assert pos == 0
        assert ctx.rounds == 3

    def test_stay_zero_is_noop(self):
        t = line(3)
        ctx = Ctx(-1, 2)

        def routine():
            yield from stay(ctx, 0)
            yield from move(ctx, 0)

        pos, log = self._drive(routine(), t, 1)
        assert len(log) == 1


class TestAgentProgram:
    def test_lifecycle(self):
        def program(start_degree, regs):
            ctx = Ctx(-1, start_degree)
            regs.declare("steps", 3)
            for k in range(3):
                regs["steps"] = k
                yield from move(ctx, 0)

        agent = AgentProgram(program)
        t = line(5)
        action = agent.start(t.degree(3))
        pos = 3
        rounds = 0
        while not agent.finished:
            pos, in_port = t.move(pos, action % t.degree(pos))
            rounds += 1
            action = agent.step(in_port, t.degree(pos))
        assert rounds == 3
        assert agent.memory_bits_declared() == 2

    def test_finished_agent_stays(self):
        def program(start_degree, regs):
            return
            yield  # pragma: no cover

        agent = AgentProgram(program)
        assert agent.start(2) == STAY
        assert agent.finished
        assert agent.step(0, 2) == STAY

    def test_clone_is_independent(self):
        def program(start_degree, regs):
            regs.declare("x", 1)
            yield 0

        a = AgentProgram(program)
        a.start(2)
        b = a.clone()
        assert b.registers.report() == {}
        b.start(2)
        assert b.registers.report() == {"x": (1, 0)}

    def test_restart_resets_registers(self):
        def program(start_degree, regs):
            regs.declare("x", 10, initial=start_degree)
            yield 0

        a = AgentProgram(program)
        a.start(5)
        assert a.registers["x"] == 5
        a.start(2)
        assert a.registers["x"] == 2

    def test_repr(self):
        def myprog(start_degree, regs):
            yield 0

        assert "myprog" in repr(AgentProgram(myprog))
