"""Tests for register programs: Registers, Ctx, move/stay, AgentProgram."""

import pytest

from repro.agents import STAY, AgentProgram, Ctx, Registers, move, stay
from repro.errors import AgentProtocolError
from repro.trees import line


class TestRegisters:
    def test_declare_and_assign(self):
        regs = Registers()
        regs.declare("x", 10)
        regs["x"] = 7
        assert regs["x"] == 7

    def test_bound_enforced(self):
        regs = Registers()
        regs.declare("x", 3)
        with pytest.raises(AgentProtocolError):
            regs["x"] = 4
        with pytest.raises(AgentProtocolError):
            regs["x"] = -1

    def test_undeclared_rejected(self):
        regs = Registers()
        with pytest.raises(AgentProtocolError):
            regs["ghost"] = 0

    def test_redeclare_widens_never_narrows(self):
        regs = Registers()
        regs.declare("x", 3)
        regs.declare("x", 10)
        regs["x"] = 9
        regs.declare("x", 2)  # narrowing is ignored
        regs["x"] = 9  # still allowed
        assert regs.report()["x"][0] == 10

    def test_bits_declared(self):
        regs = Registers()
        regs.declare("a", 1)  # 1 bit
        regs.declare("b", 7)  # 3 bits
        regs.declare("c", 8)  # 4 bits
        assert regs.bits_declared() == 1 + 3 + 4

    def test_bits_used_tracks_peaks(self):
        regs = Registers()
        regs.declare("a", 1000)
        regs["a"] = 3
        regs["a"] = 100
        regs["a"] = 5
        assert regs.report()["a"] == (1000, 100)
        assert regs.bits_used() == 7  # ceil(log2(101))

    def test_negative_bound_rejected(self):
        regs = Registers()
        with pytest.raises(AgentProtocolError):
            regs.declare("x", -1)

    def test_initial_value(self):
        regs = Registers()
        regs.declare("x", 5, initial=4)
        assert regs["x"] == 4


class TestRegistersSnapshot:
    """snapshot()/restore()/state_key() — the lowering subsystem's view."""

    def test_snapshot_restore_roundtrip(self):
        regs = Registers()
        regs.declare("x", 10, initial=3)
        snap = regs.snapshot()
        regs["x"] = 9
        regs.restore(snap)
        assert regs["x"] == 3
        assert regs.report()["x"] == (10, 3)

    def test_snapshot_is_a_copy(self):
        regs = Registers()
        regs.declare("x", 10, initial=1)
        snap = regs.snapshot()
        regs["x"] = 7  # must not leak into the captured snapshot
        assert snap["values"]["x"] == 1

    def test_redeclaration_widening_survives_restore(self):
        regs = Registers()
        regs.declare("x", 3)
        snap = regs.snapshot()
        regs.declare("x", 10)  # doubling scheme widens the register
        regs["x"] = 9
        regs.restore(snap)
        # back to the narrow declaration: the wide assignment is illegal
        with pytest.raises(AgentProtocolError):
            regs["x"] = 9
        regs.declare("x", 10)  # re-widening works again after restore
        regs["x"] = 9
        assert regs.report()["x"] == (10, 9)

    def test_peak_accounting_rewinds_with_restore(self):
        regs = Registers()
        regs.declare("x", 1000)
        regs["x"] = 5
        snap = regs.snapshot()
        regs["x"] = 900  # exploratory branch spikes the peak
        assert regs.bits_used() == 10
        regs.restore(snap)
        assert regs.report()["x"] == (1000, 5)
        assert regs.bits_used() == 3  # peak account back to the snapshot
        regs["x"] = 100
        assert regs.report()["x"] == (1000, 100)  # and re-peaks normally

    def test_state_key_covers_values_and_bounds(self):
        a, b = Registers(), Registers()
        for regs in (a, b):
            regs.declare("x", 3, initial=2)
        assert a.state_key() == b.state_key()
        b.declare("x", 10)  # widened bound is generator-visible state
        assert a.state_key() != b.state_key()
        a.declare("x", 10)
        assert a.state_key() == b.state_key()

    def test_state_key_ignores_peaks(self):
        a, b = Registers(), Registers()
        for regs in (a, b):
            regs.declare("x", 100)
        a["x"] = 90  # peak spike ...
        a["x"] = 0  # ... then back: same visible state as b
        assert a.state_key() == b.state_key()
        assert a.report() != b.report()  # but the accounting differs


class TestCtxAndMoves:
    def _drive(self, gen, tree, start):
        """Minimal driver: run a routine to completion on a tree."""
        pos = start
        log = []
        try:
            action = next(gen)
            while True:
                if action == STAY:
                    obs = (-1, tree.degree(pos))
                else:
                    pos, in_port = tree.move(pos, action % tree.degree(pos))
                    obs = (in_port, tree.degree(pos))
                log.append(pos)
                action = gen.send(obs)
        except StopIteration:
            return pos, log

    def test_move_updates_ctx(self):
        t = line(4)
        ctx = Ctx(-1, t.degree(0))

        def routine():
            yield from move(ctx, 0)
            assert ctx.degree == 2
            yield from move(ctx, (ctx.in_port + 1) % 2)

        pos, _ = self._drive(routine(), t, 0)
        assert pos == 2
        assert ctx.rounds == 2

    def test_stay_resets_in_port(self):
        t = line(3)
        ctx = Ctx(-1, t.degree(1))

        def routine():
            yield from move(ctx, 0)
            yield from stay(ctx, 2)
            assert ctx.in_port == -1  # the model's (-1, d) after null moves

        pos, _ = self._drive(routine(), t, 1)
        assert pos == 0
        assert ctx.rounds == 3

    def test_stay_zero_is_noop(self):
        t = line(3)
        ctx = Ctx(-1, 2)

        def routine():
            yield from stay(ctx, 0)
            yield from move(ctx, 0)

        pos, log = self._drive(routine(), t, 1)
        assert len(log) == 1


class TestAgentProgram:
    def test_lifecycle(self):
        def program(start_degree, regs):
            ctx = Ctx(-1, start_degree)
            regs.declare("steps", 3)
            for k in range(3):
                regs["steps"] = k
                yield from move(ctx, 0)

        agent = AgentProgram(program)
        t = line(5)
        action = agent.start(t.degree(3))
        pos = 3
        rounds = 0
        while not agent.finished:
            pos, in_port = t.move(pos, action % t.degree(pos))
            rounds += 1
            action = agent.step(in_port, t.degree(pos))
        assert rounds == 3
        assert agent.memory_bits_declared() == 2

    def test_finished_agent_stays(self):
        def program(start_degree, regs):
            return
            yield  # pragma: no cover

        agent = AgentProgram(program)
        assert agent.start(2) == STAY
        assert agent.finished
        assert agent.step(0, 2) == STAY

    def test_clone_is_independent(self):
        def program(start_degree, regs):
            regs.declare("x", 1)
            yield 0

        a = AgentProgram(program)
        a.start(2)
        b = a.clone()
        assert b.registers.report() == {}
        b.start(2)
        assert b.registers.report() == {"x": (1, 0)}

    def test_restart_resets_registers(self):
        def program(start_degree, regs):
            regs.declare("x", 10, initial=start_degree)
            yield 0

        a = AgentProgram(program)
        a.start(5)
        assert a.registers["x"] == 5
        a.start(2)
        assert a.registers["x"] == 2

    def test_repr(self):
        def myprog(start_degree, regs):
            yield 0

        assert "myprog" in repr(AgentProgram(myprog))
