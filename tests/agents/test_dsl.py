"""Tests for the walker-script DSL."""

import pytest

from repro.agents.dsl import compile_walker, parse_script, script_drift, script_period
from repro.errors import AgentProtocolError
from repro.lowerbounds import simulate_infinite_line


class TestParsing:
    def test_atoms(self):
        assert parse_script("F3 p2 B1") == [("F", 3), ("P", 2), ("B", 1)]

    def test_rejects_garbage(self):
        for bad in ("", "X3", "F", "F0", "F-1", "F3,P2"):
            with pytest.raises(AgentProtocolError):
                parse_script(bad)

    def test_period_and_drift(self):
        assert script_period("F3 P2 B1") == 6
        assert script_drift("F3 B1") == 2
        assert script_drift("F2 B2") == 0
        assert script_drift("F1 B2 F1") == 1 - 2 - 1  # F after B keeps new direction
        assert script_drift("P5") == 0


class TestCompiledBehavior:
    def test_forward_walker_drifts(self):
        agent = compile_walker("F4")
        run = simulate_infinite_line(agent, 40)
        assert abs(run.positions[-1]) == 40  # never turns

    def test_out_and_back_is_bounded(self):
        agent = compile_walker("F3 B3")
        run = simulate_infinite_line(agent, 60)
        assert run.max_distance() <= 3
        # it returns to the origin every period
        assert run.positions[::6].count(0) >= 9

    def test_first_pass_drift_matches_script(self):
        for script in ("F3 B1", "F5 B2", "F2 B2 F3"):
            agent = compile_walker(script)
            period = script_period(script)
            run = simulate_infinite_line(agent, period)
            assert abs(run.positions[period]) == abs(script_drift(script))

    def test_even_drift_accumulates_odd_drift_alternates(self):
        # even per-pass displacement: consistent drift
        agent = compile_walker("F3 B1")  # drift +2 (even)
        period = script_period("F3 B1")
        run = simulate_infinite_line(agent, period * 10)
        assert abs(run.positions[period * 10]) == 20
        # odd per-pass displacement: parity flips, walker is bounded
        agent = compile_walker("F5 B2")  # drift +3 (odd)
        period = script_period("F5 B2")
        run = simulate_infinite_line(agent, period * 10)
        assert run.positions[period * 2] == 0  # +3 then -3
        assert run.max_distance() <= 5

    def test_pause_rounds_are_null_moves(self):
        agent = compile_walker("F1 P3")
        run = simulate_infinite_line(agent, 16)
        assert len(run.leave_events) == 4  # one move per 4 rounds

    def test_state_count(self):
        assert compile_walker("F3 P2 B1").num_states == 6

    def test_pure_pauser(self):
        agent = compile_walker("P4")
        run = simulate_infinite_line(agent, 12)
        assert run.positions == [0] * 13


class TestAsLowerBoundVictims:
    def test_thm31_defeats_dsl_walkers(self):
        from repro.lowerbounds import build_thm31_instance

        for script in ("F2", "F3 B1", "F2 P1", "F4 B4"):
            inst = build_thm31_instance(compile_walker(script))
            assert inst.certified, script

    def test_thm42_defeats_dsl_walkers(self):
        from repro.lowerbounds import build_thm42_instance

        for script in ("F2", "F3 B1 P1", "F5 B5"):
            inst = build_thm42_instance(compile_walker(script))
            assert inst.certified, script

    def test_gamma_equals_period_for_simple_loops(self):
        from repro.agents import analyze_functional

        for script in ("F3 P2", "F4 B2"):
            agent = compile_walker(script)
            d = analyze_functional(agent.pi_prime())
            assert d.gamma == script_period(script)
