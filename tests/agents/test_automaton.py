"""Unit tests for explicit finite-state agents."""

import pytest

from repro.agents import (
    STAY,
    Automaton,
    LineAutomaton,
    alternator,
    counting_walker,
    pausing_walker,
    random_line_automaton,
)
from repro.errors import AgentProtocolError


class TestAutomaton:
    def test_basic_stepping(self):
        # Two states: 0 emits port 0, 1 emits STAY; flip on any observation.
        table = {(s, i, d): 1 - s for s in (0, 1) for i in (-1, 0, 1) for d in (1, 2)}
        a = Automaton(2, table, [0, STAY])
        assert a.start(2) == 0
        assert a.step(0, 2) == STAY
        assert a.step(-1, 2) == 0

    def test_partial_table_defaults_to_self_loop(self):
        a = Automaton(2, {}, [0, 1])
        assert a.start(1) == 0
        assert a.step(0, 1) == 0  # state unchanged

    def test_callable_transition(self):
        a = Automaton(3, lambda s, i, d: (s + 1) % 3, [0, 1, STAY])
        a.start(2)
        assert a.step(0, 2) == 1
        assert a.step(1, 2) == STAY

    def test_clone_is_fresh(self):
        a = Automaton(2, lambda s, i, d: 1, [0, 1])
        a.start(1)
        a.step(0, 1)
        assert a.state == 1
        b = a.clone()
        assert b.state == 0
        assert b.start(1) == 0

    def test_memory_bits(self):
        assert Automaton(1, {}, [0]).memory_bits == 1
        assert Automaton(2, {}, [0, 0]).memory_bits == 1
        assert Automaton(5, {}, [0] * 5).memory_bits == 3
        assert Automaton(256, {}, [0] * 256).memory_bits == 8

    def test_validation(self):
        with pytest.raises(AgentProtocolError):
            Automaton(0, {}, [])
        with pytest.raises(AgentProtocolError):
            Automaton(2, {}, [0])
        with pytest.raises(AgentProtocolError):
            Automaton(2, {}, [0, 0], initial_state=5)
        with pytest.raises(AgentProtocolError):
            Automaton(2, {(0, 0, 1): 7}, [0, 0])

    def test_bad_callable_transition_caught(self):
        a = Automaton(2, lambda s, i, d: 9, [0, 0])
        a.start(1)
        with pytest.raises(AgentProtocolError):
            a.step(0, 1)


class TestLineAutomaton:
    def test_degree_dispatch(self):
        a = LineAutomaton([(1, 0), (0, 1)], [0, 1])
        a.start(2)
        assert a.state == 0
        a.step(0, 2)  # degree 2 -> second component
        assert a.state == 0
        a.step(0, 1)  # degree 1 -> first component
        assert a.state == 1

    def test_rejects_high_degree(self):
        a = LineAutomaton([(0, 0)], [0])
        a.start(2)
        with pytest.raises(AgentProtocolError):
            a.step(0, 3)

    def test_pi_prime_and_pi_leaf(self):
        a = LineAutomaton([(1, 0), (0, 1)], [0, 1])
        assert a.pi_prime() == (0, 1)
        assert a.pi_leaf() == (1, 0)

    def test_clone(self):
        a = LineAutomaton([(1, 1), (0, 0)], [0, 1])
        a.start(2)
        a.step(0, 2)
        b = a.clone()
        assert b.state == 0 and b.num_states == 2


class TestLibrary:
    def test_alternator_walks_line(self):
        from repro.trees import edge_colored_line

        t = edge_colored_line(10)
        a = alternator()
        # drive it manually from node 4 and check it progresses
        pos = 4
        action = a.start(t.degree(pos))
        visited = {pos}
        for _ in range(20):
            if action != STAY:
                pos, in_port = t.move(pos, action % t.degree(pos))
                visited.add(pos)
                action = a.step(in_port, t.degree(pos))
            else:  # pragma: no cover
                action = a.step(-1, t.degree(pos))
        assert len(visited) >= 5  # actually moves around

    def test_counting_walker_state_count(self):
        for k in (1, 2, 3, 4):
            a = counting_walker(k)
            assert a.num_states == 2 ** (k + 1)
            assert a.memory_bits == k + 1

    def test_counting_walker_rejects_bad_k(self):
        with pytest.raises(ValueError):
            counting_walker(0)

    def test_pausing_walker_idles(self):
        a = pausing_walker(2)
        actions = [a.start(2)]
        for _ in range(8):
            actions.append(a.step(-1 if actions[-1] == STAY else 0, 2))
        assert STAY in actions
        assert any(x != STAY for x in actions)

    def test_random_line_automaton_reproducible(self):
        import random

        a = random_line_automaton(8, random.Random(5))
        b = random_line_automaton(8, random.Random(5))
        assert a.pi_prime() == b.pi_prime()
        assert a.output == b.output
