"""Unit tests for route-A lowering: machine keys and state enumeration."""

import pickle

import pytest

from repro.agents import AgentProgram, Ctx, NULL_PORT, STAY, move, stay
from repro.agents.lowering import (
    lower_to_automaton,
    machine_state_key,
)
from repro.errors import AgentProtocolError, BudgetExceededError, LoweringError
from repro.sim import run_rendezvous, run_rendezvous_compiled
from repro.trees import line, star


def zigzag_program(start_degree, regs):
    ctx = Ctx(NULL_PORT, start_degree)
    regs.declare("k", 3)
    while True:
        for k in range(3):
            regs["k"] = k
            yield from move(ctx, 0)
        yield from stay(ctx, 2)
        for k in range(2):
            regs["k"] = k
            yield from move(ctx, 1)


def finite_program(start_degree, regs):
    ctx = Ctx(NULL_PORT, start_degree)
    regs.declare("s", 3)
    for k in range(3):
        regs["s"] = k
        yield from move(ctx, 0)


def degree_branching_program(start_degree, regs):
    # genuinely start-degree-dependent forever: no automaton can say it
    ctx = Ctx(NULL_PORT, start_degree)
    keep = start_degree  # survives in locals and steers behavior
    while True:
        yield from move(ctx, keep)


class TestMachineStateKey:
    def test_equal_for_equal_histories(self):
        a, b = AgentProgram(zigzag_program), AgentProgram(zigzag_program)
        for agent in (a, b):
            agent.start(2)
            agent.step(1, 2)
        assert machine_state_key(a) == machine_state_key(b)

    def test_differs_after_different_observations(self):
        a, b = AgentProgram(zigzag_program), AgentProgram(zigzag_program)
        a.start(2)
        b.start(2)
        a.step(0, 1)
        b.step(0, 2)  # ctx.degree differs
        assert machine_state_key(a) != machine_state_key(b)

    def test_finished_program_has_the_absorbing_key(self):
        agent = AgentProgram(finite_program)
        agent.start(2)
        for _ in range(5):
            agent.step(0, 2)
        assert agent.finished
        assert machine_state_key(agent) == ("finished",)

    def test_start_degree_parameter_is_stripped(self):
        # the factory's first positional arg is constant within a run and
        # overwritten by the first observation in every Ctx program
        a, b = AgentProgram(zigzag_program), AgentProgram(zigzag_program)
        a.start(1)
        b.start(2)
        a.step(0, 2)
        b.step(0, 2)
        assert machine_state_key(a) == machine_state_key(b)

    def test_rejects_non_programs(self):
        with pytest.raises(LoweringError):
            machine_state_key(object())

    def test_strip_never_falls_through_to_inner_frames(self):
        # an argument-less outer generator must not push the start-degree
        # strip onto the first inner frame that happens to take arguments
        def countdown(remaining):
            while remaining:
                remaining -= 1
                yield 0

        def factory(start_degree, regs):
            def outer():
                yield from countdown(3)

            return outer()

        agent = AgentProgram(factory)
        agent.start(2)
        keys = [machine_state_key(agent)]
        for _ in range(2):
            agent.step(0, 2)
            keys.append(machine_state_key(agent))
        assert len(set(keys)) == len(keys), "distinct states keyed equal"


class TestLowerToAutomaton:
    def test_zigzag_parity_with_reference(self):
        proto = AgentProgram(zigzag_program)
        tree = line(7)
        aut = lower_to_automaton(proto, tree.degrees())
        for (u, v, delay, delayed) in [(0, 4, 0, 2), (1, 5, 3, 1), (2, 6, 2, 2)]:
            ref = run_rendezvous(
                tree, proto, u, v, delay=delay, delayed=delayed, max_rounds=4000
            )
            low = run_rendezvous_compiled(
                tree, aut, u, v,
                delay=delay, delayed=delayed, max_rounds=4000, certify=True,
            )
            assert (ref.met, ref.meeting_round, ref.meeting_node) == (
                low.met, low.meeting_round, low.meeting_node
            )

    def test_finite_program_gets_absorbing_state(self):
        aut = lower_to_automaton(AgentProgram(finite_program), [1, 2])
        # drive the automaton past the program's finish: it stays forever
        state = aut.initial_state
        actions = [aut.output[state]]
        for _ in range(6):
            state = aut.transition(state, 0, 2)
            actions.append(aut.output[state])
        assert actions[3:] == [STAY] * 4

    def test_state_budget_exhaustion_raises_budget_error(self):
        with pytest.raises(BudgetExceededError):
            lower_to_automaton(
                AgentProgram(zigzag_program), [1, 2], state_budget=3
            )

    def test_step_budget_exhaustion_raises_budget_error(self):
        with pytest.raises(BudgetExceededError):
            lower_to_automaton(
                AgentProgram(zigzag_program), [1, 2], step_budget=10
            )

    def test_degree_dependent_program_fails_loudly(self):
        with pytest.raises(LoweringError):
            lower_to_automaton(AgentProgram(degree_branching_program), [1, 2, 3])

    def test_baseline_agent_is_not_route_a_expressible(self):
        from repro.core import baseline_agent

        with pytest.raises((LoweringError, BudgetExceededError)):
            lower_to_automaton(baseline_agent(), [1, 3], state_budget=256)

    def test_empty_degree_alphabet_rejected(self):
        with pytest.raises(LoweringError):
            lower_to_automaton(AgentProgram(zigzag_program), [0])


class TestLoweredAutomaton:
    def test_out_of_alphabet_observation_raises(self):
        aut = lower_to_automaton(AgentProgram(zigzag_program), [1, 2])
        with pytest.raises(AgentProtocolError):
            aut.transition(0, 0, 3)
        # running on a tree with degree 3 surfaces the error, not silence
        # (the partner sleeps so agent 1 must transition at the hub)
        with pytest.raises(AgentProtocolError):
            run_rendezvous_compiled(
                star(3), aut, 1, 2, delay=5, delayed=2, max_rounds=10
            )

    def test_pickle_roundtrip(self):
        aut = lower_to_automaton(AgentProgram(zigzag_program), [1, 2])
        clone = pickle.loads(pickle.dumps(aut))
        assert clone.num_states == aut.num_states
        assert clone.output == aut.output
        assert clone.alphabet == aut.alphabet
        for s in range(aut.num_states):
            for ip, d in sorted(aut.alphabet):
                assert clone.transition(s, ip, d) == aut.transition(s, ip, d)

    def test_clone_resets_state(self):
        aut = lower_to_automaton(AgentProgram(zigzag_program), [1, 2])
        aut.start(2)
        aut.step(0, 2)
        fresh = aut.clone()
        assert fresh.state == fresh.initial_state
