"""Tests for line-automaton minimization."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import (
    LineAutomaton,
    alternator,
    behaviorally_equivalent,
    counting_walker,
    minimize_line_automaton,
    random_line_automaton,
)


class TestMinimize:
    def test_alternator_already_minimal(self):
        res = minimize_line_automaton(alternator())
        assert res.minimal_states == 2
        assert res.bits_saved == 0

    def test_padded_automaton_shrinks(self):
        # 4 states but states 2, 3 are unreachable clones of 0, 1.
        a = LineAutomaton(
            [(1, 1), (0, 0), (3, 3), (2, 2)],
            [0, 1, 0, 1],
        )
        res = minimize_line_automaton(a)
        assert res.minimal_states == 2

    def test_equivalent_states_merge(self):
        # states 1 and 2 behave identically (same output, same successors)
        a = LineAutomaton(
            [(1, 2), (0, 0), (0, 0)],
            [0, 1, 1],
        )
        res = minimize_line_automaton(a)
        assert res.minimal_states == 2
        assert res.state_map[1] == res.state_map[2]

    def test_counting_walker_is_tight(self):
        # every counter value is behaviorally distinct: no big collapse
        a = counting_walker(2)  # 8 states
        res = minimize_line_automaton(a)
        assert res.minimal_states >= 4

    def test_minimized_preserves_behavior(self):
        rng = random.Random(6)
        for _ in range(20):
            a = random_line_automaton(rng.randrange(2, 10), rng)
            res = minimize_line_automaton(a)
            assert behaviorally_equivalent(a, res.minimized)
            assert res.minimal_states <= res.original_states

    @given(st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, seed):
        a = random_line_automaton(random.Random(seed).randrange(2, 8), random.Random(seed))
        once = minimize_line_automaton(a).minimized
        twice = minimize_line_automaton(once).minimized
        assert once.num_states == twice.num_states


class TestBehavioralEquivalence:
    def test_distinguishes_outputs(self):
        a = LineAutomaton([(0, 0)], [0])
        b = LineAutomaton([(0, 0)], [1])
        assert not behaviorally_equivalent(a, b)

    def test_reflexive(self):
        a = alternator()
        assert behaviorally_equivalent(a, a)

    def test_different_sizes_same_behavior(self):
        a = LineAutomaton([(1, 1), (0, 0)], [0, 1])
        # a 4-state unrolling of the same alternation
        b = LineAutomaton([(1, 1), (2, 2), (3, 3), (0, 0)], [0, 1, 0, 1])
        assert behaviorally_equivalent(a, b)


class TestTreeAutomatonMinimization:
    def test_random_agents_shrink_or_stay(self):
        import random

        from repro.agents import minimize_tree_automaton, random_tree_automaton

        rng = random.Random(8)
        for _ in range(10):
            a = random_tree_automaton(rng.randrange(2, 8), rng=rng)
            minimal, block_of = minimize_tree_automaton(a)
            assert 1 <= minimal <= a.num_states
            # blocks respect outputs
            for s, t in [(s, t) for s in block_of for t in block_of]:
                if block_of[s] == block_of[t]:
                    assert a.output[s] == a.output[t]

    def test_duplicate_states_merge(self):
        from repro.agents import Automaton, minimize_tree_automaton

        # two identical always-port-0 states
        a = Automaton(2, {}, [0, 0])
        minimal, block_of = minimize_tree_automaton(a)
        assert minimal == 1

    def test_distinct_outputs_stay_apart(self):
        from repro.agents import Automaton, minimize_tree_automaton

        table = {}
        for i in range(-1, 3):
            for d in range(1, 4):
                table[(0, i, d)] = 1
                table[(1, i, d)] = 0
        a = Automaton(2, table, [0, 1])
        minimal, _ = minimize_tree_automaton(a)
        assert minimal == 2
