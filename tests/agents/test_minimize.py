"""Tests for automaton minimization: line, general-alphabet, lasso families."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import (
    STAY,
    LineAutomaton,
    alternator,
    behaviorally_equivalent,
    counting_program,
    counting_walker,
    lower_to_automaton,
    minimize_automaton,
    minimize_lassos,
    minimize_line_automaton,
    random_line_automaton,
)


class TestMinimize:
    def test_alternator_already_minimal(self):
        res = minimize_line_automaton(alternator())
        assert res.minimal_states == 2
        assert res.bits_saved == 0

    def test_padded_automaton_shrinks(self):
        # 4 states but states 2, 3 are unreachable clones of 0, 1.
        a = LineAutomaton(
            [(1, 1), (0, 0), (3, 3), (2, 2)],
            [0, 1, 0, 1],
        )
        res = minimize_line_automaton(a)
        assert res.minimal_states == 2

    def test_equivalent_states_merge(self):
        # states 1 and 2 behave identically (same output, same successors)
        a = LineAutomaton(
            [(1, 2), (0, 0), (0, 0)],
            [0, 1, 1],
        )
        res = minimize_line_automaton(a)
        assert res.minimal_states == 2
        assert res.state_map[1] == res.state_map[2]

    def test_counting_walker_is_tight(self):
        # every counter value is behaviorally distinct: no big collapse
        a = counting_walker(2)  # 8 states
        res = minimize_line_automaton(a)
        assert res.minimal_states >= 4

    def test_minimized_preserves_behavior(self):
        rng = random.Random(6)
        for _ in range(20):
            a = random_line_automaton(rng.randrange(2, 10), rng)
            res = minimize_line_automaton(a)
            assert behaviorally_equivalent(a, res.minimized)
            assert res.minimal_states <= res.original_states

    @given(st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, seed):
        a = random_line_automaton(random.Random(seed).randrange(2, 8), random.Random(seed))
        once = minimize_line_automaton(a).minimized
        twice = minimize_line_automaton(once).minimized
        assert once.num_states == twice.num_states


class TestBehavioralEquivalence:
    def test_distinguishes_outputs(self):
        a = LineAutomaton([(0, 0)], [0])
        b = LineAutomaton([(0, 0)], [1])
        assert not behaviorally_equivalent(a, b)

    def test_reflexive(self):
        a = alternator()
        assert behaviorally_equivalent(a, a)

    def test_different_sizes_same_behavior(self):
        a = LineAutomaton([(1, 1), (0, 0)], [0, 1])
        # a 4-state unrolling of the same alternation
        b = LineAutomaton([(1, 1), (2, 2), (3, 3), (0, 0)], [0, 1, 0, 1])
        assert behaviorally_equivalent(a, b)


class TestTreeAutomatonMinimization:
    def test_random_agents_shrink_or_stay(self):
        import random

        from repro.agents import minimize_tree_automaton, random_tree_automaton

        rng = random.Random(8)
        for _ in range(10):
            a = random_tree_automaton(rng.randrange(2, 8), rng=rng)
            minimal, block_of = minimize_tree_automaton(a)
            assert 1 <= minimal <= a.num_states
            # blocks respect outputs
            for s, t in [(s, t) for s in block_of for t in block_of]:
                if block_of[s] == block_of[t]:
                    assert a.output[s] == a.output[t]

    def test_duplicate_states_merge(self):
        from repro.agents import Automaton, minimize_tree_automaton

        # two identical always-port-0 states
        a = Automaton(2, {}, [0, 0])
        minimal, block_of = minimize_tree_automaton(a)
        assert minimal == 1

    def test_distinct_outputs_stay_apart(self):
        from repro.agents import Automaton, minimize_tree_automaton

        table = {}
        for i in range(-1, 3):
            for d in range(1, 4):
                table[(0, i, d)] = 1
                table[(1, i, d)] = 0
        a = Automaton(2, table, [0, 1])
        minimal, _ = minimize_tree_automaton(a)
        assert minimal == 2


class TestGeneralAlphabetMinimization:
    def test_needs_an_alphabet(self):
        from repro.agents import Automaton

        with pytest.raises(ValueError):
            minimize_automaton(Automaton(1, {}, [0]))

    def test_lowered_automaton_supplies_its_alphabet(self):
        lowered = lower_to_automaton(counting_program(2), [1, 2])
        res = minimize_automaton(lowered)
        assert res.alphabet == tuple(sorted(lowered.alphabet))
        # the program rendition minimizes to the hand-written walker's
        # state count: the raw machine states differ only in dead
        # context fields
        assert res.minimal_states == counting_walker(2).num_states
        assert res.minimal_states < res.original_states

    def test_result_is_cached_on_the_automaton(self):
        lowered = lower_to_automaton(counting_program(1), [1, 2])
        assert minimize_automaton(lowered) is minimize_automaton(lowered)
        assert minimize_automaton(lowered, cache=False) is not minimize_automaton(
            lowered
        )

    def test_line_wrapper_agrees_with_general_engine(self):
        rng = random.Random(3)
        for _ in range(10):
            a = random_line_automaton(rng.randrange(2, 9), rng)
            general = minimize_automaton(a, [(0, 1), (0, 2)], cache=False)
            line = minimize_line_automaton(a)
            assert general.minimal_states == line.minimal_states


class TestLassoFamilyMinimization:
    def test_pure_cycle_reduces_to_minimal_period(self):
        # 0 1 0 1 0 1 recorded as one 6-cycle: minimal period 2
        fam = minimize_lassos([((0, 1, 0, 1, 0, 1), 0)])
        assert fam.minimal_states == 2
        assert fam.raw_states == 6

    def test_rotated_cycles_share_classes(self):
        # same loop entered at different phases: one shared cycle
        fam = minimize_lassos([((0, 1, 2), 0), ((1, 2, 0), 0)])
        assert fam.minimal_states == 3
        assert fam.entries[0] != fam.entries[1]
        # entry of the second chain is the first's successor
        assert fam.successor[fam.entries[0]] == fam.entries[1]

    def test_finished_tails_fold_into_absorbing_stay(self):
        # move, move, then stay forever recorded as 4 explicit rounds
        fam = minimize_lassos([((0, 1, STAY, STAY), 3)])
        assert fam.minimal_states == 3  # 0 -> 1 -> stay

    def test_shared_suffixes_merge_across_chains(self):
        a = (0, 1, 0, 1, STAY)
        b = (1, 1, 0, 1, STAY)  # differs only in round 1
        fam = minimize_lassos([(a, 4), (b, 4)])
        # distinct entries, shared suffix classes: the absorbing STAY,
        # the common (1, 0, 1) tail, and the two distinct round-0 states
        assert fam.entries[0] != fam.entries[1]
        assert fam.successor[fam.entries[0]] == fam.successor[fam.entries[1]]
        assert fam.minimal_states == 6
        assert fam.raw_states == 10

    def test_quotient_replays_every_chain(self):
        rng = random.Random(11)
        chains = []
        for _ in range(6):
            m = rng.randrange(3, 40)
            actions = tuple(rng.randrange(-1, 3) for _ in range(m))
            back = rng.randrange(m)
            chains.append((actions, back))
        fam = minimize_lassos(chains)
        assert fam.minimal_states <= fam.raw_states
        for (actions, back), entry in zip(chains, fam.entries):
            cur = entry
            # replay twice around the lasso: the quotient must reproduce
            # the folded stream, not just the recorded prefix
            m = len(actions)
            for t in range(2 * m):
                idx = t if t < m else back + (t - back) % (m - back)
                assert fam.output[cur] == actions[idx]
                cur = fam.successor[cur]

    def test_rejects_bad_back_edge(self):
        with pytest.raises(ValueError):
            minimize_lassos([((0, 1), 2)])
