"""Unit + property tests for functional digraph analysis (Thm 4.2 machinery)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import analyze_functional, lcm_of


class TestAnalyzeFunctional:
    def test_identity(self):
        d = analyze_functional([0, 1, 2])
        assert len(d.circuits) == 3
        assert all(len(c) == 1 for c in d.circuits)
        assert d.gamma == 1
        assert d.tail_length == (0, 0, 0)

    def test_single_cycle(self):
        d = analyze_functional([1, 2, 0])
        assert len(d.circuits) == 1
        assert set(d.circuits[0]) == {0, 1, 2}
        assert d.gamma == 3

    def test_rho_shape(self):
        # 0 -> 1 -> 2 -> 3 -> 2 (tail of length 2 into a 2-cycle)
        d = analyze_functional([1, 2, 3, 2])
        assert d.tail_length[0] == 2
        assert d.tail_length[1] == 1
        assert d.tail_length[2] == 0
        assert d.tail_length[3] == 0
        assert d.circuit_length(0) == 2
        assert d.gamma == 2

    def test_two_components(self):
        # component A: 0<->1 ; component B: 2->3->4->2
        d = analyze_functional([1, 0, 3, 4, 2])
        assert len(d.circuits) == 2
        assert d.gamma == 6
        assert d.circuit_of[0] != d.circuit_of[2]

    def test_tail_drains_into_processed_component(self):
        # 1 -> 0 -> 0 ; 2 -> 1 (processed later, drains through 1 into 0)
        d = analyze_functional([0, 0, 1])
        assert d.tail_length[2] == 2
        assert d.circuit_of[2] == d.circuit_of[0]

    def test_on_circuit_helpers(self):
        d = analyze_functional([1, 0, 0])
        assert d.on_circuit(0) and d.on_circuit(1)
        assert not d.on_circuit(2)
        assert d.max_tail() == 1

    @given(st.lists(st.integers(0, 19), min_size=1, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_properties_random(self, raw):
        n = len(raw)
        f = [x % n for x in raw]
        d = analyze_functional(f)
        # every state reaches its circuit in exactly tail_length steps
        for s in range(n):
            x = s
            for _ in range(d.tail_length[s]):
                x = f[x]
            assert x in d.circuits[d.circuit_of[s]]
            assert d.on_circuit(x)
        # circuits are genuinely cycles of f
        for cyc in d.circuits:
            for i, v in enumerate(cyc):
                assert f[v] == cyc[(i + 1) % len(cyc)]
        # gamma is divisible by every circuit length
        for cyc in d.circuits:
            assert d.gamma % len(cyc) == 0
        # circuits partition the set of cyclic states
        cyclic = {v for cyc in d.circuits for v in cyc}
        assert cyclic == {s for s in range(n) if d.tail_length[s] == 0}

    def test_rejects_out_of_range(self):
        import pytest

        with pytest.raises(ValueError):
            analyze_functional([5])


class TestLcm:
    def test_basic(self):
        assert lcm_of([2, 3, 4]) == 12
        assert lcm_of([]) == 1
        assert lcm_of([7]) == 7

    def test_random_agrees_with_math(self):
        import math

        rng = random.Random(0)
        for _ in range(50):
            vals = [rng.randrange(1, 30) for _ in range(rng.randrange(1, 6))]
            expect = 1
            for v in vals:
                expect = math.lcm(expect, v)
            assert lcm_of(vals) == expect
