"""Tests for the Theorem 3.1 adversary (arbitrary delay, Ω(log n))."""

import random


from repro.agents import (
    alternator,
    counting_walker,
    pausing_walker,
    random_line_automaton,
)
from repro.lowerbounds import build_thm31_instance, find_state_repetition, simulate_infinite_line
from repro.trees import perfectly_symmetrizable


class TestStateRepetition:
    def test_alternator_repeats_quickly(self):
        run = simulate_infinite_line(alternator(), 60)
        pair = find_state_repetition(run)
        assert pair is not None
        t1, x1, t2, x2, s = pair
        assert t1 < t2
        assert x1 != x2
        assert (x2 - x1) % 2 == 0  # evenness is enforced

    def test_no_repetition_for_stayers(self):
        from repro.agents import STAY, LineAutomaton

        run = simulate_infinite_line(LineAutomaton([(0, 0)], [STAY]), 60)
        assert find_state_repetition(run) is None


class TestThm31Construction:
    def test_library_agents_all_defeated(self):
        for agent in (alternator(), pausing_walker(2), counting_walker(2)):
            inst = build_thm31_instance(agent)
            assert inst.certified
            assert not perfectly_symmetrizable(inst.tree, inst.start1, inst.start2)

    def test_random_agents_all_defeated(self):
        rng = random.Random(13)
        for k in (2, 4, 8):
            inst = build_thm31_instance(random_line_automaton(k, rng))
            assert inst.certified

    def test_instance_size_scales_with_memory(self):
        """The counting-walker family: defeating line grows ~2^bits."""
        sizes = [build_thm31_instance(counting_walker(k)).line_edges for k in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 2 * sizes[0]
        # exponential-ish: consecutive ratios stay >= ~1.5 in the tail
        assert sizes[3] / sizes[2] > 1.4

    def test_drifting_instance_has_positive_delay(self):
        inst = build_thm31_instance(alternator())
        assert inst.kind == "drifting"
        assert inst.delay > 0

    def test_bounded_instance_zero_delay(self):
        inst = build_thm31_instance(counting_walker(2))
        assert inst.kind == "bounded"
        assert inst.delay == 0

    def test_unverified_construction_is_fast(self):
        inst = build_thm31_instance(counting_walker(3), verify=False)
        assert inst.outcome is None
        assert not inst.certified
