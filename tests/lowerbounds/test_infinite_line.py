"""Tests for the infinite-line simulation layer."""

from repro.agents import STAY, LineAutomaton, alternator, pausing_walker
from repro.lowerbounds import simulate_infinite_line


class TestSimulateInfiniteLine:
    def test_alternator_drifts(self):
        run = simulate_infinite_line(alternator(), 40)
        assert run.rounds == 40
        # it alternates colors, so it keeps a consistent direction
        assert abs(run.positions[-1]) == 40

    def test_stayer_never_moves(self):
        stayer = LineAutomaton([(0, 0)], [STAY])
        run = simulate_infinite_line(stayer, 25)
        assert run.positions == [0] * 26
        assert run.leave_events == []
        assert run.max_distance() == 0

    def test_pausing_walker_mixes_idle_and_moves(self):
        run = simulate_infinite_line(pausing_walker(2), 30)
        moves = len(run.leave_events)
        assert 0 < moves < 30
        # one move per (pause+1) rounds
        assert moves == 30 // 3

    def test_leave_events_consistent_with_positions(self):
        run = simulate_infinite_line(alternator(), 50)
        for ev in run.leave_events:
            assert run.positions[ev.round_index - 1] == ev.position
            assert run.positions[ev.round_index] == ev.position + ev.direction

    def test_color_semantics(self):
        """Port c from position p crosses the incident edge of color c."""
        # An agent that always outputs port 0: from position 0 the right
        # edge {0,1} has color 0, so the first move goes right; from 1 the
        # edge of color 0 is the one back to 0 — it oscillates.
        always0 = LineAutomaton([(0, 0)], [0])
        run = simulate_infinite_line(always0, 10)
        assert run.positions[:5] == [0, 1, 0, 1, 0]

    def test_span(self):
        run = simulate_infinite_line(alternator(), 12)
        lo, hi = run.span(5)
        assert (lo, hi) in {(-5, 0), (0, 5)}
