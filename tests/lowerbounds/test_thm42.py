"""Tests for the Theorem 4.2 adversary (simultaneous start, Ω(log log n))."""

import random

from repro.agents import (
    alternator,
    analyze_functional,
    counting_walker,
    pausing_walker,
    random_line_automaton,
)
from repro.lowerbounds import build_thm42_instance
from repro.trees import perfectly_symmetrizable


class TestThm42Construction:
    def test_alternator(self):
        inst = build_thm42_instance(alternator())
        assert inst.certified
        assert inst.kind == "drifting"
        assert inst.x_prime > inst.x > 0
        assert inst.line_edges == inst.x + inst.x_prime + 1

    def test_agents_start_adjacent(self):
        inst = build_thm42_instance(alternator())
        assert abs(inst.start1 - inst.start2) == 1

    def test_positions_not_symmetrizable(self):
        for agent in (alternator(), pausing_walker(1), pausing_walker(2)):
            inst = build_thm42_instance(agent)
            assert not perfectly_symmetrizable(inst.tree, inst.start1, inst.start2)
            assert inst.certified

    def test_gamma_matches_digraph(self):
        a = pausing_walker(2)
        inst = build_thm42_instance(a)
        assert inst.gamma == analyze_functional(a.pi_prime()).gamma

    def test_bounded_agent(self):
        inst = build_thm42_instance(counting_walker(2))
        assert inst.kind == "bounded"
        assert inst.certified

    def test_random_agents(self):
        rng = random.Random(99)
        certified = 0
        for _ in range(6):
            inst = build_thm42_instance(random_line_automaton(4, rng))
            certified += inst.certified
        assert certified == 6

    def test_drift_direction_both_ways(self):
        """Orientation handling: find agents drifting each way."""
        rng = random.Random(5)
        kinds = set()
        for _ in range(40):
            inst = build_thm42_instance(random_line_automaton(3, rng), verify=False)
            if inst.kind == "drifting":
                kinds.add(inst.start1 < inst.start2)
            if len(kinds) == 2:
                break
        assert len(kinds) == 2
