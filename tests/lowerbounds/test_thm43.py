"""Tests for the Theorem 4.3 adversary (Ω(log ℓ) with max degree 3)."""

import random

import pytest

from repro.agents import random_tree_automaton
from repro.errors import ConstructionError
from repro.lowerbounds import (
    behavior_function,
    build_thm43_instance,
    find_colliding_side_trees,
)
from repro.trees import perfectly_symmetrizable
from repro.trees.sidetrees import all_side_trees, root_edge_color, two_sided_tree


class TestBehaviorFunction:
    def test_signature_shape(self):
        rng = random.Random(1)
        a = random_tree_automaton(5, rng=rng)
        side = all_side_trees(4, root_port_up=root_edge_color(4))[0]
        q = behavior_function(a, side, 4)
        assert len(q) == 5
        for entry in q:
            if entry is not None:
                p, t = entry
                assert 0 <= p < 5
                assert t >= 2

    def test_deterministic(self):
        rng = random.Random(2)
        a = random_tree_automaton(4, rng=rng)
        side = all_side_trees(4, root_port_up=0)[3]
        assert behavior_function(a, side, 4) == behavior_function(a, side, 4)

    def test_equal_q_implies_equal_tours_in_situ(self):
        """Two colliding side trees really are black-box equivalent: tours
        measured inside the combined two-sided tree match q."""
        rng = random.Random(3)
        a = random_tree_automaton(4, rng=rng)
        coll = find_colliding_side_trees(a, 4, 4)
        if coll is None:
            pytest.skip("no collision for this automaton (rare)")
        s1, s2, q = coll
        assert behavior_function(a, s1, 4) == behavior_function(a, s2, 4) == q
        assert s1.choices != s2.choices

    def test_trapped_agent_yields_none(self):
        from repro.agents import Automaton

        # An agent that always exits port 0 never escapes some side trees
        # but oscillates near the root in others; build one that enters and
        # then stays forever.
        from repro.agents.observations import STAY

        stayer = Automaton(1, {}, [STAY])
        side = all_side_trees(4, root_port_up=0)[0]
        q = behavior_function(stayer, side, 4)
        assert q == (None,)


class TestThm43Construction:
    def test_small_automata_defeated(self):
        rng = random.Random(17)
        for _ in range(3):
            a = random_tree_automaton(3, rng=rng)
            inst = build_thm43_instance(a, 4)
            assert inst.certified
            ts = inst.two_sided
            assert not perfectly_symmetrizable(ts.tree, ts.u, ts.v)
            assert inst.tree.max_degree() <= 3
            assert inst.tree.num_leaves == inst.ell

    def test_sides_nonisomorphic(self):
        rng = random.Random(23)
        a = random_tree_automaton(4, rng=rng)
        inst = build_thm43_instance(a, 5)
        from repro.trees import canonical_form

        t1 = inst.side1.tree
        t2 = inst.side2.tree
        assert canonical_form(t1) != canonical_form(t2) or t1.n != t2.n

    def test_m_validation(self):
        rng = random.Random(29)
        a = random_tree_automaton(3, rng=rng)
        with pytest.raises(ConstructionError):
            build_thm43_instance(a, 4, m=3)

    def test_same_sides_instance_is_symmetric(self):
        """Sanity: joining T1 with itself gives a perfectly symmetrizable
        (infeasible) pair — the paper's 'first instance'."""
        side = all_side_trees(4, root_port_up=root_edge_color(4))[5]
        ts = two_sided_tree(side, side, 4)
        assert perfectly_symmetrizable(ts.tree, ts.u, ts.v)
