"""Tests for ScenarioSpec / DelayPolicy: parsing, hashing, serialization."""

import pytest

from repro.scenarios import DelayPolicy, ScenarioError, ScenarioSpec
from repro.scenarios.spec import build_agent, build_tree


class TestBuildSpecs:
    def test_tree_specs(self):
        assert build_tree("line:9").n == 9
        assert build_tree("colored:9").n == 9
        assert build_tree("spider:2,3").n == 6
        assert build_tree("random:15", seed=4) == build_tree("random:15", seed=4)

    def test_unknown_tree(self):
        with pytest.raises(ScenarioError):
            build_tree("torus:9")

    def test_agent_specs(self):
        assert build_agent("alternator").num_states == 2
        assert build_agent("counting:2").num_states == 8
        assert build_agent("pausing:1").num_states == 4
        assert build_agent("random:3", seed=1).num_states == 3
        assert build_agent("tree-random:3", seed=1).num_states == 3
        # register programs parse too (no num_states)
        build_agent("baseline")
        build_agent("thm41:4")
        build_agent("prime")

    def test_unknown_agent(self):
        with pytest.raises(ScenarioError):
            build_agent("warp:3")


class TestDelayPolicy:
    def test_choices_conventions(self):
        # θ = 0 emits one side only (side 2 when requested)
        assert DelayPolicy.none().choices() == [(0, 2)]
        assert DelayPolicy.sweep(2).choices() == [
            (0, 2), (1, 1), (1, 2), (2, 1), (2, 2),
        ]
        assert DelayPolicy.fixed(0, 3).choices() == [(0, 2), (3, 1), (3, 2)]
        assert DelayPolicy.sweep(1, sides=(1,)).choices() == [(0, 1), (1, 1)]

    def test_bad_kind(self):
        with pytest.raises(ScenarioError):
            DelayPolicy("warp")


def spec(**kw):
    base = dict(name="t", kind="delay_sweep", tree="line:5",
                agent="alternator", pairs=((0, 3),),
                delays=DelayPolicy.sweep(4))
    base.update(kw)
    return ScenarioSpec(**base)


class TestSpecHash:
    def test_stable_and_input_sensitive(self):
        assert spec().spec_hash() == spec().spec_hash()
        assert spec().spec_hash() != spec(seed=1).spec_hash()
        assert spec().spec_hash() != spec(tree="line:7").spec_hash()
        assert (
            spec(params={"a": 1, "b": 2}).spec_hash()
            == spec(params={"b": 2, "a": 1}).spec_hash()
        )

    def test_presentation_fields_excluded(self):
        # backends are outcome-equivalent; descriptions are prose
        assert spec().spec_hash() == spec(backend="compiled").spec_hash()
        assert spec().spec_hash() == spec(description="x").spec_hash()

    def test_json_roundtrip_preserves_hash(self):
        s = spec(params={"ks": [1, 2], "flag": True})
        again = ScenarioSpec.from_json(s.to_json())
        assert again == s
        assert again.spec_hash() == s.spec_hash()

    def test_tuple_list_params_hash_equal(self):
        assert (
            spec(params={"ks": (1, 2)}).spec_hash()
            == spec(params={"ks": [1, 2]}).spec_hash()
        )


class TestSpecValidation:
    def test_bad_backend(self):
        with pytest.raises(ScenarioError):
            spec(backend="gpu")

    def test_bad_repetitions(self):
        with pytest.raises(ScenarioError):
            spec(repetitions=0)

    def test_unserializable_param(self):
        with pytest.raises(ScenarioError):
            spec(params={"fn": object()}).to_json()

    def test_with_overrides_merges_params(self):
        s = spec(params={"a": 1, "b": 2})
        s2 = s.with_overrides(backend="reference", seed=9, params={"b": 3})
        assert s2.backend == "reference"
        assert s2.seed == 9
        assert s2.params == {"a": 1, "b": 3}
        # the original is untouched (frozen value semantics)
        assert s.params == {"a": 1, "b": 2} and s.seed == 0
