"""Tests for the ResultStore: schema validation, diffing, the golden sample."""

import json
import pathlib

import pytest

from repro.scenarios import (
    ResultStore,
    Runner,
    ScenarioError,
    diff_payloads,
    validate_payload,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
GOLDEN_DIR = REPO_ROOT / "benchmarks" / "results" / "golden"
GOLDEN_NAMES = sorted(p.stem for p in GOLDEN_DIR.glob("*.json"))


@pytest.fixture(scope="module")
def result():
    return Runner().run("delays-line")


class TestStoreRoundtrip:
    def test_save_load_validate(self, result, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(result)
        assert path == tmp_path / "delays-line.json"
        payload = store.load("delays-line")
        assert payload["rows"] == result.rows
        assert payload["spec_hash"] == result.spec_hash()
        assert store.names() == ["delays-line"]

    def test_load_missing(self, tmp_path):
        with pytest.raises(ScenarioError):
            ResultStore(tmp_path).load("ghost")

    def test_dotted_names_stay_store_names(self, result, tmp_path):
        # Regression: load() used to misroute any name whose final dot
        # segment looked like a suffix to the filesystem instead of the
        # store.  Dotted names (e.g. versioned results) must round-trip.
        import dataclasses

        store = ResultStore(tmp_path)
        spec = dataclasses.replace(result.spec, name="thm31.v2")
        renamed = dataclasses.replace(result, spec=spec)
        path = store.save(renamed)
        assert path == tmp_path / "thm31.v2.json"
        payload = store.load("thm31.v2")
        assert payload["scenario"] == "thm31.v2"
        assert store.names() == ["thm31.v2"]
        assert store.diff("thm31.v2", "thm31.v2") == []

    def test_json_suffixed_name_without_file_resolves_in_store(self, result, tmp_path):
        # "res.json" with no such file in the CWD must resolve to the
        # stored result "res" (never the double-suffix res.json.json),
        # and a miss must report the store path, not a CWD-relative one.
        store = ResultStore(tmp_path)
        store.save(result)
        payload = store.load(f"{result.name}.json")
        assert payload["scenario"] == result.name
        with pytest.raises(ScenarioError) as exc:
            store.load("ghost.json")
        assert str(tmp_path / "ghost.json") in str(exc.value)

    def test_json_suffixed_existing_file_wins(self, result, tmp_path, monkeypatch):
        # An existing file of that exact relative path is an explicit
        # reference and takes precedence over the store entry.
        store = ResultStore(tmp_path / "store")
        store.save(result)
        other = ResultStore(tmp_path / "cwd")
        other.save(result)
        monkeypatch.chdir(tmp_path / "cwd")
        payload = store.load(f"{result.name}.json")
        assert payload["scenario"] == result.name  # the CWD file loaded

    def test_path_for_rejects_path_separators(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("a/b", "..", "../escape", "a\\b", ""):
            with pytest.raises(ScenarioError):
                store.path_for(bad)

    def test_path_for_rejects_json_suffixed_names(self, tmp_path):
        # Such a name would save as <name>.json.json and load() could
        # never find it again by name.
        with pytest.raises(ScenarioError):
            ResultStore(tmp_path).path_for("runA.json")

    def test_explicit_paths_still_load(self, result, tmp_path):
        store = ResultStore(tmp_path)
        saved = store.save(result)
        assert store.load(saved)["scenario"] == result.name  # Path object
        assert store.load(str(saved))["scenario"] == result.name  # str path

    def test_store_relative_subdirectory_names_load(self, tmp_path, monkeypatch):
        # `load("golden/thm31-sweep")` on the real results store must
        # find <root>/golden/thm31-sweep.json from any CWD.
        store = ResultStore(REPO_ROOT / "benchmarks" / "results")
        monkeypatch.chdir(tmp_path)
        payload = store.load("golden/thm31-sweep")
        assert payload["scenario"] == "thm31-sweep"
        assert store.load("golden/thm31-sweep.json") == payload


class TestRobustPersistence:
    """Satellites of the fault-model PR: atomic saves, quarantine of
    corrupt results instead of poisoning every later load."""

    def test_save_leaves_no_temp_residue(self, result, tmp_path):
        store = ResultStore(tmp_path)
        store.save(result)
        assert [p.name for p in tmp_path.iterdir()] == ["delays-line.json"]

    def test_save_over_existing_result_replaces_it(self, result, tmp_path):
        store = ResultStore(tmp_path)
        store.save(result)
        before = store.load(result.name)
        store.save(result)
        assert store.load(result.name) == before
        assert [p.name for p in tmp_path.iterdir()] == ["delays-line.json"]

    def test_failed_save_cleans_up_its_temp_file(self, result, tmp_path, monkeypatch):
        import os

        store = ResultStore(tmp_path)

        def boom(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            store.save(result)
        # The temp file is gone and no half-written target appeared.
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_json_is_quarantined_not_fatal_forever(self, result, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(result)
        path.write_text('{"schema": "repro.scenario-result/v1", "rows": [')
        with pytest.raises(ScenarioError) as exc:
            store.load(result.name)
        assert "not valid JSON" in str(exc.value)
        assert not path.exists()  # moved aside...
        quarantine = path.with_name(path.name + ".corrupt")
        assert quarantine.exists()  # ...kept for forensics
        assert str(quarantine) in str(exc.value)
        # The slot is usable again immediately.
        store.save(result)
        assert store.load(result.name)["scenario"] == result.name

    def test_valid_but_off_schema_json_is_not_quarantined(self, result, tmp_path):
        # Schema violations are a different failure: the file parses, so
        # it stays put for inspection and the error names the field.
        store = ResultStore(tmp_path)
        path = store.save(result)
        path.write_text('{"schema": "v0"}')
        with pytest.raises(ScenarioError):
            store.load(result.name)
        assert path.exists()


class TestValidation:
    def test_rejects_wrong_schema(self, result):
        payload = result.to_payload()
        payload["schema"] = "v0"
        with pytest.raises(ScenarioError):
            validate_payload(payload)

    def test_rejects_missing_summary_ok(self, result):
        payload = result.to_payload()
        del payload["summary"]["ok"]
        with pytest.raises(ScenarioError):
            validate_payload(payload)

    def test_rejects_nested_row_values(self, result):
        payload = result.to_payload()
        payload["rows"] = [{"bad": {"nested": 1}}]
        with pytest.raises(ScenarioError):
            validate_payload(payload)


class TestDiff:
    def test_equivalent(self, result):
        assert diff_payloads(result.to_payload(), result.to_payload()) == []

    def test_row_difference_reported(self, result):
        a, b = result.to_payload(), result.to_payload()
        b["rows"] = json.loads(json.dumps(b["rows"]))
        b["rows"][0]["verdict"] = "flipped"
        diffs = diff_payloads(a, b)
        assert any("row 0" in d and "verdict" in d for d in diffs)

    def test_spec_mismatch_reported(self, result):
        a, b = result.to_payload(), result.to_payload()
        b["spec_hash"] = "0" * 16
        assert any("spec_hash" in d for d in diff_payloads(a, b))

    def test_store_diff_across_backends(self, tmp_path):
        runner = Runner()
        store = ResultStore(tmp_path)
        ref = runner.run("thm31-sweep", backend="reference", params={"ks": [1, 2]})
        cmp_ = runner.run("thm31-sweep", backend="compiled", params={"ks": [1, 2]})
        pa = tmp_path / "ref.json"
        pa.write_text(json.dumps(ref.to_payload()))
        pb = tmp_path / "cmp.json"
        pb.write_text(json.dumps(cmp_.to_payload()))
        assert store.diff(pa, pb) == []


class TestGoldenSample:
    """The checked-in golden results stay reproducible (satellites: the
    .txt artifacts were replaced by schema-validated JSON; the gathering
    workload ships its own golden grid)."""

    def test_expected_goldens_present(self):
        assert "thm31-sweep" in GOLDEN_NAMES
        assert "gathering-line-k3" in GOLDEN_NAMES

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_golden_validates(self, name):
        payload = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        validate_payload(payload)
        assert payload["scenario"] == name

    @pytest.mark.parametrize("name", GOLDEN_NAMES)
    def test_golden_matches_fresh_run(self, name):
        payload = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        fresh = Runner().run(name)
        assert fresh.spec_hash() == payload["spec_hash"]
        assert fresh.rows == payload["rows"]
        assert fresh.summary == payload["summary"]
