"""Tests for the ResultStore: schema validation, diffing, the golden sample."""

import json
import pathlib

import pytest

from repro.scenarios import (
    ResultStore,
    Runner,
    ScenarioError,
    diff_payloads,
    validate_payload,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
GOLDEN = REPO_ROOT / "benchmarks" / "results" / "golden" / "thm31-sweep.json"


@pytest.fixture(scope="module")
def result():
    return Runner().run("delays-line")


class TestStoreRoundtrip:
    def test_save_load_validate(self, result, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(result)
        assert path == tmp_path / "delays-line.json"
        payload = store.load("delays-line")
        assert payload["rows"] == result.rows
        assert payload["spec_hash"] == result.spec_hash()
        assert store.names() == ["delays-line"]

    def test_load_missing(self, tmp_path):
        with pytest.raises(ScenarioError):
            ResultStore(tmp_path).load("ghost")


class TestValidation:
    def test_rejects_wrong_schema(self, result):
        payload = result.to_payload()
        payload["schema"] = "v0"
        with pytest.raises(ScenarioError):
            validate_payload(payload)

    def test_rejects_missing_summary_ok(self, result):
        payload = result.to_payload()
        del payload["summary"]["ok"]
        with pytest.raises(ScenarioError):
            validate_payload(payload)

    def test_rejects_nested_row_values(self, result):
        payload = result.to_payload()
        payload["rows"] = [{"bad": {"nested": 1}}]
        with pytest.raises(ScenarioError):
            validate_payload(payload)


class TestDiff:
    def test_equivalent(self, result):
        assert diff_payloads(result.to_payload(), result.to_payload()) == []

    def test_row_difference_reported(self, result):
        a, b = result.to_payload(), result.to_payload()
        b["rows"] = json.loads(json.dumps(b["rows"]))
        b["rows"][0]["verdict"] = "flipped"
        diffs = diff_payloads(a, b)
        assert any("row 0" in d and "verdict" in d for d in diffs)

    def test_spec_mismatch_reported(self, result):
        a, b = result.to_payload(), result.to_payload()
        b["spec_hash"] = "0" * 16
        assert any("spec_hash" in d for d in diff_payloads(a, b))

    def test_store_diff_across_backends(self, tmp_path):
        runner = Runner()
        store = ResultStore(tmp_path)
        ref = runner.run("thm31-sweep", backend="reference", params={"ks": [1, 2]})
        cmp_ = runner.run("thm31-sweep", backend="compiled", params={"ks": [1, 2]})
        pa = tmp_path / "ref.json"
        pa.write_text(json.dumps(ref.to_payload()))
        pb = tmp_path / "cmp.json"
        pb.write_text(json.dumps(cmp_.to_payload()))
        assert store.diff(pa, pb) == []


class TestGoldenSample:
    """The checked-in golden result stays reproducible (satellite: the
    .txt artifacts were replaced by schema-validated JSON)."""

    def test_golden_validates(self):
        payload = json.loads(GOLDEN.read_text())
        validate_payload(payload)
        assert payload["scenario"] == "thm31-sweep"

    def test_golden_matches_fresh_run(self):
        payload = json.loads(GOLDEN.read_text())
        fresh = Runner().run("thm31-sweep")
        assert fresh.spec_hash() == payload["spec_hash"]
        assert fresh.rows == payload["rows"]
        assert fresh.summary == payload["summary"]
