"""Tests for the atlas CLI verbs and the ``scenarios run --atlas`` flow."""

import pathlib

import pytest

from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parents[2]
GOLDEN = REPO / "benchmarks" / "results" / "golden"


@pytest.fixture()
def db(tmp_path):
    return str(tmp_path / "atlas.sqlite")


class TestAtlasVerbs:
    def test_init(self, db, capsys):
        assert main(["atlas", "init", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "schema v1" in out and "0 results" in out

    def test_import_stats_export_vacuum(self, db, tmp_path, capsys):
        assert main(["atlas", "import", str(GOLDEN), "--db", db]) == 0
        out = capsys.readouterr().out
        assert "6 results imported" in out
        assert "imported thm31-sweep" in out

        assert main(["atlas", "stats", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "results: 6" in out.replace("  ", " ").replace("  ", " ")

        out_dir = tmp_path / "exported"
        assert main(["atlas", "export", "verify-small", "--db", db,
                     "--out", str(out_dir)]) == 0
        exported = out_dir / "verify-small.json"
        assert exported.read_bytes() == (GOLDEN / "verify-small.json").read_bytes()

        assert main(["atlas", "export", "--all", "--db", db,
                     "--out", str(out_dir)]) == 0
        assert len(list(out_dir.glob("*.json"))) == 6

        assert main(["atlas", "vacuum", "--db", db]) == 0
        assert "integrity ok" in capsys.readouterr().out

    def test_export_needs_names_or_all(self, db, tmp_path):
        main(["atlas", "init", "--db", db])
        with pytest.raises(SystemExit):
            main(["atlas", "export", "--db", db, "--out", str(tmp_path)])

    def test_bare_atlas_is_still_the_feasibility_table(self, capsys):
        # the DB verbs share the `atlas` namespace with the original
        # feasibility-classification command; bare invocation must keep
        # its historical behavior
        assert main(["atlas", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 4  # header + 3 trees


class TestScenariosRunAtlas:
    def test_miss_then_hit_byte_identical(self, db, tmp_path, capsys):
        cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"
        assert main(["scenarios", "run", "verify-small", f"--atlas={db}",
                     "--save", "--out", str(cold_dir)]) == 0
        assert "atlas=miss" in capsys.readouterr().out
        assert main(["scenarios", "run", "verify-small", f"--atlas={db}",
                     "--save", "--out", str(warm_dir)]) == 0
        assert "atlas=hit" in capsys.readouterr().out
        cold = (cold_dir / "verify-small.json").read_bytes()
        warm = (warm_dir / "verify-small.json").read_bytes()
        assert warm == cold

    def test_hit_telemetry_shows_no_dispatch(self, db, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        assert main(["scenarios", "run", "verify-small", f"--atlas={db}"]) == 0
        capsys.readouterr()
        assert main(["scenarios", "run", "verify-small", f"--atlas={db}",
                     f"--telemetry={events}"]) == 0
        out = capsys.readouterr().out
        assert "atlas=hit" in out
        assert "backend.dispatch" not in out  # live snapshot, zero dispatch
        text = events.read_text()
        assert '"atlas.hit"' in text
        assert '"execute"' not in text
