"""Tests for the durable atlas store: schema lifecycle, byte-identical
round-trips, concurrent writers, and forward migrations."""

import json
import multiprocessing
import pathlib
import sqlite3

import pytest

from repro.scenarios import AtlasStore, Runner, ScenarioError
from repro.scenarios.atlas import (
    ATLAS_SCHEMA_VERSION,
    create_v0_db,
    dump_payload_text,
    import_paths,
)
from repro.scenarios.store import ResultStore

REPO = pathlib.Path(__file__).resolve().parents[2]
RESULTS = REPO / "benchmarks" / "results"
GOLDEN = RESULTS / "golden"
FIXTURE_V0 = pathlib.Path(__file__).parent / "fixtures" / "atlas-v0.sqlite"


@pytest.fixture(scope="module")
def result():
    return Runner().run("verify-small")


@pytest.fixture()
def db(tmp_path):
    return tmp_path / "atlas.sqlite"


class TestLifecycle:
    def test_init_creates_schema(self, db):
        with AtlasStore(db) as store:
            assert store.schema_version == ATLAS_SCHEMA_VERSION
            assert store.names() == []
        conn = sqlite3.connect(str(db))
        try:
            (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
        finally:
            conn.close()
        assert mode == "wal"
        assert {"atlas_meta", "results"} <= tables

    def test_empty_file_is_initialized(self, db):
        db.touch()
        with AtlasStore(db) as store:
            assert store.schema_version == ATLAS_SCHEMA_VERSION

    def test_reopen_is_idempotent(self, db, result):
        with AtlasStore(db) as store:
            store.save(result)
        with AtlasStore(db) as store:
            assert store.names() == ["verify-small"]

    def test_newer_schema_refused(self, db):
        with AtlasStore(db):
            pass
        conn = sqlite3.connect(str(db))
        conn.execute(
            "UPDATE atlas_meta SET value=? WHERE key='schema_version'",
            (str(ATLAS_SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(ScenarioError, match="newer"):
            AtlasStore(db)

    def test_foreign_sqlite_refused(self, db):
        conn = sqlite3.connect(str(db))
        conn.execute("CREATE TABLE users (id INTEGER PRIMARY KEY)")
        conn.commit()
        conn.close()
        with pytest.raises(ScenarioError, match="refusing"):
            AtlasStore(db)
        # refusal must not have destroyed the foreign database
        conn = sqlite3.connect(str(db))
        assert conn.execute("SELECT COUNT(*) FROM users").fetchone() == (0,)
        conn.close()

    def test_corrupt_garbage_quarantined_and_rebuilt(self, db, result):
        db.write_bytes(b"this is definitely not an sqlite database\x00\xff")
        with AtlasStore(db) as store:
            assert store.schema_version == ATLAS_SCHEMA_VERSION
            store.save(result)
            assert store.names() == ["verify-small"]
        quarantine = db.with_name(db.name + ".corrupt")
        assert quarantine.read_bytes().startswith(b"this is definitely not")


class TestRoundTrip:
    def test_save_load_lookup(self, db, result):
        with AtlasStore(db) as store:
            assert store.save(result) == store.path
            payload = result.to_payload()
            assert store.load("verify-small") == payload
            assert store.load("verify-small.json") == payload
            assert store.lookup(result.spec_hash()) == payload
            assert store.load(result.spec_hash()) == payload
            assert store.lookup("0" * 16) is None
            with pytest.raises(ScenarioError, match="no atlas result"):
                store.load("nope")

    def test_export_is_byte_identical(self, db, result, tmp_path):
        store = ResultStore(tmp_path / "loose")
        loose = store.save(result)
        with AtlasStore(db) as atlas:
            atlas.save(result)
            out = atlas.export("verify-small", tmp_path / "exported")
        assert out.read_bytes() == loose.read_bytes()

    def test_import_tree_golden_round_trip(self, db, tmp_path):
        with AtlasStore(db) as store:
            names = store.import_tree(RESULTS)
            assert "golden/verify-small" in names
            assert "verify-small" in names
            exported = store.export_all(tmp_path / "out")
        for path in exported:
            rel = path.relative_to(tmp_path / "out")
            assert path.read_bytes() == (RESULTS / rel).read_bytes()

    def test_import_paths_mixes_files_and_dirs(self, db):
        with AtlasStore(db) as store:
            names = import_paths(
                store, [GOLDEN / "verify-small.json", GOLDEN]
            )
        assert names[0] == "verify-small"
        assert "thm31-sweep" in names

    def test_import_rejects_non_json(self, db, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with AtlasStore(db) as store:
            with pytest.raises(ScenarioError, match="not valid JSON"):
                store.import_file(bad)

    def test_diff_against_loose_file(self, db):
        with AtlasStore(db) as store:
            store.import_file(GOLDEN / "verify-small.json")
            assert store.diff(
                "verify-small", str(GOLDEN / "verify-small.json")
            ) == []


class TestUpsert:
    def test_identical_payload_is_last_write_wins(self, db, result):
        with AtlasStore(db) as store:
            store.save(result)
            store.save(result)  # same rows: provenance refresh, no error
            assert store.stats()["results"] == 1

    def test_conflicting_rows_refused(self, db, tmp_path):
        text = (GOLDEN / "verify-small.json").read_text()
        doctored = json.loads(text)
        doctored["rows"][0] = dict(doctored["rows"][0], met=False, steps=999)
        bad = tmp_path / "verify-small.json"
        bad.write_text(dump_payload_text(doctored))
        with AtlasStore(db) as store:
            store.import_file(GOLDEN / "verify-small.json")
            with pytest.raises(ScenarioError, match="conflict"):
                store.import_file(bad)

    def test_stats_and_vacuum(self, db):
        with AtlasStore(db) as store:
            store.import_tree(GOLDEN)
            stats = store.stats()
            assert stats["results"] == 6
            assert stats["schema_version"] == ATLAS_SCHEMA_VERSION
            assert sum(stats["by_kind"].values()) == 6
            store.vacuum()
            assert store.stats()["results"] == 6


def _worker_import(db, src, barrier):
    with AtlasStore(db) as store:
        barrier.wait(timeout=30)
        store.import_file(src, name="shared")


class TestConcurrentWriters:
    def test_identical_payloads_last_write_wins(self, db):
        src = GOLDEN / "verify-small.json"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_worker_import, args=(db, src, barrier))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert [p.exitcode for p in procs] == [0, 0]
        with AtlasStore(db) as store:
            assert store.stats()["results"] == 1
            assert store.load("shared") == json.loads(src.read_text())

    def test_conflicting_payloads_one_writer_loses(self, db, tmp_path):
        src = GOLDEN / "verify-small.json"
        doctored = json.loads(src.read_text())
        doctored["rows"][0] = dict(doctored["rows"][0], met=False, steps=999)
        bad = tmp_path / "doctored.json"
        bad.write_text(dump_payload_text(doctored))
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_worker_import, args=(db, path, barrier))
            for path in (src, bad)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        codes = sorted(p.exitcode for p in procs)
        assert codes[0] == 0 and codes[1] != 0  # exactly one ScenarioError
        with AtlasStore(db) as store:
            assert store.stats()["results"] == 1  # the winner's row, intact


class TestMigration:
    def test_v0_migrates_forward_byte_identically(self, db):
        entries = {
            p.stem: p.read_text() for p in sorted(GOLDEN.glob("*.json"))
        }
        create_v0_db(db, entries)
        with AtlasStore(db) as store:
            assert store.schema_version == ATLAS_SCHEMA_VERSION
            assert store.names() == sorted(entries)
            stats = store.stats()
            assert stats["results"] == len(entries)
        # payload text survived the schema rewrite verbatim
        conn = sqlite3.connect(str(db))
        try:
            for name, text in entries.items():
                (stored,) = conn.execute(
                    "SELECT payload FROM results WHERE name=?", (name,)
                ).fetchone()
                assert stored == text
        finally:
            conn.close()

    def test_committed_fixture_migrates(self, db, tmp_path):
        import shutil

        shutil.copy(FIXTURE_V0, db)
        with AtlasStore(db) as store:
            assert store.schema_version == ATLAS_SCHEMA_VERSION
            exported = store.export_all(tmp_path / "out")
        assert len(exported) == 6
        for path in exported:
            assert path.read_bytes() == (GOLDEN / path.name).read_bytes()

    def test_v0_key_mismatch_refused(self, db):
        text = (GOLDEN / "verify-small.json").read_text()
        create_v0_db(db, {"verify-small": text})
        conn = sqlite3.connect(str(db))
        conn.execute("UPDATE results SET spec_hash='deadbeefdeadbeef'")
        conn.commit()
        conn.close()
        with pytest.raises(ScenarioError, match="hashes to"):
            AtlasStore(db)
