"""Tests for Runner memoization through the atlas: miss -> hit, zero
backend dispatch on hits, and byte-identical replay."""

import pytest

from repro.scenarios import AtlasStore, Runner
from repro.scenarios.atlas import dump_payload_text
from repro.scenarios.store import ResultStore
from repro.telemetry import Telemetry


@pytest.fixture()
def db(tmp_path):
    return tmp_path / "atlas.sqlite"


class TestMemoization:
    def test_miss_then_hit(self, db):
        with AtlasStore(db) as atlas:
            runner = Runner(atlas=atlas)
            cold = runner.run("verify-small")
            assert cold.cached_payload is None
            warm = runner.run("verify-small")
            assert warm.cached_payload is not None
            assert warm.rows == cold.rows
            assert warm.spec_hash() == cold.spec_hash()

    def test_hit_payload_is_byte_identical(self, db, tmp_path):
        with AtlasStore(db) as atlas:
            runner = Runner(atlas=atlas)
            cold = runner.run("verify-small")
            warm = runner.run("verify-small")
        store = ResultStore(tmp_path / "out")
        cold_path = store.save(cold)
        cold_bytes = cold_path.read_bytes()
        warm_path = store.save(warm)
        assert warm_path.read_bytes() == cold_bytes
        assert dump_payload_text(warm.to_payload()).encode() == cold_bytes

    def test_path_configured_atlas_opens_once(self, db):
        runner = Runner(atlas=db)
        cold = runner.run("verify-small")
        warm = runner.run("verify-small")
        assert cold.cached_payload is None
        assert warm.cached_payload is not None

    def test_run_level_atlas_override(self, db):
        runner = Runner()
        assert runner.run("verify-small", atlas=db).cached_payload is None
        with AtlasStore(db) as atlas:
            assert runner.run("verify-small", atlas=atlas).cached_payload is not None

    def test_no_atlas_means_no_memoization(self):
        runner = Runner()
        assert runner.run("verify-small").cached_payload is None
        assert runner.run("verify-small").cached_payload is None

    def test_hit_crosses_backend_hints(self, db):
        # spec_hash excludes the backend hint (backends are
        # outcome-equivalent), so a result computed under auto serves a
        # reference-pinned rerun without dispatching anything.
        with AtlasStore(db) as atlas:
            runner = Runner(atlas=atlas)
            cold = runner.run("delays-line")
            telem = Telemetry()
            warm = runner.run("delays-line", backend="reference",
                              telemetry=telem)
            assert warm.cached_payload is not None
            assert warm.backend == cold.backend
            counters = telem.snapshot()["counters"]
            assert not any(k.startswith("backend.dispatch.") for k in counters)


class TestTelemetry:
    def test_cold_run_records_miss_and_store(self, db):
        telem = Telemetry()
        with AtlasStore(db) as atlas:
            Runner(atlas=atlas).run("verify-small", telemetry=telem)
        snap = telem.snapshot()
        assert snap["events"].get("atlas.miss") == 1
        assert snap["events"].get("atlas.store") == 1
        assert "atlas.hit" not in snap["events"]
        assert "execute" in snap["phases"]

    def test_warm_run_records_hit_and_nothing_else(self, db):
        with AtlasStore(db) as atlas:
            runner = Runner(atlas=atlas)
            runner.run("delays-line")
            telem = Telemetry()
            runner.run("delays-line", telemetry=telem)
        snap = telem.snapshot()
        assert snap["events"].get("atlas.hit") == 1
        assert "atlas.miss" not in snap["events"]
        assert "execute" not in snap["phases"]  # the backend never ran
        assert not any(
            k.startswith("backend.") or k.startswith("kernel.")
            for k in snap["counters"]
        )

    def test_cold_payload_telemetry_excludes_store_event(self, db):
        # atlas.store fires after the snapshot is taken, so the persisted
        # payload's telemetry block shows the miss but not the store —
        # the stored document describes the run, not the storing.
        telem = Telemetry()
        with AtlasStore(db) as atlas:
            result = Runner(atlas=atlas).run("verify-small", telemetry=telem)
        events = result.to_payload()["telemetry"]["events"]
        assert "atlas.miss" in events
        assert "atlas.store" not in events
