"""Backend-parity tests: the ISSUE's acceptance criterion.

``scenarios run thm31-sweep --backend compiled`` and
``--backend reference`` must produce identical outcome tables, and the
backend protocol's sweep ordering must match the batched solver's.
"""

import pytest

from repro.agents import counting_walker
from repro.core import rendezvous_agent
from repro.errors import SimulationError
from repro.scenarios import (
    BatchedBackend,
    CompiledBackend,
    ReferenceBackend,
    Runner,
    select_backend,
)
from repro.sim import BatchJob, solve_all_delays
from repro.trees import edge_colored_line, line


class TestScenarioParity:
    @pytest.mark.parametrize("name", ["thm31-sweep", "delays-line"])
    def test_reference_compiled_batched_rows_identical(self, name):
        runner = Runner()
        params = {"ks": [1, 2]} if name == "thm31-sweep" else None
        reference = runner.run(name, backend="reference", params=params)
        compiled = runner.run(name, backend="compiled", params=params)
        batched = runner.run(name, backend="batched", params=params)
        assert reference.rows == compiled.rows == batched.rows
        assert reference.spec_hash() == compiled.spec_hash()
        assert {reference.backend, compiled.backend, batched.backend} == {
            "reference", "compiled", "batched",
        }

    def test_cli_parity(self, capsys):
        from repro.cli import main

        outs = {}
        for backend in ("reference", "compiled"):
            rc = main(
                ["scenarios", "run", "thm31-sweep", "--backend", backend,
                 "--set", "ks=[1,2]"]
            )
            assert rc == 0
            out = capsys.readouterr().out
            outs[backend] = out.split("\nscenario=")[0]  # table only
        assert outs["reference"] == outs["compiled"]


class TestBackendProtocol:
    def test_reference_sweep_matches_batched_solver(self):
        tree = edge_colored_line(9)
        agent = counting_walker(2)
        ref = ReferenceBackend().sweep_delays(tree, agent, 0, 5, max_delay=6)
        fast = solve_all_delays(tree, agent, 0, 5, max_delay=6)
        assert [
            (v.delay, v.delayed, v.met, v.meeting_round, v.certified_never)
            for v in ref
        ] == [
            (v.delay, v.delayed, v.met, v.meeting_round, v.certified_never)
            for v in fast
        ]

    def test_compiled_rejects_register_programs(self):
        with pytest.raises(SimulationError):
            CompiledBackend().run(line(5), rendezvous_agent(), 0, 3)

    def test_run_many_order_and_parity(self):
        tree = line(6)
        agent = counting_walker(1)
        jobs = [
            BatchJob(tree, agent, u, v, delay=d, max_rounds=5000, certify=True)
            for (u, v, d) in [(0, 5, 0), (1, 4, 2), (2, 5, 1)]
        ]
        ref = ReferenceBackend().run_many(jobs)
        bat = BatchedBackend(processes=2).run_many(jobs)
        assert [
            (o.met, o.meeting_round, o.certified_never) for o in ref
        ] == [
            (o.met, o.meeting_round, o.certified_never) for o in bat
        ]

    def test_select_backend_names(self):
        for hint in ("auto", "reference", "compiled", "batched"):
            assert select_backend(hint).name == hint
