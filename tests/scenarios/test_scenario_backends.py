"""Backend-parity tests: the ISSUE's acceptance criterion.

``scenarios run thm31-sweep --backend compiled`` and
``--backend reference`` must produce identical outcome tables, and the
backend protocol's sweep ordering must match the batched solver's.
"""

import random

import pytest

from repro.agents import counting_walker, random_tree_automaton
from repro.core import rendezvous_agent
from repro.errors import SimulationError
from repro.scenarios import (
    AutoBackend,
    BatchedBackend,
    CompiledBackend,
    ReferenceBackend,
    Runner,
    select_backend,
)
from repro.sim import BatchJob, GatheringJob, solve_all_delays
from repro.trees import edge_colored_line, line, spider


class TestScenarioParity:
    @pytest.mark.parametrize(
        "name",
        ["thm31-sweep", "delays-line", "gathering-line-k3", "gathering-spider-k3"],
    )
    def test_reference_compiled_batched_rows_identical(self, name):
        runner = Runner()
        params = {"ks": [1, 2]} if name == "thm31-sweep" else None
        reference = runner.run(name, backend="reference", params=params)
        compiled = runner.run(name, backend="compiled", params=params)
        batched = runner.run(name, backend="batched", params=params)
        assert reference.rows == compiled.rows == batched.rows
        assert reference.spec_hash() == compiled.spec_hash()
        assert {reference.backend, compiled.backend, batched.backend} == {
            "reference", "compiled", "batched",
        }

    @pytest.mark.parametrize(
        "name",
        ["gathering-line-k3", "gathering-line-k4",
         "gathering-spider-k3", "gathering-binary-k4"],
    )
    def test_gathering_registry_defaults_fully_decided(self, name):
        """The ISSUE's acceptance criterion: every registry gathering grid
        has at least one row per verdict class and no undecided rows."""
        result = Runner().run(name)
        assert result.ok
        assert result.summary["undecided"] == 0
        assert result.summary["met"] >= 1
        assert result.summary["certified_never"] >= 1
        verdicts = {r["verdict"] for r in result.rows}
        assert verdicts == {"met", "certified-never"}

    def test_cli_parity(self, capsys):
        from repro.cli import main

        outs = {}
        for backend in ("reference", "compiled"):
            rc = main(
                ["scenarios", "run", "thm31-sweep", "--backend", backend,
                 "--set", "ks=[1,2]"]
            )
            assert rc == 0
            out = capsys.readouterr().out
            outs[backend] = out.split("\nscenario=")[0]  # table only
        assert outs["reference"] == outs["compiled"]


class TestBackendProtocol:
    def test_reference_sweep_matches_batched_solver(self):
        tree = edge_colored_line(9)
        agent = counting_walker(2)
        ref = ReferenceBackend().sweep_delays(tree, agent, 0, 5, max_delay=6)
        fast = solve_all_delays(tree, agent, 0, 5, max_delay=6)
        assert [
            (v.delay, v.delayed, v.met, v.meeting_round, v.certified_never)
            for v in ref
        ] == [
            (v.delay, v.delayed, v.met, v.meeting_round, v.certified_never)
            for v in fast
        ]

    @pytest.mark.parametrize(
        "name,params",
        [
            ("verify-small", {"max_n": 5}),
            ("gap-table", {"subdivisions": [0, 1]}),
            (
                "success-families",
                {
                    "pairs_per_tree": 2,
                    "families": {"lines": ["line:7"], "binary": ["binary:2"]},
                },
            ),
        ],
    )
    def test_lowered_scenarios_rows_identical_across_backends(self, name, params):
        """The ISSUE's tentpole seam: the program-agent scenarios gained
        --backend compiled through lowering, with reference-parity rows."""
        runner = Runner()
        reference = runner.run(name, backend="reference", params=params)
        compiled = runner.run(name, backend="compiled", params=params)
        assert reference.rows == compiled.rows
        assert reference.summary == compiled.summary
        assert reference.ok and compiled.ok

    def test_compiled_lowers_register_programs(self):
        # Register programs are compiled-backend citizens via lowering:
        # traced execution, reference-parity verdicts.
        ref = ReferenceBackend().run(line(5), rendezvous_agent(), 0, 3)
        low = CompiledBackend().run(line(5), rendezvous_agent(), 0, 3)
        assert ref.met and (ref.met, ref.meeting_round, ref.meeting_node) == (
            low.met, low.meeting_round, low.meeting_node
        )

    def test_compiled_still_rejects_duck_typed_agents(self):
        class Opaque:
            def start(self, degree):
                return -1

            def step(self, in_port, degree):
                return -1

            def clone(self):
                return Opaque()

        with pytest.raises(SimulationError):
            CompiledBackend().run(line(5), Opaque(), 0, 3)

    def test_run_many_order_and_parity(self):
        tree = line(6)
        agent = counting_walker(1)
        jobs = [
            BatchJob(tree, agent, u, v, delay=d, max_rounds=5000, certify=True)
            for (u, v, d) in [(0, 5, 0), (1, 4, 2), (2, 5, 1)]
        ]
        ref = ReferenceBackend().run_many(jobs)
        bat = BatchedBackend(processes=2).run_many(jobs)
        assert [
            (o.met, o.meeting_round, o.certified_never) for o in ref
        ] == [
            (o.met, o.meeting_round, o.certified_never) for o in bat
        ]

    def test_select_backend_names(self):
        for hint in ("auto", "reference", "compiled", "batched"):
            assert select_backend(hint).name == hint


class TestSweepBudget:
    """The satellite fix: an explicit sweep budget is never dropped —
    the exact solvers honor it as their configuration guard and degrade
    to budgeted per-run verdicts (undecided, never crash or fake proof)
    when it trips."""

    def test_compiled_sweep_honors_explicit_budget(self):
        tree = edge_colored_line(9)
        agent = counting_walker(2)
        for backend in (CompiledBackend(), AutoBackend()):
            verdicts = backend.sweep_delays(
                tree, agent, 0, 5, max_delay=6, max_rounds=2
            )
            # 2 rounds decide nothing on this instance: every verdict
            # must come back undecided, not as a proof and not a raise.
            assert verdicts
            assert all(not v.met and not v.certified_never for v in verdicts)

    def test_compiled_sweep_default_needs_no_budget(self):
        tree = edge_colored_line(9)
        agent = counting_walker(2)
        verdicts = CompiledBackend().sweep_delays(tree, agent, 0, 5, max_delay=6)
        assert all(v.met or v.certified_never for v in verdicts)

    def test_budgeted_sweep_matches_reference_rows(self):
        # The cross-backend seam survives an explicit budget: the same
        # starved sweep yields the same undecided outcome table.
        result_ref = Runner().run(
            "gathering-line-k4", backend="reference", params={"max_rounds": 2}
        )
        result_cmp = Runner().run(
            "gathering-line-k4", backend="compiled", params={"max_rounds": 2}
        )
        assert result_ref.rows == result_cmp.rows
        assert not result_ref.ok  # undecided rows are reported, not hidden

    def test_gathering_sweep_budget_threads_to_solver(self):
        from repro.agents import alternator

        # Three alternators on a line never gather from these starts:
        # certifying that needs the full joint cycle, which a 2-config
        # guard cannot accommodate — so the budgeted sweep degrades to
        # 2-round per-run verdicts (undecided), while the unbudgeted
        # sweep proves non-gathering.
        agent = alternator()
        tree, starts = line(9), [0, 3, 6]
        (starved,) = CompiledBackend().sweep_gathering(
            tree, agent, starts, [[0, 0, 0]], max_rounds=2
        )
        assert not starved.gathered and not starved.certified_never
        (verdict,) = CompiledBackend().sweep_gathering(
            tree, agent, starts, [[0, 0, 0]]
        )
        assert verdict.certified_never


class TestGatheringProtocol:
    def test_sweep_gathering_backends_agree(self):
        tree = spider([2, 2, 2])
        agent = random_tree_automaton(3, rng=random.Random(2))
        starts = [1, 3, 5]
        vectors = [[0, 0, 0], [0, 1, 2], [3, 0, 1], [5, 5, 0]]

        def verdicts(backend):
            return [
                (v.delays, v.gathered, v.gathering_round, v.certified_never)
                for v in backend.sweep_gathering(tree, agent, starts, vectors)
            ]

        ref = verdicts(ReferenceBackend())
        assert ref == verdicts(CompiledBackend())
        assert ref == verdicts(BatchedBackend(processes=2))
        assert all(gathered or certified for _, gathered, _, certified in ref)

    def test_run_gathering_many_order_and_parity(self):
        tree = spider([2, 2, 2])
        agent = random_tree_automaton(3, rng=random.Random(2))
        jobs = [
            GatheringJob(tree, agent, starts, delays,
                         max_rounds=5000, certify=True)
            for starts, delays in [
                ((1, 3, 5), (0, 0, 0)),
                ((2, 4, 6), (1, 2, 0)),
                ((1, 2, 3), None),
            ]
        ]
        ref = ReferenceBackend().run_gathering_many(jobs)
        bat = BatchedBackend(processes=2).run_gathering_many(jobs)
        assert [
            (o.gathered, o.gathering_round, o.certified_never) for o in ref
        ] == [
            (o.gathered, o.gathering_round, o.certified_never) for o in bat
        ]

    def test_compiled_lowers_program_gathering(self):
        ref = ReferenceBackend().run_gathering(
            line(5), rendezvous_agent(), [0, 2, 4]
        )
        low = CompiledBackend().run_gathering(
            line(5), rendezvous_agent(), [0, 2, 4]
        )
        assert (ref.gathered, ref.gathering_round, ref.gathering_node) == (
            low.gathered, low.gathering_round, low.gathering_node
        )
