"""Tests for the Runner, the registry and the executor contract."""

import pytest

from repro.scenarios import (
    EXECUTORS,
    DelayPolicy,
    Runner,
    ScenarioError,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.runner import format_rows


class TestRegistry:
    def test_every_spec_has_an_executor(self):
        for spec in all_scenarios():
            assert spec.kind in EXECUTORS, spec.name

    def test_every_spec_serializes_and_hashes(self):
        for spec in all_scenarios():
            roundtrip = ScenarioSpec.from_json(spec.to_json())
            assert roundtrip.spec_hash() == spec.spec_hash()

    def test_unknown_name(self):
        with pytest.raises(ScenarioError):
            get_scenario("nope")

    def test_collision_rejected(self):
        name = scenario_names()[0]
        with pytest.raises(ScenarioError):
            register(get_scenario(name))
        # replace=True is the explicit escape hatch
        register(get_scenario(name), replace=True)

    def test_expected_experiment_coverage(self):
        # the paper's experiment surfaces all have registry entries
        names = set(scenario_names())
        assert {
            "thm31-sweep", "thm42-sweep", "thm43", "delays-line",
            "success-families", "gap-table", "verify-small", "atlas",
            "baseline-delays", "gathering-spider",
        } <= names


class TestRunner:
    def test_delay_sweep_result_shape(self):
        result = Runner().run("delays-line")
        assert result.ok
        assert result.backend == "auto"
        assert len(result.rows) == 33  # θ=0 once + 16 × both sides
        first = result.rows[0]
        assert set(first) == {"pair", "delay", "delayed", "verdict", "round"}
        assert result.summary["met"] + result.summary["certified_never"] == 33
        assert result.elapsed_seconds >= 0

    def test_param_overrides(self):
        result = Runner().run("atlas", params={"n": 5})
        assert len(result.rows) == 3  # 3 non-isomorphic trees on 5 nodes

    def test_backend_override_recorded(self):
        result = Runner(backend="reference").run("thm31-sweep", params={"ks": [1]})
        assert result.backend == "reference"
        assert result.spec.backend == "reference"

    def test_unknown_kind(self):
        spec = ScenarioSpec(name="x", kind="warp_drive")
        with pytest.raises(ScenarioError):
            Runner().run(spec)

    def test_repetitions_relabel(self):
        spec = ScenarioSpec(
            name="rep", kind="delay_sweep", tree="colored:9",
            agent="alternator", pairs=((0, 5),),
            delays=DelayPolicy.sweep(2), repetitions=2,
        )
        result = Runner().run(spec)
        assert {row["rep"] for row in result.rows} == {0, 1}

    def test_backend_agnostic_kind_rejects_backend_hint(self):
        # atlas never consults a backend; a forced hint must not be
        # silently recorded as the executing engine.  (gap-table,
        # success-families and verify-small used to sit here — they are
        # backend-sensitive now that lowering runs their program agents.)
        with pytest.raises(ScenarioError):
            Runner().run("atlas", backend="reference")
        with pytest.raises(ScenarioError):
            Runner(backend="compiled").run("minimization")
        assert Runner().run("atlas", params={"n": 4}).backend == "auto"

    def test_undecided_verdicts_are_not_reported_as_certified(self):
        from repro.scenarios import Backend
        from repro.sim.compiled import DelayVerdict

        class BudgetedStub(Backend):
            name = "auto"  # stands in for a budget-limited auto dispatch

            def run(self, *a, **kw):  # pragma: no cover - not used
                raise AssertionError

            def sweep_delays(self, tree, prototype, u, v, *, max_delay,
                             sides=(1, 2), max_rounds=0):
                return [DelayVerdict(0, 2, False, None, False)]

        result = Runner(backend=BudgetedStub()).run("delays-line")
        assert result.rows[0]["verdict"] == "undecided"
        assert result.summary["undecided"] == 1
        assert result.summary["certified_never"] == 0
        assert not result.ok

    def test_payload_schema_fields(self):
        payload = Runner().run("gathering-spider").to_payload()
        assert payload["schema"] == "repro.scenario-result/v1"
        assert payload["spec"]["name"] == "gathering-spider"
        assert payload["environment"]["python"]
        assert payload["timings"]["elapsed_seconds"] >= 0


class TestFormatRows:
    def test_alignment_and_nulls(self):
        text = format_rows(
            [{"a": 1, "b": None}, {"a": 200, "b": "x", "c": True}]
        )
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].split() == ["a", "b", "c"]
        assert lines[1].split() == ["1", "-", "-"]
        assert lines[2].split() == ["200", "x", "True"]

    def test_empty(self):
        assert format_rows([]) == "(no rows)"
