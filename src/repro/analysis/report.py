"""One-shot experiment report: regenerate the EXPERIMENTS.md numbers.

``python -m repro report`` (or :func:`generate_report`) runs the main
sweeps at configurable scale and emits a self-contained markdown report —
the quickest way to re-check the reproduction on new hardware or after a
code change, without the pytest-benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from .gap import format_gap_table, gap_table
from .program_atlas import DEFAULT_ATLAS_GRID, program_atlas_rows
from .stats import fit_loglog_slope, growth_ratios
from .sweep import (
    memory_vs_leaves,
    memory_vs_n_fixed_leaves,
    prime_rounds_vs_path_length,
    thm31_size_vs_bits,
)

__all__ = ["ReportScale", "generate_report"]


@dataclass(frozen=True)
class ReportScale:
    """Knobs for report size vs runtime.

    ``quick`` keeps everything under ~half a minute; ``full`` matches the
    recorded EXPERIMENTS.md run.
    """

    subdivisions: tuple[int, ...]
    leaf_counts: tuple[int, ...]
    leaf_total_nodes: int
    prime_lengths: tuple[int, ...]
    thm31_ks: tuple[int, ...]
    atlas_programs: int = 2  # how many atlas grid programs to include

    @classmethod
    def quick(cls) -> "ReportScale":
        return cls((0, 1, 3), (4, 8, 16), 60, (5, 9, 17), (1, 2, 3), 2)

    @classmethod
    def full(cls) -> "ReportScale":
        return cls(
            (0, 1, 3, 7, 15), (4, 8, 16, 32), 120, (5, 9, 17, 33, 65),
            (1, 2, 3, 4, 5), len(DEFAULT_ATLAS_GRID),
        )


def generate_report(scale: ReportScale | None = None) -> str:
    """Run the sweeps and return the markdown report."""
    scale = scale or ReportScale.quick()
    parts: list[str] = ["# Reproduction report (generated)\n"]

    parts.append("## E1 — Thm 3.1: defeating-line size vs memory bits\n")
    series = thm31_size_vs_bits(scale.thm31_ks)
    parts.append("```\n" + series.table("bits", "edges") + "\n```")
    ratios = [round(r, 2) for r in growth_ratios(series.ys)]
    parts.append(f"growth ratios {ratios} — exponential in bits.\n")

    parts.append("## E3a — Thm 4.1 memory vs n (fixed ℓ = 4)\n")
    series, points = memory_vs_n_fixed_leaves(scale.subdivisions)
    parts.append("```\n" + series.table("n", "bits") + "\n```")
    spread = max(series.ys) - min(series.ys)
    met = all(p.met for p in points)
    parts.append(f"spread {spread:g} bits across the sweep; all met: {met}.\n")

    parts.append("## E3b — Thm 4.1 memory vs leaves\n")
    series, points = memory_vs_leaves(scale.leaf_counts, scale.leaf_total_nodes)
    parts.append("```\n" + series.table("leaves", "bits") + "\n```")
    diffs = [b - a for a, b in zip(series.ys, series.ys[1:])]
    parts.append(f"increments per ℓ-doubling: {diffs} (log ℓ shape).\n")

    parts.append("## E4 — Lemma 4.1 rounds vs path length\n")
    series = prime_rounds_vs_path_length(scale.prime_lengths)
    parts.append("```\n" + series.table("m", "rounds") + "\n```")
    slope = fit_loglog_slope(series.xs, series.ys)
    parts.append(f"log-log slope {slope:.2f} (polynomial).\n")

    parts.append("## E7 — the exponential gap\n")
    rows = gap_table(subdivisions=scale.subdivisions)
    parts.append("```\n" + format_gap_table(rows) + "\n```")
    delay0 = [r.delay0_bits for r in rows]
    arb = [r.arbitrary_bits for r in rows]
    parts.append(
        f"delay-0 bits flat ({min(delay0)}..{max(delay0)}); "
        f"arbitrary-delay bits grow {arb[0]} -> {arb[-1]} (~2 log n).\n"
    )

    parts.append("## Program memory atlas — minimized lowered machines\n")
    atlas = program_atlas_rows(dict(list(DEFAULT_ATLAS_GRID.items())[: scale.atlas_programs]))
    header = (
        f"{'program':>20} {'tree':>14} {'route':>5} {'raw':>7} {'min':>7} "
        f"{'bits':>4} {'lb':>3} {'gamma':>5} {'defeat':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in atlas:
        lines.append(
            f"{r.program:>20} {r.tree:>14} {r.route:>5} {r.raw_states:>7} "
            f"{r.min_states:>7} {r.bits_min:>4} {r.lb_bits:>3} {r.gamma:>5} "
            f"{r.defeat_edges if r.defeat_edges is not None else '-':>6}"
        )
    parts.append("```\n" + "\n".join(lines) + "\n```")
    dropped = sum(r.raw_states - r.min_states for r in atlas)
    parts.append(
        f"{len(atlas)} cells; {dropped} lowered states were behavioral "
        "padding (merged by minimization).\n"
    )

    return "\n".join(parts)
