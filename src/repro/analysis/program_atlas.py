"""The program memory atlas: honest minimized-bits rows for register programs.

PR 4's lowering subsystem made register programs compiled-backend
citizens, but its raw artifacts — route-A reachable-machine-state
automata and route-B traced lassos — overcount the paper's memory
measure: machine-state enumeration distinguishes states by frame
contents, and a traced chain records one state per executed round.  The
atlas closes the loop with the analytical core: every library register
program is lowered, *minimized* (Moore refinement over the lowering
alphabet, or linear-time joint lasso minimization — see
:mod:`repro.agents.minimize`), run through the functional-digraph
circuit analysis of §4.2 (:func:`repro.agents.digraph.circuit_profile`),
and paired with the matching lower-bound floors
(:mod:`repro.lowerbounds.common`):

- ``raw_states → min_states`` — how much of the lowered machine is
  genuine behavioral state (route B shrinks exactly by the suffix
  sharing PR 4's dead-state release enables across start nodes);
- ``circuits / gamma / tail`` — the circuit structure the Ω(log log n)
  construction consumes (for route B, of the minimized joint lasso
  functional itself);
- ``lb_bits / gap`` — minimized bits against the delay-0 floor
  ``max(Ω(log log n), Ω(log ℓ))`` for the tree the row was lowered for;
- ``defeat_edges`` — for programs whose minimized machine is a genuine
  line automaton, the size of the certified Theorem 3.1 defeating line:
  the lower-bound adversary built against the *minimized program*.

Rows are backend-parity citizens: the single dynamics column
(``verdict``/``round``) goes through the scenario backend's ``run`` and
must be identical on the reference and compiled engines; every other
column is deterministic analysis of the lowered machines.  The dynamics
run is a budgeted *probe* (``met``/``open``), deliberately uncertified:
certification is the one verdict the backends legitimately disagree on
for register programs (the reference engine can never certify them —
PR 4's headline), and exact non-meeting proofs belong to the sweep
scenarios, not the atlas.  Lowering and
minimization results are cached on their objects (prototypes are shared
across a program's whole tree grid), so the full library atlas costs one
lowering + one refinement per distinct machine and runs in seconds.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Optional

from ..agents.automaton import Automaton, LineAutomaton
from ..agents.digraph import analyze_functional, circuit_profile, lcm_of
from ..agents.lowering import LoweredAutomaton, lowered_for
from ..agents.minimize import (
    automata_equivalent,
    minimize_automaton,
    minimize_lassos,
)
from ..errors import BudgetExceededError, ConstructionError, LoweringError
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.tree import Tree

__all__ = ["ProgramAtlasRow", "program_atlas_rows", "DEFAULT_ATLAS_GRID"]

#: The library grid: every register program the repo ships, each lowered
#: over a few small trees (route-A programs repeat an alphabet across
#: trees on purpose — the lowering cache must collapse the repeats).
DEFAULT_ATLAS_GRID: dict[str, tuple[str, ...]] = {
    "counting-program:2": ("line:9", "line:21", "star:4"),
    "pausing-program:2": ("line:9", "line:21"),
    "thm41": ("star:4", "spider:2,2,2"),
    "baseline": ("line:9", "binary:2", "star:4"),
    "prime:3": ("line:5",),
}


def _bits(states: int) -> int:
    return max(1, math.ceil(math.log2(max(states, 2))))


@dataclass(frozen=True)
class ProgramAtlasRow:
    """One (program, tree) cell of the atlas."""

    program: str
    tree: str
    route: str  # "A" (explicit automaton) | "B" (traced lassos)
    alphabet: str  # the degree alphabet the machine was lowered over
    raw_states: int
    min_states: int
    bits_raw: int
    bits_min: int
    circuits: int
    gamma: int
    tail: int
    lb_bits: int
    gap: float
    defeat_edges: Optional[int]
    equiv: bool
    verdict: str
    round: Optional[int]

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "tree": self.tree,
            "route": self.route,
            "alphabet": self.alphabet,
            "raw_states": self.raw_states,
            "min_states": self.min_states,
            "bits_raw": self.bits_raw,
            "bits_min": self.bits_min,
            "circuits": self.circuits,
            "gamma": self.gamma,
            "tail": self.tail,
            "lb_bits": self.lb_bits,
            "gap": self.gap,
            "defeat_edges": self.defeat_edges,
            "equiv": self.equiv,
            "verdict": self.verdict,
            "round": self.round,
        }


def _as_line_automaton(
    minimized: Automaton, alphabet: Sequence[tuple[int, int]]
) -> Optional[LineAutomaton]:
    """The minimized machine as a genuine line automaton, when it is one.

    Requires the lowering alphabet to cover exactly degrees {1, 2} and
    every state's transition to depend on the degree only (in-port
    variants agree) — the §4.2 model.  Minimization is what typically
    makes this succeed: raw machine states that differ only in the dead
    entry-port component of their frozen context merge.
    """
    degrees = {d for _ip, d in alphabet}
    if degrees != {1, 2}:
        return None
    table = []
    for s in range(minimized.num_states):
        per_degree = []
        for d in (1, 2):
            targets = {
                minimized.transition(s, ip, d) for ip, dd in alphabet if dd == d
            }
            if len(targets) != 1:
                return None
            per_degree.append(targets.pop())
        table.append((per_degree[0], per_degree[1]))
    return LineAutomaton(table, minimized.output, minimized.initial_state)


def _defeating_line_edges(line_automaton: LineAutomaton) -> Optional[int]:
    """Certified Theorem 3.1 defeating-line size for the minimized machine."""
    from ..lowerbounds.arbitrary_delay import build_thm31_instance

    try:
        instance = build_thm31_instance(line_automaton)
    except ConstructionError:
        return None
    return instance.line_edges if instance.certified else None


def _first_feasible_pair(tree: Tree) -> tuple[int, int]:
    """The canonical dynamics pair: first (u, v) that is not perfectly
    symmetrizable (falling back to (0, 1) on fully symmetric trees)."""
    for u in range(tree.n):
        for v in range(u + 1, tree.n):
            if not perfectly_symmetrizable(tree, u, v):
                return u, v
    return 0, min(1, tree.n - 1)


def _route_a_cells(prototype, tree: Tree, state_budget: int, step_budget: int):
    automaton: LoweredAutomaton = lowered_for(
        prototype, tree.degrees(),
        state_budget=state_budget, step_budget=step_budget,
    )
    alphabet = tuple(sorted(automaton.alphabet))
    minimization = minimize_automaton(automaton)  # cached on the automaton
    minimized = minimization.minimized
    profile = circuit_profile(minimized, alphabet)
    line = _as_line_automaton(minimized, alphabet)
    defeat = _defeating_line_edges(line) if line is not None else None
    return {
        "route": "A",
        "raw_states": automaton.num_states,
        "min_states": minimization.minimal_states,
        "circuits": profile.circuits,
        "gamma": profile.gamma,
        "tail": profile.max_tail,
        "defeat_edges": defeat,
        "equiv": automata_equivalent(automaton, minimized, alphabet),
    }


def _route_b_cells(prototype, tree: Tree, trace_budget: int):
    from ..sim.traced import lasso_automaton, solo_trace

    automata = [
        lasso_automaton(solo_trace(tree, prototype, start), trace_budget)
        for start in range(tree.n)
    ]
    family = minimize_lassos([(ta.output, ta.back) for ta in automata])
    # The joint quotient is functional: feed it straight to the §4.2
    # circuit decomposition (cycles = the lassos' minimal periods).
    digraph = analyze_functional(family.successor)
    equiv = True
    for ta, entry in zip(automata, family.entries):
        cur = entry
        for action in ta.output:  # full replay of every recorded round
            if family.output[cur] != action:
                equiv = False
                break
            cur = family.successor[cur]
        if not equiv:
            break
    return {
        "route": "B",
        "raw_states": family.raw_states,
        "min_states": family.minimal_states,
        "circuits": len(digraph.circuits),
        "gamma": lcm_of([len(c) for c in digraph.circuits]),
        "tail": digraph.max_tail(),
        "defeat_edges": None,
        "equiv": equiv,
    }


def program_atlas_rows(
    grid: Optional[Mapping[str, Sequence[str]]] = None,
    *,
    engine=None,
    seed: int = 0,
    state_budget: int = 4096,
    step_budget: int = 1_000_000,
    trace_budget: int = 1_000_000,
    max_rounds: int = 20_000,
) -> list[ProgramAtlasRow]:
    """Build the atlas: one row per (program, tree) cell of ``grid``.

    ``engine`` runs the single dynamics instance per row (a scenario
    backend's ``run``; defaults to the auto dispatch).  Route A is tried
    first and falls back to route B on the honest refusals
    (:class:`~repro.errors.LoweringError` — the library's
    explore-first programs are genuinely not automaton-expressible — or
    a tripped budget); a route-B budget trip degrades to an honest
    ``route="budget"`` row with zeroed counts and ``equiv=False`` (the
    scenario's ``ok`` goes false) — never a crash, never fake numbers.
    """
    from ..lowerbounds.common import delay0_bound_bits
    from ..scenarios.spec import build_agent, build_tree

    if engine is None:
        from ..sim.compiled import run_rendezvous_fast as engine

    grid = dict(grid) if grid is not None else dict(DEFAULT_ATLAS_GRID)
    rows: list[ProgramAtlasRow] = []
    for program, tree_specs in grid.items():
        prototype = build_agent(program, seed)
        for tree_spec in tree_specs:
            tree = build_tree(tree_spec, seed)
            try:
                cells = _route_a_cells(prototype, tree, state_budget, step_budget)
            # repro-lint: disable=RPR002 -- atlas route selection: route-A refusal is recorded by falling through to route B; the row's 'route' column is the structured surfacing
            except (LoweringError, BudgetExceededError):
                try:
                    cells = _route_b_cells(prototype, tree, trace_budget)
                # repro-lint: disable=RPR002 -- atlas route selection: a budget-bound trace yields an explicit route='budget' row with equiv=False, never a fake certificate
                except BudgetExceededError:
                    cells = {
                        "route": "budget",
                        "raw_states": 0, "min_states": 0,
                        "circuits": 0, "gamma": 0, "tail": 0,
                        "defeat_edges": None, "equiv": False,
                    }
            u, v = _first_feasible_pair(tree)
            out = engine(tree, prototype, u, v, max_rounds=max_rounds)
            verdict = "met" if out.met else "open"
            lb = delay0_bound_bits(tree.n, tree.num_leaves)
            bits_min = _bits(cells["min_states"])
            rows.append(
                ProgramAtlasRow(
                    program=program,
                    tree=tree_spec,
                    alphabet=",".join(
                        str(d) for d in sorted({int(x) for x in tree.degrees()})
                    ),
                    bits_raw=_bits(cells["raw_states"]),
                    bits_min=bits_min,
                    lb_bits=lb,
                    gap=round(bits_min / max(lb, 1), 2),
                    verdict=verdict,
                    round=out.meeting_round if out.met else None,
                    **cells,
                )
            )
    return rows
