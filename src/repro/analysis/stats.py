"""Small series/statistics helpers for the experiment harness.

The benchmarks print the paper's curves as rows; these helpers compute the
summaries (means, growth ratios, log fits) used to check each curve's
*shape* against the paper's bound — the reproduction target is who-wins and
the asymptotic form, not absolute constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "growth_ratios", "fit_loglog_slope", "geometric_mean"]


@dataclass(frozen=True)
class Series:
    """A named (x, y) series with convenience statistics."""

    name: str
    xs: tuple[float, ...]
    ys: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must align")

    def __len__(self) -> int:
        return len(self.xs)

    def rows(self) -> list[tuple[float, float]]:
        return list(zip(self.xs, self.ys))

    def table(self, x_label: str = "x", y_label: str = "y") -> str:
        lines = [f"{x_label:>12} {y_label:>14}"]
        for x, y in self.rows():
            lines.append(f"{x:>12g} {y:>14g}")
        return "\n".join(lines)


def growth_ratios(ys: Sequence[float]) -> list[float]:
    """Consecutive ratios y[i+1]/y[i]; the eyeball test for exponential vs
    polynomial vs flat growth."""
    out = []
    for a, b in zip(ys, ys[1:]):
        if a == 0:
            out.append(math.inf if b > 0 else 1.0)
        else:
            out.append(b / a)
    return out


def fit_loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y against log x (power-law exponent).

    Slope ~1 means linear, ~0 means flat; the memory-vs-n curve of the
    Thm 4.1 agent should fit far below 1 against log n (it is ~log log n).
    """
    pts = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(pts) < 2:
        raise ValueError("need at least two positive points")
    mx = sum(p[0] for p in pts) / len(pts)
    my = sum(p[1] for p in pts) / len(pts)
    denom = sum((p[0] - mx) ** 2 for p in pts)
    if denom == 0:
        raise ValueError("degenerate xs")
    return sum((p[0] - mx) * (p[1] - my) for p in pts) / denom


def geometric_mean(ys: Sequence[float]) -> float:
    vals = [y for y in ys if y > 0]
    if not vals:
        raise ValueError("no positive values")
    return math.exp(sum(math.log(y) for y in vals) / len(vals))
