"""Exhaustive verification drivers: Theorem 4.1 and Fact 1.1 at small n.

These sweep *every* non-isomorphic tree up to a size bound:

- :func:`verify_theorem_41`: on every feasible (non perfectly
  symmetrizable) pair, under canonical + sampled random labelings, the
  Theorem 4.1 agent must meet;
- :func:`verify_fact_11_impossibility`: on every perfectly symmetrizable
  pair there is a labeling making the positions symmetric; under that
  labeling the two agents provably mirror each other forever, and we check
  they do not meet within a generous budget (the reference engine has no
  finite configuration certificate for program agents, so this direction
  is observational here — the certified direction lives in
  :mod:`repro.lowerbounds`, and the lowered backend can additionally
  certify such runs when the traced machine state lassos).

Both functions return structured reports; the test-suite asserts their
verdicts, and the CLI exposes them for users who want to re-run the
exhaustive check at larger sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.rendezvous import solve
from ..sim.compiled import run_rendezvous_fast
from ..trees.automorphism import (
    are_symmetric_for_labeling,
    perfectly_symmetrizable,
)
from ..trees.builders import all_trees
from ..trees.labelings import random_relabel

__all__ = ["ExhaustiveReport", "verify_theorem_41", "verify_fact_11_impossibility"]


@dataclass
class ExhaustiveReport:
    """Aggregate verdict of an exhaustive sweep."""

    trees_checked: int = 0
    instances: int = 0
    failures: list[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def verify_theorem_41(
    max_n: int = 7,
    random_labelings: int = 2,
    seed: int = 0,
    max_outer: int = 10,
    engine=None,
    pairs_engine=None,
) -> ExhaustiveReport:
    """Every feasible pair of every tree up to ``max_n`` nodes must meet.

    ``engine`` routes the runs through a scenario backend.  One shared
    prototype serves the whole sweep (engines clone per run), which is
    what lets a lowering backend's trace cache decide every pair of a
    labeled tree from at most ``n`` interpreted solo runs — the step
    that makes ``verify-small`` scale past n = 8.  ``pairs_engine`` (a
    ``Backend.run_pairs``) decides each labeled tree's whole feasible
    batch in one call instead — same instances, same per-run round
    budget, same failure rows.
    """
    from ..core.algorithm import rendezvous_agent
    from ..core.rendezvous import estimate_round_budget

    rng = random.Random(seed)
    prototype = rendezvous_agent(max_outer=max_outer)
    report = ExhaustiveReport()
    for n in range(2, max_n + 1):
        for tree in all_trees(n):
            report.trees_checked += 1
            labelings = [tree] + [
                random_relabel(tree, rng) for _ in range(random_labelings)
            ]
            for labeled in labelings:
                feasible = [
                    (u, v)
                    for u in range(n)
                    for v in range(u + 1, n)
                    if not perfectly_symmetrizable(labeled, u, v)
                ]
                report.instances += len(feasible)
                if pairs_engine is not None:
                    budget = estimate_round_budget(labeled, max_outer)
                    verdicts = pairs_engine(
                        labeled, prototype, feasible, max_rounds=budget
                    )
                    for (u, v), verdict in zip(feasible, verdicts):
                        if not verdict.met:
                            report.failures.append((n, u, v, labeled))
                    continue
                for u, v in feasible:
                    result = solve(
                        labeled, u, v, max_outer=max_outer,
                        agent=prototype, engine=engine,
                    )
                    if not result.met:
                        report.failures.append((n, u, v, labeled))
    return report


def verify_fact_11_impossibility(
    max_n: int = 7,
    budget_rounds: int = 60_000,
    max_outer: int = 6,
    engine=None,
) -> ExhaustiveReport:
    """For every perfectly symmetrizable pair, find a witnessing symmetric
    labeling and observe that the Theorem 4.1 agents do not meet on it.

    The witnessing labeling is found by exhausting labelings on small trees
    (perfect symmetrizability guarantees one exists); symmetry with respect
    to the labeling is re-checked before the run.
    """
    from ..core.algorithm import rendezvous_agent
    from ..trees.labelings import all_labelings

    run = engine if engine is not None else run_rendezvous_fast
    prototype = rendezvous_agent(max_outer=max_outer)
    report = ExhaustiveReport()
    for n in range(2, max_n + 1):
        for tree in all_trees(n):
            report.trees_checked += 1
            pairs = [
                (u, v)
                for u in range(n)
                for v in range(u + 1, n)
                if perfectly_symmetrizable(tree, u, v)
            ]
            if not pairs:
                continue
            remaining = set(pairs)
            for labeled in all_labelings(tree, limit=3000):
                hit = [p for p in remaining if are_symmetric_for_labeling(labeled, *p)]
                for u, v in hit:
                    remaining.discard((u, v))
                    report.instances += 1
                    out = run(
                        labeled,
                        prototype,
                        u,
                        v,
                        max_rounds=budget_rounds,
                    )
                    if out.met:
                        report.failures.append((n, u, v, labeled))
                if not remaining:
                    break
            if remaining:  # pragma: no cover - Def 1.2 guarantees a witness
                report.failures.append(("no witnessing labeling", tree, remaining))
    return report
