"""Stage timeline of the Theorem 4.1 agent, recovered from a solo run.

The agent's registers double as phase markers: ``explo_nu`` is first
written when Stage 1's reconstruction completes, ``synchro_arrivals`` ticks
through Sub-stage 2.1, ``prime_p`` appears at the first prime attempt, and
``outer_i`` increments per Figure-2 outer iteration.  This module lifts a
:class:`~repro.sim.instrument.SoloRun` into a human-readable phase
timeline — the tool used to sanity-check that round budgets and
desynchronization behave as the proofs prescribe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.instrument import SoloRun

__all__ = ["Phase", "stage_timeline", "format_timeline"]


@dataclass(frozen=True)
class Phase:
    """One contiguous phase of the agent's execution."""

    name: str
    start_round: int
    end_round: Optional[int]  # None = still running at the end of the record

    @property
    def duration(self) -> Optional[int]:
        if self.end_round is None:
            return None
        return self.end_round - self.start_round


def stage_timeline(run: SoloRun) -> list[Phase]:
    """Recover the Thm 4.1 stage boundaries from register first-writes.

    Phases reported (when present): ``explo`` (Stage 1), ``synchro``
    (Sub-stage 2.1), ``walk_to_far`` (approach to v̂_far), and one phase per
    outer-loop index ``outer(i)``.  Easy-case runs (central node /
    asymmetric edge) show ``explo`` followed by ``walk_and_wait``.
    """
    marks: list[tuple[int, str]] = []
    explo_done = run.first_change("explo_nu")
    if explo_done is not None:
        marks.append((0, "explo"))
    synchro = run.first_change("synchro_arrivals")
    if synchro is not None and explo_done is not None:
        marks.append((explo_done, "synchro"))
        walk = run.first_change("inner_j")
        if walk is not None:
            # between Synchro's last tick and the first inner_j lies the
            # walk to v̂_far; approximate its start by synchro's last event
            last_synchro = max(r for r, _ in run.value_series("synchro_arrivals"))
            marks.append((last_synchro, "walk_to_far"))
        for rnd, value in run.value_series("outer_i"):
            marks.append((rnd, f"outer({value})"))
    elif explo_done is not None:
        marks.append((explo_done, "walk_and_wait"))

    marks.sort(key=lambda m: m[0])
    phases: list[Phase] = []
    for idx, (start, name) in enumerate(marks):
        end = marks[idx + 1][0] if idx + 1 < len(marks) else (
            run.rounds if run.finished else None
        )
        phases.append(Phase(name, start, end))
    return phases


def format_timeline(phases: list[Phase]) -> str:
    """Render a timeline as an aligned table."""
    lines = [f"{'phase':>14} {'start':>8} {'end':>8} {'rounds':>8}"]
    for p in phases:
        end = str(p.end_round) if p.end_round is not None else "..."
        dur = str(p.duration) if p.duration is not None else "..."
        lines.append(f"{p.name:>14} {p.start_round:>8} {end:>8} {dur:>8}")
    return "\n".join(lines)
