"""Feasibility classification (Fact 1.1 and §1's taxonomy).

For a tree and a pair of start nodes, classify:

- *perfectly symmetrizable* — no identical deterministic agents can ever
  rendezvous under Definition 1.1 (quantified over labelings);
- *topologically symmetric but not perfectly symmetrizable* — the paper's
  interesting class (odd lines' endpoints, complete binary tree leaves);
- *asymmetric* — not even topologically symmetric.

Also provides per-tree summaries used by the experiment drivers and the
examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..trees.automorphism import (
    are_topologically_symmetric,
    has_symmetrizing_labeling,
    perfectly_symmetrizable,
)
from ..trees.center import find_center
from ..trees.tree import Tree

__all__ = [
    "PairClass",
    "classify_pair",
    "classify_all_pairs",
    "FeasibilitySummary",
    "summarize_tree",
]


PERFECTLY_SYMMETRIZABLE = "perfectly_symmetrizable"
SYMMETRIC_FEASIBLE = "topologically_symmetric_feasible"
ASYMMETRIC = "asymmetric"


@dataclass(frozen=True)
class PairClass:
    """Classification of one start pair."""

    u: int
    v: int
    kind: str

    @property
    def feasible(self) -> bool:
        """Fact 1.1: rendezvous solvable iff not perfectly symmetrizable."""
        return self.kind != PERFECTLY_SYMMETRIZABLE


def classify_pair(tree: Tree, u: int, v: int) -> PairClass:
    if perfectly_symmetrizable(tree, u, v):
        return PairClass(u, v, PERFECTLY_SYMMETRIZABLE)
    if are_topologically_symmetric(tree, u, v):
        return PairClass(u, v, SYMMETRIC_FEASIBLE)
    return PairClass(u, v, ASYMMETRIC)


def classify_all_pairs(tree: Tree) -> Iterator[PairClass]:
    for u, v in itertools.combinations(range(tree.n), 2):
        yield classify_pair(tree, u, v)


@dataclass(frozen=True)
class FeasibilitySummary:
    """Counts of pair classes plus structural facts for one tree."""

    n: int
    leaves: int
    center_kind: str  # "node" or "edge"
    symmetrizable_tree: bool  # some labeling admits a nontrivial automorphism
    pairs_total: int
    pairs_perfectly_symmetrizable: int
    pairs_symmetric_feasible: int
    pairs_asymmetric: int

    @property
    def pairs_feasible(self) -> int:
        return self.pairs_symmetric_feasible + self.pairs_asymmetric


def summarize_tree(tree: Tree) -> FeasibilitySummary:
    counts = {PERFECTLY_SYMMETRIZABLE: 0, SYMMETRIC_FEASIBLE: 0, ASYMMETRIC: 0}
    total = 0
    for pc in classify_all_pairs(tree):
        counts[pc.kind] += 1
        total += 1
    center = find_center(tree)
    return FeasibilitySummary(
        n=tree.n,
        leaves=tree.num_leaves,
        center_kind="node" if center.is_node else "edge",
        symmetrizable_tree=has_symmetrizing_labeling(tree),
        pairs_total=total,
        pairs_perfectly_symmetrizable=counts[PERFECTLY_SYMMETRIZABLE],
        pairs_symmetric_feasible=counts[SYMMETRIC_FEASIBLE],
        pairs_asymmetric=counts[ASYMMETRIC],
    )
