"""Feasibility classification (Fact 1.1 and §1's taxonomy).

For a tree and a pair of start nodes, classify:

- *perfectly symmetrizable* — no identical deterministic agents can ever
  rendezvous under Definition 1.1 (quantified over labelings);
- *topologically symmetric but not perfectly symmetrizable* — the paper's
  interesting class (odd lines' endpoints, complete binary tree leaves);
- *asymmetric* — not even topologically symmetric.

Also provides per-tree summaries used by the experiment drivers and the
examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from ..trees.automorphism import (
    CodeInterner,
    are_topologically_symmetric,
    has_symmetrizing_labeling,
    perfectly_symmetrizable,
    rooted_code,
)
from ..trees.center import find_center
from ..trees.tree import Tree

__all__ = [
    "PairClass",
    "classify_pair",
    "classify_all_pairs",
    "FeasibilitySummary",
    "summarize_tree",
]


PERFECTLY_SYMMETRIZABLE = "perfectly_symmetrizable"
SYMMETRIC_FEASIBLE = "topologically_symmetric_feasible"
ASYMMETRIC = "asymmetric"


@dataclass(frozen=True)
class PairClass:
    """Classification of one start pair."""

    u: int
    v: int
    kind: str

    @property
    def feasible(self) -> bool:
        """Fact 1.1: rendezvous solvable iff not perfectly symmetrizable."""
        return self.kind != PERFECTLY_SYMMETRIZABLE


def classify_pair(tree: Tree, u: int, v: int) -> PairClass:
    if perfectly_symmetrizable(tree, u, v):
        return PairClass(u, v, PERFECTLY_SYMMETRIZABLE)
    if are_topologically_symmetric(tree, u, v):
        return PairClass(u, v, SYMMETRIC_FEASIBLE)
    return PairClass(u, v, ASYMMETRIC)


def classify_all_pairs(tree: Tree) -> Iterator[PairClass]:
    """Classify every unordered pair, sharing the per-tree work.

    Semantically identical to calling :func:`classify_pair` per pair, but
    computes the center once and one marked AHU code per (node, root)
    instead of re-deriving them for each of the O(n²) pairs — the same
    amortize-the-preprocessing move the compiled simulation backend makes.
    """
    n = tree.n
    center = find_center(tree)
    interner = CodeInterner()
    if center.is_node:
        c = center.node
        marked = [rooted_code(tree, c, w, interner=interner) for w in range(n)]
        # No central edge: never perfectly symmetrizable (Def 1.2).
        for u, v in itertools.combinations(range(n), 2):
            kind = SYMMETRIC_FEASIBLE if marked[u] == marked[v] else ASYMMETRIC
            yield PairClass(u, v, kind)
        return
    x, y = center.edge  # type: ignore[misc]
    half_x = set(tree.subtree_nodes(x, y))
    # Whole-tree codes rooted at each extremity (topological symmetry) and
    # half-tree codes (perfect symmetrizability), one per node.
    mx = [rooted_code(tree, x, w, interner=interner) for w in range(n)]
    my = [rooted_code(tree, y, w, interner=interner) for w in range(n)]
    half_code = {
        w: (
            rooted_code(tree, x, w, block=y, interner=interner)
            if w in half_x
            else rooted_code(tree, y, w, block=x, interner=interner)
        )
        for w in range(n)
    }
    for u, v in itertools.combinations(range(n), 2):
        if (u in half_x) != (v in half_x) and half_code[u] == half_code[v]:
            yield PairClass(u, v, PERFECTLY_SYMMETRIZABLE)
        elif mx[u] == mx[v] or (mx[u] == my[v] and my[u] == mx[v]):
            yield PairClass(u, v, SYMMETRIC_FEASIBLE)
        else:
            yield PairClass(u, v, ASYMMETRIC)


@dataclass(frozen=True)
class FeasibilitySummary:
    """Counts of pair classes plus structural facts for one tree."""

    n: int
    leaves: int
    center_kind: str  # "node" or "edge"
    symmetrizable_tree: bool  # some labeling admits a nontrivial automorphism
    pairs_total: int
    pairs_perfectly_symmetrizable: int
    pairs_symmetric_feasible: int
    pairs_asymmetric: int

    @property
    def pairs_feasible(self) -> int:
        return self.pairs_symmetric_feasible + self.pairs_asymmetric


def summarize_tree(tree: Tree) -> FeasibilitySummary:
    counts = {PERFECTLY_SYMMETRIZABLE: 0, SYMMETRIC_FEASIBLE: 0, ASYMMETRIC: 0}
    total = 0
    for pc in classify_all_pairs(tree):
        counts[pc.kind] += 1
        total += 1
    center = find_center(tree)
    return FeasibilitySummary(
        n=tree.n,
        leaves=tree.num_leaves,
        center_kind="node" if center.is_node else "edge",
        symmetrizable_tree=has_symmetrizing_labeling(tree),
        pairs_total=total,
        pairs_perfectly_symmetrizable=counts[PERFECTLY_SYMMETRIZABLE],
        pairs_symmetric_feasible=counts[SYMMETRIC_FEASIBLE],
        pairs_asymmetric=counts[ASYMMETRIC],
    )
