"""Time vs memory trade-offs (the follow-up direction the paper cites [15]).

The Theorem 4.1 agent has two tunable knobs:

- ``reps_factor`` — the constant in the ``5ℓ`` repetitions of the
  rendezvous path P (a *space-free* time knob: longer P, longer prime
  traversals);
- ``max_outer`` — how many primes the agent is prepared to try (its prime
  registers cost O(log log ·) bits and its worst-case time grows with every
  extra prime).

These sweeps measure worst-case meeting rounds across a stress family as
the knobs move, exposing the time/memory trade-off curve the paper's
successor work studies.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.algorithm import rendezvous_agent
from ..sim.compiled import run_rendezvous_fast
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.builders import line
from ..trees.labelings import random_relabel
from ..trees.tree import Tree

__all__ = ["TradeoffRow", "reps_factor_tradeoff", "stress_instances"]


@dataclass(frozen=True)
class TradeoffRow:
    """Aggregate meeting statistics for one knob setting."""

    knob: int
    runs: int
    met: int
    worst_round: int
    mean_round: float

    @property
    def success_rate(self) -> float:
        return self.met / self.runs if self.runs else 0.0


def stress_instances(
    sizes: Sequence[int] = (9, 13, 17),
    pairs_per_tree: int = 3,
    seed: int = 9,
) -> list[tuple[Tree, int, int]]:
    """Feasible line instances whose symmetric contraction forces the full
    Stage-2 machinery (lines are the stress family: T' is always symmetric)."""
    rng = random.Random(seed)
    out = []
    for m in sizes:
        tree = random_relabel(line(m), rng)
        found = 0
        for u in range(tree.n):
            for v in range(u + 1, tree.n):
                if found >= pairs_per_tree:
                    break
                if perfectly_symmetrizable(tree, u, v):
                    continue
                out.append((tree, u, v))
                found += 1
    return out


def reps_factor_tradeoff(
    factors: Sequence[int] = (1, 2, 5, 8),
    instances: Sequence[tuple[Tree, int, int]] | None = None,
    max_rounds: int = 3_000_000,
    max_outer: int = 10,
) -> list[TradeoffRow]:
    """Worst/mean meeting rounds as the P-repetition factor varies."""
    pool = list(instances) if instances is not None else stress_instances()
    rows = []
    for factor in factors:
        met = 0
        worst = 0
        total = 0
        for tree, u, v in pool:
            out = run_rendezvous_fast(
                tree,
                rendezvous_agent(reps_factor=factor, max_outer=max_outer),
                u,
                v,
                max_rounds=max_rounds,
            )
            if out.met:
                met += 1
                worst = max(worst, out.meeting_round or 0)
                total += out.meeting_round or 0
        rows.append(
            TradeoffRow(
                knob=factor,
                runs=len(pool),
                met=met,
                worst_round=worst,
                mean_round=total / met if met else float("inf"),
            )
        )
    return rows
