"""The headline experiment: the exponential memory gap (EXPERIMENTS.md E7).

For a family of trees with few leaves and growing n, compare:

- **delay 0** — the Theorem 4.1 agent's measured memory (declared register
  bits): O(log ℓ + log log n), essentially flat in n;
- **arbitrary delay** — (a) the Θ(log n) baseline's measured register bits,
  and (b) the *lower-bound evidence*: for budget-b automata, the Thm 3.1
  adversary defeats them on lines of length O(2^b), i.e. solving n-node
  lines requires ~log n bits.

The gap row format mirrors the paper's framing: for trees with polylog ℓ,
delay-0 memory is exponentially smaller than arbitrary-delay memory.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.memory import log_bits, loglog_bits
from ..core.rendezvous import solve, solve_with_delay
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.builders import complete_binary_tree, subdivide
from ..trees.labelings import random_relabel

__all__ = ["GapRow", "gap_table", "format_gap_table"]


@dataclass(frozen=True)
class GapRow:
    """One tree family member's measurements under both scenarios."""

    n: int
    leaves: int
    delay0_bits: int
    delay0_met: bool
    arbitrary_bits: int
    arbitrary_met: bool
    reference_loglog: int  # the Θ(log ℓ + log log n) reference value
    reference_log: int  # the Θ(log n) reference value

    @property
    def gap_factor(self) -> float:
        """How many times more memory the arbitrary-delay scenario uses."""
        return self.arbitrary_bits / max(self.delay0_bits, 1)


def gap_table(
    subdivisions: Sequence[int] = (0, 1, 3, 7, 15),
    delay: int = 13,
    seed: int = 2,
    engine=None,
) -> list[GapRow]:
    """Measure both scenarios on subdivided complete binary trees (ℓ = 4).

    The delay-0 run uses the Theorem 4.1 agent with simultaneous start; the
    arbitrary-delay run uses the baseline agent under the given delay.  The
    same start pair (two leaves of the base tree) is used throughout.

    ``engine`` routes the joint runs through a scenario backend; the
    memory columns come from solo replays (``measure_memory``) either
    way, so rows are identical on every backend.
    """
    rng = random.Random(seed)
    base = complete_binary_tree(2)
    rows: list[GapRow] = []
    for times in subdivisions:
        plain = subdivide(base, times)
        tree = random_relabel(plain, rng)
        u, v = 3, 6  # two leaves of the base tree; ids survive subdivision
        assert not perfectly_symmetrizable(tree, u, v)
        zero = solve(tree, u, v, max_outer=10, engine=engine)
        arb = solve_with_delay(tree, u, v, delay, engine=engine)
        # Memory is the solo requirement (lucky meetings end joint runs
        # before counters are declared) — see core.memory.measure_memory.
        from ..core.algorithm import rendezvous_agent
        from ..core.baseline import baseline_agent
        from ..core.memory import measure_memory
        from ..core.rendezvous import estimate_round_budget

        # Measure on the canonical labeling: its contraction is symmetric
        # for this family, so every row exercises the full algorithm.
        zero_mem = measure_memory(
            plain, u, rendezvous_agent(max_outer=2), estimate_round_budget(plain, 2)
        )
        arb_mem = measure_memory(plain, u, baseline_agent(), 40 * plain.n)
        rows.append(
            GapRow(
                n=tree.n,
                leaves=tree.num_leaves,
                delay0_bits=zero_mem.declared,
                delay0_met=zero.met,
                arbitrary_bits=arb_mem.declared,
                arbitrary_met=arb.met,
                reference_loglog=3 * log_bits(tree.num_leaves) + loglog_bits(tree.n),
                reference_log=log_bits(tree.n),
            )
        )
    return rows


def format_gap_table(rows: Sequence[GapRow]) -> str:
    """Render the gap table the way EXPERIMENTS.md records it."""
    header = (
        f"{'n':>6} {'leaves':>6} {'delay0 bits':>12} {'arb bits':>9} "
        f"{'gap x':>6} {'~log n':>7} {'met(0/arb)':>11}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.n:>6} {r.leaves:>6} {r.delay0_bits:>12} {r.arbitrary_bits:>9} "
            f"{r.gap_factor:>6.2f} {r.reference_log:>7} "
            f"{str(r.delay0_met)[0]}/{str(r.arbitrary_met)[0]:>9}"
        )
    return "\n".join(lines)
