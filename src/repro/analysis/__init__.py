"""Experiment drivers: feasibility classification, sweeps, the gap table."""

from .exhaustive import (
    ExhaustiveReport,
    verify_fact_11_impossibility,
    verify_theorem_41,
)
from .feasibility import (
    FeasibilitySummary,
    PairClass,
    classify_all_pairs,
    classify_pair,
    summarize_tree,
)
from .gap import GapRow, format_gap_table, gap_table
from .program_atlas import (
    DEFAULT_ATLAS_GRID,
    ProgramAtlasRow,
    program_atlas_rows,
)
from .tradeoff import TradeoffRow, reps_factor_tradeoff, stress_instances
from .phases import Phase, format_timeline, stage_timeline
from .report import ReportScale, generate_report
from .stats import Series, fit_loglog_slope, geometric_mean, growth_ratios
from .sweep import (
    SweepPoint,
    memory_vs_leaves,
    memory_vs_n_fixed_leaves,
    prime_rounds_vs_path_length,
    success_sweep,
    thm31_size_vs_bits,
    thm42_size_vs_bits,
)

__all__ = [
    "classify_pair",
    "ExhaustiveReport",
    "verify_theorem_41",
    "verify_fact_11_impossibility",
    "classify_all_pairs",
    "PairClass",
    "FeasibilitySummary",
    "summarize_tree",
    "gap_table",
    "format_gap_table",
    "GapRow",
    "DEFAULT_ATLAS_GRID",
    "ProgramAtlasRow",
    "program_atlas_rows",
    "Series",
    "growth_ratios",
    "fit_loglog_slope",
    "geometric_mean",
    "SweepPoint",
    "memory_vs_n_fixed_leaves",
    "memory_vs_leaves",
    "prime_rounds_vs_path_length",
    "thm31_size_vs_bits",
    "thm42_size_vs_bits",
    "success_sweep",
    "TradeoffRow",
    "reps_factor_tradeoff",
    "stress_instances",
    "Phase",
    "stage_timeline",
    "format_timeline",
    "ReportScale",
    "generate_report",
]
