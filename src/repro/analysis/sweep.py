"""Parameter sweeps behind the experiment harness (EXPERIMENTS.md E1-E8).

Each function runs a deterministic sweep and returns
:class:`~repro.analysis.stats.Series` objects ready to print; the benchmark
files under ``benchmarks/`` wrap these with pytest-benchmark and emit the
tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..agents.automaton import LineAutomaton
from ..agents.library import counting_walker
from ..core.prime_walk import prime_line_agent
from ..core.rendezvous import solve
from ..lowerbounds.arbitrary_delay import build_thm31_instance
from ..lowerbounds.loglog_line import build_thm42_instance
from ..sim.compiled import run_rendezvous_fast
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.builders import complete_binary_tree, double_broom, line, subdivide
from ..trees.labelings import random_relabel
from ..trees.tree import Tree
from .stats import Series

__all__ = [
    "SweepPoint",
    "memory_vs_n_fixed_leaves",
    "memory_vs_leaves",
    "prime_rounds_vs_path_length",
    "thm31_size_vs_bits",
    "thm42_size_vs_bits",
    "success_sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """One measured instance in a sweep."""

    n: int
    leaves: int
    met: bool
    meeting_round: int
    bits_declared: int
    bits_used: int


def _solve_point(
    tree: Tree,
    u: int,
    v: int,
    max_outer: int = 10,
    canonical: Tree | None = None,
    engine=None,
    agent=None,
) -> SweepPoint:
    """Run the rendezvous AND measure the agent's solo memory requirement.

    A lucky early meeting can end the joint run before the agent declares
    its counters, so memory is measured on a solo execution spanning
    Stage 1 + Synchro + two outer iterations (core.memory.measure_memory)
    — deliberately *not* through ``engine``: the memory account is
    instrumentation of the interpreted program and is identical on every
    backend (an agent's solo trajectory never depends on its partner).

    ``engine`` routes the joint run through a scenario backend;
    ``agent`` shares one prototype across points so a lowering backend's
    trace cache can reuse per-(tree, start) work (engines clone the
    prototype per run, so sharing is safe on every backend).
    """
    from ..core.algorithm import rendezvous_agent
    from ..core.memory import measure_memory
    from ..core.rendezvous import estimate_round_budget

    result = solve(tree, u, v, max_outer=max_outer, engine=engine, agent=agent)
    # Measure on the canonical labeling: its contraction is symmetric for
    # the sweep families, so every row exercises the FULL algorithm (random
    # labelings can fall into the cheap asymmetric path and make rows
    # incomparable).
    report = measure_memory(
        canonical if canonical is not None else tree,
        u,
        rendezvous_agent(max_outer=2),
        estimate_round_budget(tree, 2),
    )
    return SweepPoint(
        n=tree.n,
        leaves=tree.num_leaves,
        met=result.met,
        meeting_round=result.outcome.meeting_round or -1,
        bits_declared=report.declared,
        bits_used=report.used,
    )


def memory_vs_n_fixed_leaves(
    subdivisions: Sequence[int] = (0, 1, 3, 7, 15, 31),
    seed: int = 7,
) -> tuple[Series, list[SweepPoint]]:
    """E3a: declared bits vs n at fixed ℓ (subdivided complete binary tree).

    The Thm 4.1 bound says this curve is O(log ℓ + log log n): flat in n up
    to the log log n prime counters.
    """
    rng = random.Random(seed)
    base = complete_binary_tree(2)  # ℓ = 4
    points = []
    for times in subdivisions:
        plain = subdivide(base, times)
        tree = random_relabel(plain, rng)
        points.append(_solve_point(tree, 3, 6, canonical=plain))
    return (
        Series(
            "bits_vs_n_fixed_ell",
            tuple(float(p.n) for p in points),
            tuple(float(p.bits_declared) for p in points),
        ),
        points,
    )


def memory_vs_leaves(
    leaf_counts: Sequence[int] = (2, 4, 8, 16, 32),
    total_nodes: int = 160,
    seed: int = 3,
) -> tuple[Series, list[SweepPoint]]:
    """E3b: declared bits vs ℓ at (roughly) fixed n — double brooms.

    The curve should grow like log ℓ.
    """
    rng = random.Random(seed)
    points = []
    for ell in leaf_counts:
        per_side = max(1, ell // 2)
        handle = max(3, total_nodes - 2 * per_side)
        if handle % 2 == 0:
            handle += 1  # odd handle => asymmetric halves stay reachable
        plain = double_broom(handle, per_side, per_side)
        tree = random_relabel(plain, rng)
        # Two bristles of the same (left) broom: never mirror images, so
        # the pair stays feasible.
        u = handle + 1
        v = handle + per_side
        if perfectly_symmetrizable(tree, u, v):  # pragma: no cover - safety
            v = handle + 2
        points.append(_solve_point(tree, u, v, canonical=plain))
    return (
        Series(
            "bits_vs_leaves",
            tuple(float(p.leaves) for p in points),
            tuple(float(p.bits_declared) for p in points),
        ),
        points,
    )


def prime_rounds_vs_path_length(
    lengths: Sequence[int] = (5, 9, 17, 33, 65),
) -> Series:
    """E4: rounds for the Lemma 4.1 protocol on growing odd paths
    (endpoint vs interior start: always feasible)."""
    rounds = []
    for m in lengths:
        out = run_rendezvous_fast(
            line(m), prime_line_agent(), 0, m // 2 + 1, max_rounds=5_000_000
        )
        if not out.met:  # pragma: no cover - Lemma 4.1 guarantees meeting
            raise AssertionError(f"prime protocol failed on m={m}")
        rounds.append(float(out.meeting_round))
    return Series("prime_rounds", tuple(float(m) for m in lengths), tuple(rounds))


def thm31_size_vs_bits(ks: Sequence[int] = (1, 2, 3, 4, 5)) -> Series:
    """E1: defeating-line size vs memory bits (counting-walker family)."""
    xs, ys = [], []
    for k in ks:
        agent = counting_walker(k)
        inst = build_thm31_instance(agent)
        xs.append(float(agent.memory_bits))
        ys.append(float(inst.line_edges))
    return Series("thm31_line_edges", tuple(xs), tuple(ys))


def thm42_size_vs_bits(
    agents: Sequence[LineAutomaton] | None = None,
    seed: int = 11,
    count: int = 8,
    states: Sequence[int] = (2, 3, 4, 5),
) -> list[tuple[int, int, str, int]]:
    """E5: per-agent (bits, defeating edges, kind, gamma) rows."""
    from ..agents.automaton import random_line_automaton

    rng = random.Random(seed)
    pool: list[LineAutomaton] = list(agents) if agents else []
    if not pool:
        for k in states:
            for _ in range(max(1, count // len(states))):
                pool.append(random_line_automaton(k, rng))
    rows = []
    for agent in pool:
        inst = build_thm42_instance(agent)
        rows.append((agent.memory_bits, inst.line_edges, inst.kind, inst.gamma))
    return rows


def success_sweep(
    trees: Sequence[Tree],
    pairs_per_tree: int = 4,
    seed: int = 5,
    max_outer: int = 12,
    engine=None,
    pairs_engine=None,
) -> list[SweepPoint]:
    """E2: run the Thm 4.1 agent over feasible pairs of the given trees.

    ``engine`` (default :func:`repro.sim.run_rendezvous_fast`) routes the
    joint runs through a scenario backend; one shared prototype serves
    every point so a lowering backend can reuse traces across pairs of
    the same tree.  ``pairs_engine`` (a ``Backend.run_pairs``) instead
    decides each tree's whole pair batch in one call — same pair
    selection, same per-run round budget, same row fields; the memory
    columns stay solo-replay instrumentation either way.
    """
    from ..core.algorithm import rendezvous_agent
    from ..core.memory import measure_memory
    from ..core.rendezvous import estimate_round_budget

    rng = random.Random(seed)
    prototype = rendezvous_agent(max_outer=max_outer)
    points = []
    for tree in trees:
        selected: list[tuple[int, int]] = []
        attempts = 0
        while len(selected) < pairs_per_tree and attempts < 60 * pairs_per_tree:
            attempts += 1
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            if u == v or perfectly_symmetrizable(tree, u, v):
                continue
            selected.append((u, v))
        if pairs_engine is None:
            points.extend(
                _solve_point(
                    tree, u, v, max_outer=max_outer,
                    engine=engine, agent=prototype,
                )
                for u, v in selected
            )
            continue
        budget = estimate_round_budget(tree, max_outer)
        verdicts = pairs_engine(tree, prototype, selected, max_rounds=budget)
        for (u, v), verdict in zip(selected, verdicts):
            report = measure_memory(
                tree, u, rendezvous_agent(max_outer=2),
                estimate_round_budget(tree, 2),
            )
            points.append(SweepPoint(
                n=tree.n,
                leaves=tree.num_leaves,
                met=verdict.met,
                meeting_round=verdict.meeting_round or -1,
                bits_declared=report.declared,
                bits_used=report.used,
            ))
    return points
