"""Lowering bounded-register programs to explicit automata (route A).

The upper-bound agents of the reproduction (the Theorem 4.1 agent, the
arbitrary-delay baseline) are :class:`~repro.agents.program.AgentProgram`
generators — readable, but opaque to the compiled table-driven backend
(:mod:`repro.sim.compiled`), which wants a finite-state
:class:`~repro.agents.automaton.Automaton`.  This module closes that gap
by *state enumeration*: a deterministic program suspended at a ``yield``
is a machine state, and driving fresh clones through every observation
``(in_port, degree)`` of a degree alphabet enumerates the reachable
machine-state graph into an explicit (possibly large, but finite)
automaton.

Machine states are identified by :func:`machine_state_key`: the
generator's ``yield from`` frame chain (code object + instruction
offset) plus a structural freeze of every frame's locals — with the
register bank contributing through
:meth:`~repro.agents.program.Registers.state_key` (bounds + values;
peaks are accounting the program cannot read) and ``Ctx.rounds``
excluded for the same reason.  Anything the freezer cannot prove
hashable-and-complete raises :class:`~repro.errors.LoweringError`:
lowering *fails loudly* rather than conflating distinct states.

Known limitation (documented, guarded): CPython keeps ``for``-loop
iterators on the frame's value stack, which is not introspectable.  For
loops over ``range`` / literal tuples the iterator position is a
function of the visible loop variable, so the key is faithful; a program
iterating over a stateful iterable held *outside* its locals could
alias two distinct states.  The hypothesis parity suite
(``tests/properties/test_lowering_parity.py``) holds the lowered
automaton to reference-engine behavior, and the route-B solo tracer
(:mod:`repro.sim.traced`) never relies on key completeness for
correctness of ``met`` verdicts — keys only ever *close cycles*.

Enumeration is bounded by ``state_budget`` / ``step_budget``; exhaustion
raises :class:`~repro.errors.BudgetExceededError` so callers (the
scenario backends) fail over to route B tracing or to the reference
engine — never a crash, never a silent wrong answer.
"""

from __future__ import annotations

import dataclasses
import weakref
from collections import deque
from collections.abc import Iterable
from typing import Optional

from ..errors import AgentProtocolError, BudgetExceededError, LoweringError
from ..trees.tree import Tree
from .automaton import Automaton
from .observations import STAY
from .program import AgentProgram, Ctx, Registers

__all__ = [
    "machine_state_key",
    "lower_to_automaton",
    "lowered_for",
    "LoweredAutomaton",
]

_FINISHED_KEY = ("finished",)
_MAX_FREEZE_DEPTH = 24


def _freeze(value, stack: tuple[int, ...] = (), depth: int = 0):
    """Canonical hashable form of one frame local.

    Raises :class:`LoweringError` for anything whose future behavior the
    frozen form might not determine (live iterators, paused generators,
    cyclic object graphs, unknown extension types).
    """
    if depth > _MAX_FREEZE_DEPTH:
        raise LoweringError("machine state freeze exceeded the depth limit")
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, Registers):
        # bounds + values; peaks are accounting the program cannot read
        return ("Registers", value.state_key())
    if isinstance(value, Ctx):
        # rounds is write-only accounting (program.py increments, nothing
        # reads it); excluding it is what lets perpetual walkers cycle
        return ("Ctx", value.in_port, value.degree)
    if isinstance(value, Tree):
        # trees never mutate after construction (lazy nav caches aside),
        # so object identity is a sound and cheap key
        return ("Tree", id(value))
    if isinstance(value, range):
        return ("range", value.start, value.stop, value.step)
    if isinstance(value, tuple):
        return tuple(_freeze(v, stack, depth + 1) for v in value)
    if isinstance(value, list):
        return ("list", tuple(_freeze(v, stack, depth + 1) for v in value))
    if isinstance(value, (set, frozenset)):
        frozen = sorted((_freeze(v, stack, depth + 1) for v in value), key=repr)
        return ("set", tuple(frozen))
    if isinstance(value, dict):
        # Sort by the keys' repr only: keys are small (local names, node
        # ids); sorting by the frozen values' repr would rebuild huge
        # strings from nested tuples on every freeze.
        items = [
            (repr(k), _freeze(k, stack, depth + 1), _freeze(v, stack, depth + 1))
            for k, v in value.items()
        ]
        items.sort(key=lambda kv: kv[0])
        return ("dict", tuple((k, v) for _r, k, v in items))
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        if id(value) in stack:
            raise LoweringError("cyclic object state cannot be frozen")
        inner = stack + (id(value),)
        fields = tuple(
            (f.name, _freeze(getattr(value, f.name), inner, depth + 1))
            for f in dataclasses.fields(value)
        )
        return (type(value).__qualname__, fields)
    if callable(value) and hasattr(value, "__qualname__"):
        frozen_self = getattr(value, "__self__", None)
        if frozen_self is not None:
            return (
                "method",
                value.__qualname__,
                _freeze(frozen_self, stack, depth + 1),
            )
        return ("fn", getattr(value, "__module__", ""), value.__qualname__)
    if hasattr(value, "gi_frame") or hasattr(value, "__next__"):
        raise LoweringError(
            f"cannot freeze live iterator/generator state ({type(value).__name__})"
        )
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        if id(value) in stack:
            raise LoweringError("cyclic object state cannot be frozen")
        inner = stack + (id(value),)
        frozen = tuple(
            (name, _freeze(val, inner, depth + 1))
            for name, val in sorted(attrs.items())
        )
        return (type(value).__qualname__, frozen)
    raise LoweringError(
        f"cannot freeze frame local of type {type(value).__name__}"
    )


def machine_state_key(agent: AgentProgram) -> tuple:
    """Hashable identity of a suspended program's machine state.

    The key walks the generator's ``yield from`` delegation chain,
    contributing ``(code identity, instruction offset, frozen locals)``
    per frame.  A finished agent maps to the single absorbing
    "wait forever" state.  Raises :class:`LoweringError` when some frame
    state cannot be frozen faithfully.
    """
    if not isinstance(agent, AgentProgram):
        raise LoweringError("machine states are defined for AgentProgram only")
    if agent.finished or agent.generator is None:
        return _FINISHED_KEY
    frames = []
    gen = agent.generator
    outermost = True
    while gen is not None:
        frame = getattr(gen, "gi_frame", None)
        if frame is None:
            if hasattr(gen, "gi_code"):  # exhausted sub-generator
                frames.append(("done", gen.gi_code.co_name))
                break
            raise LoweringError(
                f"cannot key non-generator delegation target "
                f"({type(gen).__name__})"
            )
        code = frame.f_code
        locs = frame.f_locals
        if outermost:
            # The factory's first positional parameter is the start
            # degree (the AgentProgram calling convention).  It is a
            # constant within any one run, so stripping it never breaks
            # trace cycle detection; route-A lowering replays *every*
            # start degree at every expansion, so a program whose later
            # behavior genuinely branches on it still fails loudly.
            # Only the outermost frame is eligible — an argument-less
            # outer generator must not push the strip onto inner frames.
            if code.co_argcount >= 1:
                locs = {
                    k: v for k, v in locs.items() if k != code.co_varnames[0]
                }
            outermost = False
        frames.append(
            (
                code.co_filename,
                code.co_firstlineno,
                code.co_name,
                frame.f_lasti,
                _freeze(locs),
            )
        )
        gen = getattr(gen, "gi_yieldfrom", None)
    return ("suspended", tuple(frames))


class LoweredAutomaton(Automaton):
    """An explicit automaton produced by lowering a register program.

    Behaves exactly like a table :class:`Automaton` over its
    ``alphabet`` of ``(in_port, degree)`` observations, and raises
    :class:`~repro.errors.AgentProtocolError` for observations outside
    it — running a lowered agent on a tree with degrees the lowering
    never enumerated must fail loudly, not silently keep state.
    """

    def __init__(
        self,
        table: dict[tuple[int, int, int], int],
        output: Iterable[int],
        alphabet: Iterable[tuple[int, int]],
        initial_state: int = 0,
        source: str = "program",
    ) -> None:
        self.lowered_table = dict(table)
        self.alphabet = frozenset(tuple(o) for o in alphabet)
        self.source = source
        out = list(output)

        def fn(state: int, in_port: int, degree: int) -> int:
            if (in_port, degree) not in self.alphabet:
                raise AgentProtocolError(
                    f"lowered automaton ({self.source}) has no transition for "
                    f"observation ({in_port}, {degree}); re-lower with the "
                    f"right degree alphabet"
                )
            return self.lowered_table.get((state, in_port, degree), state)

        super().__init__(len(out), fn, out, initial_state)

    def clone(self) -> "LoweredAutomaton":
        fresh = LoweredAutomaton(
            self.lowered_table, self.output, self.alphabet,
            self.initial_state, self.source,
        )
        return fresh

    def __reduce__(self):
        # The transition closure is not picklable; the automaton is fully
        # determined by its constructor arguments (cf. LineAutomaton).
        return (
            LoweredAutomaton,
            (
                self.lowered_table,
                self.output,
                tuple(sorted(self.alphabet)),
                self.initial_state,
                self.source,
            ),
            {"state": self.state},
        )

    def __repr__(self) -> str:
        return (
            f"LoweredAutomaton({self.source!r}, K={self.num_states}, "
            f"bits={self.memory_bits})"
        )


def _observation_alphabet(degrees: Iterable[int]) -> list[tuple[int, int]]:
    degs = sorted({int(d) for d in degrees if int(d) >= 1})
    if not degs:
        raise LoweringError("lowering needs at least one degree >= 1")
    return [(ip, d) for d in degs for ip in range(-1, d)]


def lower_to_automaton(
    prototype: AgentProgram,
    degrees: Iterable[int],
    *,
    state_budget: int = 512,
    step_budget: int = 250_000,
) -> LoweredAutomaton:
    """Enumerate a program's reachable machine states into an automaton.

    ``degrees`` is the node-degree alphabet the automaton must cover
    (typically ``tree.degrees()``; degree 0 — the one-node tree, where
    every action resolves to a null move anyway — is ignored).  States
    are ``(machine_state_key, emitted raw action)`` pairs, so the
    automaton's ``λ`` is well-defined by construction; successors are
    found by replaying fresh clones along each state's discovery path.

    Raises
    ------
    LoweringError
        The program's machine state cannot be captured (unfreezable
        locals), or its start behavior genuinely depends on the start
        degree in a way no single automaton can express.
    BudgetExceededError
        More than ``state_budget`` states or ``step_budget`` generator
        steps were needed.  Callers fail over to route B
        (:mod:`repro.sim.traced`) or the reference engine.
    """
    if not isinstance(prototype, AgentProgram):
        raise LoweringError("route-A lowering requires an AgentProgram")
    alphabet = _observation_alphabet(degrees)
    degs = sorted({d for _ip, d in alphabet})
    steps = 0

    def spend(cost: int) -> None:
        nonlocal steps
        steps += cost
        if steps > step_budget:
            raise BudgetExceededError(
                f"lowering exceeded step_budget={step_budget}"
            )

    # ---- the start round ------------------------------------------------
    # An automaton's first action λ(s0) cannot read the start degree, and
    # its first transition cannot recover it either, so the program's
    # start behavior must be degree-uniform.  Programs that overwrite
    # their view of the degree with the first observation (every Ctx
    # program does) merge one observation later; until the machine keys
    # merge at the root, every expansion replays every start degree and
    # requires identical successors — a later branch on the start degree
    # surfaces as a LoweringError, never a silently wrong automaton.
    start_actions = []
    start_keys = []
    for d0 in degs:
        clone = prototype.clone()
        spend(1)
        start_actions.append(clone.start(d0))
        start_keys.append(machine_state_key(clone))
    if len(set(start_actions)) != 1:
        raise LoweringError(
            "start action depends on the start degree; no automaton can "
            "express it (route B tracing handles such programs per tree)"
        )
    start_action = start_actions[0]
    merged_at_root = len(set(start_keys)) == 1
    root_seeds = [degs[0]] if merged_at_root else degs

    if start_keys[0] == _FINISHED_KEY and merged_at_root:
        # The program returned immediately: a single wait-forever state.
        return LoweredAutomaton({}, [STAY], alphabet, 0, _source_of(prototype))

    # ---- BFS over (machine key, emitted action) states -------------------
    # ident -> state id; id 0 is the (possibly still unmerged) root.
    ids: dict[tuple, int] = {}
    outputs: list[int] = [start_action]
    paths: list[Optional[tuple]] = [()]
    done: list[bool] = [start_keys[0] == _FINISHED_KEY]
    table: dict[tuple[int, int, int], int] = {}

    queue = deque([0])
    while queue:
        state = queue.popleft()
        if done[state]:
            continue  # wait-forever: default keep-state + STAY output
        path = paths[state]
        for ip, d in alphabet:
            successors = set()
            for seed in root_seeds:
                clone = prototype.clone()
                spend(len(path) + 2)
                clone.start(seed)
                for pip, pd in path:
                    clone.step(pip, pd)
                action = clone.step(ip, d)
                successors.add((machine_state_key(clone), action))
            if len(successors) != 1:
                raise LoweringError(
                    "start-degree branches failed to merge after one "
                    "observation; the program is not automaton-expressible"
                )
            (key, action), = successors
            ident = (key, action)
            nxt = ids.get(ident)
            if nxt is None:
                nxt = len(outputs)
                if nxt + 1 > state_budget:
                    raise BudgetExceededError(
                        f"lowering exceeded state_budget={state_budget}"
                    )
                ids[ident] = nxt
                outputs.append(action)
                paths.append(path + ((ip, d),))
                done.append(key == _FINISHED_KEY)
                queue.append(nxt)
            table[(state, ip, d)] = nxt
    return LoweredAutomaton(
        table, outputs, alphabet, 0, _source_of(prototype)
    )


def _source_of(prototype: AgentProgram) -> str:
    return repr(prototype)


# Lowering is pure in (prototype, degree alphabet, budgets): the atlas grid
# re-lowers the same prototypes across trees (every line shares the degree
# alphabet {1, 2}), so outcomes — including refusals — are memoized.  Weak
# keying ties cache lifetime to the prototype object and keeps the cache
# out of pickles, exactly like the compiled-table cache.
_LOWERING_CACHE: "weakref.WeakKeyDictionary[AgentProgram, dict]" = (
    weakref.WeakKeyDictionary()
)


def lowered_for(
    prototype: AgentProgram,
    degrees: Iterable[int],
    *,
    state_budget: int = 512,
    step_budget: int = 250_000,
) -> LoweredAutomaton:
    """Memoized :func:`lower_to_automaton`.

    Failures are cached too: a program that refuses to lower over an
    alphabet (start-degree dependence, unfreezable state) or trips a
    budget will do so again for the same inputs, and the atlas grid must
    not pay the enumeration once per tree.  The cached exception is
    re-raised each time.
    """
    from ..telemetry import current as _telemetry

    t = _telemetry()
    alphabet = tuple(_observation_alphabet(degrees))
    key = (alphabet, state_budget, step_budget)
    try:
        per_proto = _LOWERING_CACHE.get(prototype)
    except TypeError:  # not weak-referenceable: lower uncached
        if t.enabled:
            t.count("lowering.memo.uncacheable")
        return lower_to_automaton(
            prototype, (d for _ip, d in alphabet),
            state_budget=state_budget, step_budget=step_budget,
        )
    if per_proto is None:
        per_proto = {}
        _LOWERING_CACHE[prototype] = per_proto
    hit = per_proto.get(key)
    if hit is None:
        if t.enabled:
            t.count("lowering.memo.miss")
        try:
            hit = lower_to_automaton(
                prototype, {d for _ip, d in alphabet},
                state_budget=state_budget, step_budget=step_budget,
            )
        except (LoweringError, BudgetExceededError) as exc:
            if t.enabled:
                t.count("lowering.refusal")
            per_proto[key] = exc
            raise
        per_proto[key] = hit
    elif t.enabled:
        t.count("lowering.memo.hit")
        if isinstance(hit, Exception):
            t.count("lowering.memo.cached_refusal")
    if isinstance(hit, Exception):
        raise hit
    return hit
