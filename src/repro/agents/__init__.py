"""Agent models: explicit automata and bounded-register programs."""

from .automaton import Automaton, LineAutomaton, random_line_automaton
from .dsl import compile_walker, parse_script, script_drift, script_period
from .digraph import (
    CircuitProfile,
    FunctionalDigraph,
    analyze_functional,
    circuit_profile,
    lcm_of,
)
from .minimize import (
    AutomatonMinimization,
    LassoFamilyMinimization,
    MinimizationResult,
    behaviorally_equivalent,
    minimize_automaton,
    minimize_lassos,
    minimize_line_automaton,
    minimize_tree_automaton,
)
from .library import (
    alternator,
    counting_program,
    counting_walker,
    pausing_program,
    pausing_walker,
    random_tree_automaton,
)
from .lowering import (
    LoweredAutomaton,
    lower_to_automaton,
    lowered_for,
    machine_state_key,
)
from .observations import NULL_PORT, STAY, AgentBase, resolve_action
from .program import AgentProgram, Ctx, Registers, move, stay

__all__ = [
    "AgentBase",
    "STAY",
    "NULL_PORT",
    "resolve_action",
    "Automaton",
    "LineAutomaton",
    "random_line_automaton",
    "AgentProgram",
    "Registers",
    "Ctx",
    "move",
    "stay",
    "LoweredAutomaton",
    "lower_to_automaton",
    "lowered_for",
    "machine_state_key",
    "CircuitProfile",
    "FunctionalDigraph",
    "analyze_functional",
    "circuit_profile",
    "lcm_of",
    "compile_walker",
    "parse_script",
    "script_drift",
    "script_period",
    "alternator",
    "AutomatonMinimization",
    "LassoFamilyMinimization",
    "MinimizationResult",
    "minimize_automaton",
    "minimize_lassos",
    "minimize_line_automaton",
    "minimize_tree_automaton",
    "behaviorally_equivalent",
    "counting_program",
    "counting_walker",
    "pausing_program",
    "pausing_walker",
    "random_tree_automaton",
]
