"""Register-program agents: bounded-memory programs driven as generators.

The upper-bound algorithm of Theorem 4.1 is far more readable as a program
with a handful of bounded counters than as an explicit transition table, so
this module provides the *register machine* view of an agent:

- an :class:`AgentProgram` wraps a generator function; the generator yields
  actions (``STAY`` or a port) and receives the next observation
  ``(in_port, degree)`` at each yield;
- a :class:`Registers` bank records every bounded counter the program
  declares, giving both the *analytic* memory cost (sum of declared bit
  widths — what the paper's O(log ℓ + log log n) statement counts) and the
  *empirical* one (bits for the largest values actually stored);
- :class:`Ctx` + :func:`move`/:func:`stay` give subroutines imperative
  syntax (``yield from move(ctx, port)``) while staying round-accurate.

When the generator returns, the agent is considered to *wait forever* (the
rendezvous algorithms end by waiting at a node).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Generator
from dataclasses import dataclass
from typing import Any, Optional

from ..errors import AgentProtocolError
from .observations import STAY

__all__ = ["Registers", "Ctx", "move", "stay", "AgentProgram", "ProgramFactory"]

# A subroutine yields actions (int) and receives observations (in_port, degree).
Routine = Generator[int, tuple[int, int], Any]


class Registers:
    """A bank of named bounded counters with bit accounting.

    ``declare(name, bound)`` registers a counter taking values in
    ``0 .. bound`` (inclusive) and costs ``ceil(log2(bound+1))`` bits.
    Assignments through ``__setitem__`` are range-checked, so a program that
    exceeds its declared memory fails loudly instead of silently cheating
    the memory model.
    """

    def __init__(self) -> None:
        self._bounds: dict[str, int] = {}
        self._values: dict[str, int] = {}
        self._peaks: dict[str, int] = {}

    def declare(self, name: str, bound: int, initial: int = 0) -> None:
        if bound < 0:
            raise AgentProtocolError(f"register {name!r}: bound must be >= 0")
        if name in self._bounds:
            # Re-declaration widens the register (used by doubling schemes).
            self._bounds[name] = max(self._bounds[name], bound)
        else:
            self._bounds[name] = bound
            self._peaks[name] = 0
        self[name] = initial

    def __setitem__(self, name: str, value: int) -> None:
        bound = self._bounds.get(name)
        if bound is None:
            raise AgentProtocolError(f"register {name!r} was never declared")
        if not (0 <= value <= bound):
            raise AgentProtocolError(
                f"register {name!r} = {value} exceeds declared bound {bound}"
            )
        self._values[name] = value
        if value > self._peaks[name]:
            self._peaks[name] = value

    def __getitem__(self, name: str) -> int:
        return self._values[name]

    # -- lowering support ---------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, int]]:
        """A restorable copy of the full bank: bounds, values *and* peaks.

        ``restore`` puts all three back, so peak accounting rewinds with
        the values.  This is the bank-capture API for exploratory
        tooling (notebooks, instrumented drivers that try a branch and
        back out); the lowering passes themselves identify machine
        states through :meth:`state_key` and re-derive successors by
        replaying fresh clones — a generator cannot be forked, so a
        register snapshot alone can never restore a machine state.
        """
        return {
            "bounds": dict(self._bounds),
            "values": dict(self._values),
            "peaks": dict(self._peaks),
        }

    def restore(self, snapshot: dict[str, dict[str, int]]) -> None:
        """Restore a bank previously captured by :meth:`snapshot`."""
        self._bounds = dict(snapshot["bounds"])
        self._values = dict(snapshot["values"])
        self._peaks = dict(snapshot["peaks"])

    def release(self, name: str) -> None:
        """Forget a register's *value* while keeping its memory account.

        The paper's agents reuse their bounded memory between stages; a
        program that is done with a counter releases it so that two
        machine states differing only in dead stage-local values compare
        equal (:meth:`state_key`) — which is what lets the lowering
        subsystem share trace suffixes across start nodes.  The declared
        bound and the recorded peak stay: releasing never shrinks the
        analytic or empirical memory account.
        """
        if name not in self._bounds:
            raise AgentProtocolError(f"register {name!r} was never declared")
        self._values.pop(name, None)

    def state_key(self) -> tuple:
        """Hashable key of the *generator-visible* bank state.

        Covers every declared register's current bound (re-declaration
        widening changes which assignments are legal, so bounds are
        behavior) and current value (``None`` once released).  Peaks are
        excluded: they are accounting the program can never read, so two
        machine states that differ only in peaks behave identically
        forever.
        """
        return tuple(
            (name, self._bounds[name], self._values.get(name))
            for name in sorted(self._bounds)
        )

    def bits_declared(self) -> int:
        """Analytic memory: sum of declared register widths, in bits."""
        return sum(
            max(1, math.ceil(math.log2(b + 1))) for b in self._bounds.values()
        )

    def bits_used(self) -> int:
        """Empirical memory: widths needed for the peak values stored."""
        return sum(
            max(1, math.ceil(math.log2(p + 1))) for p in self._peaks.values()
        )

    def report(self) -> dict[str, tuple[int, int]]:
        """Per-register ``(declared bound, peak value)``."""
        return {k: (self._bounds[k], self._peaks[k]) for k in sorted(self._bounds)}


@dataclass
class Ctx:
    """The walker's current observation, shared across subroutines."""

    in_port: int
    degree: int
    rounds: int = 0


def move(ctx: Ctx, port: int) -> Routine:
    """Take one step through ``port`` (mod degree); update ``ctx``."""
    obs = yield port
    ctx.in_port, ctx.degree = obs
    ctx.rounds += 1


def stay(ctx: Ctx, rounds: int = 1) -> Routine:
    """Make ``rounds`` null moves."""
    for _ in range(rounds):
        obs = yield STAY
        ctx.in_port, ctx.degree = obs
        ctx.rounds += 1


ProgramFactory = Callable[..., Routine]


class AgentProgram:
    """Adapter: a generator program behind the :class:`AgentBase` protocol.

    Parameters
    ----------
    factory:
        Called as ``factory(start_degree, registers, *args, **kwargs)``;
        must return a routine generator.
    """

    def __init__(self, factory: ProgramFactory, *args: Any, **kwargs: Any) -> None:
        self._factory = factory
        self._args = args
        self._kwargs = kwargs
        self._gen: Optional[Routine] = None
        self._done = False
        self.registers = Registers()

    # -- AgentBase protocol -------------------------------------------------
    def start(self, degree: int) -> int:
        self.registers = Registers()
        self._done = False
        self._gen = self._factory(degree, self.registers, *self._args, **self._kwargs)
        try:
            return next(self._gen)
        except StopIteration:
            self._done = True
            return STAY

    def step(self, in_port: int, degree: int) -> int:
        if self._done or self._gen is None:
            return STAY
        try:
            return self._gen.send((in_port, degree))
        except StopIteration:
            self._done = True
            return STAY

    def clone(self) -> "AgentProgram":
        return AgentProgram(self._factory, *self._args, **self._kwargs)

    # -- introspection ------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once the program returned (the agent waits forever)."""
        return self._done

    @property
    def generator(self) -> Optional[Routine]:
        """The live routine generator (``None`` before :meth:`start`).

        Exposed for the lowering subsystem
        (:mod:`repro.agents.lowering`), which freezes the generator's
        frame chain into machine-state keys; ordinary simulation code
        should drive the agent through ``start``/``step`` only.
        """
        return self._gen

    def memory_bits_declared(self) -> int:
        return self.registers.bits_declared()

    def memory_bits_used(self) -> int:
        return self.registers.bits_used()

    def __repr__(self) -> str:
        name = getattr(self._factory, "__name__", "program")
        return f"AgentProgram({name})"
