"""Automaton minimization: the honest memory measure for explicit agents.

The paper measures an automaton's memory as ⌈log₂ K⌉ bits, so a fair
comparison between agents requires K to be *minimal*: an agent padded with
unreachable or behaviorally equivalent states should not be charged for
them.  This module provides Moore-style partition refinement for
:class:`~repro.agents.automaton.LineAutomaton`:

1. drop states unreachable from the initial state (under all observations);
2. merge states with identical output whose transitions agree up to the
   current partition, iterating to a fixed point.

The result is the unique minimal automaton with the same behavior on every
line (same outputs under every observation sequence), along with the
state-count reduction — reported by the lower-bound benchmarks so that the
"memory bits" axis reflects genuine behavioral complexity.
"""

from __future__ import annotations

from dataclasses import dataclass

from .automaton import LineAutomaton

__all__ = [
    "MinimizationResult",
    "minimize_line_automaton",
    "minimize_tree_automaton",
    "behaviorally_equivalent",
]

# Observation alphabet of a line automaton: degree 1 or degree 2 (the entry
# port is implied by the edge coloring — §4.2 of the paper).
_OBS = (1, 2)


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of minimization.

    ``state_map[s]`` gives the minimal automaton's state representing the
    original state ``s`` (only defined for reachable states).
    """

    original: LineAutomaton
    minimized: LineAutomaton
    state_map: dict[int, int]

    @property
    def original_states(self) -> int:
        return self.original.num_states

    @property
    def minimal_states(self) -> int:
        return self.minimized.num_states

    @property
    def bits_saved(self) -> int:
        return self.original.memory_bits - self.minimized.memory_bits


def _reachable_states(automaton: LineAutomaton) -> list[int]:
    seen = {automaton.initial_state}
    stack = [automaton.initial_state]
    while stack:
        s = stack.pop()
        for d in _OBS:
            nxt = automaton.transition(s, 0, d)
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return sorted(seen)


def minimize_line_automaton(automaton: LineAutomaton) -> MinimizationResult:
    """Minimize a line automaton by Moore partition refinement."""
    reachable = _reachable_states(automaton)
    # Initial partition: by output action.
    block_of: dict[int, int] = {}
    signature_to_block: dict[tuple, int] = {}
    for s in reachable:
        sig = (automaton.output[s],)
        block = signature_to_block.setdefault(sig, len(signature_to_block))
        block_of[s] = block

    while True:
        signature_to_block = {}
        new_block_of: dict[int, int] = {}
        for s in reachable:
            sig = (
                automaton.output[s],
                tuple(block_of[automaton.transition(s, 0, d)] for d in _OBS),
            )
            block = signature_to_block.setdefault(sig, len(signature_to_block))
            new_block_of[s] = block
        if new_block_of == block_of:
            break
        block_of = new_block_of

    # Build the quotient automaton; block ids are already dense.
    num_blocks = len(set(block_of.values()))
    representatives: dict[int, int] = {}
    for s in reachable:
        representatives.setdefault(block_of[s], s)
    transitions = []
    outputs = []
    for block in range(num_blocks):
        rep = representatives[block]
        transitions.append(
            (
                block_of[automaton.transition(rep, 0, 1)],
                block_of[automaton.transition(rep, 0, 2)],
            )
        )
        outputs.append(automaton.output[rep])
    minimized = LineAutomaton(
        transitions, outputs, initial_state=block_of[automaton.initial_state]
    )
    return MinimizationResult(automaton, minimized, dict(block_of))


def behaviorally_equivalent(
    a: LineAutomaton, b: LineAutomaton, horizon: int = 256
) -> bool:
    """Do two line automata produce identical actions on every observation
    sequence of the given length?  (Product-walk check over the reachable
    pair space; ``horizon`` bounds pathological cases but the pair space is
    finite so the check is exact whenever it returns before the bound.)
    """
    seen = set()
    stack = [(a.initial_state, b.initial_state)]
    if a.output[a.initial_state] != b.output[b.initial_state]:
        return False
    steps = 0
    while stack and steps < horizon * max(a.num_states, b.num_states):
        sa, sb = stack.pop()
        if (sa, sb) in seen:
            continue
        seen.add((sa, sb))
        steps += 1
        for d in _OBS:
            na = a.transition(sa, 0, d)
            nb = b.transition(sb, 0, d)
            if a.output[na] != b.output[nb]:
                return False
            stack.append((na, nb))
    return True


def minimize_tree_automaton(
    automaton: "Automaton", max_degree: int = 3
) -> tuple[int, dict[int, int]]:
    """Minimal state count of a general tree automaton (max degree bounded).

    Same Moore refinement as the line case, over the full observation
    alphabet ``(in_port, degree)`` with ``in_port ∈ {-1, 0..max_degree-1}``
    and ``degree ∈ {1..max_degree}``.  Returns ``(minimal_states, block_of)``
    — enough for the honest-bits reporting of the Theorem 4.3 experiments
    (rebuilding a quotient ``Automaton`` is straightforward but unneeded).
    """
    from .automaton import Automaton  # local import to avoid cycle confusion

    obs = [
        (i, d)
        for i in range(-1, max_degree)
        for d in range(1, max_degree + 1)
    ]
    # Reachability over all observations.
    seen = {automaton.initial_state}
    stack = [automaton.initial_state]
    while stack:
        s = stack.pop()
        for i, d in obs:
            nxt = automaton.transition(s, i, d)
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    reachable = sorted(seen)

    block_of = {s: 0 for s in reachable}
    # initial split by output
    sig_to_block: dict[tuple, int] = {}
    for s in reachable:
        sig = (automaton.output[s],)
        block_of[s] = sig_to_block.setdefault(sig, len(sig_to_block))
    while True:
        sig_to_block = {}
        new_blocks = {}
        for s in reachable:
            sig = (
                automaton.output[s],
                tuple(block_of[automaton.transition(s, i, d)] for i, d in obs),
            )
            new_blocks[s] = sig_to_block.setdefault(sig, len(sig_to_block))
        if new_blocks == block_of:
            return len(set(block_of.values())), block_of
        block_of = new_blocks
