"""Automaton minimization: the honest memory measure for every agent shape.

The paper measures an automaton's memory as ⌈log₂ K⌉ bits, so a fair
comparison between agents requires K to be *minimal*: an agent padded with
unreachable or behaviorally equivalent states should not be charged for
them.  This module provides Moore-style partition refinement at three
granularities:

1. :func:`minimize_automaton` — the general engine, over an explicit
   observation alphabet of ``(in_port, degree)`` pairs.  This is what the
   program-lowering pipeline feeds: a
   :class:`~repro.agents.lowering.LoweredAutomaton` carries its lowering
   alphabet and is minimized over exactly the observations it was
   enumerated for (unreachable-state pruning, then output/transition
   refinement to a fixed point).  Results are cached on the automaton —
   the program-atlas grid re-analyzes the same lowered machines across
   trees, so each machine pays for one refinement ever.
2. :func:`minimize_line_automaton` / :func:`minimize_tree_automaton` —
   the historical entry points for :class:`LineAutomaton` (degree-only
   alphabet) and bounded-degree tree automata, now thin wrappers over the
   general engine.
3. :func:`minimize_lassos` — the linear-time special case for *traced
   lassos* (:mod:`repro.sim.traced`): a family of eventually-periodic
   action chains, one per start node of a tree, minimized jointly.  Moore
   refinement on a chain needs O(length) sweeps (distinguishing
   information travels one edge per sweep), hopeless at trace scale;
   instead each lasso's cycle is reduced to its minimal period in
   canonical rotation and the tails are folded backwards through a shared
   suffix-interning table, which is the same fixed point computed in
   O(total length).  Cross-chain sharing is the point: the Theorem 4.1
   agent's traces from different starts converge to the same steady-state
   behavior (PR 4's dead-state release is what makes the machine states
   equal), and the joint minimal automaton exposes exactly how much of
   the per-start tables is shared behavior rather than genuine state.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from .automaton import Automaton, LineAutomaton

__all__ = [
    "MinimizationResult",
    "AutomatonMinimization",
    "LassoFamilyMinimization",
    "minimize_automaton",
    "minimize_line_automaton",
    "minimize_tree_automaton",
    "minimize_lassos",
    "automata_equivalent",
    "behaviorally_equivalent",
]

# Observation alphabet of a line automaton: degree 1 or degree 2 (the entry
# port is implied by the edge coloring — §4.2 of the paper).
_OBS = (1, 2)
_LINE_ALPHABET = ((0, 1), (0, 2))


# ----------------------------------------------------------------------
# The refinement engine
# ----------------------------------------------------------------------

def _reachable(automaton: Automaton, alphabet) -> list[int]:
    seen = {automaton.initial_state}
    stack = [automaton.initial_state]
    while stack:
        s = stack.pop()
        for ip, d in alphabet:
            nxt = automaton.transition(s, ip, d)
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return sorted(seen)


def _moore_blocks(
    automaton: Automaton, reachable: Sequence[int], alphabet
) -> dict[int, int]:
    """Coarsest output/transition-stable partition of ``reachable``."""
    block_of: dict[int, int] = {}
    signature_to_block: dict[tuple, int] = {}
    for s in reachable:
        sig = (automaton.output[s],)
        block_of[s] = signature_to_block.setdefault(sig, len(signature_to_block))
    while True:
        signature_to_block = {}
        new_block_of: dict[int, int] = {}
        for s in reachable:
            sig = (
                automaton.output[s],
                tuple(
                    block_of[automaton.transition(s, ip, d)] for ip, d in alphabet
                ),
            )
            new_block_of[s] = signature_to_block.setdefault(
                sig, len(signature_to_block)
            )
        if new_block_of == block_of:
            return block_of
        block_of = new_block_of


@dataclass(frozen=True)
class AutomatonMinimization:
    """Outcome of general-alphabet minimization.

    ``state_map[s]`` gives the minimal automaton's state representing the
    original state ``s`` (only defined for reachable states).
    """

    original: Automaton
    minimized: Automaton
    state_map: dict[int, int]
    alphabet: tuple[tuple[int, int], ...]

    @property
    def original_states(self) -> int:
        return self.original.num_states

    @property
    def minimal_states(self) -> int:
        return self.minimized.num_states

    @property
    def bits_saved(self) -> int:
        return self.original.memory_bits - self.minimized.memory_bits


def minimize_automaton(
    automaton: Automaton,
    alphabet: Optional[Sequence[tuple[int, int]]] = None,
    *,
    cache: bool = True,
) -> AutomatonMinimization:
    """Minimize an automaton over an observation alphabet.

    ``alphabet`` is the list of ``(in_port, degree)`` observations the
    minimal machine must agree on; when omitted it is read off the
    automaton's own ``alphabet`` attribute (a
    :class:`~repro.agents.lowering.LoweredAutomaton` knows the
    observations it was enumerated for).  The quotient is a plain table
    :class:`Automaton` restricted to that alphabet.

    Results are cached per (automaton object, alphabet): the atlas grid
    asks for the same lowered machine under the same alphabet once per
    tree, and the refinement must run once, not once per row.
    """
    if alphabet is None:
        declared = getattr(automaton, "alphabet", None)
        if declared is None:
            raise ValueError(
                "automaton carries no observation alphabet; pass one explicitly"
            )
        alphabet = sorted(declared)
    alphabet = tuple((int(ip), int(d)) for ip, d in alphabet)
    if not alphabet:
        raise ValueError("minimization needs a non-empty observation alphabet")

    if cache:
        store = automaton.__dict__.setdefault("_minimization_cache", {})
        hit = store.get(alphabet)
        if hit is not None:
            return hit

    reachable = _reachable(automaton, alphabet)
    block_of = _moore_blocks(automaton, reachable, alphabet)
    num_blocks = len(set(block_of.values()))
    representatives: dict[int, int] = {}
    for s in reachable:
        representatives.setdefault(block_of[s], s)
    table: dict[tuple[int, int, int], int] = {}
    outputs = []
    for block in range(num_blocks):
        rep = representatives[block]
        outputs.append(automaton.output[rep])
        for ip, d in alphabet:
            table[(block, ip, d)] = block_of[automaton.transition(rep, ip, d)]
    minimized = Automaton(
        num_blocks, table, outputs, block_of[automaton.initial_state]
    )
    result = AutomatonMinimization(automaton, minimized, dict(block_of), alphabet)
    if cache:
        automaton.__dict__["_minimization_cache"][alphabet] = result
    return result


# ----------------------------------------------------------------------
# Historical entry points (line / bounded-degree tree automata)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of line-automaton minimization.

    ``state_map[s]`` gives the minimal automaton's state representing the
    original state ``s`` (only defined for reachable states).
    """

    original: LineAutomaton
    minimized: LineAutomaton
    state_map: dict[int, int]

    @property
    def original_states(self) -> int:
        return self.original.num_states

    @property
    def minimal_states(self) -> int:
        return self.minimized.num_states

    @property
    def bits_saved(self) -> int:
        return self.original.memory_bits - self.minimized.memory_bits


def minimize_line_automaton(automaton: LineAutomaton) -> MinimizationResult:
    """Minimize a line automaton by Moore partition refinement.

    Same engine as :func:`minimize_automaton` over the degree-only line
    alphabet, with the quotient rebuilt as a :class:`LineAutomaton` so
    the lower-bound constructions (``pi_prime`` and friends) keep
    working on the minimal machine.
    """
    general = minimize_automaton(automaton, _LINE_ALPHABET, cache=False)
    quotient = general.minimized
    minimized = LineAutomaton(
        [
            (quotient.transition(b, 0, 1), quotient.transition(b, 0, 2))
            for b in range(quotient.num_states)
        ],
        quotient.output,
        initial_state=quotient.initial_state,
    )
    return MinimizationResult(automaton, minimized, dict(general.state_map))


def automata_equivalent(
    a: Automaton,
    b: Automaton,
    alphabet: Sequence[tuple[int, int]],
    max_steps: Optional[int] = None,
) -> bool:
    """Do two automata produce identical actions on every observation
    sequence over ``alphabet``?  Product walk over the reachable pair
    space — finite, so the check is exact; ``max_steps`` optionally
    bounds the walk as belt and braces.
    """
    if a.output[a.initial_state] != b.output[b.initial_state]:
        return False
    seen = set()
    stack = [(a.initial_state, b.initial_state)]
    steps = 0
    while stack and (max_steps is None or steps < max_steps):
        sa, sb = stack.pop()
        if (sa, sb) in seen:
            continue
        seen.add((sa, sb))
        steps += 1
        for ip, d in alphabet:
            na = a.transition(sa, ip, d)
            nb = b.transition(sb, ip, d)
            if a.output[na] != b.output[nb]:
                return False
            stack.append((na, nb))
    return True


def behaviorally_equivalent(
    a: LineAutomaton, b: LineAutomaton, horizon: int = 256
) -> bool:
    """Do two line automata produce identical actions on every observation
    sequence?  The line-alphabet instance of :func:`automata_equivalent`
    (``horizon`` scales the optional step bound, as before).
    """
    return automata_equivalent(
        a, b, _LINE_ALPHABET,
        max_steps=horizon * max(a.num_states, b.num_states),
    )


def minimize_tree_automaton(
    automaton: "Automaton", max_degree: int = 3
) -> tuple[int, dict[int, int]]:
    """Minimal state count of a general tree automaton (max degree bounded).

    Same engine as :func:`minimize_automaton`, over the full observation
    alphabet ``(in_port, degree)`` with ``in_port ∈ {-1, 0..max_degree-1}``
    and ``degree ∈ {1..max_degree}``.  Returns ``(minimal_states, block_of)``
    — enough for the honest-bits reporting of the Theorem 4.3 experiments
    (rebuilding a quotient ``Automaton`` is straightforward but unneeded).
    """
    obs = [
        (i, d)
        for i in range(-1, max_degree)
        for d in range(1, max_degree + 1)
    ]
    general = minimize_automaton(automaton, obs, cache=False)
    return general.minimal_states, dict(general.state_map)


# ----------------------------------------------------------------------
# Traced-lasso families (route B of the lowering subsystem)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LassoFamilyMinimization:
    """The joint minimal automaton of a family of lassoed action chains.

    The input chains (one per start node of a tree, from
    :mod:`repro.sim.traced`) are observation-blind: state ``t`` of chain
    ``c`` emits its recorded action and steps to ``t + 1``, with the
    lasso's back edge closing the cycle.  The joint quotient identifies
    states with identical future action streams *across* chains, so the
    result is again functional: ``successor[q]`` is the unique next
    class, ready for
    :func:`~repro.agents.digraph.analyze_functional`.

    ``entries[c]`` is the class of chain ``c``'s initial state.
    """

    raw_states: int
    successor: tuple[int, ...]
    output: tuple[int, ...]
    entries: tuple[int, ...]

    @property
    def minimal_states(self) -> int:
        return len(self.successor)


def _minimal_period(cycle: Sequence[int]) -> int:
    """Smallest ``p`` (dividing ``len(cycle)``) with ``cycle`` p-periodic
    under rotation."""
    lam = len(cycle)
    for cand in range(1, lam):
        if lam % cand:
            continue
        if all(cycle[i] == cycle[(i + cand) % lam] for i in range(lam)):
            return cand
    return lam


def _canonical_rotation(seq: Sequence[int]) -> int:
    """Index of the lexicographically minimal rotation (Booth)."""
    doubled = list(seq) + list(seq)
    n = len(doubled)
    fail = [-1] * n
    k = 0
    for j in range(1, n):
        sj = doubled[j]
        i = fail[j - k - 1]
        while i != -1 and sj != doubled[k + i + 1]:
            if sj < doubled[k + i + 1]:
                k = j - i - 1
            i = fail[i]
        if sj != doubled[k + i + 1]:
            if sj < doubled[k]:
                k = j
            fail[j - k] = -1
        else:
            fail[j - k] = i + 1
    return k % len(seq)


def minimize_lassos(
    lassos: Sequence[tuple[Sequence[int], int]],
) -> LassoFamilyMinimization:
    """Jointly minimize a family of lassoed action chains, in linear time.

    Each lasso is ``(actions, back)``: the chain's per-round actions, and
    the index its final state steps back to (``len(actions) - 1`` for a
    finished trace, whose last state absorbs).  Two chain states are
    equivalent iff their future action streams coincide; the fixed point
    is computed directly — minimal cycle period in canonical rotation,
    then tails interned backwards on ``(action, successor class)`` — so
    the cost is O(total chain length), not the O(length²) a naive Moore
    sweep needs on chains.
    """
    classes: dict[tuple, int] = {}
    successor: list[int] = []
    output: list[int] = []

    def new_class(action: int, succ: int) -> int:
        cid = len(successor)
        successor.append(succ)
        output.append(action)
        return cid

    entries = []
    raw = 0
    for actions, back in lassos:
        actions = list(actions)
        m = len(actions)
        if not (0 <= back < m):
            raise ValueError(f"lasso back edge {back} outside chain of {m}")
        raw += m
        cycle = actions[back:]
        p = _minimal_period(cycle)
        core = cycle[:p]
        rot = _canonical_rotation(core)
        canon = tuple(core[rot:] + core[:rot])
        cycle_key = ("cycle", canon)
        base = classes.get(cycle_key)
        if base is None:
            base = len(successor)
            for i in range(p):
                new_class(canon[i], 0)
            for i in range(p):
                successor[base + i] = base + (i + 1) % p
                classes[(canon[i], successor[base + i])] = base + i
            classes[cycle_key] = base
        # Chain state ``back`` emits core[0] == canon[(p - rot) % p].
        cur = base + (p - rot) % p
        for t in range(back - 1, -1, -1):
            key = (actions[t], cur)
            got = classes.get(key)
            if got is None:
                got = new_class(actions[t], cur)
                classes[key] = got
            cur = got
        entries.append(cur)
    return LassoFamilyMinimization(
        raw_states=raw,
        successor=tuple(successor),
        output=tuple(output),
        entries=tuple(entries),
    )
