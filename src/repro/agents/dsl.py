"""A tiny movement DSL compiling to line automata.

The lower-bound experiments need *families* of victim agents with
prescribed movement patterns (drift, period, pauses).  Writing transition
tables by hand is error-prone; this DSL compiles a movement script into a
:class:`~repro.agents.automaton.LineAutomaton` that loops the script
forever:

>>> agent = compile_walker("F3 P2 B1")   # 3 forward, pause 2, 1 backward
>>> agent.num_states
6

Script atoms (whitespace-separated, case-insensitive):

``F<k>``  take k steps keeping direction (on a properly 2-edge-colored
          line, keeping direction means alternating the emitted color);
``B<k>``  turn around and take k steps the other way (the first of them
          re-crosses the edge just used);
``P<k>``  pause k rounds (null moves).

The compiled automaton has one state per atom unit and loops; the circuit
length is the total unit count and the first-pass displacement is
:func:`script_drift` — handy knobs for Theorem 4.2's γ/extreme-position
machinery.  (See :func:`script_drift` for the odd/even long-run caveat.)

Caveat: direction semantics hold on 2-edge-colored lines (both lower-bound
settings); on arbitrary labelings the color sequence is still deterministic
but "forward" loses its geometric meaning.
"""

from __future__ import annotations

import re

from ..errors import AgentProtocolError
from .automaton import LineAutomaton
from .observations import STAY

__all__ = ["compile_walker", "parse_script", "script_drift", "script_period"]

_ATOM = re.compile(r"^([FBP])(\d+)$", re.IGNORECASE)


def parse_script(script: str) -> list[tuple[str, int]]:
    """Parse a movement script into (op, count) atoms."""
    atoms: list[tuple[str, int]] = []
    for token in script.split():
        m = _ATOM.match(token)
        if not m:
            raise AgentProtocolError(f"bad walker atom {token!r}")
        op, count = m.group(1).upper(), int(m.group(2))
        if count < 1:
            raise AgentProtocolError(f"atom {token!r}: count must be >= 1")
        atoms.append((op, count))
    if not atoms:
        raise AgentProtocolError("empty walker script")
    if all(op == "P" for op, _ in atoms):
        # pure pausing is fine (a lazy agent), but flag scripts that can
        # never move at all? They are legal victims; keep them.
        pass
    return atoms


def script_drift(script: str) -> int:
    """Displacement of the script's *first* pass (forward minus backward).

    Long-run caveat (a genuine property of colored lines, exercised by the
    tests): a fixed cyclic color sequence displaces the walker by ±D per
    pass depending on the entry parity.  When D is even, parity is
    preserved and the walker drifts by D every pass; when D is odd, parity
    flips each pass and the displacement alternates +D, -D — the walker is
    *bounded* despite a nonzero per-pass drift.  The Theorem 4.2 builder
    handles both cases (drifting vs bounded branches).
    """
    drift = 0
    direction = 1
    for op, count in parse_script(script):
        if op == "F":
            drift += direction * count
        elif op == "B":
            direction = -direction
            drift += direction * count
    return drift


def script_period(script: str) -> int:
    """Rounds per loop of the script (every unit costs one round)."""
    return sum(count for _, count in parse_script(script))


def compile_walker(script: str) -> LineAutomaton:
    """Compile a movement script into a looping line automaton.

    Colors are assigned so that consecutive moves in the same direction
    alternate (staying on course on a colored line) and a ``B`` atom's
    first move re-emits the previous color (re-crossing the last edge).
    Pauses do not change the color phase.  The emitted color of the very
    first move is 0.
    """
    atoms = parse_script(script)
    outputs: list[int] = []
    next_color = 0
    last_color = 1  # so that an initial B behaves like F (nothing to undo)
    for op, count in atoms:
        if op == "P":
            outputs.extend([STAY] * count)
            continue
        if op == "B":
            # turn: first move re-takes the last color used
            next_color = last_color
        for _ in range(count):
            outputs.append(next_color)
            last_color = next_color
            next_color = 1 - next_color
    num = len(outputs)
    transitions = [((s + 1) % num, (s + 1) % num) for s in range(num)]
    return LineAutomaton(transitions, outputs)
