"""Explicit finite-state agents: the abstract state machine of §2.1.

An agent is ``A = (S, π, λ, s0)`` with ``π : S × Z² → S`` and
``λ : S → Z``.  Initially the agent is in state ``s0`` and acts according to
``λ(s0)``; upon each observation ``(i, d)`` it transitions to
``s' = π(s, (i, d))`` and acts according to ``λ(s')`` (``-1`` = null move,
else leave by port ``λ(s') mod d``).

Memory of a ``K``-state automaton is ``⌈log₂ K⌉`` bits (the paper's
measure).  The lower-bound machinery (Thms 3.1, 4.2, 4.3) consumes automata
in this explicit form; :class:`LineAutomaton` is the specialization used on
properly 2-edge-colored lines, where the observation reduces to the degree
(the entry port is implied by the coloring — §4.2).
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Mapping, Sequence
from typing import Optional

from ..errors import AgentProtocolError
from .observations import NULL_PORT, STAY

__all__ = ["Automaton", "LineAutomaton", "random_line_automaton"]


class Automaton:
    """A general finite-state agent.

    Parameters
    ----------
    num_states:
        ``K = |S|``; states are ``0 .. K-1``.
    transition:
        Either a mapping ``(state, in_port, degree) -> state`` (exhaustive or
        partial — missing entries keep the state, a convenient default), or a
        callable with that signature.
    output:
        ``λ``: sequence of length ``K``; ``output[s]`` is ``-1`` (null move)
        or a non-negative integer (exit port before the ``mod d``).
    initial_state:
        ``s0``.
    """

    def __init__(
        self,
        num_states: int,
        transition: Mapping[tuple[int, int, int], int] | Callable[[int, int, int], int],
        output: Sequence[int],
        initial_state: int = 0,
    ) -> None:
        if num_states < 1:
            raise AgentProtocolError("an automaton needs at least one state")
        if len(output) != num_states:
            raise AgentProtocolError("output table must cover every state")
        if not (0 <= initial_state < num_states):
            raise AgentProtocolError("initial state out of range")
        self.num_states = num_states
        self.output = tuple(int(a) for a in output)
        self.initial_state = initial_state
        if callable(transition):
            self._fn: Optional[Callable[[int, int, int], int]] = transition
            self._table: Optional[dict[tuple[int, int, int], int]] = None
        else:
            self._fn = None
            self._table = dict(transition)
            for (s, _i, _d), s2 in self._table.items():
                if not (0 <= s < num_states and 0 <= s2 < num_states):
                    raise AgentProtocolError("transition table references bad states")
        self.state = initial_state

    # -- AgentBase protocol -------------------------------------------------
    def start(self, degree: int) -> int:
        self.state = self.initial_state
        return self.output[self.state]

    def step(self, in_port: int, degree: int) -> int:
        self.state = self.transition(self.state, in_port, degree)
        return self.output[self.state]

    def clone(self) -> "Automaton":
        fresh = Automaton.__new__(Automaton)
        fresh.num_states = self.num_states
        fresh.output = self.output
        fresh.initial_state = self.initial_state
        fresh._fn = self._fn
        fresh._table = self._table
        fresh.state = self.initial_state
        return fresh

    # -- introspection ------------------------------------------------------
    def transition(self, state: int, in_port: int, degree: int) -> int:
        if self._fn is not None:
            nxt = self._fn(state, in_port, degree)
        else:
            assert self._table is not None
            nxt = self._table.get((state, in_port, degree), state)
        if not (0 <= nxt < self.num_states):
            raise AgentProtocolError(f"transition produced bad state {nxt}")
        return nxt

    @property
    def memory_bits(self) -> int:
        """⌈log₂ K⌉ — the paper's memory measure for automata."""
        return max(1, math.ceil(math.log2(self.num_states)))

    def __repr__(self) -> str:
        return f"Automaton(K={self.num_states}, bits={self.memory_bits})"


class LineAutomaton(Automaton):
    """An automaton specialized to properly 2-edge-colored lines (§4.2).

    On such lines, the port by which an agent enters a node equals the port
    by which it left the previous one (both ends of an edge carry the same
    number), so the paper reduces the transition function to
    ``π : S × {1, 2} → S`` over the degree only.  ``degree_transition[s]``
    is the pair ``(π(s, 1), π(s, 2))``.

    ``pi_prime`` (the degree-2 restriction, whose functional digraph drives
    the Thm 4.2 construction) is exposed directly.
    """

    def __init__(
        self,
        degree_transition: Sequence[tuple[int, int]],
        output: Sequence[int],
        initial_state: int = 0,
    ) -> None:
        num_states = len(degree_transition)
        self._deg_table = tuple((int(a), int(b)) for a, b in degree_transition)
        for a, b in self._deg_table:
            if not (0 <= a < num_states and 0 <= b < num_states):
                raise AgentProtocolError("degree transition references bad states")

        def fn(state: int, in_port: int, degree: int) -> int:
            if degree == 1:
                return self._deg_table[state][0]
            if degree == 2:
                return self._deg_table[state][1]
            raise AgentProtocolError(
                "LineAutomaton observed a node of degree > 2; it is only "
                "defined on lines"
            )

        super().__init__(num_states, fn, output, initial_state)

    def clone(self) -> "LineAutomaton":
        fresh = LineAutomaton(self._deg_table, self.output, self.initial_state)
        return fresh

    def __reduce__(self):
        # The transition closure defined in __init__ is not picklable, but
        # the automaton is fully determined by its constructor arguments —
        # required for the multiprocessing fan-out in repro.sim.batch.  The
        # runtime state rides along so a pickled mid-run agent (e.g. in a
        # returned outcome) round-trips exactly.
        return (
            LineAutomaton,
            (self._deg_table, self.output, self.initial_state),
            {"state": self.state},
        )

    def pi_prime(self) -> tuple[int, ...]:
        """The degree-2 transition function π' as a functional table."""
        return tuple(b for _a, b in self._deg_table)

    def pi_leaf(self) -> tuple[int, ...]:
        """The degree-1 transition function (behavior at line endpoints)."""
        return tuple(a for a, _b in self._deg_table)


def random_line_automaton(
    num_states: int, rng: Optional[random.Random] = None, stay_prob: float = 0.15
) -> LineAutomaton:
    """A random line automaton — a generic 'victim' for the lower bounds.

    Outputs are ports 0/1 or occasionally ``STAY``; transitions are uniform.
    Useful to populate the memory-vs-defeating-instance curves with agents
    that have no special structure.
    """
    rng = rng or random.Random()  # repro-lint: disable=RPR003 -- documented convenience default: callers needing reproducibility pass a seeded Random; every solver/scenario path does
    table = [
        (rng.randrange(num_states), rng.randrange(num_states)) for _ in range(num_states)
    ]
    output = [
        STAY if rng.random() < stay_prob else rng.randrange(2) for _ in range(num_states)
    ]
    return LineAutomaton(table, output)


# Re-export for convenience in type signatures of the lower-bound modules.
NULL_PORT = NULL_PORT
