"""A small zoo of concrete finite-state agents.

The lower-bound theorems quantify over *all* agents with a given memory; the
experiments instantiate them against concrete "victim" automata.  This
module provides structured families whose state counts scale with a
parameter, plus fully random automata:

- :func:`alternator` — 2 states, alternates exit ports (a persistent walker
  on 2-edge-colored lines);
- :func:`counting_walker` — ~``2^k`` states: walks with a k-bit step counter
  and flips phase on wrap (a natural "walk far, then turn" strategy);
- :func:`pausing_walker` — walker that idles ``p`` rounds between moves
  (exercises the Parity Lemma machinery: null moves shift parity);
- :func:`random_tree_automaton` — uniform victim for trees of max degree 3
  (Thm 4.3 experiments).

The zoo also keeps *register-program* renditions of the structured
walkers (:func:`counting_program`, :func:`pausing_program`).  Unlike the
Theorem 4.1 agent and the baseline — whose explore-first structure makes
their machine state genuinely depend on the start degree — these walkers
are degree-oblivious: their start action is fixed and their machine
states merge after one observation, so route-A lowering
(:func:`~repro.agents.lowering.lower_to_automaton`) turns them into
explicit degree-alphabet automata.  They anchor the program-memory atlas:
the lowered, minimized machine must coincide (behaviorally and in state
count) with the hand-written automaton family, which cross-validates the
whole lowering → minimization pipeline against known-minimal machines.
"""

from __future__ import annotations

import random
from typing import Optional

from .automaton import Automaton, LineAutomaton
from .observations import NULL_PORT, STAY
from .program import AgentProgram, Ctx, Registers, Routine, move, stay

__all__ = [
    "alternator",
    "counting_walker",
    "pausing_walker",
    "counting_program",
    "pausing_program",
    "random_tree_automaton",
]


def alternator() -> LineAutomaton:
    """Two states emitting ports 0, 1, 0, 1, ... at every node.

    On a properly 2-edge-colored line this keeps a consistent direction on
    the interior (consecutive edges alternate colors) and turns around at
    endpoints (port taken mod 1).
    """
    # state 0 emits port 0, state 1 emits port 1; both degree observations advance.
    return LineAutomaton(degree_transition=[(1, 1), (0, 0)], output=[0, 1])


def counting_walker(k: int) -> LineAutomaton:
    """A walker with a k-bit step counter: ``2^(k+1)`` states.

    States are pairs ``(phase, c)`` with ``c`` counting ``0 .. 2^k - 1``;
    the output alternates with ``c`` (so the interior walk keeps direction)
    and the phase flips when the counter wraps, reversing the alternation
    (so the agent turns around roughly every ``2^k`` steps).  Memory is
    ``k + 1`` bits — the family used to trace the Thm 3.1 curve
    "memory bits vs size of the defeating instance".
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    period = 2**k

    def sid(phase: int, c: int) -> int:
        return phase * period + c

    transitions: list[tuple[int, int]] = []
    outputs: list[int] = []
    for phase in range(2):
        for c in range(period):
            c2 = (c + 1) % period
            phase2 = phase ^ (1 if c2 == 0 else 0)
            nxt = sid(phase2, c2)
            transitions.append((nxt, nxt))
            outputs.append((phase + c) % 2)
    return LineAutomaton(degree_transition=transitions, output=outputs)


def pausing_walker(pause: int) -> LineAutomaton:
    """Moves one step, then stays idle ``pause`` rounds, perpetually.

    ``pause + 2`` states.  Null moves make the inter-agent distance parity
    drift, which exercises the Parity Lemma (Lemma 4.4) paths of the
    simulator and the Thm 4.2 construction.
    """
    if pause < 0:
        raise ValueError("pause must be >= 0")
    # States: 0 = emit port 0, 1 = emit port 1, 2.. = idle countdown.
    # Cycle: move(0) -> idle*pause -> move(1) -> idle*pause -> move(0) ...
    num = 2 * (pause + 1)
    transitions: list[tuple[int, int]] = []
    outputs: list[int] = []
    for s in range(num):
        nxt = (s + 1) % num
        transitions.append((nxt, nxt))
        block = s // (pause + 1)  # 0 or 1: which move this block ends with
        offset = s % (pause + 1)
        outputs.append(block if offset == 0 else STAY)
    return LineAutomaton(degree_transition=transitions, output=outputs)


def _counting_routine(start_degree: int, regs: Registers, k: int) -> Routine:
    """Register-program rendition of :func:`counting_walker`.

    The start degree is ignored (the walker's first move is port 0 no
    matter where it stands), so the program is route-A lowerable; the
    ``step``/``phase`` registers mirror the walker's ``(phase, c)`` state
    exactly and cost the same k + 1 declared bits.
    """
    period = 2**k
    ctx = Ctx(NULL_PORT, start_degree)
    regs.declare("step", period - 1)
    regs.declare("phase", 1)
    while True:
        yield from move(ctx, (regs["phase"] + regs["step"]) % 2)
        step = (regs["step"] + 1) % period
        regs["step"] = step
        if step == 0:
            regs["phase"] = regs["phase"] ^ 1


def counting_program(k: int) -> AgentProgram:
    """The k-bit counting walker as a bounded-register program."""
    if k < 1:
        raise ValueError("k must be >= 1")
    return AgentProgram(_counting_routine, k)


def _pausing_routine(start_degree: int, regs: Registers, pause: int) -> Routine:
    """Register-program rendition of :func:`pausing_walker` (same cycle:
    move port 0, idle ``pause`` rounds, move port 1, idle, repeat)."""
    ctx = Ctx(NULL_PORT, start_degree)
    regs.declare("idle", max(pause, 1))
    regs.declare("heading", 1)
    while True:
        yield from move(ctx, regs["heading"])
        idle = pause
        while idle > 0:
            regs["idle"] = idle
            yield from stay(ctx, 1)
            idle -= 1
        regs["idle"] = 0
        regs["heading"] = regs["heading"] ^ 1


def pausing_program(pause: int) -> AgentProgram:
    """The pausing walker as a bounded-register program."""
    if pause < 0:
        raise ValueError("pause must be >= 0")
    return AgentProgram(_pausing_routine, pause)


def random_tree_automaton(
    num_states: int,
    max_degree: int = 3,
    rng: Optional[random.Random] = None,
    stay_prob: float = 0.1,
) -> Automaton:
    """A uniformly random agent for trees of bounded degree.

    The transition table covers every observation ``(in_port, degree)`` with
    ``in_port ∈ {-1, 0, .., max_degree-1}`` and ``degree ∈ {1, .., max_degree}``;
    outputs are ``STAY`` with probability ``stay_prob``, else a random port
    index in ``0 .. max_degree - 1`` (applied mod the local degree).
    """
    rng = rng or random.Random()  # repro-lint: disable=RPR003 -- documented convenience default: callers needing reproducibility pass a seeded Random; every solver/scenario path does
    table: dict[tuple[int, int, int], int] = {}
    for s in range(num_states):
        for in_port in range(-1, max_degree):
            for degree in range(1, max_degree + 1):
                table[(s, in_port, degree)] = rng.randrange(num_states)
    output = [
        STAY if rng.random() < stay_prob else rng.randrange(max_degree)
        for _ in range(num_states)
    ]
    return Automaton(num_states, table, output)
