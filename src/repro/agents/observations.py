"""The agent/environment interface of the paper's model (§2.1).

Per round an agent receives an *observation* and emits an *action*:

observation
    ``(in_port, degree)`` — the port through which it entered the current
    node (or ``NULL_PORT == -1`` if its previous move was null / it has not
    moved yet) and the degree of the current node.

action
    Either ``STAY == -1`` (null move) or a non-negative integer ``a``; the
    agent then leaves through port ``a mod degree`` (the paper's
    ``λ(s') mod d`` convention, which lets an automaton emit a fixed number
    regardless of the local degree).

:class:`AgentBase` is the minimal duck type the synchronous simulator
drives.  Both explicit automata (:mod:`repro.agents.automaton`) and
register programs (:mod:`repro.agents.program`) implement it.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["STAY", "NULL_PORT", "AgentBase", "resolve_action"]

STAY: int = -1
NULL_PORT: int = -1


def resolve_action(action: int, degree: int) -> int:
    """Map a raw action to a concrete move: ``STAY`` or a port ``< degree``.

    Implements the paper's ``λ(s') mod d`` rule.  A node of degree 0 (the
    one-node tree) forces a null move.
    """
    if action == STAY or degree == 0:
        return STAY
    return action % degree


@runtime_checkable
class AgentBase(Protocol):
    """What the simulator requires of an agent.

    Implementations must be *deterministic* and must not inspect anything
    beyond the observations (anonymity).  ``clone()`` returns a fresh copy in
    the initial state — the simulator clones one prototype to get the two
    identical agents of the rendezvous problem.
    """

    def start(self, degree: int) -> int:
        """Action of the very first round, given the start node's degree."""
        ...

    def step(self, in_port: int, degree: int) -> int:
        """Action after observing ``(in_port, degree)``; ``in_port`` is
        ``NULL_PORT`` if the previous action was a null move."""
        ...

    def clone(self) -> "AgentBase":
        """A fresh agent in the initial state."""
        ...
