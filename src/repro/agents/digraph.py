"""Functional-digraph analysis of an automaton's degree-2 behavior (§4.2).

The Ω(log log n) lower bound studies the transition function
``π' : S → S`` applied at degree-2 nodes of the edge-colored line.  Its
*transition digraph* (one out-arc per state) decomposes into connected
components, each a circuit with in-trees hanging off it.  The construction
needs:

- the circuits ``C_1 .. C_r`` and ``γ = lcm(|C_1|, .., |C_r|)``;
- for each state, the tail length before its orbit enters a circuit;
- (in :mod:`repro.lowerbounds.loglog_line`) the *extreme position* of a
  circuit — the farthest point of the spatial displacement pattern one full
  circuit execution produces.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "FunctionalDigraph",
    "CircuitProfile",
    "analyze_functional",
    "circuit_profile",
    "lcm_of",
]


def lcm_of(values: Sequence[int]) -> int:
    out = 1
    for v in values:
        out = math.lcm(out, v)
    return out


@dataclass(frozen=True)
class FunctionalDigraph:
    """Decomposition of a functional graph ``f : S -> S``.

    Attributes
    ----------
    f:
        The function as a table.
    circuits:
        The vertex lists of all directed cycles, each listed in orbit order.
    circuit_of:
        ``circuit_of[s]`` is the index (into ``circuits``) of the circuit the
        orbit of ``s`` eventually enters.
    tail_length:
        Number of applications of ``f`` before ``s``'s orbit first lands on
        its circuit (0 when ``s`` is itself a circuit state).
    gamma:
        ``lcm`` of all circuit lengths — the paper's γ.
    """

    f: tuple[int, ...]
    circuits: tuple[tuple[int, ...], ...]
    circuit_of: tuple[int, ...]
    tail_length: tuple[int, ...]
    gamma: int

    @property
    def num_states(self) -> int:
        return len(self.f)

    def on_circuit(self, s: int) -> bool:
        return self.tail_length[s] == 0

    def circuit_length(self, s: int) -> int:
        return len(self.circuits[self.circuit_of[s]])

    def max_tail(self) -> int:
        return max(self.tail_length)


def analyze_functional(f: Sequence[int]) -> FunctionalDigraph:
    """Decompose the functional graph of ``f`` (table of size ``|S|``).

    Linear time: iterative cycle detection with three-color marking.
    """
    n = len(f)
    table = tuple(int(x) for x in f)
    for s in table:
        if not (0 <= s < n):
            raise ValueError("functional table maps outside the state set")

    WHITE, GRAY, BLACK = 0, 1, 2
    color = [WHITE] * n
    circuits: list[tuple[int, ...]] = []
    circuit_of = [-1] * n
    tail = [-1] * n

    for root in range(n):
        if color[root] != WHITE:
            continue
        # Walk the orbit until hitting a processed state or revisiting a gray one.
        path: list[int] = []
        s = root
        while color[s] == WHITE:
            color[s] = GRAY
            path.append(s)
            s = table[s]
        if color[s] == GRAY:
            # Found a fresh cycle: it starts at the first occurrence of s.
            start = path.index(s)
            cycle = tuple(path[start:])
            idx = len(circuits)
            circuits.append(cycle)
            for v in cycle:
                circuit_of[v] = idx
                tail[v] = 0
            # The prefix of the path leads into this cycle.
            for offset, v in enumerate(reversed(path[:start]), start=1):
                circuit_of[v] = idx
                tail[v] = offset
        else:
            # Path drains into previously processed territory.
            idx = circuit_of[s]
            base = tail[s]
            for offset, v in enumerate(reversed(path), start=1):
                circuit_of[v] = idx
                tail[v] = base + offset
        for v in path:
            color[v] = BLACK

    gamma = lcm_of([len(c) for c in circuits])
    return FunctionalDigraph(
        f=table,
        circuits=tuple(circuits),
        circuit_of=tuple(circuit_of),
        tail_length=tuple(tail),
        gamma=gamma,
    )


@dataclass(frozen=True)
class CircuitProfile:
    """Circuit structure of an automaton, per observation of an alphabet.

    The paper's γ analysis fixes *one* observation (degree 2 on the line:
    π') and decomposes its functional digraph.  A general automaton over
    an alphabet of ``(in_port, degree)`` observations has one functional
    restriction per observation; this profile carries them all, plus the
    natural aggregates the program-atlas rows report:

    - ``gamma`` — lcm of the per-observation γ's: the period after which
      *any* repeated fixed observation provably cycles the machine;
    - ``circuits`` — total circuit count across observations;
    - ``max_tail`` — the longest burn-in before any orbit under any
      single observation reaches its circuit.
    """

    alphabet: tuple[tuple[int, int], ...]
    per_observation: tuple[FunctionalDigraph, ...]

    @property
    def gamma(self) -> int:
        return lcm_of([d.gamma for d in self.per_observation])

    @property
    def circuits(self) -> int:
        return sum(len(d.circuits) for d in self.per_observation)

    @property
    def max_tail(self) -> int:
        return max(d.max_tail() for d in self.per_observation)

    def observation(self, in_port: int, degree: int) -> FunctionalDigraph:
        """The functional decomposition for one observation."""
        return self.per_observation[self.alphabet.index((in_port, degree))]


def circuit_profile(automaton, alphabet=None) -> CircuitProfile:
    """Per-observation functional decomposition of an automaton.

    ``automaton`` is anything with ``num_states`` and
    ``transition(state, in_port, degree)``; ``alphabet`` defaults to the
    automaton's own (a lowered automaton knows its lowering alphabet).
    This is the seam that feeds minimized lowered machines into the §4.2
    circuit machinery: on a line automaton with alphabet
    ``[(0, 1), (0, 2)]``, ``profile.observation(0, 2)`` is exactly the
    π'-digraph the Theorem 4.2 construction consumes.
    """
    if alphabet is None:
        declared = getattr(automaton, "alphabet", None)
        if declared is None:
            raise ValueError(
                "automaton carries no observation alphabet; pass one explicitly"
            )
        alphabet = sorted(declared)
    alphabet = tuple((int(ip), int(d)) for ip, d in alphabet)
    per = tuple(
        analyze_functional(
            [automaton.transition(s, ip, d) for s in range(automaton.num_states)]
        )
        for ip, d in alphabet
    )
    return CircuitProfile(alphabet=alphabet, per_observation=per)
