"""Command-line interface: ``python -m repro <command>``.

Commands
--------
solve        run the Theorem 4.1 agent on a generated tree
baseline     run the arbitrary-delay baseline under a chosen delay
delays       decide every delay θ ≤ Θ in one batch-solver pass
atlas        feasibility classification over all trees of a given size
gap          print the headline exponential-gap table (E7)
thm31        build + certify the Theorem 3.1 adversary for a walker family
thm42        build + certify the Theorem 4.2 adversary
thm43        build + certify the Theorem 4.3 adversary
verify       exhaustive Theorem 4.1 / Fact 1.1 verification
gather       gather k identical agents (the extension of §1.3)
viz          render a tree as ASCII art or Graphviz DOT
report       regenerate the experiment report as markdown
experiments  run every experiment table (E1-E8) and print them
"""

from __future__ import annotations

import argparse
import random
import sys
from collections.abc import Sequence
from typing import Optional

from .trees import (
    Tree,
    binomial_tree,
    complete_binary_tree,
    line,
    random_relabel,
    random_tree,
    spider,
    star,
    subdivide,
)

__all__ = ["main", "build_tree"]


def build_tree(spec: str, seed: int = 0) -> Tree:
    """Parse a tree spec: ``line:9``, ``colored:9`` (2-edge-colored line),
    ``star:5``, ``binary:3``, ``binomial:4``, ``spider:2,3,4``,
    ``random:20``, ``subdivided:3`` (binary(2) base)."""
    kind, _, arg = spec.partition(":")
    rng = random.Random(seed)
    if kind == "line":
        return line(int(arg))
    if kind == "colored":
        from .trees import edge_colored_line

        return edge_colored_line(int(arg))
    if kind == "star":
        return star(int(arg))
    if kind == "binary":
        return complete_binary_tree(int(arg))
    if kind == "binomial":
        return binomial_tree(int(arg))
    if kind == "spider":
        return spider([int(x) for x in arg.split(",")])
    if kind == "random":
        return random_tree(int(arg), rng)
    if kind == "subdivided":
        return subdivide(complete_binary_tree(2), int(arg))
    raise SystemExit(f"unknown tree spec {spec!r}")


def _cmd_solve(args: argparse.Namespace) -> int:
    from .analysis import classify_pair
    from .core import solve

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    pc = classify_pair(tree, args.u, args.v)
    print(f"{tree}; pair ({args.u}, {args.v}): {pc.kind}")
    if not pc.feasible:
        print("infeasible (perfectly symmetrizable): no identical agents can meet")
        return 1
    result = solve(tree, args.u, args.v, max_outer=args.max_outer)
    print(
        f"met={result.met} round={result.outcome.meeting_round} "
        f"node={result.outcome.meeting_node}"
    )
    return 0 if result.met else 2


def _cmd_baseline(args: argparse.Namespace) -> int:
    from .core import solve_with_delay

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    result = solve_with_delay(tree, args.u, args.v, args.delay, delayed=args.delayed)
    print(
        f"{tree}; delay={args.delay} on agent {args.delayed}: "
        f"met={result.met} round={result.outcome.meeting_round}"
    )
    return 0 if result.met else 2


def _build_cli_automaton(spec: str, seed: int):
    """Parse an automaton spec: ``alternator``, ``counting:3``,
    ``pausing:2``, ``random:4`` (random line automaton)."""
    from .agents import alternator, counting_walker, pausing_walker
    from .agents.automaton import random_line_automaton

    kind, _, arg = spec.partition(":")
    if kind == "alternator":
        return alternator()
    if kind == "counting":
        return counting_walker(int(arg))
    if kind == "pausing":
        return pausing_walker(int(arg))
    if kind == "random":
        return random_line_automaton(int(arg), random.Random(seed))
    raise SystemExit(f"unknown agent spec {spec!r}")


def _cmd_delays(args: argparse.Namespace) -> int:
    from .sim import solve_all_delays

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    agent = _build_cli_automaton(args.agent, args.seed)
    verdicts = solve_all_delays(
        tree, agent, args.u, args.v, max_delay=args.max_delay
    )
    met = sum(dv.met for dv in verdicts)
    print(
        f"{tree}; agent {args.agent}; pair ({args.u}, {args.v}); "
        f"θ = 0..{args.max_delay} ({len(verdicts)} adversary choices, "
        f"{met} met / {len(verdicts) - met} certified-never)"
    )
    print(f"{'delay':>7} {'delayed':>8} {'verdict':>16} {'round':>7}")
    for dv in verdicts:
        verdict = "met" if dv.met else "certified-never"
        rnd = dv.meeting_round if dv.met else "-"
        print(f"{dv.delay:>7} {dv.delayed:>8} {verdict:>16} {rnd:>7}")
    return 0 if met == len(verdicts) else 2


def _cmd_atlas(args: argparse.Namespace) -> int:
    from .analysis import summarize_tree
    from .trees import all_trees

    print(f"{'tree#':>6} {'leaves':>6} {'center':>7} {'infeas':>7} "
          f"{'sym-feas':>9} {'asym':>6}")
    for idx, t in enumerate(all_trees(args.n)):
        s = summarize_tree(t)
        print(
            f"{idx:>6} {s.leaves:>6} {s.center_kind:>7} "
            f"{s.pairs_perfectly_symmetrizable:>7} "
            f"{s.pairs_symmetric_feasible:>9} {s.pairs_asymmetric:>6}"
        )
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from .analysis import format_gap_table, gap_table

    subdivisions = tuple(int(x) for x in args.subdivisions.split(","))
    print(format_gap_table(gap_table(subdivisions=subdivisions)))
    return 0


def _cmd_thm31(args: argparse.Namespace) -> int:
    from .agents import counting_walker
    from .lowerbounds import build_thm31_instance

    print(f"{'bits':>5} {'edges':>6} {'kind':>9} {'delay':>6} {'certified':>10}")
    for k in range(1, args.max_k + 1):
        agent = counting_walker(k)
        inst = build_thm31_instance(agent)
        print(
            f"{agent.memory_bits:>5} {inst.line_edges:>6} {inst.kind:>9} "
            f"{inst.delay:>6} {str(inst.certified):>10}"
        )
    return 0


def _cmd_thm42(args: argparse.Namespace) -> int:
    from .agents import alternator, pausing_walker
    from .lowerbounds import build_thm42_instance

    agents = [("alternator", alternator())] + [
        (f"pausing({p})", pausing_walker(p)) for p in range(1, args.max_pause + 1)
    ]
    print(f"{'agent':>12} {'bits':>5} {'gamma':>6} {'edges':>6} {'certified':>10}")
    for name, agent in agents:
        inst = build_thm42_instance(agent)
        print(
            f"{name:>12} {agent.memory_bits:>5} {inst.gamma:>6} "
            f"{inst.line_edges:>6} {str(inst.certified):>10}"
        )
    return 0


def _cmd_thm43(args: argparse.Namespace) -> int:
    from .agents import random_tree_automaton
    from .errors import ConstructionError
    from .lowerbounds import build_thm43_instance

    rng = random.Random(args.seed)
    agent = random_tree_automaton(args.states, rng=rng)
    try:
        inst = build_thm43_instance(agent, args.i)
    except ConstructionError as exc:
        print(f"no defeating instance: {exc}")
        return 1
    print(
        f"agent: {agent.num_states} states; ℓ = {inst.ell}; "
        f"two-sided tree n = {inst.tree.n}; certified = {inst.certified}"
    )
    print(f"side 1 choices: {inst.side1.choices}")
    print(f"side 2 choices: {inst.side2.choices}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .analysis import verify_fact_11_impossibility, verify_theorem_41

    print(f"Theorem 4.1 exhaustive check up to n = {args.n} ...")
    rep = verify_theorem_41(max_n=args.n, random_labelings=args.labelings)
    print(f"  trees: {rep.trees_checked}, instances: {rep.instances}, "
          f"failures: {len(rep.failures)}")
    if not rep.ok:
        return 1
    print("Fact 1.1 impossibility check (observational) ...")
    rep2 = verify_fact_11_impossibility(max_n=min(args.n, 6))
    print(f"  trees: {rep2.trees_checked}, instances: {rep2.instances}, "
          f"failures: {len(rep2.failures)}")
    return 0 if rep2.ok else 1


def _cmd_gather(args: argparse.Namespace) -> int:
    from .core import gather

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    starts = [int(x) for x in args.starts.split(",")]
    delays = [int(x) for x in args.delays.split(",")] if args.delays else None
    outcome, regime = gather(tree, starts, delays=delays)
    print(f"{tree}; regime: {regime.kind} (guaranteed: {regime.guaranteed})")
    print(f"gathered={outcome.gathered} round={outcome.gathering_round} "
          f"node={outcome.gathering_node}")
    return 0 if outcome.gathered else 2


def _cmd_viz(args: argparse.Namespace) -> int:
    from .trees import ascii_tree, to_dot

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    marks = {}
    if args.marks:
        for item in args.marks.split(","):
            node, _, label = item.partition("=")
            marks[int(node)] = label or "*"
    if args.dot:
        print(to_dot(tree, marks=marks))
    else:
        print(ascii_tree(tree, marks=marks))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import ReportScale, generate_report

    scale = ReportScale.full() if args.full else ReportScale.quick()
    text = generate_report(scale)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .analysis import (
        format_gap_table,
        gap_table,
        memory_vs_leaves,
        memory_vs_n_fixed_leaves,
        prime_rounds_vs_path_length,
        thm31_size_vs_bits,
    )

    print("# E1 Thm 3.1 (defeating size vs bits)")
    print(thm31_size_vs_bits((1, 2, 3, 4)).table("bits", "edges"))
    print("\n# E3a memory vs n (ℓ = 4)")
    print(memory_vs_n_fixed_leaves((0, 1, 3, 7))[0].table("n", "bits"))
    print("\n# E3b memory vs leaves")
    print(memory_vs_leaves((4, 8, 16), total_nodes=80)[0].table("leaves", "bits"))
    print("\n# E4 prime rounds")
    print(prime_rounds_vs_path_length((5, 9, 17, 33)).table("m", "rounds"))
    print("\n# E7 gap table")
    print(format_gap_table(gap_table(subdivisions=(0, 1, 3, 7))))
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Fraigniaud-Pelc (SPAA 2010): rendezvous in trees",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="run the Theorem 4.1 agent")
    p.add_argument("--tree", default="binary:3", help="tree spec, e.g. line:9")
    p.add_argument("-u", type=int, default=7)
    p.add_argument("-v", type=int, default=14)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true", help="random port labeling")
    p.add_argument("--max-outer", type=int, default=10, dest="max_outer")
    p.set_defaults(fn=_cmd_solve)

    p = sub.add_parser("baseline", help="run the arbitrary-delay baseline")
    p.add_argument("--tree", default="line:9")
    p.add_argument("-u", type=int, default=1)
    p.add_argument("-v", type=int, default=5)
    p.add_argument("--delay", type=int, default=7)
    p.add_argument("--delayed", type=int, default=2, choices=(1, 2))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true")
    p.set_defaults(fn=_cmd_baseline)

    p = sub.add_parser(
        "delays",
        help="decide every delay θ ≤ Θ at once (compiled batch solver)",
    )
    p.add_argument("--tree", default="line:9")
    p.add_argument("--agent", default="alternator",
                   help="alternator | counting:K | pausing:P | random:K")
    p.add_argument("-u", type=int, default=0)
    p.add_argument("-v", type=int, default=5)
    p.add_argument("--max-delay", type=int, default=16, dest="max_delay")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true")
    p.set_defaults(fn=_cmd_delays)

    p = sub.add_parser("atlas", help="feasibility atlas over all n-node trees")
    p.add_argument("-n", type=int, default=7)
    p.set_defaults(fn=_cmd_atlas)

    p = sub.add_parser("gap", help="the headline gap table")
    p.add_argument("--subdivisions", default="0,1,3,7")
    p.set_defaults(fn=_cmd_gap)

    p = sub.add_parser("thm31", help="Theorem 3.1 adversary sweep")
    p.add_argument("--max-k", type=int, default=4, dest="max_k")
    p.set_defaults(fn=_cmd_thm31)

    p = sub.add_parser("thm42", help="Theorem 4.2 adversary sweep")
    p.add_argument("--max-pause", type=int, default=3, dest="max_pause")
    p.set_defaults(fn=_cmd_thm42)

    p = sub.add_parser("thm43", help="Theorem 4.3 adversary")
    p.add_argument("--states", type=int, default=3)
    p.add_argument("-i", type=int, default=5, help="ℓ = 2i leaves")
    p.add_argument("--seed", type=int, default=41)
    p.set_defaults(fn=_cmd_thm43)

    p = sub.add_parser("verify", help="exhaustive Thm 4.1 / Fact 1.1 verification")
    p.add_argument("-n", type=int, default=6)
    p.add_argument("--labelings", type=int, default=1)
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser("gather", help="gather k identical agents")
    p.add_argument("--tree", default="spider:2,3,4")
    p.add_argument("--starts", default="1,4,8")
    p.add_argument("--delays", default="")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true")
    p.set_defaults(fn=_cmd_gather)

    p = sub.add_parser("viz", help="render a tree (ASCII, or DOT with --dot)")
    p.add_argument("--tree", default="binary:2")
    p.add_argument("--marks", default="", help="e.g. 3=agent1,6=agent2")
    p.add_argument("--dot", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true")
    p.set_defaults(fn=_cmd_viz)

    p = sub.add_parser("report", help="regenerate the experiment report (markdown)")
    p.add_argument("--full", action="store_true", help="EXPERIMENTS.md scale")
    p.add_argument("-o", "--output", default="", help="write to a file")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("experiments", help="run the main experiment tables")
    p.set_defaults(fn=_cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
