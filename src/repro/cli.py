"""Command-line interface: ``python -m repro <command>``.

Commands
--------
solve        run the Theorem 4.1 agent on a generated tree
baseline     run the arbitrary-delay baseline under a chosen delay
delays       decide every delay θ ≤ Θ in one batch-solver pass
atlas        feasibility classification over all trees of a given size;
             subcommands ``init|import|stats|export|vacuum`` manage the
             durable atlas database (SQLite, spec_hash-memoized)
atlas-programs  the program memory atlas (lowered → minimized → γ → gaps)
gap          print the headline exponential-gap table (E7)
thm31        build + certify the Theorem 3.1 adversary for a walker family
thm42        build + certify the Theorem 4.2 adversary
thm43        build + certify the Theorem 4.3 adversary
verify       exhaustive Theorem 4.1 / Fact 1.1 verification
gather       gather k identical agents (the extension of §1.3)
gather-sweep decide a k-agent gathering grid (joint-configuration solver)
lower        lower a register program to explicit automata / traced tables
viz          render a tree as ASCII art or Graphviz DOT
report       regenerate the experiment report as markdown
experiments  run every experiment table (E1-E8) and print them
scenarios    list / run / diff declarative scenarios (the registry)
telemetry    summarize a JSONL telemetry event stream offline

The experiment-shaped commands (``delays``, ``atlas``,
``atlas-programs``, ``gap``, ``thm31``, ``thm42``, ``thm43``,
``verify``, ``experiments``) are
aliases over the scenario registry (:mod:`repro.scenarios`): they build
or fetch a :class:`~repro.scenarios.spec.ScenarioSpec` and execute it
through the shared :class:`~repro.scenarios.runner.Runner`, so the CLI,
the benchmarks and programmatic callers all run the same code path.
"""

from __future__ import annotations

import argparse
import random
import sys
from collections.abc import Sequence
from typing import Optional

from .scenarios.spec import ScenarioError
from .scenarios.spec import build_tree as _build_tree
from .trees import Tree, random_relabel

__all__ = ["main", "build_tree"]


def build_tree(spec: str, seed: int = 0) -> Tree:
    """Parse a tree spec (see :func:`repro.scenarios.spec.build_tree`)."""
    try:
        return _build_tree(spec, seed)
    except ScenarioError as exc:
        raise SystemExit(str(exc))


def _runner(args: argparse.Namespace):
    from .scenarios import Runner

    return Runner(backend=getattr(args, "backend", None))


def _cmd_solve(args: argparse.Namespace) -> int:
    from .analysis import classify_pair
    from .core import solve

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    pc = classify_pair(tree, args.u, args.v)
    print(f"{tree}; pair ({args.u}, {args.v}): {pc.kind}")
    if not pc.feasible:
        print("infeasible (perfectly symmetrizable): no identical agents can meet")
        return 1
    result = solve(tree, args.u, args.v, max_outer=args.max_outer)
    print(
        f"met={result.met} round={result.outcome.meeting_round} "
        f"node={result.outcome.meeting_node}"
    )
    return 0 if result.met else 2


def _cmd_baseline(args: argparse.Namespace) -> int:
    from .core import solve_with_delay

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    result = solve_with_delay(tree, args.u, args.v, args.delay, delayed=args.delayed)
    print(
        f"{tree}; delay={args.delay} on agent {args.delayed}: "
        f"met={result.met} round={result.outcome.meeting_round}"
    )
    return 0 if result.met else 2


def _fault_params(specs) -> dict:
    """``--fault`` occurrences -> a ``faults`` param (JSON form), or {}."""
    if not specs:
        return {}
    from .sim.faults import FaultPlan

    plan = FaultPlan.parse_many(specs)
    return {"faults": plan.to_json()} if plan else {}


def _cmd_delays(args: argparse.Namespace) -> int:
    from .scenarios import DelayPolicy, ScenarioSpec

    spec = ScenarioSpec(
        name="delays-cli",
        kind="delay_sweep",
        tree=args.tree,
        agent=args.agent,
        pairs=((args.u, args.v),),
        delays=DelayPolicy.sweep(args.max_delay),
        seed=args.seed,
        params={"relabel": args.relabel, **_fault_params(args.fault)},
    )
    result = _runner(args).run(spec)
    met = result.summary["met"]
    tree = build_tree(args.tree, args.seed)
    print(
        f"{tree}; agent {args.agent}; pair ({args.u}, {args.v}); "
        f"θ = 0..{args.max_delay} ({len(result.rows)} adversary choices, "
        f"{met} met / {len(result.rows) - met} certified-never)"
    )
    print(f"{'delay':>7} {'delayed':>8} {'verdict':>16} {'round':>7}")
    for row in result.rows:
        rnd = row["round"] if row["round"] is not None else "-"
        print(f"{row['delay']:>7} {row['delayed']:>8} {row['verdict']:>16} {rnd:>7}")
    return 0 if result.summary["all_met"] else 2


def _cmd_atlas(args: argparse.Namespace) -> int:
    result = _runner(args).run("atlas", params={"n": args.n})
    print(result.table())
    return 0


def _cmd_atlas_db(args: argparse.Namespace) -> int:
    """The durable atlas database: ``repro atlas init|import|stats|
    export|vacuum``.  One SQLite file (WAL, versioned schema) keyed by
    ``spec_hash`` — the memoization substrate behind
    ``scenarios run --atlas``."""
    from .scenarios.atlas import AtlasStore, import_paths

    with AtlasStore(args.db) as store:
        if args.atlas_cmd == "init":
            # Opening is initializing (and migrating, when handed an
            # older schema) — print where it landed.
            print(f"atlas {store.path}: schema v{store.schema_version}, "
                  f"{len(store.names())} results")
            return 0

        if args.atlas_cmd == "import":
            names = import_paths(store, args.paths)
            for name in names:
                print(f"imported {name}")
            print(f"atlas {store.path}: {len(names)} results imported")
            return 0

        if args.atlas_cmd == "stats":
            stats = store.stats()
            for key in ("path", "schema_version", "results",
                        "distinct_spec_hashes", "db_bytes"):
                print(f"{key:>22}: {stats[key]}")
            for group in ("by_kind", "by_backend"):
                for key, n in stats[group].items():
                    print(f"{group + '/' + key:>22}: {n}")
            return 0

        if args.atlas_cmd == "export":
            names = store.names() if args.all else args.names
            if not names:
                raise SystemExit(
                    "error: atlas export needs result NAMEs or --all"
                )
            for name in names:
                print(f"wrote {store.export(name, args.out)}")
            return 0

        if args.atlas_cmd == "vacuum":
            before = store.stats()["db_bytes"]
            store.vacuum()
            print(f"atlas {store.path}: vacuumed "
                  f"({before} -> {store.stats()['db_bytes']} bytes, "
                  f"integrity ok)")
            return 0

    raise SystemExit(f"unknown atlas subcommand {args.atlas_cmd!r}")


def _cmd_atlas_programs(args: argparse.Namespace) -> int:
    """The program memory atlas: one row per (library register program,
    tree) — raw lowered states → minimized states → memory bits →
    circuit structure → gap against the lower-bound floors."""
    result = _runner(args).run("atlas-programs")
    print(result.table())
    s = result.summary
    print(
        f"\n{s['cells']} cells over {s['programs']} programs "
        f"(routes {'/'.join(s['routes'])}): {s['shrunk']} minimized strictly, "
        f"{s['states_dropped']} states dropped"
    )
    return 0 if result.ok else 1


def _cmd_gap(args: argparse.Namespace) -> int:
    subdivisions = [int(x) for x in args.subdivisions.split(",")]
    result = _runner(args).run("gap-table", params={"subdivisions": subdivisions})
    print(result.table())
    return 0 if result.ok else 1


def _cmd_thm31(args: argparse.Namespace) -> int:
    result = _runner(args).run(
        "thm31-sweep", params={"ks": list(range(1, args.max_k + 1))}
    )
    print(result.table())
    return 0 if result.ok else 1


def _cmd_thm42(args: argparse.Namespace) -> int:
    result = _runner(args).run(
        "thm42-sweep", params={"max_pause": args.max_pause}
    )
    print(result.table())
    return 0 if result.ok else 1


def _cmd_thm43(args: argparse.Namespace) -> int:
    result = _runner(args).run(
        "thm43",
        seed=args.seed,
        params={"states": args.states, "i_leaves": [args.i]},
    )
    (row,) = result.rows
    if row.get("error"):
        print(f"no defeating instance: {row['error']}")
        return 1
    print(
        f"agent: {row['states']} states; ℓ = {row['ell']}; "
        f"two-sided tree n = {row['n']}; certified = {row['certified']}"
    )
    print(f"side 1 choices: {row['side1']}")
    print(f"side 2 choices: {row['side2']}")
    return 0 if result.ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    print(f"Theorem 4.1 exhaustive check up to n = {args.n} ...")
    result = _runner(args).run(
        "verify-small", params={"max_n": args.n, "labelings": args.labelings}
    )
    for row in result.rows:
        if row["check"] == "fact11":
            print("Fact 1.1 impossibility check (observational) ...")
        print(f"  trees: {row['trees']}, instances: {row['instances']}, "
              f"failures: {row['failures']}")
        if row["check"] == "thm41" and row["failures"]:
            return 1
    return 0 if result.ok else 1


def _cmd_gather_sweep(args: argparse.Namespace) -> int:
    from .scenarios import ScenarioSpec

    start_sets = [
        [int(x) for x in chunk.split(",")] for chunk in args.starts.split(";")
    ]
    delay_vectors = [
        [int(x) for x in chunk.split(",")] for chunk in args.delays.split(";")
    ]
    spec = ScenarioSpec(
        name="gather-sweep-cli",
        kind="gathering_sweep",
        tree=args.tree,
        agent=args.agent,
        seed=args.seed,
        params={
            "start_sets": start_sets, "delay_vectors": delay_vectors,
            **_fault_params(args.fault),
        },
    )
    result = _runner(args).run(spec)
    print(result.table())
    s = result.summary
    print(
        f"\n{s['choices']} adversary choices: {s['met']} met / "
        f"{s['certified_never']} certified-never / {s['undecided']} undecided"
    )
    # 0/1 like `scenarios run`: not-ok means a choice was left undecided
    # (argparse reserves 2 for usage errors)
    return 0 if result.ok else 1


def _cmd_gather(args: argparse.Namespace) -> int:
    from .core import gather

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    starts = [int(x) for x in args.starts.split(",")]
    delays = [int(x) for x in args.delays.split(",")] if args.delays else None
    outcome, regime = gather(tree, starts, delays=delays)
    print(f"{tree}; regime: {regime.kind} (guaranteed: {regime.guaranteed})")
    print(f"gathered={outcome.gathered} round={outcome.gathering_round} "
          f"node={outcome.gathering_node}")
    return 0 if outcome.gathered else 2


def _cmd_lower(args: argparse.Namespace) -> int:
    """Lower an agent onto the compiled backend's representations.

    Route A (tree-independent): enumerate reachable machine states into
    an explicit automaton.  Route B (per tree, per start): trace the
    solo run from every start node into a lassoed action table.  Both
    print state counts and memory bits; failures print the reason and
    degrade — never a crash.
    """
    import math

    from .agents.lowering import lower_to_automaton
    from .errors import BudgetExceededError, LoweringError
    from .scenarios.spec import build_agent
    from .sim.compiled import supports_compilation
    from .sim.traced import ensure_lasso, solo_trace

    try:
        agent = build_agent(args.agent, args.seed)
    except (ScenarioError, ValueError) as exc:
        # ValueError: malformed numeric argument, e.g. "counting" sans :K
        raise SystemExit(f"error: bad agent spec {args.agent!r}: {exc}")
    tree = build_tree(args.tree, args.seed)
    support = supports_compilation(agent)
    print(f"agent {args.agent!r} on {tree}: {support or 'reference-only'}")

    if support == "native":
        print(
            f"already an explicit automaton: K={agent.num_states} states, "
            f"{agent.memory_bits} bits"
        )
        return 0
    if support != "lowerable":
        print("not lowerable: arbitrary duck-typed agents ride the reference engine")
        return 1

    # Route A: explicit automaton over the tree's degree alphabet.
    try:
        automaton = lower_to_automaton(
            agent, tree.degrees(), state_budget=args.state_budget
        )
        print(
            f"route A (explicit automaton): K={automaton.num_states} states, "
            f"{automaton.memory_bits} bits over degrees "
            f"{sorted(set(tree.degrees()))}"
        )
    # repro-lint: disable=RPR002 -- CLI diagnostics: `repro lower` exists to report expressibility, so the refusal IS the output (printed verbatim), not a swallowed degrade decision
    except (LoweringError, BudgetExceededError) as exc:
        print(f"route A (explicit automaton): not expressible — {exc}")

    # Route B: per-(tree, start) traced tables.
    print(f"route B (solo-run traces, budget {args.trace_budget} rounds):")
    total_states = 0
    lassoed = 0
    for start in range(tree.n):
        trace = solo_trace(tree, agent, start)
        try:
            ensure_lasso(trace, args.trace_budget)
        # repro-lint: disable=RPR002 -- CLI diagnostics: per-start lasso budget refusal is printed verbatim as the command's answer
        except BudgetExceededError:
            print(f"  start {start:>3}: no lasso within budget (degrades to "
                  f"the reference engine)")
            continue
        lassoed += 1
        states = trace.rounds_recorded
        total_states += states
        bits = max(1, math.ceil(math.log2(max(states, 2))))
        if trace.status == "finished":
            shape = f"finishes after {states} rounds"
        else:
            shape = (
                f"prefix {trace.cycle_start} + cycle {trace.cycle_len}"
            )
        print(f"  start {start:>3}: {states:>6} states, {bits:>2} bits ({shape})")
    print(
        f"lowered {lassoed}/{tree.n} starts; total table states: {total_states}"
    )
    return 0


def _cmd_viz(args: argparse.Namespace) -> int:
    from .trees import ascii_tree, to_dot

    tree = build_tree(args.tree, args.seed)
    if args.relabel:
        tree = random_relabel(tree, random.Random(args.seed))
    marks = {}
    if args.marks:
        for item in args.marks.split(","):
            node, _, label = item.partition("=")
            marks[int(node)] = label or "*"
    if args.dot:
        print(to_dot(tree, marks=marks))
    else:
        print(ascii_tree(tree, marks=marks))
    return 0


def _cmd_lint_invariants(args: argparse.Namespace) -> int:
    from .lint.cli import main as lint_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.list_rules:
        argv += ["--list-rules"]
    return lint_main(argv)


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis import ReportScale, generate_report

    scale = ReportScale.full() if args.full else ReportScale.quick()
    text = generate_report(scale)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    """Run the main experiment tables — registry scenarios end to end."""
    quick = args.quick
    plan = [
        ("E1 Thm 3.1 (defeating size vs bits)", "thm31-sweep",
         {"ks": [1, 2] if quick else [1, 2, 3, 4]}),
        ("E3a memory vs n (ℓ = 4)", "memory-vs-n",
         {"subdivisions": [0, 1] if quick else [0, 1, 3, 7]}),
        ("E3b memory vs leaves", "memory-vs-leaves",
         {"leaf_counts": [4, 8] if quick else [4, 8, 16],
          "total_nodes": 40 if quick else 80}),
        ("E4 prime rounds", "prime-rounds",
         {"lengths": [5, 9, 17] if quick else [5, 9, 17, 33]}),
        ("E7 gap table", "gap-table",
         {"subdivisions": [0, 1] if quick else [0, 1, 3, 7]}),
    ]
    runner = _runner(args)
    all_ok = True
    for idx, (title, name, params) in enumerate(plan):
        result = runner.run(name, params=params)
        all_ok &= result.ok
        prefix = "" if idx == 0 else "\n"
        print(f"{prefix}# {title}")
        print(result.table())
    return 0 if all_ok else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import (
        ResultStore,
        Runner,
        get_scenario,
        scenario_names,
    )

    if args.scenarios_cmd == "list":
        from .scenarios.executors import spec_eligibility

        names = scenario_names()
        width = max(len(n) for n in names)
        kind_w = max(len(get_scenario(n).kind) for n in names)
        # backend eligibility: native (automata, compiled directly),
        # lowerable (register programs, compiled via lowering),
        # agnostic (the kind never consults a backend)
        elig = {name: spec_eligibility(get_scenario(name)) for name in names}
        elig_w = max(len(e) for e in elig.values())
        for name in names:
            spec = get_scenario(name)
            print(
                f"{name:<{width}}  {spec.kind:<{kind_w}}  "
                f"{elig[name]:<{elig_w}}  {spec.description}"
            )
        return 0

    if args.scenarios_cmd == "run":
        import json as _json

        params = {}
        for item in args.set or []:
            key, eq, value = item.partition("=")
            if not eq or not key:
                raise SystemExit(f"--set expects KEY=VALUE, got {item!r}")
            try:
                params[key] = _json.loads(value)
            except ValueError:
                params[key] = value
        telem = None
        sink = None
        if args.telemetry is not None:
            from .telemetry import JsonlSink, Telemetry

            if args.telemetry is not True:
                sink = JsonlSink(args.telemetry)
            telem = Telemetry(sink=sink)
        atlas_store = None
        if args.atlas is not None:
            from .scenarios.atlas import DEFAULT_ATLAS_PATH, AtlasStore

            atlas_store = AtlasStore(
                DEFAULT_ATLAS_PATH if args.atlas is True else args.atlas
            )
        runner = Runner(
            backend=args.backend, processes=args.processes, atlas=atlas_store
        )
        result = runner.run(
            args.name, seed=args.seed, params=params or None, telemetry=telem
        )
        print(result.table())
        atlas_note = ""
        if atlas_store is not None:
            atlas_note = (
                f" atlas={'hit' if result.cached_payload is not None else 'miss'}"
            )
        print(
            f"\nscenario={result.name} kind={result.spec.kind} "
            f"backend={result.backend} rows={len(result.rows)} "
            f"ok={result.ok} elapsed={result.elapsed_seconds:.3f}s "
            f"spec_hash={result.spec_hash()}{atlas_note}"
        )
        if telem is not None:
            from .scenarios.runner import format_rows
            from .telemetry import summary_rows

            if sink is not None:
                sink.close()
                print(f"telemetry events: {args.telemetry}")
            # The *live* snapshot, not the payload block: an atlas hit
            # returns the stored payload verbatim (whose telemetry, if
            # any, describes the original run), while this table must
            # describe what just happened — the atlas.hit event and the
            # absence of any backend dispatch.
            print("\n# telemetry")
            print(format_rows(summary_rows(telem.snapshot())))
        if atlas_store is not None:
            atlas_store.close()
        if args.save:
            path = ResultStore(args.out).save(result)
            print(f"wrote {path}")
        return 0 if result.ok else 1

    if args.scenarios_cmd == "diff":
        store = ResultStore(args.out)
        diffs = store.diff(args.a, args.b)
        if not diffs:
            print("results are equivalent (same spec, same outcome table)")
            return 0
        for line in diffs:
            print(line)
        return 1

    raise SystemExit(f"unknown scenarios subcommand {args.scenarios_cmd!r}")


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """Aggregate a JSONL telemetry event stream offline (``--telemetry=PATH``
    output from ``scenarios run``) into the same summary table the live
    run prints.  Torn tails are skipped, not fatal — the stream may come
    from an interrupted run."""
    from .scenarios.runner import format_rows
    from .telemetry import aggregate_events, read_events, summary_rows

    if args.telemetry_cmd == "report":
        records, skipped = read_events(args.path)
        if not records and skipped == 0:
            print(f"no telemetry events in {args.path}")
            return 1
        snapshot = aggregate_events(records)
        print(format_rows(summary_rows(snapshot)))
        print(f"\n{len(records)} events from {args.path}"
              + (f" ({skipped} unparseable lines skipped)" if skipped else ""))
        return 0

    raise SystemExit(f"unknown telemetry subcommand {args.telemetry_cmd!r}")


def _add_backend_option(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend",
        choices=("auto", "reference", "compiled", "batched"),
        default=None,
        help="simulation backend (default: the scenario's own hint)",
    )


def _add_fault_option(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SPEC",
        help="inject a fault (repeatable): crash:AGENT@ROUND, "
             "pause:AGENT@ROUND:DURATION, relabel@ROUND:SEED "
             "(agents are 0-based)",
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Fraigniaud-Pelc (SPAA 2010): rendezvous in trees",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="run the Theorem 4.1 agent")
    p.add_argument("--tree", default="binary:3", help="tree spec, e.g. line:9")
    p.add_argument("-u", type=int, default=7)
    p.add_argument("-v", type=int, default=14)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true", help="random port labeling")
    p.add_argument("--max-outer", type=int, default=10, dest="max_outer")
    p.set_defaults(fn=_cmd_solve)

    p = sub.add_parser("baseline", help="run the arbitrary-delay baseline")
    p.add_argument("--tree", default="line:9")
    p.add_argument("-u", type=int, default=1)
    p.add_argument("-v", type=int, default=5)
    p.add_argument("--delay", type=int, default=7)
    p.add_argument("--delayed", type=int, default=2, choices=(1, 2))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true")
    p.set_defaults(fn=_cmd_baseline)

    p = sub.add_parser(
        "delays",
        help="decide every delay θ ≤ Θ at once (compiled batch solver)",
    )
    p.add_argument("--tree", default="line:9")
    p.add_argument("--agent", default="alternator",
                   help="alternator | counting:K | pausing:P | random:K")
    p.add_argument("-u", type=int, default=0)
    p.add_argument("-v", type=int, default=5)
    p.add_argument("--max-delay", type=int, default=16, dest="max_delay")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true")
    _add_fault_option(p)
    _add_backend_option(p)
    p.set_defaults(fn=_cmd_delays)

    # atlas/experiments wrap backend-agnostic analysis drivers; they take
    # no --backend since the flag would be a no-op.  The bare command
    # keeps its historical meaning (the feasibility table); the durable
    # atlas *database* lives behind the subcommands.
    p = sub.add_parser(
        "atlas",
        help="feasibility atlas over all n-node trees; with a subcommand, "
             "manage the durable atlas database",
    )
    p.add_argument("-n", type=int, default=7)
    p.set_defaults(fn=_cmd_atlas)
    asub = p.add_subparsers(dest="atlas_cmd", required=False)

    def _atlas_db_parser(name: str, help_: str):
        ap = asub.add_parser(name, help=help_)
        ap.add_argument("--db", default="benchmarks/atlas.sqlite",
                        help="atlas database path")
        ap.set_defaults(fn=_cmd_atlas_db)
        return ap

    _atlas_db_parser("init", "create (or migrate) the atlas database")
    ap = _atlas_db_parser("import", "bulk-import loose result JSON")
    ap.add_argument("paths", nargs="+",
                    help="result JSON files and/or directories "
                         "(directories are walked recursively)")
    _atlas_db_parser("stats", "row counts, schema version, file size")
    ap = _atlas_db_parser("export", "write rows back to loose JSON "
                                    "(byte-identical)")
    ap.add_argument("names", nargs="*", help="result names to export")
    ap.add_argument("--all", action="store_true", help="export every row")
    ap.add_argument("--out", default="benchmarks/results",
                    help="destination directory")
    _atlas_db_parser("vacuum", "checkpoint the WAL, compact, verify integrity")

    p = sub.add_parser(
        "atlas-programs",
        help="program memory atlas: minimized lowered automata + bound gaps",
    )
    _add_backend_option(p)
    p.set_defaults(fn=_cmd_atlas_programs)

    p = sub.add_parser("gap", help="the headline gap table")
    p.add_argument("--subdivisions", default="0,1,3,7")
    _add_backend_option(p)
    p.set_defaults(fn=_cmd_gap)

    p = sub.add_parser("thm31", help="Theorem 3.1 adversary sweep")
    p.add_argument("--max-k", type=int, default=4, dest="max_k")
    _add_backend_option(p)
    p.set_defaults(fn=_cmd_thm31)

    p = sub.add_parser("thm42", help="Theorem 4.2 adversary sweep")
    p.add_argument("--max-pause", type=int, default=3, dest="max_pause")
    _add_backend_option(p)
    p.set_defaults(fn=_cmd_thm42)

    p = sub.add_parser("thm43", help="Theorem 4.3 adversary")
    p.add_argument("--states", type=int, default=3)
    p.add_argument("-i", type=int, default=5, help="ℓ = 2i leaves")
    p.add_argument("--seed", type=int, default=41)
    _add_backend_option(p)
    p.set_defaults(fn=_cmd_thm43)

    p = sub.add_parser("verify", help="exhaustive Thm 4.1 / Fact 1.1 verification")
    p.add_argument("-n", type=int, default=6)
    p.add_argument("--labelings", type=int, default=1)
    _add_backend_option(p)
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "lower",
        help="lower a register program to explicit automata / traced tables",
    )
    p.add_argument("agent", help="agent spec, e.g. baseline | thm41:2 | counting:2")
    p.add_argument("--tree", default="star:4", help="tree spec, e.g. line:9")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--state-budget", type=int, default=2048, dest="state_budget",
                   help="route-A reachable-state budget")
    p.add_argument("--trace-budget", type=int, default=100_000, dest="trace_budget",
                   help="route-B per-start lasso budget (rounds)")
    p.set_defaults(fn=_cmd_lower)

    p = sub.add_parser(
        "gather-sweep",
        help="decide a k-agent gathering grid (joint-configuration solver)",
    )
    p.add_argument("--tree", default="line:9")
    p.add_argument("--agent", default="counting:2",
                   help="alternator | counting:K | pausing:P | tree-random:K")
    p.add_argument("--starts", default="0,1,3;0,2,4",
                   help="';'-separated start sets, e.g. 0,1,3;0,2,4")
    _add_fault_option(p)
    p.add_argument("--delays", default="0,0,0;0,1,2",
                   help="';'-separated per-agent delay vectors")
    p.add_argument("--seed", type=int, default=0)
    _add_backend_option(p)
    p.set_defaults(fn=_cmd_gather_sweep)

    p = sub.add_parser("gather", help="gather k identical agents")
    p.add_argument("--tree", default="spider:2,3,4")
    p.add_argument("--starts", default="1,4,8")
    p.add_argument("--delays", default="")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true")
    p.set_defaults(fn=_cmd_gather)

    p = sub.add_parser("viz", help="render a tree (ASCII, or DOT with --dot)")
    p.add_argument("--tree", default="binary:2")
    p.add_argument("--marks", default="", help="e.g. 3=agent1,6=agent2")
    p.add_argument("--dot", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--relabel", action="store_true")
    p.set_defaults(fn=_cmd_viz)

    p = sub.add_parser(
        "lint-invariants",
        help="certify the engine's cross-layer code contracts (RPR001-RPR006)",
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--list-rules", action="store_true")
    p.set_defaults(fn=_cmd_lint_invariants)

    p = sub.add_parser("report", help="regenerate the experiment report (markdown)")
    p.add_argument("--full", action="store_true", help="EXPERIMENTS.md scale")
    p.add_argument("-o", "--output", default="", help="write to a file")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("experiments", help="run the main experiment tables")
    p.add_argument("--quick", action="store_true", help="small grids (smoke)")
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser("scenarios", help="the declarative scenario registry")
    ssub = p.add_subparsers(dest="scenarios_cmd", required=True)

    sp = ssub.add_parser("list", help="list registered scenarios")
    sp.set_defaults(fn=_cmd_scenarios)

    sp = ssub.add_parser("run", help="run a registered scenario")
    sp.add_argument("name")
    sp.add_argument("--seed", type=int, default=None)
    sp.add_argument("--set", action="append", metavar="KEY=VALUE",
                    help="override a spec param (JSON value)")
    sp.add_argument("--save", action="store_true",
                    help="persist the JSON result to the result store")
    sp.add_argument("--out", default="benchmarks/results",
                    help="result store directory (with --save / diff)")
    sp.add_argument("--processes", type=int, default=None,
                    help="process pool size for the batched backend")
    sp.add_argument("--telemetry", nargs="?", const=True, default=None,
                    metavar="PATH",
                    help="collect telemetry and print a summary table; "
                         "with PATH, also stream events to a JSONL file")
    sp.add_argument("--atlas", nargs="?", const=True, default=None,
                    metavar="PATH",
                    help="memoize through the durable atlas database "
                         "(default benchmarks/atlas.sqlite): return the "
                         "stored result on a spec_hash hit, record the "
                         "result on a miss")
    _add_backend_option(sp)
    sp.set_defaults(fn=_cmd_scenarios)

    sp = ssub.add_parser("diff", help="diff two stored results")
    sp.add_argument("a", help="result name or JSON path")
    sp.add_argument("b", help="result name or JSON path")
    sp.add_argument("--out", default="benchmarks/results")
    sp.set_defaults(fn=_cmd_scenarios)

    p = sub.add_parser("telemetry", help="inspect telemetry event streams")
    tsub = p.add_subparsers(dest="telemetry_cmd", required=True)

    tp = tsub.add_parser("report", help="summarize a JSONL event stream")
    tp.add_argument("path", help="JSONL file from scenarios run --telemetry=PATH")
    tp.set_defaults(fn=_cmd_telemetry)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        return args.fn(args)
    except ScenarioError as exc:
        # scenario-layer misuse (unknown spec/scenario/backend) is user
        # error: one clean line, not a traceback
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
