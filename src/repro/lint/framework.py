"""Core machinery: findings, suppression comments, file loading, the
analyzer driver.

Design notes
------------
- **Stable codes.**  Every rule owns one ``RPR0xx`` code; reporters and
  suppression comments speak codes, never class names, so renaming a
  rule class cannot silently orphan a suppression.
- **Suppressions are audited.**  ``# repro-lint: disable=RPR0xx -- why``
  requires the reason; a reasonless or unknown-code suppression is
  reported as RPR000 instead of being honored.  A suppression that sits
  alone on a line applies to the next source line (for statements too
  long to share a line with their justification).
- **Two rule shapes.**  :class:`FileRule` is an ``ast.NodeVisitor`` run
  per file; :class:`ProjectRule` sees every file at once (the
  fault-threading call-graph rule needs whole-package visibility).
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

__all__ = [
    "LintError",
    "Finding",
    "Suppression",
    "SourceFile",
    "FileRule",
    "ProjectRule",
    "Analyzer",
]

#: The one code the framework itself owns: malformed suppression
#: comments and unparseable files.
FRAMEWORK_CODE = "RPR000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9,\s]*?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)
_CODE_RE = re.compile(r"^RPR\d{3}$")


class LintError(Exception):
    """Analyzer misuse (bad path, no files) — exit code 2, not a finding."""


@dataclass(frozen=True, slots=True)
class Finding:
    """One contract violation at one source location."""

    code: str
    rule: str
    message: str
    path: str
    line: int
    col: int

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True, slots=True)
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment."""

    line: int
    codes: frozenset[str]
    reason: str
    standalone: bool  # comment is the whole line -> also covers line + 1


@dataclass
class SourceFile:
    """One parsed module plus everything the rules need to know about it."""

    path: Path
    display: str  # path as reported (posix, as given on the CLI)
    module: str  # dotted module name, best-effort (see Analyzer._module_name)
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    def matches(self, suffix: str) -> bool:
        """Path predicate used by rule allowlists.

        ``suffix`` ending in ``/`` means "anywhere under a directory of
        that name" (e.g. ``benchmarks/``); otherwise it is a file path
        suffix match on whole segments (``sim/kernel.py`` matches
        ``src/repro/sim/kernel.py`` but not ``sim/notkernel.py``).
        """
        posix = self.display
        if suffix.endswith("/"):
            name = suffix.rstrip("/")
            parts = Path(posix).parts
            return name in parts[:-1]
        return posix == suffix or posix.endswith("/" + suffix)

    def suppressed_codes(self, line: int) -> frozenset[str]:
        """Codes silenced (with a valid reason) at ``line``."""
        out: set[str] = set()
        for sup in self.suppressions:
            if not sup.reason:
                continue  # reasonless suppressions are findings, not filters
            if sup.line == line or (sup.standalone and sup.line + 1 == line):
                out.update(sup.codes)
        return frozenset(out)


def _parse_suppressions(text: str) -> tuple[list[Suppression], list[tuple[int, str]]]:
    """Extract suppression comments via the token stream.

    Returns ``(suppressions, problems)`` where problems are
    ``(line, message)`` pairs for malformed comments — tokenizing (not
    regex-over-lines) keeps ``#`` inside string literals from parsing as
    comments.
    """
    sups: list[Suppression] = []
    problems: list[tuple[int, str]] = []
    lines = text.splitlines()
    it = iter(line + "\n" for line in lines)
    try:
        tokens = list(tokenize.generate_tokens(lambda: next(it, "")))
    except (tokenize.TokenError, IndentationError):
        tokens = []  # unparseable files are reported via parse_error instead
    for tok in tokens:
        if tok.type != tokenize.COMMENT or "repro-lint" not in tok.string:
            continue
        line_no = tok.start[0]
        m = _SUPPRESS_RE.search(tok.string)
        if m is None:
            problems.append(
                (line_no, "unrecognized repro-lint comment (expected "
                          "'# repro-lint: disable=RPR0xx -- reason')")
            )
            continue
        codes = frozenset(c.strip() for c in m.group("codes").split(",") if c.strip())
        reason = (m.group("reason") or "").strip()
        bad = sorted(c for c in codes if not _CODE_RE.match(c))
        if not codes:
            problems.append((line_no, "suppression lists no rule codes"))
            continue
        if bad:
            problems.append(
                (line_no, f"suppression names unknown code(s): {', '.join(bad)}")
            )
            continue
        if not reason:
            problems.append(
                (line_no,
                 f"suppression of {', '.join(sorted(codes))} has no reason "
                 "(append ' -- <why this is deliberate>')")
            )
            # fall through: recorded reasonless so rules still fire
        standalone = lines[line_no - 1].strip().startswith("#")
        sups.append(Suppression(line_no, codes, reason, standalone))
    return sups, problems


class FileRule(ast.NodeVisitor):
    """A per-file rule.  Subclasses set ``code``/``name``/``contract``
    and implement ``visit_*`` methods calling :meth:`finding`."""

    code: str = "RPR0XX"
    name: str = "unnamed"
    contract: str = ""

    def __init__(self) -> None:
        self.sf: Optional[SourceFile] = None
        self.findings: list[Finding] = []
        self._func_stack: list[ast.AST] = []

    def finding(self, node: ast.AST, message: str) -> None:
        assert self.sf is not None
        self.findings.append(
            Finding(self.code, self.name, message, self.sf.display,
                    getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        )

    def check_file(self, sf: SourceFile) -> list[Finding]:
        self.sf = sf
        self.findings = []
        self._func_stack = []
        self.visit(sf.tree)
        return self.findings

    # Function-stack bookkeeping shared by every rule that cares about
    # the enclosing callable.
    def visit_FunctionDef(self, node):  # noqa: N802 - ast visitor API
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    @property
    def enclosing_function(self) -> Optional[ast.AST]:
        return self._func_stack[-1] if self._func_stack else None


class ProjectRule:
    """A whole-project rule: sees every file in one call."""

    code: str = "RPR0XX"
    name: str = "unnamed"
    contract: str = ""

    def check_project(self, files: Sequence[SourceFile]) -> list[Finding]:
        raise NotImplementedError


class Analyzer:
    """Load files, run rules, filter suppressions, audit the comments."""

    def __init__(self, rules: Sequence[object]):
        self.rules = list(rules)

    # -- file collection ------------------------------------------------

    def collect(self, paths: Sequence[str]) -> list[SourceFile]:
        files: list[SourceFile] = []
        seen: set[Path] = set()
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                targets = sorted(p.rglob("*.py"))
            elif p.is_file():
                targets = [p]
            else:
                raise LintError(f"no such file or directory: {raw}")
            for t in targets:
                rp = t.resolve()
                if rp in seen:
                    continue
                seen.add(rp)
                files.append(self._load(t))
        if not files:
            raise LintError(f"no python files under: {', '.join(paths)}")
        return files

    @staticmethod
    def _module_name(path: Path) -> str:
        """Best-effort dotted module name: strip everything through a
        ``src`` segment when present, else use the path as given."""
        parts = list(path.with_suffix("").parts)
        if "src" in parts:
            parts = parts[parts.index("src") + 1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _load(self, path: Path) -> SourceFile:
        text = path.read_text(encoding="utf-8")
        display = path.as_posix()
        try:
            tree = ast.parse(text, filename=display)
        except SyntaxError as exc:
            tree = ast.Module(body=[], type_ignores=[])
            sf = SourceFile(path, display, self._module_name(path), text, tree)
            sf.suppressions = []
            sf.parse_error = exc  # type: ignore[attr-defined]
            return sf
        sf = SourceFile(path, display, self._module_name(path), text, tree)
        sups, problems = _parse_suppressions(text)
        sf.suppressions = sups
        sf.comment_problems = problems  # type: ignore[attr-defined]
        return sf

    # -- running --------------------------------------------------------

    def run(self, paths: Sequence[str]) -> tuple[list[Finding], list[SourceFile]]:
        files = self.collect(paths)
        raw: list[Finding] = []
        for sf in files:
            err = getattr(sf, "parse_error", None)
            if err is not None:
                raw.append(Finding(
                    FRAMEWORK_CODE, "framework",
                    f"file does not parse: {err.msg}",
                    sf.display, err.lineno or 1, (err.offset or 1) - 1,
                ))
                continue
            for line, msg in getattr(sf, "comment_problems", []):
                raw.append(Finding(
                    FRAMEWORK_CODE, "framework", msg, sf.display, line, 0
                ))
        parsed = [sf for sf in files if getattr(sf, "parse_error", None) is None]
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                raw.extend(rule.check_project(parsed))
            else:
                for sf in parsed:
                    raw.extend(rule.check_file(sf))  # type: ignore[union-attr]
        by_path = {sf.display: sf for sf in files}
        kept = [
            f for f in raw
            if f.code == FRAMEWORK_CODE
            or f.code not in by_path[f.path].suppressed_codes(f.line)
        ]
        kept.sort(key=Finding.sort_key)
        return kept, files
