"""The RPR001–RPR006 invariant rules.

Each rule certifies one cross-layer contract the engine's *verdicts*
depend on.  Allowlists live here as class-level **data**, not scattered
conditionals, so extending one (a new benchmark dir, a new dispatch
seam) is a one-line diff reviewed next to the contract it weakens.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence

from .callgraph import CallGraph, FunctionInfo, build_call_graph
from .framework import FileRule, Finding, ProjectRule, SourceFile

__all__ = ["ALL_RULES", "default_rules", "rule_table"]


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _walk_skip_functions(node: ast.AST):
    """Yield descendants without entering nested function bodies
    (lambdas are entered: they close over the enclosing scope)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


# ----------------------------------------------------------------------
# RPR001 — fault-threading
# ----------------------------------------------------------------------


def _faults_test(test: ast.expr) -> Optional[str]:
    """Classify an ``if`` test: 'truthy' when the branch runs only with
    faults set, 'falsy' when only without, None otherwise."""
    if isinstance(test, ast.Name) and test.id == "faults":
        return "truthy"
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _faults_test(test.operand)
        if inner == "truthy":
            return "falsy"
        if inner == "falsy":
            return "truthy"
        return None
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == "faults"
        and len(test.ops) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        if isinstance(test.ops[0], ast.Is):
            return "falsy"
        if isinstance(test.ops[0], ast.IsNot):
            return "truthy"
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        # `faults is None and kernel_available()`: the branch still only
        # runs when every conjunct holds, so any classified conjunct
        # classifies the branch.
        for value in test.values:
            got = _faults_test(value)
            if got is not None:
                return got
    return None


def _terminates(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(body[-1], (ast.Return, ast.Raise))


class FaultThreadingRule(ProjectRule):
    """RPR001: a callable that accepts ``faults=`` must pass it to every
    resolvable callee that also accepts ``faults=``.

    Calls in branches the analyzer can prove fault-free (``if not
    faults:`` bodies, ``if faults: return ...`` fall-throughs) are
    exempt — that is exactly the engines' dispatch shape.  ``**kwargs``
    expansion at the call site counts as threading (the dict is built
    from ``faults`` by the callers that use this pattern, and guessing
    otherwise would flag correct code).
    """

    code = "RPR001"
    name = "fault-threading"
    contract = (
        "every faults=-accepting callable threads faults= to every "
        "callee that accepts it"
    )

    def check_project(self, files: Sequence[SourceFile]) -> list[Finding]:
        graph = build_call_graph(files)
        findings: list[Finding] = []
        for sf in files:
            for func in ast.walk(sf.tree):
                if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not self._accepts_faults_explicit(func):
                    continue
                findings.extend(self._check_function(sf, graph, func))
        return findings

    @staticmethod
    def _accepts_faults_explicit(func: ast.FunctionDef) -> bool:
        a = func.args
        names = [x.arg for x in a.posonlyargs + a.args + a.kwonlyargs]
        return "faults" in names

    def _check_function(
        self, sf: SourceFile, graph: CallGraph, func: ast.FunctionDef
    ) -> list[Finding]:
        findings: list[Finding] = []
        local = CallGraph.local_imports(func, sf.module)

        def check_call(call: ast.Call) -> None:
            info = graph.resolve_call(sf, call, local)
            if info is None or not self._callee_accepts(info):
                return
            if self._threads_faults(call, info):
                return
            findings.append(Finding(
                self.code, self.name,
                f"'{func.name}' accepts faults= but calls "
                f"'{info.name}' (which also accepts faults=) without "
                f"threading it — a dropped fault plan silently reverts "
                f"to fault-free semantics",
                sf.display, call.lineno, call.col_offset,
            ))

        def scan_expr(node: Optional[ast.AST], fault_free: bool) -> None:
            if node is None or fault_free:
                return
            if isinstance(node, ast.Call):
                check_call(node)
            for child in _walk_skip_functions(node):
                if isinstance(child, ast.Call):
                    check_call(child)

        def scan_block(body: Sequence[ast.stmt], fault_free: bool) -> None:
            fault_free_rest = fault_free
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # nested defs are checked as their own callers
                if isinstance(stmt, ast.If):
                    kind = _faults_test(stmt.test)
                    scan_expr(stmt.test, fault_free_rest)
                    scan_block(
                        stmt.body,
                        fault_free_rest or kind == "falsy",
                    )
                    scan_block(
                        stmt.orelse,
                        fault_free_rest or kind == "truthy",
                    )
                    # `if faults: <always returns>` makes the rest of
                    # this block provably fault-free.
                    if kind == "truthy" and _terminates(stmt.body):
                        fault_free_rest = True
                    continue
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    scan_expr(stmt.iter, fault_free_rest)
                    scan_block(stmt.body, fault_free_rest)
                    scan_block(stmt.orelse, fault_free_rest)
                    continue
                if isinstance(stmt, ast.While):
                    scan_expr(stmt.test, fault_free_rest)
                    scan_block(stmt.body, fault_free_rest)
                    scan_block(stmt.orelse, fault_free_rest)
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        scan_expr(item.context_expr, fault_free_rest)
                    scan_block(stmt.body, fault_free_rest)
                    continue
                if isinstance(stmt, ast.Try):
                    scan_block(stmt.body, fault_free_rest)
                    for handler in stmt.handlers:
                        scan_block(handler.body, fault_free_rest)
                    scan_block(stmt.orelse, fault_free_rest)
                    scan_block(stmt.finalbody, fault_free_rest)
                    continue
                scan_expr(stmt, fault_free_rest)

        scan_block(func.body, False)
        return findings

    @staticmethod
    def _callee_accepts(info: FunctionInfo) -> bool:
        # **kwargs alone is not "accepts faults": threading into it
        # proves nothing and skipping it breaks nothing.
        return (
            "faults" in info.positional_params or "faults" in info.kwonly_params
        )

    @staticmethod
    def _threads_faults(call: ast.Call, info: FunctionInfo) -> bool:
        for kw in call.keywords:
            if kw.arg == "faults" or kw.arg is None:  # faults=... or **expansion
                return True
        if any(isinstance(a, ast.Starred) for a in call.args):
            return True  # *args expansion: cannot count positions — trust it
        if "faults" in info.positional_params:
            return len(call.args) > info.positional_params.index("faults")
        return False


# ----------------------------------------------------------------------
# RPR002 — degrade discipline
# ----------------------------------------------------------------------


class DegradeDisciplineRule(FileRule):
    """RPR002: the degrade exceptions may only be *absorbed* at the
    dispatch seams; broad excepts must re-raise or log.

    ``BudgetExceededError`` / ``KernelUnsupported`` / ``LoweringError``
    encode "this exact path cannot decide — fall back"; swallowing one
    anywhere else turns a certified verdict into a silent lie.  Bare
    ``except:`` / ``except Exception`` / ``except BaseException``
    handlers that neither re-raise nor log are flagged everywhere.
    """

    code = "RPR002"
    name = "degrade-discipline"
    contract = (
        "degrade exceptions absorbed only in scenarios/backends.py and "
        "sim/kernel.py *_auto dispatchers; broad excepts re-raise or log"
    )

    #: Exceptions whose absorption is the backends' exclusive business.
    DEGRADE_ERRORS = frozenset(
        {"BudgetExceededError", "KernelUnsupported", "LoweringError"}
    )
    #: Files allowed to absorb them anywhere.
    ABSORB_PATHS = ("scenarios/backends.py",)
    #: File whose ``*_auto`` dispatchers are also allowed.
    AUTO_DISPATCH_PATH = "sim/kernel.py"
    AUTO_DISPATCH_SUFFIX = "_auto"
    #: Over-broad handler types.
    BROAD = frozenset({"Exception", "BaseException"})
    #: Method names whose call in a handler counts as logging.
    LOG_METHODS = frozenset(
        {"warn", "warning", "error", "exception", "info", "debug", "critical"}
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler):  # noqa: N802
        names = self._handler_names(node.type)
        reraises = self._reraises(node)
        caught_degrade = sorted(names & self.DEGRADE_ERRORS)
        if caught_degrade and not reraises and not self._absorb_allowed():
            self.finding(node, (
                f"absorbs {'/'.join(caught_degrade)} outside the dispatch "
                f"seams ({', '.join(self.ABSORB_PATHS)} or "
                f"{self.AUTO_DISPATCH_PATH} *{self.AUTO_DISPATCH_SUFFIX}) — "
                f"degrade decisions belong to the backends"
            ))
        broad = (node.type is None) or bool(names & self.BROAD)
        if broad and not reraises and not self._logs(node):
            what = "bare except:" if node.type is None else (
                f"except {'/'.join(sorted(names & self.BROAD))}"
            )
            self.finding(node, (
                f"{what} swallows errors without re-raise or logging — "
                f"narrow the exception type or surface the failure"
            ))
        self.generic_visit(node)

    def _absorb_allowed(self) -> bool:
        assert self.sf is not None
        if any(self.sf.matches(p) for p in self.ABSORB_PATHS):
            return True
        if self.sf.matches(self.AUTO_DISPATCH_PATH):
            func = self.enclosing_function
            return func is not None and func.name.endswith(
                self.AUTO_DISPATCH_SUFFIX
            )
        return False

    @staticmethod
    def _handler_names(type_node: Optional[ast.expr]) -> frozenset[str]:
        if type_node is None:
            return frozenset()
        exprs = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        names = set()
        for e in exprs:
            if isinstance(e, ast.Name):
                names.add(e.id)
            elif isinstance(e, ast.Attribute):
                names.add(e.attr)
        return frozenset(names)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(n, ast.Raise)
            for stmt in handler.body
            for n in [stmt, *_walk_skip_functions(stmt)]
        )

    def _logs(self, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for n in [stmt, *_walk_skip_functions(stmt)]:
                if (
                    isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr in self.LOG_METHODS
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# RPR003 — determinism
# ----------------------------------------------------------------------


class DeterminismRule(FileRule):
    """RPR003: solver paths are deterministic — no shared-RNG draws, no
    unseeded ``Random()``, no wall-clock reads outside the allowlist.

    ``random.seed``/``getstate``/``setstate`` are exempt: they are the
    seeded-job plumbing (``BatchJob.seed``) and always take explicit
    state.  The wall-clock allowlist is the timing infrastructure the
    repo already quarantines: benchmarks, the instrument layer, and the
    supervised pool's timeout arithmetic.  The telemetry layer gets a
    narrower grant: *monotonic-family* clocks only (span timing), so a
    ``time.time()`` wall-clock read in a telemetry payload still fires —
    event streams must never embed absolute timestamps.
    """

    code = "RPR003"
    name = "determinism"
    contract = (
        "no shared-RNG draws or unseeded Random(); wall-clock reads "
        "only in benchmarks/, sim/instrument.py, sim/supervise.py; "
        "telemetry/ may use monotonic-family clocks only"
    )

    #: Where wall-clock reads are legitimate (timing infrastructure).
    CLOCK_ALLOWED_PATHS = (
        "benchmarks/",
        "sim/instrument.py",
        "sim/supervise.py",
    )
    #: Where only *monotonic* clocks are legitimate (span timing):
    #: telemetry measures durations, never moments.
    MONOTONIC_ONLY_PATHS = (
        "telemetry/",
    )
    #: ``time`` module functions that read or depend on the wall clock.
    CLOCK_FUNCS = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "sleep", "process_time",
    })
    #: The duration-only subset allowed under MONOTONIC_ONLY_PATHS.
    MONOTONIC_FUNCS = frozenset({
        "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    })
    #: ``random`` module attrs that manage explicit state (allowed).
    RNG_STATE_FUNCS = frozenset({"getstate", "setstate"})

    def __init__(self) -> None:
        super().__init__()
        self._random_aliases: set[str] = set()
        self._time_aliases: set[str] = set()
        self._from_bindings: dict[str, tuple[str, str]] = {}

    def check_file(self, sf: SourceFile) -> list[Finding]:
        self._random_aliases = set()
        self._time_aliases = set()
        self._from_bindings = {}
        return super().check_file(sf)

    def visit_Import(self, node: ast.Import):  # noqa: N802
        for alias in node.names:
            bound = alias.asname or alias.name
            if alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name == "time":
                self._time_aliases.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom):  # noqa: N802
        if node.module in ("random", "time") and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                self._from_bindings[bound] = (node.module, alias.name)

    def visit_Call(self, node: ast.Call):  # noqa: N802
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in self._random_aliases:
                self._check_random(node, func.attr)
            elif func.value.id in self._time_aliases:
                self._check_time(node, func.attr)
        elif isinstance(func, ast.Name) and func.id in self._from_bindings:
            module, original = self._from_bindings[func.id]
            if module == "random":
                self._check_random(node, original)
            else:
                self._check_time(node, original)
        self.generic_visit(node)

    def _check_random(self, node: ast.Call, attr: str) -> None:
        if attr in self.RNG_STATE_FUNCS:
            return
        if attr in ("Random", "seed"):
            if node.args or node.keywords:
                return
            self.finding(node, (
                f"unseeded random.{attr}() — pass an explicit seed so "
                f"solver paths replay deterministically"
            ))
            return
        self.finding(node, (
            f"random.{attr}() draws from the shared module RNG — use an "
            f"explicit seeded random.Random(seed) instance"
        ))

    def _check_time(self, node: ast.Call, attr: str) -> None:
        if attr not in self.CLOCK_FUNCS:
            return
        assert self.sf is not None
        if any(self.sf.matches(p) for p in self.CLOCK_ALLOWED_PATHS):
            return
        if any(self.sf.matches(p) for p in self.MONOTONIC_ONLY_PATHS):
            if attr in self.MONOTONIC_FUNCS:
                return
            self.finding(node, (
                f"time.{attr}() reads the wall clock inside the telemetry "
                f"layer — telemetry may measure durations "
                f"({', '.join(sorted(self.MONOTONIC_FUNCS))}) but never "
                f"embed absolute timestamps in event payloads"
            ))
            return
        self.finding(node, (
            f"time.{attr}() reads the clock outside the timing allowlist "
            f"({', '.join(self.CLOCK_ALLOWED_PATHS)}) — solver verdicts "
            f"must not depend on wall time"
        ))


# ----------------------------------------------------------------------
# RPR004 — picklability of batch payloads
# ----------------------------------------------------------------------


class PicklabilityRule(FileRule):
    """RPR004: lambdas and locally-defined functions must not flow into
    the multiprocessing fan-out entry points.

    The pools pickle every job; an unpicklable payload either crashes
    the pool or silently forces the serial fallback — both discovered at
    runtime, deep inside a sweep.  Flag it at the call site instead.
    """

    code = "RPR004"
    name = "picklability"
    contract = (
        "no lambdas/locally-defined functions passed into batch fan-out "
        "entry points (run_batch*, *Job, supervised pools)"
    )

    #: Call targets whose arguments cross a process boundary.
    BATCH_ENTRY_POINTS = frozenset({
        "run_batch",
        "run_gathering_batch",
        "run_batch_supervised",
        "run_gathering_batch_supervised",
        "BatchJob",
        "GatheringJob",
    })

    def __init__(self) -> None:
        super().__init__()
        self._local_names: list[set[str]] = []

    def visit_FunctionDef(self, node):  # noqa: N802
        self._local_names.append(self._collect_local_callables(node))
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()
        self._local_names.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    @staticmethod
    def _collect_local_callables(func: ast.FunctionDef) -> set[str]:
        names: set[str] = set()

        def scan(body: Sequence[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(stmt.name)
                    continue  # its internals are its own scope
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Lambda
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                for field in ("body", "orelse", "finalbody"):
                    scan(getattr(stmt, field, []) or [])
                for handler in getattr(stmt, "handlers", []) or []:
                    scan(handler.body)

        scan(func.body)
        return names

    def visit_Call(self, node: ast.Call):  # noqa: N802
        name = _call_name(node)
        if name in self.BATCH_ENTRY_POINTS:
            values = list(node.args) + [
                kw.value for kw in node.keywords if kw.arg is not None
            ]
            flat: list[ast.expr] = []
            for v in values:
                flat.append(v)
                if isinstance(v, (ast.List, ast.Tuple)):
                    flat.extend(v.elts)
            for v in flat:
                if isinstance(v, ast.Lambda):
                    self.finding(v, (
                        f"lambda passed into {name}() cannot be pickled "
                        f"across the process boundary — hoist it to a "
                        f"module-level function"
                    ))
                elif isinstance(v, ast.Name) and any(
                    v.id in scope for scope in self._local_names
                ):
                    self.finding(v, (
                        f"locally-defined function {v.id!r} passed into "
                        f"{name}() cannot be pickled across the process "
                        f"boundary — hoist it to module level"
                    ))
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR005 — kernel dtype contracts
# ----------------------------------------------------------------------


class KernelDtypeRule(FileRule):
    """RPR005: numpy allocations in the kernel layers pass an explicit
    ``dtype=``.

    The successor tables are content-addressed (cache keys hash the raw
    bytes) and cross the memmap boundary; a platform-default dtype makes
    the same automaton hash differently on different machines and
    silently corrupts id arithmetic past 2**31 entries.
    """

    code = "RPR005"
    name = "kernel-dtype"
    contract = (
        "np.zeros/empty/full/arange/asarray in sim/kernel.py and "
        "sim/traced.py pass explicit dtype="
    )

    #: The files whose arrays are content-addressed / memmapped.
    KERNEL_PATHS = ("sim/kernel.py", "sim/traced.py")
    #: Allocation entry points that take a dtype.
    ALLOC_FUNCS = frozenset({"zeros", "empty", "full", "arange", "asarray"})

    def __init__(self) -> None:
        super().__init__()
        self._numpy_aliases: set[str] = set()

    def check_file(self, sf: SourceFile) -> list[Finding]:
        if not any(sf.matches(p) for p in self.KERNEL_PATHS):
            return []
        self._numpy_aliases = set()
        return super().check_file(sf)

    def visit_Import(self, node: ast.Import):  # noqa: N802
        for alias in node.names:
            if alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or "numpy")

    def visit_Call(self, node: ast.Call):  # noqa: N802
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._numpy_aliases
            and func.attr in self.ALLOC_FUNCS
        ):
            has_dtype = any(
                kw.arg == "dtype" or kw.arg is None for kw in node.keywords
            )
            if not has_dtype:
                self.finding(node, (
                    f"np.{func.attr}(...) without explicit dtype= — kernel "
                    f"arrays are content-hashed and memmapped, so the "
                    f"platform-default dtype breaks cache keys and id "
                    f"arithmetic"
                ))
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPR006 — backend protocol conformance
# ----------------------------------------------------------------------


class BackendProtocolRule(ProjectRule):
    """RPR006: every backend exposes the full ``Backend`` protocol.

    Checked structurally: the ``Backend`` class itself must define every
    method in the manifest below (so extending the protocol means
    extending this data, reviewed together), and every class that
    derives from it — or is named like a backend — must reach every
    method through its project-visible MRO.  A new backend written
    without inheriting ``Backend`` therefore cannot silently miss
    ``run_pairs`` or ``sweep_gathering``.
    """

    code = "RPR006"
    name = "backend-protocol"
    contract = (
        "Backend and every *Backend class define/inherit the full "
        "protocol surface incl. run_pairs and sweep_gathering"
    )

    #: The protocol surface.  Extending the Backend protocol MUST extend
    #: this list in the same commit — that is the point of the rule.
    PROTOCOL_METHODS = (
        "run",
        "run_gathering",
        "run_many",
        "run_gathering_many",
        "sweep_delays",
        "sweep_gathering",
        "run_pairs",
    )
    PROTOCOL_CLASS = "Backend"

    def check_project(self, files: Sequence[SourceFile]) -> list[Finding]:
        classes: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
        for sf in files:
            for stmt in sf.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    classes[stmt.name] = (sf, stmt)

        findings: list[Finding] = []

        def own_methods(node: ast.ClassDef) -> set[str]:
            return {
                s.name for s in node.body
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            }

        def base_names(node: ast.ClassDef) -> list[str]:
            out = []
            for b in node.bases:
                if isinstance(b, ast.Name):
                    out.append(b.id)
                elif isinstance(b, ast.Attribute):
                    out.append(b.attr)
            return out

        def mro_methods(name: str, seen: set[str]) -> set[str]:
            if name in seen or name not in classes:
                return set()
            seen.add(name)
            _sf, node = classes[name]
            methods = own_methods(node)
            for base in base_names(node):
                methods |= mro_methods(base, seen)
            return methods

        def derives_from_protocol(name: str, seen: set[str]) -> bool:
            if name in seen or name not in classes:
                return False
            seen.add(name)
            _sf, node = classes[name]
            for base in base_names(node):
                if base == self.PROTOCOL_CLASS or derives_from_protocol(
                    base, seen
                ):
                    return True
            return False

        proto = classes.get(self.PROTOCOL_CLASS)
        if proto is not None:
            sf, node = proto
            missing = [
                m for m in self.PROTOCOL_METHODS if m not in own_methods(node)
            ]
            if missing:
                findings.append(Finding(
                    self.code, self.name,
                    f"protocol class {self.PROTOCOL_CLASS} does not define "
                    f"{', '.join(missing)} — the protocol manifest and the "
                    f"class must move together",
                    sf.display, node.lineno, node.col_offset,
                ))

        for name, (sf, node) in classes.items():
            if name == self.PROTOCOL_CLASS:
                continue
            is_backend = name.endswith("Backend") or derives_from_protocol(
                name, set()
            )
            if not is_backend:
                continue
            available = mro_methods(name, set())
            missing = [m for m in self.PROTOCOL_METHODS if m not in available]
            if missing:
                findings.append(Finding(
                    self.code, self.name,
                    f"backend class {name} neither defines nor inherits "
                    f"{', '.join(missing)} — a protocol extension must "
                    f"reach every backend",
                    sf.display, node.lineno, node.col_offset,
                ))
        return findings


# ----------------------------------------------------------------------


ALL_RULES = (
    FaultThreadingRule,
    DegradeDisciplineRule,
    DeterminismRule,
    PicklabilityRule,
    KernelDtypeRule,
    BackendProtocolRule,
)


def default_rules() -> list[object]:
    return [cls() for cls in ALL_RULES]


def rule_table() -> list[tuple[str, str, str]]:
    """(code, name, contract) rows for ``--list-rules`` and the docs."""
    return [(cls.code, cls.name, cls.contract) for cls in ALL_RULES]
