"""Finding reporters: human text and machine JSON.

JSON schema (``repro.lint-report/v1``) — consumed by CI annotations::

    {
      "schema": "repro.lint-report/v1",
      "paths": ["src"],                  # the paths as given on the CLI
      "files": 63,                       # python files analyzed
      "findings": [                      # sorted by (path, line, col, code)
        {"code": "RPR005", "rule": "kernel-dtype",
         "path": "src/repro/sim/kernel.py", "line": 592, "col": 15,
         "message": "..."}
      ],
      "summary": {"total": 1, "by_code": {"RPR005": 1}}
    }

The schema string is versioned exactly like the scenario results
(``repro.scenario-result/v1``): additions bump nothing, renames or
removals bump the suffix.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .framework import Finding

__all__ = ["SCHEMA", "render_text", "render_json"]

SCHEMA = "repro.lint-report/v1"


def render_text(
    findings: Sequence[Finding], files_analyzed: int
) -> str:
    lines = [f.render() for f in findings]
    if findings:
        by_code = Counter(f.code for f in findings)
        breakdown = ", ".join(
            f"{code}: {n}" for code, n in sorted(by_code.items())
        )
        lines.append(
            f"{len(findings)} finding(s) ({breakdown}) "
            f"across {files_analyzed} file(s)"
        )
    else:
        lines.append(f"clean: 0 findings across {files_analyzed} file(s)")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], files_analyzed: int, paths: Sequence[str]
) -> str:
    by_code = Counter(f.code for f in findings)
    doc = {
        "schema": SCHEMA,
        "paths": list(paths),
        "files": files_analyzed,
        "findings": [
            {
                "code": f.code,
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "by_code": dict(sorted(by_code.items())),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False)
