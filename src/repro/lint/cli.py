"""``python -m repro.lint [paths]`` — the invariant gate's entry point.

Exit codes: 0 clean, 1 findings, 2 usage error.  Pure stdlib; safe to
run in CI without installing anything beyond the interpreter.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .framework import Analyzer, LintError
from .report import render_json, render_text
from .rules import default_rules, rule_table

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based invariant analyzer certifying the engine's "
            "cross-layer contracts (RPR001-RPR006)."
        ),
    )
    p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json follows repro.lint-report/v1)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for code, name, contract in rule_table():
            print(f"{code}  {name:<20} {contract}")
        return 0
    analyzer = Analyzer(default_rules())
    try:
        findings, files = analyzer.run(args.paths)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, len(files), args.paths))
    else:
        print(render_text(findings, len(files)))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
