"""A package-level call graph good enough to check keyword threading.

The fault-threading rule (RPR001) needs to know, for every call site,
*which function definition* the call lands on and *what parameters* that
definition takes.  Full Python name resolution is out of scope; what the
repo actually uses is covered:

- plain-name calls resolved through module-level **and function-local**
  imports (the engines do ``from .faults import run_rendezvous_faulted``
  inside the dispatching function) and same-module definitions;
- attribute calls on a name bound to an imported module
  (``kernel.solve_all_delays_auto(...)`` after
  ``from ..sim import kernel`` / ``import repro.sim.kernel as kernel``);
- relative imports resolved against the importing module's dotted name,
  absolute imports matched exactly or on dotted-suffix (so the graph
  works whether the analyzer was pointed at ``src/`` or ``src/repro``).

Method calls (``self.run(...)``, ``Backend.sweep_delays(...)``) are
deliberately unresolved: binding them correctly needs type inference,
and a rule built on guesses would cry wolf.  Unresolved calls are
skipped, never flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional, Sequence

from .framework import SourceFile

__all__ = ["FunctionInfo", "CallGraph", "build_call_graph"]


@dataclass
class FunctionInfo:
    """One module-level function definition."""

    module: str
    name: str
    node: ast.FunctionDef
    positional_params: list[str] = field(default_factory=list)
    kwonly_params: list[str] = field(default_factory=list)
    has_var_keyword: bool = False

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}" if self.module else self.name

    def accepts(self, param: str) -> bool:
        return (
            param in self.positional_params
            or param in self.kwonly_params
            or self.has_var_keyword
        )


def _params_of(node: ast.FunctionDef) -> tuple[list[str], list[str], bool]:
    a = node.args
    pos = [arg.arg for arg in a.posonlyargs + a.args]
    kw = [arg.arg for arg in a.kwonlyargs]
    return pos, kw, a.kwarg is not None


def _function_info(module: str, node: ast.FunctionDef) -> FunctionInfo:
    pos, kw, var = _params_of(node)
    return FunctionInfo(module, node.name, node, pos, kw, var)


def _resolve_relative(module: str, target: Optional[str], level: int) -> str:
    """``from ..sim.kernel import f`` in ``repro.scenarios.backends`` ->
    ``repro.sim.kernel``."""
    if level == 0:
        return target or ""
    parts = module.split(".") if module else []
    # level 1 = current package (drop the module's own last segment),
    # each extra level drops one more package.
    keep = len(parts) - level
    base = parts[:keep] if keep > 0 else []
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _ImportMap:
    """name -> ("func", module, symbol) | ("module", module) bindings."""

    def __init__(self) -> None:
        self.bindings: dict[str, tuple] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            # `import a.b.c` binds `a`; `import a.b.c as x` binds x to a.b.c
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.bindings[bound] = ("module", target)

    def add_import_from(self, node: ast.ImportFrom, module: str) -> None:
        src = _resolve_relative(module, node.module, node.level)
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self.bindings[bound] = ("func", src, alias.name)


class CallGraph:
    """Index of module-level functions plus per-scope import maps."""

    def __init__(self) -> None:
        # dotted module -> {function name -> FunctionInfo}
        self.modules: dict[str, dict[str, FunctionInfo]] = {}
        # dotted module -> module-level import map
        self.imports: dict[str, _ImportMap] = {}

    # -- construction ---------------------------------------------------

    def index_file(self, sf: SourceFile) -> None:
        funcs: dict[str, FunctionInfo] = {}
        imap = _ImportMap()
        for stmt in sf.tree.body:
            if isinstance(stmt, ast.FunctionDef):
                funcs[stmt.name] = _function_info(sf.module, stmt)
            elif isinstance(stmt, ast.AsyncFunctionDef):
                funcs[stmt.name] = _function_info(sf.module, stmt)  # type: ignore[arg-type]
            elif isinstance(stmt, ast.Import):
                imap.add_import(stmt)
            elif isinstance(stmt, ast.ImportFrom):
                imap.add_import_from(stmt, sf.module)
        self.modules[sf.module] = funcs
        self.imports[sf.module] = imap

    # -- lookup ---------------------------------------------------------

    def _find_module(self, dotted: str) -> Optional[str]:
        """Exact dotted match, else unambiguous dotted-suffix match."""
        if dotted in self.modules:
            return dotted
        tails = [m for m in self.modules if m.endswith("." + dotted)]
        if len(tails) == 1:
            return tails[0]
        heads = [m for m in self.modules if dotted.endswith("." + m)]
        if len(heads) == 1:
            return heads[0]
        return None

    def _lookup(self, module: str, symbol: str) -> Optional[FunctionInfo]:
        real = self._find_module(module)
        if real is None:
            return None
        return self.modules[real].get(symbol)

    def resolve_call(
        self,
        sf: SourceFile,
        call: ast.Call,
        local_imports: Optional[_ImportMap] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve a call to an indexed module-level function, or None."""
        maps = [local_imports] if local_imports is not None else []
        maps.append(self.imports.get(sf.module, _ImportMap()))
        func = call.func
        if isinstance(func, ast.Name):
            # same-module definition wins over an (impossible) import shadow
            own = self.modules.get(sf.module, {}).get(func.id)
            if own is not None:
                return own
            for m in maps:
                bound = m.bindings.get(func.id)
                if bound is None:
                    continue
                if bound[0] == "func":
                    return self._lookup(bound[1], bound[2])
                return None  # a module object called like a function: not ours
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            for m in maps:
                bound = m.bindings.get(func.value.id)
                if bound is None:
                    continue
                if bound[0] == "module":
                    return self._lookup(bound[1], func.attr)
                return None
        return None

    @staticmethod
    def local_imports(func: ast.FunctionDef, module: str) -> _ImportMap:
        """Imports written inside a function body (the engines' lazy
        ``from .faults import ...`` dispatch pattern)."""
        imap = _ImportMap()
        for node in ast.walk(func):
            if isinstance(node, ast.Import):
                imap.add_import(node)
            elif isinstance(node, ast.ImportFrom):
                imap.add_import_from(node, module)
        return imap


def build_call_graph(files: Sequence[SourceFile]) -> CallGraph:
    graph = CallGraph()
    for sf in files:
        graph.index_file(sf)
    return graph
