"""``repro.lint`` — the AST-based invariant analyzer for this repo.

The engine's certified claims (never-meeting, never-gathering, Thm 3.1
defeats) rest on cross-layer *code* contracts that no runtime test can
see from the outside: ``faults=`` must thread through every engine entry
point, degrade exceptions may only be absorbed at the dispatch seams,
solver paths must be deterministic, batch payloads picklable, kernel
allocations dtype-explicit, and backends protocol-complete.  This
package certifies those contracts statically on every commit:

- :mod:`.framework` — findings, suppression comments, the analyzer;
- :mod:`.callgraph` — a package-level call graph for threading rules;
- :mod:`.rules`     — the RPR001–RPR006 invariant rules (+ RPR000 for
  malformed suppressions); allowlists are data on the rule classes;
- :mod:`.report`    — text and JSON reporters
  (schema ``repro.lint-report/v1``);
- :mod:`.cli`       — ``python -m repro.lint [paths]`` /
  ``repro lint-invariants``.

A finding is silenced with an inline comment carrying a mandatory
reason::

    risky_thing()  # repro-lint: disable=RPR003 -- why this is deliberate

The comment may also stand alone on the line above the flagged one.  A
suppression without a reason (or naming an unknown code) is itself a
finding (RPR000).
"""

from .framework import Analyzer, Finding, LintError, SourceFile
from .report import render_json, render_text
from .rules import ALL_RULES, rule_table

__all__ = [
    "Analyzer",
    "Finding",
    "LintError",
    "SourceFile",
    "ALL_RULES",
    "rule_table",
    "render_text",
    "render_json",
]
