"""Constructive lower-bound adversaries (Theorems 3.1, 4.2, 4.3).

Each module takes a *concrete* finite-state agent and builds the instance
the corresponding proof constructs against it, then machine-certifies
non-meeting via configuration recurrence.  The experiment harness sweeps
agent families through these builders to trace the paper's bound shapes
(defeating-instance size as a function of agent memory).
"""

from .arbitrary_delay import Thm31Instance, build_thm31_instance, find_state_repetition
from .common import arbitrary_delay_bound_bits, delay0_bound_bits
from .infinite_line import InfiniteLineRun, LeaveEvent, simulate_infinite_line
from .leaves import (
    BehaviorFunction,
    Thm43Instance,
    behavior_function,
    build_thm43_instance,
    find_colliding_side_trees,
)
from .loglog_line import Thm42Instance, build_thm42_instance

__all__ = [
    "build_thm31_instance",
    "Thm31Instance",
    "find_state_repetition",
    "build_thm42_instance",
    "Thm42Instance",
    "build_thm43_instance",
    "Thm43Instance",
    "behavior_function",
    "find_colliding_side_trees",
    "BehaviorFunction",
    "simulate_infinite_line",
    "InfiniteLineRun",
    "LeaveEvent",
    "delay0_bound_bits",
    "arbitrary_delay_bound_bits",
]
