"""Theorem 3.1: the arbitrary-delay adversary (Ω(log n) on the line).

Given any concrete line agent with K states, this module constructs a
2-edge-colored line of length O(K) = O(2^bits) plus a delay θ on which the
agent provably fails to rendezvous from non perfectly symmetrizable
positions — the constructive content of Theorem 3.1.

Two cases, as in the paper:

*Drifting agent.*  Watching the agent on the infinite colored line, some
state ``s`` is left at two distinct positions ``x1``, ``x2`` (we pick the
first such pair at even distance ``d = x2 - x1``, which exists within a few
state-configuration periods; evenness keeps the coloring phase aligned so
the trajectory from ``x2`` is the exact translate of the one from ``x1``).
On the mirror-symmetrically labeled line (central edge 0/0, colors
alternating outward — :func:`repro.trees.labelings.thm31_line_labeling`)
place one agent at ``U`` on the left, the other at ``V = M(U - d)`` where
``M`` is the mirror, and delay the first by ``θ = t2 - t1``.  At absolute
time ``t2`` the two agents sit at mirrored positions in the same state;
from then on the executions are mirror-conjugate forever and the agents can
never share a node (the mirror has no fixed node).  ``V ≠ M(U)`` since
``d ≠ 0``, so the positions are not perfectly symmetrizable.

*Bounded agent.*  If the agent never leaves a radius-D ball, two agents
placed ``2D + 2`` apart on a line with a central node (odd node count — no
pair is perfectly symmetrizable) have disjoint ranges and trivially never
meet, with delay 0.

Either way the instance is machine-checked: the simulator must *certify*
non-meeting by configuration recurrence before the instance is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..agents.automaton import LineAutomaton
from ..errors import ConstructionError
from ..sim.compiled import run_rendezvous_fast
from ..sim.engine import RendezvousOutcome
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.labelings import thm31_line_labeling
from .common import bounded_agent_placement
from ..trees.tree import Tree
from .infinite_line import InfiniteLineRun, simulate_infinite_line

__all__ = ["Thm31Instance", "build_thm31_instance", "find_state_repetition"]


@dataclass(frozen=True)
class Thm31Instance:
    """A defeating instance for one concrete agent under arbitrary delay."""

    tree: Tree
    start1: int
    start2: int
    delay: int
    delayed: int
    kind: str  # "drifting" or "bounded"
    memory_bits: int
    outcome: Optional[RendezvousOutcome]

    @property
    def line_edges(self) -> int:
        return self.tree.num_edges

    @property
    def certified(self) -> bool:
        return self.outcome is not None and self.outcome.certified_never


def find_state_repetition(
    run: InfiniteLineRun,
) -> Optional[tuple[int, int, int, int, int]]:
    """First leave-event pair (t1, x1, t2, x2, s): same state, distinct
    positions at *even* distance (coloring-phase aligned)."""
    seen: dict[int, list[tuple[int, int]]] = {}
    for ev in run.leave_events:
        for t1, x1 in seen.get(ev.state, ()):
            if x1 != ev.position and (ev.position - x1) % 2 == 0:
                return (t1, x1, ev.round_index, ev.position, ev.state)
        seen.setdefault(ev.state, []).append((ev.round_index, ev.position))
    return None


def build_thm31_instance(
    automaton: LineAutomaton,
    *,
    verify: bool = True,
    verify_rounds: int = 2_000_000,
) -> Thm31Instance:
    """Construct (and certify) the Theorem 3.1 defeating instance."""
    k = automaton.num_states
    sim_rounds = 80 * (k + 2)
    run = simulate_infinite_line(automaton, sim_rounds)
    pair = find_state_repetition(run)

    if pair is None:
        instance = _bounded_instance(automaton, run)
    else:
        instance = _drifting_instance(automaton, run, pair)

    if verify:
        outcome = run_rendezvous_fast(
            instance.tree,
            automaton,
            instance.start1,
            instance.start2,
            delay=instance.delay,
            delayed=instance.delayed,
            max_rounds=verify_rounds,
            certify=True,
        )
        if outcome.met:
            raise ConstructionError(
                "Thm 3.1 construction failed: the agents met at round "
                f"{outcome.meeting_round}"
            )
        if not outcome.certified_never:  # pragma: no cover - budget too small
            raise ConstructionError(
                "Thm 3.1 verification inconclusive: raise verify_rounds"
            )
        return Thm31Instance(
            instance.tree,
            instance.start1,
            instance.start2,
            instance.delay,
            instance.delayed,
            instance.kind,
            automaton.memory_bits,
            outcome,
        )
    return instance


def _drifting_instance(
    automaton: LineAutomaton,
    run: InfiniteLineRun,
    pair: tuple[int, int, int, int, int],
) -> Thm31Instance:
    t1, x1, t2, x2, _state = pair
    d = x2 - x1  # even, nonzero
    lo, hi = run.span(t2)  # the prefix the u-agent traces before time t2
    # The v-agent mirrors the u-agent translated by -d; its pre-t2 span is
    # the mirror of [U - d + lo, U - d + hi].  Fit both strictly on their
    # sides of the central edge.
    width = (hi - lo) + abs(d) + 2
    half = max(4 * (automaton.num_states + 1), width + 2)
    num_edges = 2 * half + 1
    n = num_edges + 1
    tree = thm31_line_labeling(n)
    mid = half  # left extremity of the central edge
    u = mid - max(hi, hi - d)
    if u + min(lo, lo - d) < 1:  # pragma: no cover - sizing prevents this
        raise ConstructionError("Thm 3.1 sizing failed to fit the prefix")
    v = (n - 1) - (u - d)  # M(U - d)
    theta = t2 - t1
    if perfectly_symmetrizable(tree, u, v):  # pragma: no cover - d != 0
        raise ConstructionError("Thm 3.1 produced a symmetrizable pair")
    return Thm31Instance(
        tree, u, v, theta, 1, "drifting", automaton.memory_bits, None
    )


def _bounded_instance(
    automaton: LineAutomaton, run: InfiniteLineRun
) -> Thm31Instance:
    placement = bounded_agent_placement(run.max_distance())
    return Thm31Instance(
        placement.tree,
        placement.start1,
        placement.start2,
        0,
        1,
        "bounded",
        automaton.memory_bits,
        None,
    )
