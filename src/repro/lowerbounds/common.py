"""Shared pieces of the lower-bound constructions.

Both line adversaries (Thms 3.1 and 4.2) fall back to the same *bounded
agent* construction when the victim never leaves a finite radius: put the
two copies far enough apart on a line with a central node (odd node count,
so no pair is perfectly symmetrizable — §2.2: a tree with a central node
admits no symmetric labeling) and their activity ranges never intersect.

The module also centralizes the *reference bit values* of the paper's
bounds, so every upper-bound measurement (the gap table, the program
memory atlas) can pair its honest minimized-bits column with the matching
lower-bound floor:

- delay 0 on an n-node tree with ℓ leaves: Ω(log log n) (Thm 4.2) and
  Ω(log ℓ) (Thm 4.3), so the floor is their max;
- arbitrary delay: Ω(log n) (Thm 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.memory import log_bits, loglog_bits
from ..trees.labelings import edge_colored_line
from ..trees.tree import Tree

__all__ = [
    "BoundedPlacement",
    "bounded_agent_placement",
    "delay0_bound_bits",
    "arbitrary_delay_bound_bits",
]


def delay0_bound_bits(n: int, leaves: int) -> int:
    """The delay-0 lower-bound floor for an n-node, ℓ-leaf tree, in bits:
    ``max(Ω(log log n), Ω(log ℓ))`` with the reproduction's reference
    constants (both 1)."""
    return max(loglog_bits(max(n, 2)), log_bits(max(leaves, 1)))


def arbitrary_delay_bound_bits(n: int) -> int:
    """The arbitrary-delay lower-bound floor, in bits: Ω(log n) — a
    b-bit automaton is defeated on a line of O(2^b) edges (Thm 3.1), so
    surviving every n-node line costs ~log n bits."""
    return log_bits(max(n, 2))


@dataclass(frozen=True)
class BoundedPlacement:
    """Disjoint-ranges placement defeating a radius-``radius`` agent."""

    tree: Tree
    start1: int
    start2: int
    radius: int

    @property
    def line_edges(self) -> int:
        return self.tree.num_edges


def bounded_agent_placement(radius: int) -> BoundedPlacement:
    """The disjoint-ranges line for an agent that never leaves ``radius``.

    Nodes: ``4·radius + 7`` (odd — central node, every pair feasible).
    Starts ``2·radius + 2`` apart with ``radius + 2`` margin to each end:
    the activity balls ``[start ± radius]`` are disjoint and interior.
    """
    n = 4 * radius + 7
    tree = edge_colored_line(n)
    p1 = radius + 2
    p2 = p1 + 2 * radius + 2
    return BoundedPlacement(tree, p1, p2, radius)
