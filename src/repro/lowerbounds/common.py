"""Shared pieces of the lower-bound constructions.

Both line adversaries (Thms 3.1 and 4.2) fall back to the same *bounded
agent* construction when the victim never leaves a finite radius: put the
two copies far enough apart on a line with a central node (odd node count,
so no pair is perfectly symmetrizable — §2.2: a tree with a central node
admits no symmetric labeling) and their activity ranges never intersect.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trees.labelings import edge_colored_line
from ..trees.tree import Tree

__all__ = ["BoundedPlacement", "bounded_agent_placement"]


@dataclass(frozen=True)
class BoundedPlacement:
    """Disjoint-ranges placement defeating a radius-``radius`` agent."""

    tree: Tree
    start1: int
    start2: int
    radius: int

    @property
    def line_edges(self) -> int:
        return self.tree.num_edges


def bounded_agent_placement(radius: int) -> BoundedPlacement:
    """The disjoint-ranges line for an agent that never leaves ``radius``.

    Nodes: ``4·radius + 7`` (odd — central node, every pair feasible).
    Starts ``2·radius + 2`` apart with ``radius + 2`` margin to each end:
    the activity balls ``[start ± radius]`` are disjoint and interior.
    """
    n = 4 * radius + 7
    tree = edge_colored_line(n)
    p1 = radius + 2
    p2 = p1 + 2 * radius + 2
    return BoundedPlacement(tree, p1, p2, radius)
