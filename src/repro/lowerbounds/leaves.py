"""Theorem 4.3: the Ω(log ℓ) adversary (trees with ℓ leaves, max degree 3).

For ℓ = 2i, there are ``2^(i-1)`` side trees but a K-state agent admits at
most ``(K·D)^K`` distinct *behavior functions* — its complete input/output
signature on a side tree:

    q(s) = (p(s), t):  entering the side tree from the adjacent joining
    node in state s, the agent returns to that node in state p(s) after t
    rounds (or never: ⊥).

When ``K log(K·D) < ℓ/2 - 1`` the pigeonhole principle yields two
*non-isomorphic* side trees T1, T2 with identical behavior functions.  The
two-sided tree joining T1 and T2 (odd joining path, mirror-symmetric
labeling) with the agents started simultaneously at the joining nodes
adjacent to the roots is then indistinguishable, to the agents, from the
perfectly symmetric instance (T1, T1): they enter and leave the side trees
at the same times in the same states, and the joining line's symmetric
labeling keeps them apart — yet (T1, T2) is not perfectly symmetrizable.

This module computes behavior functions by direct simulation, finds a
colliding pair, builds the two-sided instance, and machine-certifies
non-meeting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..agents.automaton import Automaton
from ..agents.observations import NULL_PORT, STAY
from ..errors import ConstructionError
from ..sim.compiled import run_rendezvous_fast
from ..sim.engine import RendezvousOutcome
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.sidetrees import SideTree, TwoSided, all_side_trees, root_edge_color, two_sided_tree
from ..trees.tree import Tree

__all__ = [
    "BehaviorFunction",
    "behavior_function",
    "find_colliding_side_trees",
    "Thm43Instance",
    "build_thm43_instance",
]

# q(s): (return state, tour duration) or None for "never returns".
BehaviorFunction = tuple[Optional[tuple[int, int]], ...]


def behavior_function(automaton: Automaton, side: SideTree, m: int) -> BehaviorFunction:
    """The agent's tour signature on ``side``, for every possible state.

    A *tour* starts when the agent moves from the adjacent joining node
    ``u`` into the root while in state ``s`` (that move is emitted by λ(s))
    and ends the first time it re-enters ``u``.  The returned entry is
    ``(p, t)``: ``p`` = the state after processing the arrival observation
    at ``u`` (degree 2), ``t`` = rounds from entering the root through
    arriving back at ``u``; ``None`` if the agent never comes back
    (a configuration recurrence inside the side tree).
    """
    harness = two_sided_tree(side, side, m)
    tree = harness.tree
    root, u = harness.root1, harness.u
    port_u_root = tree.port(u, root)
    out: list[Optional[tuple[int, int]]] = []
    for s in range(automaton.num_states):
        out.append(_tour(automaton, tree, root, u, port_u_root, s))
    return tuple(out)


def _tour(
    automaton: Automaton,
    tree: Tree,
    root: int,
    u: int,
    port_u_root: int,
    entry_state: int,
) -> Optional[tuple[int, int]]:
    pos = root
    in_port = tree.port(root, u)
    state = entry_state
    rounds = 1  # the u -> root move is the tour's first round
    seen: set[tuple[int, int, int]] = set()
    while True:
        key = (state, pos, in_port)
        if key in seen:
            return None  # trapped inside: never returns to u
        seen.add(key)
        degree = tree.degree(pos)
        state = automaton.transition(state, in_port, degree)
        action = automaton.output[state]
        rounds += 1
        if action == STAY or degree == 0:
            in_port = NULL_PORT
            continue
        nxt, nxt_in = tree.move(pos, action % degree)
        if nxt == u:
            final = automaton.transition(state, port_u_root, 2)
            return (final, rounds)
        pos, in_port = nxt, nxt_in


def find_colliding_side_trees(
    automaton: Automaton, i: int, m: int
) -> Optional[tuple[SideTree, SideTree, BehaviorFunction]]:
    """First pair of side trees (for ℓ = 2i) with equal behavior functions."""
    seen: dict[BehaviorFunction, SideTree] = {}
    for side in all_side_trees(i, root_port_up=root_edge_color(m)):
        q = behavior_function(automaton, side, m)
        if q in seen:
            return (seen[q], side, q)
        seen[q] = side
    return None


@dataclass(frozen=True)
class Thm43Instance:
    """A defeating two-sided tree for one concrete agent, delay 0."""

    two_sided: TwoSided
    side1: SideTree
    side2: SideTree
    behavior: BehaviorFunction
    ell: int
    memory_bits: int
    outcome: Optional[RendezvousOutcome]

    @property
    def tree(self) -> Tree:
        return self.two_sided.tree

    @property
    def certified(self) -> bool:
        return self.outcome is not None and self.outcome.certified_never


def build_thm43_instance(
    automaton: Automaton,
    i: int,
    *,
    m: int = 4,
    verify: bool = True,
    verify_rounds: int = 4_000_000,
) -> Thm43Instance:
    """Construct (and certify) the Theorem 4.3 defeating instance.

    Raises :class:`ConstructionError` when no two side trees collide — the
    informative outcome for an agent whose memory is large relative to
    ℓ = 2i (the theorem only promises collisions when K log(KD) < ℓ/2 - 1).
    """
    if m % 2 != 0 or m < 2:
        raise ConstructionError("m must be even and >= 2")
    collision = find_colliding_side_trees(automaton, i, m)
    if collision is None:
        raise ConstructionError(
            f"no behavior-function collision among {2 ** (i - 1)} side trees: "
            f"the agent's {automaton.memory_bits} bits are too many for ℓ = {2 * i}"
        )
    side1, side2, q = collision
    ts = two_sided_tree(side1, side2, m)
    if perfectly_symmetrizable(ts.tree, ts.u, ts.v):  # pragma: no cover
        raise ConstructionError("Thm 4.3 produced a symmetrizable pair")

    outcome = None
    if verify:
        outcome = run_rendezvous_fast(
            ts.tree,
            automaton,
            ts.u,
            ts.v,
            delay=0,
            max_rounds=verify_rounds,
            certify=True,
        )
        if outcome.met:
            raise ConstructionError(
                f"Thm 4.3 construction failed: agents met at round {outcome.meeting_round}"
            )
        if not outcome.certified_never:  # pragma: no cover
            raise ConstructionError("Thm 4.3 verification inconclusive")
    return Thm43Instance(
        ts, side1, side2, q, 2 * i, automaton.memory_bits, outcome
    )
