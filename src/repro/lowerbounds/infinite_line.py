"""Simulation of a line automaton on the (virtual) infinite 2-edge-colored line.

Both lower-bound constructions (Thm 3.1, Thm 4.2) begin by watching the
agent walk on an infinite line whose every edge carries the same port number
at both extremities (a proper 2-edge-coloring).  Positions are integers;
the edge between ``p`` and ``p+1`` has color ``p mod 2``, so an agent
crossing it enters by that port on either side.

The walk record keeps, per round: position, the state *after* the round's
transition (the state whose λ produced the round's action), and whether the
agent moved.  Leave-events (the paper's "reaches node v in state s": ``s``
is the state in which the agent leaves ``v``) are derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..agents.automaton import LineAutomaton
from ..agents.observations import NULL_PORT, STAY

__all__ = ["InfiniteLineRun", "LeaveEvent", "simulate_infinite_line"]


@dataclass(frozen=True)
class LeaveEvent:
    """The agent left ``position`` at (1-based) round ``round_index`` while
    in state ``state`` (the state that emitted the move)."""

    round_index: int
    position: int
    state: int
    direction: int  # +1 or -1


@dataclass
class InfiniteLineRun:
    """Round-by-round record of an infinite-line execution from position 0."""

    positions: list[int]  # positions[t] = position after round t (t >= 1); [0] = 0
    states: list[int]  # states[t] = state whose action was executed in round t
    leave_events: list[LeaveEvent]

    @property
    def rounds(self) -> int:
        return len(self.positions) - 1

    def span(self, upto: int) -> tuple[int, int]:
        """(min, max) position over rounds 0..upto."""
        window = self.positions[: upto + 1]
        return min(window), max(window)

    def max_distance(self) -> int:
        return max(abs(p) for p in self.positions)


def _edge_color(p: int, q: int) -> int:
    """Port number (at both ends) of the edge between p and q = p±1."""
    return min(p, q) % 2


def simulate_infinite_line(automaton: LineAutomaton, rounds: int) -> InfiniteLineRun:
    """Run ``automaton`` from position 0 of the infinite colored line.

    The agent always observes degree 2.  The very first action comes from
    the initial state (paper §2.1); each subsequent round transitions on
    ``(in_port, 2)`` where ``in_port`` is the traversed edge's color, or
    ``(-1, 2)`` after a null move.
    """
    agent = automaton.clone()
    pos = 0
    positions = [0]
    states: list[int] = [agent.initial_state]  # states[0] unused placeholder
    leave_events: list[LeaveEvent] = []
    action = agent.start(2)
    in_port = NULL_PORT
    for rnd in range(1, rounds + 1):
        state_now = agent.state
        if action == STAY:
            in_port = NULL_PORT
        else:
            port = action % 2
            # Taking "port c" from pos means crossing its incident edge of
            # color c: the left edge has color (pos-1) mod 2, the right one
            # pos mod 2 — exactly one matches c.
            if pos % 2 == port:
                nxt = pos + 1
            else:
                nxt = pos - 1
            leave_events.append(LeaveEvent(rnd, pos, state_now, nxt - pos))
            in_port = _edge_color(pos, nxt)
            pos = nxt
        positions.append(pos)
        states.append(state_now)
        action = agent.step(in_port, 2)
    return InfiniteLineRun(positions, states, leave_events)
