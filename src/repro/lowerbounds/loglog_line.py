"""Theorem 4.2: the simultaneous-start adversary (Ω(log log n) on the line).

Given a concrete line agent, build a properly 2-edge-colored line of length
``x + x' + 1`` on which two copies started *simultaneously* at the two
extremities of a distinguished edge ``e`` never meet, despite the positions
not being perfectly symmetrizable.

Construction (paper §4.2):

1.  The transition function at degree-2 nodes is the functional
    ``π' : S -> S``; let γ = lcm of its circuit lengths
    (:mod:`repro.agents.digraph`).
2.  Watch one agent on the infinite colored line.  On the infinite line
    every observation has degree 2, so the state sequence is exactly the
    π'-orbit: eventually the agent cycles through one circuit C_i.  If its
    net drift per circuit is zero the agent is *bounded* and a disjoint-
    ranges line (with a central node, so all pairs are feasible) defeats
    it.  Otherwise:
3.  Take ``t0`` = first time the agent is at distance >= 2γ + |S| from its
    start, ``τ`` = the first of the next |C_i| rounds at which it stands on
    the circuit's *extreme position* (the farthest point of one circuit
    execution, in the drift direction), ``x`` = its distance from the start
    at τ, and ``x' `` = its distance at ``τ' = τ + 2γ`` (x' > x since it
    keeps drifting).
4.  The line L: ``x`` edges, then edge ``e``, then ``x'`` edges, properly
    2-edge-colored with the same phase the agent saw around its start; the
    agents start at the two extremities of ``e``.  Since ``x ≠ x'`` the
    pair is not perfectly symmetrizable, yet (Lemmas 4.5-4.8: parity +
    bouncing-period separation) the agents never meet.

The returned instance is machine-certified by configuration recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..agents.automaton import LineAutomaton
from ..agents.digraph import analyze_functional
from ..errors import ConstructionError
from ..sim.compiled import run_rendezvous_fast
from ..sim.engine import RendezvousOutcome
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.labelings import edge_colored_line
from .common import bounded_agent_placement
from ..trees.tree import Tree
from .infinite_line import simulate_infinite_line

__all__ = ["Thm42Instance", "build_thm42_instance"]


@dataclass(frozen=True)
class Thm42Instance:
    """A defeating simultaneous-start instance for one concrete agent."""

    tree: Tree
    start1: int
    start2: int
    kind: str  # "drifting" or "bounded"
    gamma: int
    x: int
    x_prime: int
    memory_bits: int
    outcome: Optional[RendezvousOutcome]

    @property
    def line_edges(self) -> int:
        return self.tree.num_edges

    @property
    def certified(self) -> bool:
        return self.outcome is not None and self.outcome.certified_never


def build_thm42_instance(
    automaton: LineAutomaton,
    *,
    verify: bool = True,
    verify_rounds: int = 4_000_000,
) -> Thm42Instance:
    """Construct (and certify) the Theorem 4.2 defeating instance."""
    digraph = analyze_functional(automaton.pi_prime())
    gamma = digraph.gamma
    k = automaton.num_states

    # Enough rounds to reach distance 2γ + K and then some: the drift per
    # circuit is at least 1 when nonzero, so O((2γ + K) · γ + K) rounds do.
    horizon = 4 * (2 * gamma + k + 2) * (gamma + 1) + 8 * (k + 2)
    run = simulate_infinite_line(automaton, horizon)

    instance = _try_drifting(automaton, run, gamma, k)
    if instance is None:
        placement = bounded_agent_placement(run.max_distance())
        instance = Thm42Instance(
            placement.tree,
            placement.start1,
            placement.start2,
            "bounded",
            gamma,
            0,
            0,
            automaton.memory_bits,
            None,
        )

    if verify:
        outcome = run_rendezvous_fast(
            instance.tree,
            automaton,
            instance.start1,
            instance.start2,
            delay=0,
            max_rounds=verify_rounds,
            certify=True,
        )
        if outcome.met:
            raise ConstructionError(
                f"Thm 4.2 construction failed: agents met at round {outcome.meeting_round}"
            )
        if not outcome.certified_never:  # pragma: no cover
            raise ConstructionError("Thm 4.2 verification inconclusive")
        return Thm42Instance(
            instance.tree,
            instance.start1,
            instance.start2,
            instance.kind,
            instance.gamma,
            instance.x,
            instance.x_prime,
            instance.memory_bits,
            outcome,
        )
    return instance


def _try_drifting(
    automaton: LineAutomaton, run, gamma: int, k: int
) -> Optional[Thm42Instance]:
    """The drifting branch; None if the agent never goes far enough."""
    threshold = 2 * gamma + k
    t0 = next(
        (t for t, p in enumerate(run.positions) if abs(p) >= threshold), None
    )
    if t0 is None or t0 + 3 * gamma + k + 2 > run.rounds:
        return None

    # The agent's state at t0 lies on its π'-circuit (t0 > |S|); one circuit
    # execution spans the next |C_i| rounds.  Find the extreme position: the
    # farthest point reached during one circuit execution, in the direction
    # that extends away from the start (paper's definition via
    # dist(u0,uj) = dist(u0,uk) + dist(uk,uj)).
    state_t0 = run.states[t0] if t0 >= 1 else automaton.initial_state
    digraph = analyze_functional(automaton.pi_prime())
    circuit_len = digraph.circuit_length(state_t0)
    window = run.positions[t0 : t0 + circuit_len + 1]
    u0, uk = window[0], window[-1]
    drift = uk - u0
    if drift == 0:
        return None  # zero net drift: treat as bounded
    # Extreme position: farthest in the drift direction within the window.
    if drift > 0:
        extreme = max(window)
    else:
        extreme = min(window)
    # τ: first round in (t0, t0 + circuit_len] standing on the extreme.
    tau = next(
        t for t in range(t0, t0 + circuit_len + 1) if run.positions[t] == extreme
    )
    x = abs(run.positions[tau])
    tau_prime = tau + 2 * gamma
    if tau_prime > run.rounds:  # pragma: no cover - horizon prevents this
        raise ConstructionError("Thm 4.2 horizon too small")
    x_prime = abs(run.positions[tau_prime])
    if x_prime == x:  # pragma: no cover - drift guarantees x' > x
        raise ConstructionError("Thm 4.2: x' == x despite drift")

    # Build L: x edges | e | x' edges, oriented so that the u-agent's drift
    # direction points into its own x-edge side (it must hit that extremity
    # at time τ, as Lemma 4.6's bookkeeping requires).  Coloring phase: in
    # the infinite run the agent started at node 0 and edge {p, p+1} has
    # color p mod 2; translate so the u-agent's start plays the role of 0.
    num_nodes = x + x_prime + 2
    if drift < 0:
        # u-agent at node x drifting left; finite edge {x+j, x+j+1} must
        # carry color j mod 2  =>  first_color = x mod 2.
        start1, start2 = x, x + 1
        tree = edge_colored_line(num_nodes, first_color=x % 2)
    else:
        # Mirror layout: u-agent at node x'+1 drifting right; edge
        # {x'+1, x'+2} plays the role of infinite edge {0, 1} (color 0)
        # =>  first_color = (x'+1) mod 2.
        start1, start2 = x_prime + 1, x_prime
        tree = edge_colored_line(num_nodes, first_color=(x_prime + 1) % 2)
    if perfectly_symmetrizable(tree, start1, start2):  # pragma: no cover
        raise ConstructionError("Thm 4.2 produced a symmetrizable pair")
    return Thm42Instance(
        tree, start1, start2, "drifting", gamma, x, x_prime,
        automaton.memory_bits, None,
    )
