"""Synchronous two-agent simulation: engine, traces, adversarial sweeps."""

from .adversary import (
    AdversaryReport,
    FailedInstance,
    adversarial_search,
    all_start_pairs,
    feasible_start_pairs,
    labelings_for,
)
from .certificates import JointConfig, NonMeetingCertificate, build_certificate
from .engine import RendezvousOutcome, run_rendezvous
from .instrument import RegisterEvent, SoloRun, run_solo
from .multi import GatheringOutcome, run_gathering
from .trace import RoundRecord, Trace

__all__ = [
    "run_rendezvous",
    "RendezvousOutcome",
    "NonMeetingCertificate",
    "JointConfig",
    "build_certificate",
    "GatheringOutcome",
    "run_gathering",
    "run_solo",
    "SoloRun",
    "RegisterEvent",
    "Trace",
    "RoundRecord",
    "adversarial_search",
    "AdversaryReport",
    "FailedInstance",
    "all_start_pairs",
    "feasible_start_pairs",
    "labelings_for",
]
