"""Synchronous two-agent simulation: engine, traces, adversarial sweeps.

Interchangeable backends execute rendezvous runs:

- :func:`run_rendezvous` — the readable reference engine (the oracle);
- :func:`run_rendezvous_compiled` — the table-driven backend for
  finite-state agents, with :func:`solve_all_delays` deciding a whole
  delay sweep in one pass — and the vectorized frontier kernel
  (:mod:`repro.sim.kernel`) advancing every undecided adversary choice
  of a sweep or pair grid per numpy gather, dict solvers as oracle;
- :func:`run_rendezvous_traced` — the lowering backend for register
  programs (:mod:`repro.sim.traced`): shared per-(tree, start) solo
  traces replayed against each other, with :func:`sweep_delays_traced`
  / :func:`sweep_gathering_traced` rolling lassoed traces into the
  exact product solvers;
- :func:`run_rendezvous_fast` — dispatches automata to the compiled
  backend, everything else to the reference engine (grid workloads
  reach the traced backend through the scenario backends, where trace
  sharing pays).

Every runner accepts ``faults=`` — a :class:`FaultPlan` of crash-stop,
pause, and adversarial-relabel faults (:mod:`repro.sim.faults`) —
dispatched to faulted twins that keep reference/compiled parity.  Long
grids run under the supervised pool (:mod:`repro.sim.supervise`):
per-job timeouts, retry with backoff, worker respawn, structured
:class:`JobFailure` rows, and checkpointed resume.
"""

from .adversary import (
    AdversaryReport,
    FailedInstance,
    adversarial_search,
    all_start_pairs,
    feasible_start_pairs,
    labelings_for,
)
from .batch import (
    BatchJob,
    GatheringJob,
    derive_seed,
    run_batch,
    run_gathering_batch,
)
from .certificates import JointConfig, NonMeetingCertificate, build_certificate
from .compiled import (
    CompiledAgent,
    DelayVerdict,
    compile_agent,
    run_rendezvous_compiled,
    run_rendezvous_fast,
    solve_all_delays,
    supports_compilation,
)
from .engine import RendezvousOutcome, run_rendezvous
from .faults import (
    CrashFault,
    FaultPlan,
    PauseFault,
    RelabelFault,
    run_gathering_faulted,
    run_rendezvous_faulted,
    solve_all_delays_faulted,
    solve_gathering_faulted,
)
from .gathering_solver import GatheringVerdict, solve_gathering
from .kernel import (
    AgentTable,
    PairVerdict,
    agent_table,
    kernel_available,
    run_pairs_kernel,
    solve_all_delays_auto,
    solve_all_delays_kernel,
    solve_delay_grid_kernel,
    solve_gathering_auto,
    solve_gathering_kernel,
)
from .supervise import (
    JobFailure,
    SweepCheckpoint,
    job_fingerprint,
    run_batch_supervised,
    run_gathering_batch_supervised,
)
from .instrument import RegisterEvent, SoloRun, run_solo
from .traced import (
    SoloTrace,
    TraceCache,
    TracedAutomaton,
    ensure_lasso,
    run_gathering_traced,
    run_pairs_traced,
    run_rendezvous_traced,
    solo_trace,
    sweep_delays_traced,
    sweep_gathering_traced,
    traced_automaton,
)
from .multi import (
    GatheringOutcome,
    run_gathering,
    run_gathering_compiled,
    run_gathering_reference,
)
from .trace import RoundRecord, Trace

__all__ = [
    "run_rendezvous",
    "run_rendezvous_compiled",
    "run_rendezvous_fast",
    "solve_all_delays",
    "supports_compilation",
    "compile_agent",
    "CompiledAgent",
    "DelayVerdict",
    "BatchJob",
    "GatheringJob",
    "run_batch",
    "run_gathering_batch",
    "derive_seed",
    "FaultPlan",
    "CrashFault",
    "PauseFault",
    "RelabelFault",
    "run_rendezvous_faulted",
    "run_gathering_faulted",
    "solve_all_delays_faulted",
    "solve_gathering_faulted",
    "JobFailure",
    "SweepCheckpoint",
    "job_fingerprint",
    "run_batch_supervised",
    "run_gathering_batch_supervised",
    "RendezvousOutcome",
    "NonMeetingCertificate",
    "JointConfig",
    "build_certificate",
    "GatheringOutcome",
    "GatheringVerdict",
    "run_gathering",
    "run_gathering_compiled",
    "run_gathering_reference",
    "solve_gathering",
    "run_solo",
    "SoloRun",
    "RegisterEvent",
    "SoloTrace",
    "TraceCache",
    "TracedAutomaton",
    "solo_trace",
    "ensure_lasso",
    "traced_automaton",
    "run_rendezvous_traced",
    "run_gathering_traced",
    "run_pairs_traced",
    "sweep_delays_traced",
    "sweep_gathering_traced",
    "AgentTable",
    "PairVerdict",
    "agent_table",
    "kernel_available",
    "run_pairs_kernel",
    "solve_all_delays_kernel",
    "solve_all_delays_auto",
    "solve_delay_grid_kernel",
    "solve_gathering_kernel",
    "solve_gathering_auto",
    "Trace",
    "RoundRecord",
    "adversarial_search",
    "AdversaryReport",
    "FailedInstance",
    "all_start_pairs",
    "feasible_start_pairs",
    "labelings_for",
]
