"""Route B lowering: solo-run JIT traces for register programs.

A rendezvous (or gathering) agent never observes its partners — agents
interact only by *being at the same node*, which ends the run.  On a
fixed tree, a deterministic agent's whole observation sequence is
therefore determined by its own movement: the joint execution is just k
independent **solo runs** compared round by round.  This module exploits
that:

- :class:`SoloTrace` lazily records one agent's solo run from one start
  node — resolved action and position per round — extending on demand
  and detecting *lassos*: the program returning (it waits forever) or
  its machine state recurring (Brent cycle detection over
  :func:`repro.agents.lowering.machine_state_key`, with a cheap
  ``(position, entry port, register values)`` proxy filter so the full
  frame freeze runs only on candidate rounds);
- :class:`TraceCache` shares traces across runs keyed by (prototype,
  tree, start) — the grid workloads (exhaustive verification, success
  sweeps) re-decide many pairs over few distinct starts, so each start's
  interpreted run is paid once and every further pair replays integer
  tables;
- :func:`run_rendezvous_traced` / :func:`run_gathering_traced` replay
  the reference-engine semantics over traces (identical ``met`` /
  ``meeting_round`` / ``meeting_node`` verdicts; certification compares
  folded trace indices once every trace has lassoed);
- :func:`traced_automaton` rolls a lassoed trace into a genuine
  :class:`~repro.agents.automaton.Automaton` (a chain with a back edge),
  and :func:`sweep_delays_traced` / :func:`sweep_gathering_traced` feed
  those per-start automata straight into the exact product-configuration
  solvers (:func:`repro.sim.compiled.solve_all_delays`,
  :func:`repro.sim.gathering_solver.solve_gathering`) through their
  heterogeneous-prototype seam.

Failure is graceful by construction: ``met`` verdicts never depend on
machine-state keys (the trace *is* the executed prefix), an unlassoed
trace simply leaves a run undecided at its round budget exactly like the
reference engine, and the sweep entry points raise
:class:`~repro.errors.BudgetExceededError` /
:class:`~repro.errors.LoweringError` for the scenario backends to catch
and degrade to budgeted per-run execution.

Outcome contract: traced outcomes carry *fresh* (unexecuted) agent
clones in ``outcome.agents`` — the executed register account of a traced
run lives in the shared trace, not in per-run clones.  Callers that need
executed registers (the memory experiments) measure a solo replay
(:func:`repro.core.memory.measure_memory`), which is identical by the
same solo-determinism argument.
"""

from __future__ import annotations

from math import lcm
from typing import Optional, Sequence

try:  # optional accelerator for the chunked scans (never required)
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from ..agents.automaton import Automaton
from ..agents.lowering import machine_state_key
from ..agents.observations import NULL_PORT, STAY, AgentBase
from ..agents.program import AgentProgram
from ..errors import BudgetExceededError, LoweringError, SimulationError
from ..trees.tree import Tree
from .compiled import DelayVerdict, solve_all_delays
from .engine import RendezvousOutcome
from .gathering_solver import GatheringVerdict, solve_gathering
from .multi import GatheringOutcome, _validate
from .trace import RoundRecord, Trace

__all__ = [
    "SoloTrace",
    "MirrorTrace",
    "TraceCache",
    "solo_trace",
    "ensure_lasso",
    "traced_automaton",
    "lasso_automaton",
    "TracedAutomaton",
    "run_rendezvous_traced",
    "run_gathering_traced",
    "run_pairs_traced",
    "sweep_delays_traced",
    "sweep_gathering_traced",
]

ACTIVE = "active"
FINISHED = "finished"
CYCLED = "cycled"

#: Default cap on the rounds a sweep may spend lassoing one trace.
DEFAULT_TRACE_BUDGET = 1_000_000


class SoloTrace:
    """One agent's lazily-extended solo run from one start node.

    ``actions[t-1]`` / ``positions[t]`` are the resolved action taken
    and node occupied after round ``t`` (``positions[0]`` is the start).
    ``status`` is ``"active"`` (more rounds available on demand),
    ``"finished"`` (the program returned: null moves forever), or
    ``"cycled"`` (machine + environment state after round
    ``cycle_start + cycle_len`` provably equals the state after round
    ``cycle_start``); the latter two make every future round foldable in
    O(1) via :meth:`fold`.
    """

    # No strong reference back to the tree: the cache weak-keys entries on
    # tree objects, and a value->key reference would pin them forever.
    __slots__ = (
        "start", "agent", "actions", "positions", "status",
        "cycle_start", "cycle_len",
        "_pos", "_in_port", "_started", "_use_keys",
        "_deg", "_stride", "_move_to", "_move_in",
        "_anchor_pos", "_anchor_ip", "_anchor_regs", "_anchor_key",
        "_anchor_round", "_brent_steps", "_brent_power",
        "_registry", "_last_dist", "_link", "_link_round",
        "source", "_mapping", "_automaton",
    )

    def __init__(
        self,
        tree: Tree,
        prototype: AgentBase,
        start: int,
        *,
        use_keys: bool = True,
        merge_registry: Optional[dict] = None,
    ) -> None:
        if not (0 <= start < tree.n):
            raise SimulationError("start node outside the tree")
        self.start = start
        self.agent = prototype.clone()
        self.actions: list[int] = []
        self.positions: list[int] = [start]
        self.status = ACTIVE
        self.cycle_start: Optional[int] = None
        self.cycle_len: Optional[int] = None
        self._pos = start
        self._in_port = NULL_PORT
        self._started = False
        self._use_keys = use_keys and isinstance(self.agent, AgentProgram)
        self._stride, self._deg, self._move_to, self._move_in = (
            tree.flat_move_tables()
        )
        self._anchor_pos = -1
        self._anchor_ip = -2
        self._anchor_regs: Optional[tuple] = None
        self._anchor_key = None
        self._anchor_round = 0
        self._brent_steps = 0
        # First anchor at round 128: traces that meet quickly (the vast
        # majority in grid workloads) never pay a frame freeze at all.
        self._brent_power = 128
        # Suffix merging (see extend): registry of distinguished machine
        # states shared with the sibling traces of this (prototype, tree).
        self._registry = merge_registry if self._use_keys else None
        self._last_dist = 0
        self._link: Optional[tuple] = None  # (source trace, round offset)
        self._link_round = 0
        self._automaton: Optional["TracedAutomaton"] = None

    # -- recording ----------------------------------------------------------
    @property
    def rounds_recorded(self) -> int:
        return len(self.actions)

    @property
    def complete(self) -> bool:
        """Every future round is determined (finished or cycled)."""
        return self.status != ACTIVE

    def extend(self, upto: int) -> None:
        """Record rounds until ``rounds_recorded >= upto`` or the trace
        lassos; a no-op on complete traces.

        Cycle detection is Brent's algorithm on the full (environment,
        machine) state, gated to stay off the hot path: per round only
        the two ``(position, entry port)`` integers are compared against
        the anchor; on a hit the register values are compared next, and
        the frame freeze (:func:`machine_state_key`) — the only
        expensive probe — runs solely on full proxy matches, so a false
        collision costs one freeze and never a wrong cycle.  An
        unfreezable machine state disables detection; the trace stays
        honestly "active" (it can extend, it just can never certify).

        **Suffix merging.**  Sibling traces of one (prototype, tree)
        share a registry of *distinguished* machine states — sampled by
        a phase-free rolling hash of the recent movement, so two traces
        walking the same steady-state loop sample the same states no
        matter when each entered it.  When this trace reaches a state
        another trace already recorded, their futures are identical
        (same machine state, same node, same pending observation), so
        the trace *links*: all further rounds are copied from the
        sibling instead of re-interpreting the program.  This is the
        mechanism that decides a whole tree's pair grid from a handful
        of interpreted suffixes (the Theorem 4.1 agent's steady-state
        loop depends only on (ν, ℓ, central port), not on the start).
        """
        if self._link is not None:
            self._extend_linked(upto)
            return
        if self.status != ACTIVE:
            return
        agent = self.agent
        deg, stride = self._deg, self._stride
        move_to, move_in = self._move_to, self._move_in
        actions, positions = self.actions, self.positions
        is_program = isinstance(agent, AgentProgram)
        pos = self._pos
        in_port = self._in_port
        started = self._started
        # Drive the routine generator directly: AgentProgram.step's
        # guard-and-dispatch shell costs ~15% of a round at this loop's
        # granularity.  StopIteration handling mirrors step()'s.
        gen = agent.generator if is_program else None
        step = agent.step
        regs_values = agent.registers._values if is_program else None
        use_keys = self._use_keys
        anchor_pos = self._anchor_pos
        anchor_ip = self._anchor_ip
        brent_steps = self._brent_steps
        brent_power = self._brent_power
        registry = self._registry
        last_dist = self._last_dist
        rnd = len(actions)
        try:
            while rnd < upto:
                d = deg[pos]
                if started:
                    if gen is not None:
                        try:
                            raw = gen.send((in_port, d))
                        except StopIteration:
                            raw = STAY
                            agent._done = True
                    else:
                        raw = step(in_port, d)
                else:
                    raw = agent.start(d)
                    started = True
                    # start() installs a fresh register bank and routine
                    if is_program:
                        regs_values = agent.registers._values
                        gen = None if agent._done else agent.generator
                if raw == STAY or d == 0:
                    a = STAY
                    in_port = NULL_PORT
                else:
                    a = raw % d
                    base = pos * stride + a
                    pos = move_to[base]
                    in_port = move_in[base]
                actions.append(a)
                positions.append(pos)
                rnd += 1
                if is_program and agent._done:
                    # The program returned: this round's action was the
                    # final STAY; it waits at its node forever.
                    self.status = FINISHED
                    break
                if (
                    registry is not None
                    and pos == 0
                    and rnd >= 512  # short traces never pay for sampling
                    and rnd - last_dist >= 64
                ):
                    # Phase-free distinguished-state sampling: trigger on
                    # visits to node 0 (pure machine/environment state, no
                    # round index), thin with a hash of the register
                    # values, and only then pay the frame freeze.  Two
                    # traces running the same steady-state loop sample the
                    # same states regardless of when each entered it.
                    rv = (
                        tuple(regs_values.values())
                        if regs_values is not None
                        else ()
                    )
                    if (hash(rv) ^ in_port) & 7 == 0:
                        last_dist = rnd
                        try:
                            key = (pos, in_port, machine_state_key(agent))
                        # repro-lint: disable=RPR002 -- in-trace downgrade, not a verdict: an unfreezable machine state only disables cross-trace suffix sharing; the trace keeps interpreting and certification is unaffected
                        except LoweringError:
                            registry = self._registry = None
                        else:
                            ent = registry.get(key)
                            if ent is None:
                                registry[key] = (self, rnd)
                            elif ent[0] is self:
                                # revisited own distinguished state: cycle
                                self.status = CYCLED
                                self.cycle_start = ent[1]
                                self.cycle_len = rnd - ent[1]
                                break
                            else:
                                # identical machine state in a sibling
                                # trace: futures coincide — link to its
                                # interpreting root and copy (None: the
                                # chain leads back here; keep interpreting)
                                link = self._resolve_link(ent[0], ent[1], rnd)
                                if link is not None:
                                    self._link = link
                                    self._link_round = rnd
                                    break
                if use_keys:
                    if (
                        pos == anchor_pos
                        and in_port == anchor_ip
                        and tuple(regs_values.values()) == self._anchor_regs
                    ):
                        try:
                            key = machine_state_key(agent)
                        # repro-lint: disable=RPR002 -- in-trace downgrade, not a verdict: unfreezable state only disables Brent machine-state lassoing for this trace; no certificate is ever claimed without it
                        except LoweringError:
                            use_keys = self._use_keys = False
                            continue
                        if key == self._anchor_key:
                            self.status = CYCLED
                            self.cycle_start = self._anchor_round
                            self.cycle_len = rnd - self._anchor_round
                            break
                    brent_steps += 1
                    if brent_steps == brent_power:
                        try:
                            self._anchor_key = machine_state_key(agent)
                        # repro-lint: disable=RPR002 -- in-trace downgrade, not a verdict: unfreezable state only disables Brent machine-state lassoing for this trace; no certificate is ever claimed without it
                        except LoweringError:
                            use_keys = self._use_keys = False
                            continue
                        anchor_pos = self._anchor_pos = pos
                        anchor_ip = self._anchor_ip = in_port
                        self._anchor_regs = tuple(regs_values.values())
                        self._anchor_round = rnd
                        brent_steps = 0
                        brent_power <<= 1
        finally:
            # Keep the resumable state consistent even if the agent raises
            # (the genuine protocol error must surface like the reference
            # engine's, with the trace intact up to the failing round).
            self._pos = pos
            self._in_port = in_port
            self._started = started
            self._brent_steps = brent_steps
            self._brent_power = brent_power
            self._last_dist = last_dist
        if self._link is not None and len(self.actions) < upto:
            self._extend_linked(upto)

    def _resolve_link(self, other: "SoloTrace", ornd: int, rnd: int):
        """The (root trace, offset) this trace should link to, or ``None``.

        Follows ``other``'s own link chain to its interpreting root,
        accumulating offsets, and refuses a link whose root is this very
        trace — two sibling traces must never link to each other (the
        mutual ``extend`` recursion would never terminate).  Chains are
        flattened at link time, so they stay acyclic by induction.
        """
        root, off = other, ornd - rnd
        while root._link is not None:
            nxt, noff = root._link
            off += noff
            root = nxt
        if root is self:
            return None
        return root, off

    def _extend_linked(self, upto: int) -> None:
        """Copy rounds from the linked sibling trace (zero interpretation).

        ``self(t) == source(t + off)`` for every ``t >= _link_round``, so
        extension is slice copies over the source's raw region; the
        sibling's lasso (finish or cycle) carries over with its round
        indices shifted into this trace.  A cycle whose shifted range
        reaches past the source's recorded rounds is completed through
        the source's *fold* — the source never records past its own
        lasso, so the wrap-around region is copied element-wise.
        """
        src, off = self._link
        if src.status == ACTIVE and len(src.actions) < upto + off:
            src.extend(upto + off)
        sa, sp = src.actions, src.positions
        m = len(self.actions)
        stop = min(upto, len(sa) - off)
        if stop > m:
            self.actions.extend(sa[m + off:stop + off])
            self.positions.extend(sp[m + 1 + off:stop + 1 + off])
        if src.status == FINISHED:
            if len(self.actions) == len(sa) - off:
                self.status = FINISHED
        elif src.status == CYCLED:
            lam = src.cycle_len
            c_self = max(src.cycle_start - off, self._link_round)
            m = len(self.actions)
            while m < c_self + lam:  # wrap past the source's raw region
                idx = src.fold(m + 1 + off)
                self.actions.append(sa[idx - 1])
                self.positions.append(sp[idx])
                m += 1
            self.status = CYCLED
            self.cycle_start = c_self
            self.cycle_len = lam

    # -- folded access ------------------------------------------------------
    def fold(self, t: int) -> int:
        """Map active-round index ``t >= 0`` onto a recorded index."""
        m = len(self.actions)
        if t <= m:
            return t
        if self.status == FINISHED:
            return m
        if self.status == CYCLED:
            c, lam = self.cycle_start, self.cycle_len
            return c + ((t - c - 1) % lam) + 1
        raise SimulationError(
            "trace not extended this far; call extend() first"
        )  # pragma: no cover - callers extend before folding

    def position_after(self, t: int) -> int:
        """Node occupied after the agent's ``t``-th active round."""
        return self.positions[self.fold(t)]

    def action_at(self, t: int) -> int:
        """Resolved action of the agent's ``t``-th active round
        (``t >= 1``)."""
        m = len(self.actions)
        if t > m and self.status == FINISHED:
            return STAY
        return self.actions[self.fold(t) - 1]


class MirrorTrace(SoloTrace):
    """A solo trace derived from its automorphic image — for free.

    On a tree with a (necessarily involutive) port-preserving
    automorphism ``f``, anonymity makes the run from ``f(s)`` the
    ``f``-image of the run from ``s``: degrees and ports agree along the
    mapped trajectory, so the observation and action sequences are
    *identical* and positions map pointwise — the very argument behind
    Fact 1.1's impossibility.  Deriving the mirror costs zero
    interpreted rounds, which is exactly what the hard symmetric
    instances (near-mirror pairs on symmetric lines, the Fact 1.1
    checks) need: their two traces are built once, not twice.

    The mirror keeps its own action/position lists, synced from the
    source on :meth:`extend`, so every consumer invariant
    (``len(positions) == len(actions) + 1``) holds at read time.
    """

    __slots__ = ()  # source/_mapping live in SoloTrace.__slots__

    def __init__(self, source: SoloTrace, mapping: dict) -> None:
        self.source = source
        self._mapping = mapping
        self.start = mapping[source.start]
        self.agent = None  # never interpreted: the source is
        self.actions = []
        self.positions = [self.start]
        self.status = ACTIVE
        self.cycle_start = None
        self.cycle_len = None
        self._automaton = None
        self._sync()

    def _sync(self) -> None:
        src = self.source
        sa, sp = src.actions, src.positions
        f = self._mapping
        m = len(self.actions)
        actions, positions = self.actions, self.positions
        while m < len(sa):
            actions.append(sa[m])
            m += 1
            positions.append(f[sp[m]])
        self.status = src.status
        self.cycle_start = src.cycle_start
        self.cycle_len = src.cycle_len

    def extend(self, upto: int) -> None:
        src = self.source
        if src.status == ACTIVE and len(src.actions) < upto:
            src.extend(upto)
        self._sync()


class TraceCache:
    """Traces shared across runs, keyed (prototype, tree, start).

    Weak keying on both the prototype and the tree keeps trace memory
    tied to the objects' lifetimes and the cache out of pickles (the
    multiprocessing fan-out never ships it).  When the tree carries a
    port-preserving automorphism ``f`` and the trace from ``f(start)``
    is already cached, the new trace is derived as its
    :class:`MirrorTrace` instead of being interpreted again.
    """

    def __init__(self) -> None:
        import weakref

        self._by_proto: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._automorphisms: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def _automorphism(self, tree: Tree) -> Optional[dict]:
        try:
            hit = self._automorphisms.get(tree, "miss")
        except TypeError:  # pragma: no cover - tree not weak-referenceable
            return None
        if hit == "miss":
            from ..trees.automorphism import port_preserving_automorphism

            hit = port_preserving_automorphism(tree)
            self._automorphisms[tree] = hit
        return hit

    def get(
        self, tree: Tree, prototype: AgentBase, start: int, *, use_keys: bool = True
    ) -> SoloTrace:
        import weakref

        from ..telemetry import current as _telemetry

        t = _telemetry()
        try:
            per_tree = self._by_proto.get(prototype)
            if per_tree is None:
                per_tree = weakref.WeakKeyDictionary()
                self._by_proto[prototype] = per_tree
        except TypeError:  # prototype not weak-referenceable
            if t.enabled:
                t.count("trace.cache.uncacheable")
            return SoloTrace(tree, prototype, start, use_keys=use_keys)
        entry = per_tree.get(tree)
        if entry is None:
            entry = ({}, {})  # (traces by start, distinguished-state registry)
            per_tree[tree] = entry
        traces, registry = entry
        trace = traces.get(start)
        if trace is None:
            f = self._automorphism(tree)
            if f is not None and f.get(start, start) != start:
                src = traces.get(f[start])
                if type(src) is SoloTrace:  # never chain mirrors
                    trace = MirrorTrace(src, f)
                    if t.enabled:
                        t.count("trace.cache.mirror")
            if trace is None:
                trace = SoloTrace(
                    tree, prototype, start,
                    use_keys=use_keys, merge_registry=registry,
                )
                if t.enabled:
                    t.count("trace.cache.miss")
            traces[start] = trace
        elif t.enabled:
            t.count("trace.cache.hit")
        return trace

    def clear(self) -> None:
        self._by_proto.clear()
        self._automorphisms.clear()


#: The process-wide default cache (benchmarks clear it for fresh timings).
GLOBAL_TRACE_CACHE = TraceCache()


def solo_trace(
    tree: Tree,
    prototype: AgentBase,
    start: int,
    *,
    cache: bool = True,
    use_keys: bool = True,
) -> SoloTrace:
    """The (possibly cached) solo trace of ``prototype`` from ``start``."""
    if cache:
        return GLOBAL_TRACE_CACHE.get(tree, prototype, start, use_keys=use_keys)
    return SoloTrace(tree, prototype, start, use_keys=use_keys)


def ensure_lasso(trace: SoloTrace, budget: int = DEFAULT_TRACE_BUDGET) -> SoloTrace:
    """Extend ``trace`` until it lassos (finished/cycled) or raise
    :class:`~repro.errors.BudgetExceededError` at ``budget`` rounds."""
    if not trace.complete:
        trace.extend(budget)
    if not trace.complete:
        raise BudgetExceededError(
            f"solo trace from start {trace.start} found no lasso within "
            f"{budget} rounds"
        )
    return trace


class TracedAutomaton(Automaton):
    """A lassoed solo trace rolled into an explicit automaton.

    State ``t`` emits the trace's round-``t+1`` action; transitions
    ignore the observation (the trace already fixed every observation
    the agent will see from its start node) and walk the chain, with the
    lasso's back edge closing the cycle.  Only valid for the (tree,
    start) the trace was recorded on — exactly the per-(tree, start)
    action table the exact solvers consume.
    """

    #: Traced transitions ignore the observation, so the automaton's
    #: behavior is fully specified by a single placeholder observation —
    #: the alphabet the minimization engine refines over.
    alphabet = ((NULL_PORT, 1),)

    def __init__(self, trace: SoloTrace) -> None:
        m = trace.rounds_recorded
        if m == 0 or not trace.complete:
            raise SimulationError("traced_automaton needs a lassoed trace")
        if trace.status == CYCLED:
            back = trace.cycle_start
        else:  # FINISHED: the last recorded action is the absorbing STAY
            back = m - 1
        nxt = [min(t + 1, m - 1) for t in range(m)]
        nxt[m - 1] = back
        self._next = nxt
        self.back = back
        self.trace_start = trace.start
        self.trace_status = trace.status
        super().__init__(
            m, lambda s, _ip, _d: self._next[s], list(trace.actions), 0
        )

    def clone(self) -> "TracedAutomaton":
        fresh = TracedAutomaton.__new__(TracedAutomaton)
        fresh._next = self._next
        fresh.back = self.back
        fresh.trace_start = self.trace_start
        fresh.trace_status = self.trace_status
        fresh.num_states = self.num_states
        fresh.output = self.output
        fresh.initial_state = self.initial_state
        fresh._fn = self._fn
        fresh._table = self._table
        fresh.state = self.initial_state
        return fresh

    def __repr__(self) -> str:
        return (
            f"TracedAutomaton(start={self.trace_start}, K={self.num_states}, "
            f"{self.trace_status})"
        )


def traced_automaton(trace: SoloTrace) -> TracedAutomaton:
    """Roll a lassoed trace into its per-(tree, start) automaton."""
    return TracedAutomaton(trace)


def lasso_automaton(
    trace: SoloTrace, budget: int = DEFAULT_TRACE_BUDGET
) -> TracedAutomaton:
    """The (cached) exported lasso automaton of a trace.

    Lassoes the trace if needed (raising
    :class:`~repro.errors.BudgetExceededError` like :func:`ensure_lasso`)
    and memoizes the rolled automaton on the trace object: the exact
    sweeps and the program-memory atlas ask for the same automaton for
    every sweep over the same (prototype, tree, start), and the roll
    should be paid once per trace, not once per consumer.  Consumers
    clone before running, so the shared instance is never mutated.
    """
    cached = trace._automaton
    if cached is not None:
        return cached
    ensure_lasso(trace, budget)
    automaton = TracedAutomaton(trace)
    trace._automaton = automaton
    return automaton


# ----------------------------------------------------------------------
# Traced joint runs (the compiled backend's path for register programs)
# ----------------------------------------------------------------------


def _fresh_agents(prototype: AgentBase, count: int) -> tuple:
    return tuple(prototype.clone() for _ in range(count))


_CHUNK = 4096


def _crossings_prefix(p1: list, p2: list, upto: int) -> int:
    """Edge crossings over rounds 1..upto of two raw position lists."""
    if upto <= 0:
        return 0
    if _np is not None and upto >= 64:
        a = _np.array(p1[:upto + 1])
        b = _np.array(p2[:upto + 1])
        ap, ac = a[:-1], a[1:]
        bp, bc = b[:-1], b[1:]
        return int(((ac == bp) & (bc == ap) & (ac != bc)).sum())
    return sum(
        1
        for ap, ac, bp, bc in zip(
            p1[:upto], p1[1:upto + 1], p2[:upto], p2[1:upto + 1]
        )
        if ac == bp and bc == ap and ac != bc
    )


def _first_meet(p1: list, p2: list, lo: int, hi: int) -> int:
    """First index in [lo, hi] where the position lists coincide, or -1."""
    if _np is not None and hi - lo >= 64:
        eq = _np.array(p1[lo:hi + 1]) == _np.array(p2[lo:hi + 1])
        k = int(eq.argmax())
        return lo + k if eq[k] else -1
    off = next(
        (
            k
            for k, (a, b) in enumerate(zip(p1[lo:hi + 1], p2[lo:hi + 1]))
            if a == b
        ),
        -1,
    )
    return lo + off if off >= 0 else -1


def _run_delay0_fast(
    prototype: AgentBase,
    t1: SoloTrace,
    t2: SoloTrace,
    max_rounds: int,
    certify: bool,
) -> RendezvousOutcome:
    """Simultaneous-start replay: chunked scan over raw trace regions.

    With delay 0 both agents' active-round indices equal the global
    round, so the first meeting is the first index where the position
    lists coincide; crossings are recovered afterwards in one pass over
    the executed prefix.  Once a trace lassos short of the budget, the
    remainder falls back to the folded per-round loop (where
    certification also lives — it needs both lassos anyway).
    """
    p1, p2 = t1.positions, t2.positions
    rnd = 1  # next round to examine
    # Doubling chunks from a small start: short meetings over-extend the
    # traces by at most one chunk, long co-extensions amortize the
    # per-extend setup; whatever earlier pairs already recorded scans
    # for free before any extension happens.
    chunk = 64
    while rnd <= max_rounds:
        avail = min(len(p1), len(p2)) - 1
        if avail < rnd:
            hi = min(max_rounds, rnd + chunk - 1)
            chunk = min(chunk << 1, _CHUNK)
            if t1.status == ACTIVE and len(p1) <= hi:
                t1.extend(hi)
            if t2.status == ACTIVE and len(p2) <= hi:
                t2.extend(hi)
        else:
            hi = min(max_rounds, avail)
        scan_hi = min(hi, len(p1) - 1, len(p2) - 1)
        if scan_hi < rnd:
            break  # a trace lassoed short of the chunk: folded tail
        met = _first_meet(p1, p2, rnd, scan_hi)
        if met >= 0:
            return RendezvousOutcome(
                True, met, p1[met], met, False,
                _crossings_prefix(p1, p2, met), None,
                _fresh_agents(prototype, 2),
            )
        rnd = scan_hi + 1

    if rnd > max_rounds:  # budget exhausted inside the raw regions
        return RendezvousOutcome(
            False, None, None, max_rounds, False,
            _crossings_prefix(p1, p2, max_rounds), None,
            _fresh_agents(prototype, 2),
        )

    # Folded tail: at least one trace is complete (finished or cycled).
    crossings = _crossings_prefix(p1, p2, rnd - 1)
    i1 = t1.fold(rnd - 1) if rnd > 1 else 0
    i2 = t2.fold(rnd - 1) if rnd > 1 else 0
    pos1, pos2 = p1[i1], p2[i2]
    anchor = None
    steps = 0
    power = 1
    for r in range(rnd, max_rounds + 1):
        prev1, prev2 = pos1, pos2
        i1 = r
        if i1 > len(t1.actions):
            if t1.status == ACTIVE:
                t1.extend(i1)
            if i1 > len(t1.actions):
                i1 = t1.fold(i1)
        i2 = r
        if i2 > len(t2.actions):
            if t2.status == ACTIVE:
                t2.extend(i2)
            if i2 > len(t2.actions):
                i2 = t2.fold(i2)
        pos1, pos2 = p1[i1], p2[i2]
        if pos1 == prev2 and pos2 == prev1 and pos1 != pos2:
            crossings += 1
        if pos1 == pos2:
            return RendezvousOutcome(
                True, r, pos1, r, False, crossings, None,
                _fresh_agents(prototype, 2),
            )
        if certify and t1.status != ACTIVE and t2.status != ACTIVE:
            config = (i1, i2)
            if config == anchor:
                return RendezvousOutcome(
                    False, None, None, r, True, crossings, None,
                    _fresh_agents(prototype, 2),
                )
            steps += 1
            if steps == power:
                anchor = config
                steps = 0
                power <<= 1
    return RendezvousOutcome(
        False, None, None, max_rounds, False, crossings, None,
        _fresh_agents(prototype, 2),
    )


def run_rendezvous_traced(
    tree: Tree,
    prototype: AgentBase,
    start1: int,
    start2: int,
    *,
    delay: int = 0,
    delayed: int = 2,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    record_trace: bool = False,
    cache: bool = True,
) -> RendezvousOutcome:
    """Replay the reference rendezvous semantics over solo traces.

    Verdict parity follows the compiled backend's contract (``met`` /
    ``meeting_round`` / ``meeting_node`` / ``certified_never`` identical
    to the reference engine; ``rounds_executed`` of a certified run may
    differ).  Certification compares folded trace indices and therefore
    needs both traces lassoed; an unlassoed trace leaves the run honestly
    undecided at the budget.  ``outcome.agents`` are fresh clones (see
    the module docstring).
    """
    if not (0 <= start1 < tree.n and 0 <= start2 < tree.n):
        raise SimulationError("start nodes outside the tree")
    if delay < 0:
        raise SimulationError("delay must be >= 0")
    if delayed not in (1, 2):
        raise SimulationError("'delayed' must be 1 or 2")

    trace_log = Trace(start1, start2) if record_trace else None
    if start1 == start2:
        return RendezvousOutcome(
            True, 0, start1, 0, False, 0, trace_log, _fresh_agents(prototype, 2)
        )

    t1 = solo_trace(tree, prototype, start1, cache=cache)
    t2 = solo_trace(tree, prototype, start2, cache=cache)
    sr1 = delay if delayed == 1 else 0
    sr2 = delay if delayed == 2 else 0
    first_joint = max(sr1, sr2) + 1

    if delay == 0 and trace_log is None:
        # The grid workloads' common case (simultaneous start, no trace
        # recording): both active-round indices equal the global round,
        # so the meeting search is a straight scan of the two position
        # lists — done chunk-wise, with the crossing count recovered in
        # one pass over the executed prefix.
        return _run_delay0_fast(prototype, t1, t2, max_rounds, certify)

    pos1, pos2 = start1, start2
    # live lists: extend() appends in place, so these stay current
    acts1, poss1 = t1.actions, t1.positions
    acts2, poss2 = t2.actions, t2.positions
    crossings = 0
    anchor = None
    steps = 0
    power = 1

    for rnd in range(1, max_rounds + 1):
        prev1, prev2 = pos1, pos2
        i1 = rnd - sr1  # the agents' active-round indices (<= 0: asleep)
        i2 = rnd - sr2
        if i1 >= 1:
            if i1 > len(acts1):
                if t1.status == ACTIVE:
                    t1.extend(i1)
                if i1 > len(acts1):  # lassoed short of i1: fold
                    i1 = t1.fold(i1)
            act1 = acts1[i1 - 1]
            pos1 = poss1[i1]
        else:
            act1 = STAY
        if i2 >= 1:
            if i2 > len(acts2):
                if t2.status == ACTIVE:
                    t2.extend(i2)
                if i2 > len(acts2):
                    i2 = t2.fold(i2)
            act2 = acts2[i2 - 1]
            pos2 = poss2[i2]
        else:
            act2 = STAY

        if trace_log is not None:
            trace_log.append(RoundRecord(rnd, pos1, pos2, act1, act2))
        if pos1 == prev2 and pos2 == prev1 and pos1 != pos2:
            crossings += 1
        if pos1 == pos2:
            return RendezvousOutcome(
                True, rnd, pos1, rnd, False, crossings, trace_log,
                _fresh_agents(prototype, 2),
            )
        if certify and rnd > first_joint and t1.status != ACTIVE and t2.status != ACTIVE:
            config = (i1, i2)
            if config == anchor:
                return RendezvousOutcome(
                    False, None, None, rnd, True, crossings, trace_log,
                    _fresh_agents(prototype, 2),
                )
            steps += 1
            if steps == power:
                anchor = config
                steps = 0
                power <<= 1

    return RendezvousOutcome(
        False, None, None, max_rounds, False, crossings, trace_log,
        _fresh_agents(prototype, 2),
    )


def run_gathering_traced(
    tree: Tree,
    prototype: AgentBase,
    starts: Sequence[int],
    *,
    delays: Optional[Sequence[int]] = None,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    cache: bool = True,
) -> GatheringOutcome:
    """Replay the reference gathering semantics over k solo traces."""
    starts = list(starts)
    delay_list = _validate(tree, starts, delays)
    k = len(starts)
    traces = [solo_trace(tree, prototype, s, cache=cache) for s in starts]

    pos = list(starts)

    def cluster_size() -> int:
        counts: dict[int, int] = {}
        for p in pos:
            counts[p] = counts.get(p, 0) + 1
        return max(counts.values())

    largest = cluster_size()
    if largest == k:
        return GatheringOutcome(True, 0, pos[0], 0, tuple(pos), largest)

    first_joint = max(delay_list) + 1
    anchor = None
    steps = 0
    power = 1

    poss = [tr.positions for tr in traces]  # live lists (see rendezvous)
    folded = [0] * k
    for rnd in range(1, max_rounds + 1):
        for i in range(k):
            a = rnd - delay_list[i]
            if a >= 1:
                tr = traces[i]
                pi = poss[i]
                if a >= len(pi):  # positions has rounds+1 entries
                    if tr.status == ACTIVE:
                        tr.extend(a)
                    if a >= len(pi):
                        a = tr.fold(a)
                folded[i] = a
                pos[i] = pi[a]
        size = cluster_size()
        largest = max(largest, size)
        if size == k:
            return GatheringOutcome(True, rnd, pos[0], rnd, tuple(pos), largest)
        if (
            certify
            and rnd > first_joint
            and all(tr.status != ACTIVE for tr in traces)
        ):
            config = tuple(folded)
            if config == anchor:
                return GatheringOutcome(
                    False, None, None, rnd, tuple(pos), largest, True
                )
            steps += 1
            if steps == power:
                anchor = config
                steps = 0
                power <<= 1
    return GatheringOutcome(False, None, None, max_rounds, tuple(pos), largest)


# ----------------------------------------------------------------------
# Exact sweeps over traced tables
# ----------------------------------------------------------------------


def sweep_delays_traced(
    tree: Tree,
    prototype: AgentBase,
    start1: int,
    start2: int,
    *,
    max_delay: int,
    sides: Sequence[int] = (1, 2),
    trace_budget: int = DEFAULT_TRACE_BUDGET,
    max_configs: int = 4_000_000,
    cache: bool = True,
    solver=None,
) -> list[DelayVerdict]:
    """Decide a whole delay sweep for a register program, exactly.

    Both starts' solo traces are lassoed once and rolled into
    per-(tree, start) automata; the batched product-configuration solver
    then decides every (θ, delayed side) choice over those tables.
    ``solver`` substitutes a :func:`~repro.sim.compiled.solve_all_delays`
    drop-in (the backends pass the kernel auto-dispatcher here).
    Raises :class:`~repro.errors.BudgetExceededError` (no lasso within
    ``trace_budget``, or solver guard) or
    :class:`~repro.errors.LoweringError` — callers degrade to budgeted
    per-run execution.
    """
    if start1 == start2:  # met at round 0 under every adversary choice
        sides_ = list(dict.fromkeys(sides))
        zero_side = 2 if 2 in sides_ else sides_[0]
        return [
            DelayVerdict(theta, side, True, 0, False)
            for theta in range(max_delay + 1)
            for side in sides_
            if theta > 0 or side == zero_side
        ]
    a1 = lasso_automaton(
        solo_trace(tree, prototype, start1, cache=cache), trace_budget
    )
    a2 = lasso_automaton(
        solo_trace(tree, prototype, start2, cache=cache), trace_budget
    )
    solve = solver if solver is not None else solve_all_delays
    return solve(
        tree, a1, start1, start2,
        max_delay=max_delay, delayed_sides=tuple(sides),
        max_configs=max_configs, prototype2=a2,
    )


def sweep_gathering_traced(
    tree: Tree,
    prototype: AgentBase,
    starts: Sequence[int],
    delay_vectors: Sequence[Sequence[int]],
    *,
    trace_budget: int = DEFAULT_TRACE_BUDGET,
    max_configs: int = 4_000_000,
    cache: bool = True,
    solver=None,
) -> list[GatheringVerdict]:
    """Decide a whole gathering grid for a register program, exactly
    (cf. :func:`sweep_delays_traced`; ``solver`` substitutes a
    :func:`~repro.sim.gathering_solver.solve_gathering` drop-in)."""
    starts = list(starts)
    automata = [
        lasso_automaton(solo_trace(tree, prototype, s, cache=cache), trace_budget)
        for s in starts
    ]
    solve = solver if solver is not None else solve_gathering
    return solve(
        tree, automata[0], starts, delay_vectors,
        max_configs=max_configs, prototypes=automata,
    )


# ----------------------------------------------------------------------
# Batched delay-0 pairs over shared traces
# ----------------------------------------------------------------------


def _trace_window(trace: SoloTrace, lo: int, hi: int):
    """Positions after rounds ``lo..hi`` as a numpy column (raw recorded
    slice while available, folded fancy-index once the trace lassos)."""
    if trace.status == ACTIVE and len(trace.actions) < hi:
        trace.extend(hi)
    m = len(trace.actions)
    if m >= hi:
        return _np.asarray(trace.positions[lo:hi + 1], dtype=_np.int64)
    t_idx = _np.arange(lo, hi + 1, dtype=_np.int64)
    if trace.status == FINISHED:
        idx = _np.minimum(t_idx, m)
    else:  # CYCLED: SoloTrace.fold, vectorized
        c, lam = trace.cycle_start, trace.cycle_len
        idx = _np.where(t_idx <= m, t_idx, c + ((t_idx - c - 1) % lam) + 1)
    return _np.asarray(trace.positions, dtype=_np.int64)[idx]


def _never_horizon(t1: SoloTrace, t2: SoloTrace) -> Optional[int]:
    """Round past which a meeting can no longer first occur, or ``None``
    while either trace is still active.

    Both position sequences are eventually periodic (constant for a
    finished trace), so the joint sequence repeats with period
    ``lcm(λ1, λ2)`` beyond both recorded prefixes: scanning one full
    joint period past them without a meeting certifies *never*.
    """
    if t1.status == ACTIVE or t2.status == ACTIVE:
        return None
    periods = [
        1 if tr.status == FINISHED else tr.cycle_len for tr in (t1, t2)
    ]
    return max(len(t1.actions), len(t2.actions)) + lcm(*periods)


def run_pairs_traced(
    tree: Tree,
    prototype: AgentBase,
    pairs: Sequence[tuple[int, int]],
    *,
    max_rounds: int,
    cache: bool = True,
):
    """Decide delay-0 rendezvous for many start pairs over shared traces.

    The grid workloads (success sweeps, exhaustive verification) re-use
    few distinct starts across many pairs, so each distinct start's solo
    trace is recorded once and all pairs compare position *columns* of a
    shared window matrix per chunk — the meeting scan for the whole
    batch is one vectorized equality per window.  Returns
    :class:`~repro.sim.kernel.PairVerdict` rows with the engines' parity
    contract (``met`` iff the first meeting round is ``<= max_rounds``;
    a pair whose traces both lassoed is certified *never* once a full
    joint period beyond their prefixes has been scanned without a
    meeting).
    """
    from .kernel import PairVerdict

    for u, v in pairs:
        if not (0 <= u < tree.n and 0 <= v < tree.n):
            raise SimulationError("start nodes outside the tree")

    verdicts: list[Optional[PairVerdict]] = [None] * len(pairs)
    traces: dict[int, SoloTrace] = {}
    live: list[tuple[int, SoloTrace, SoloTrace]] = []
    for j, (u, v) in enumerate(pairs):
        if u == v:
            verdicts[j] = PairVerdict(True, 0, False)
            continue
        for s in (u, v):
            if s not in traces:
                traces[s] = solo_trace(tree, prototype, s, cache=cache)
        live.append((j, traces[u], traces[v]))

    if _np is None:  # scalar fallback: same verdicts, pair at a time
        for j, t1, t2 in live:
            out = _run_delay0_fast(prototype, t1, t2, max_rounds, True)
            verdicts[j] = PairVerdict(out.met, out.meeting_round, out.certified_never)
        return verdicts

    lo = 1
    chunk = 256
    while live and lo <= max_rounds:
        hi = min(max_rounds, lo + chunk - 1)
        chunk = min(chunk << 1, 65536)
        row_of: dict[int, int] = {}
        cols = []
        for _j, t1, t2 in live:
            for tr in (t1, t2):
                if id(tr) not in row_of:
                    row_of[id(tr)] = len(cols)
                    cols.append(_trace_window(tr, lo, hi))
        colmat = _np.stack(cols)
        i1 = _np.fromiter(
            (row_of[id(t1)] for _j, t1, _t2 in live),
            dtype=_np.int64, count=len(live),
        )
        i2 = _np.fromiter(
            (row_of[id(t2)] for _j, _t1, t2 in live),
            dtype=_np.int64, count=len(live),
        )
        eq = colmat[i1] == colmat[i2]
        met_row = eq.any(axis=1)
        first = eq.argmax(axis=1)
        still: list[tuple[int, SoloTrace, SoloTrace]] = []
        for r, (j, t1, t2) in enumerate(live):
            if met_row[r]:
                verdicts[j] = PairVerdict(True, lo + int(first[r]), False)
                continue
            horizon = _never_horizon(t1, t2)
            if horizon is not None and hi >= horizon:
                verdicts[j] = PairVerdict(False, None, True)
            else:
                still.append((j, t1, t2))
        live = still
        lo = hi + 1

    for j, _t1, _t2 in live:  # budget exhausted, nothing certified
        verdicts[j] = PairVerdict(False, None, False)
    return verdicts
