"""Supervised multiprocessing fan-out: the self-healing sweep pool.

:mod:`repro.sim.batch`'s ``Pool.map`` fan-out is the right tool for
healthy workloads, but a single pathological job takes the whole batch
with it: a hung worker blocks ``map`` forever, a killed worker (OOM,
``kill -9``) poisons the pool, and a 40-minute grid that dies at job
39/40 restarts from zero.  This module re-runs the same
:class:`~repro.sim.batch.BatchJob` / :class:`~repro.sim.batch.
GatheringJob` descriptions under an explicit supervisor:

- **per-job wall-clock timeouts** — a worker that exceeds ``timeout``
  seconds on one job is killed and replaced; the job is retried or
  reported, the rest of the grid is unaffected;
- **dead-worker detection** — a worker that disappears mid-job (signal,
  OOM kill, crash of the interpreter) is detected via its pipe's EOF /
  liveness and respawned;
- **bounded retry with exponential backoff** — ``retries`` extra
  attempts per job, the n-th retry delayed ``backoff * 2**(n-1)``
  seconds.  Only *infrastructure* failures (timeout, worker death) are
  retried; an exception raised inside the job is deterministic and
  fails immediately;
- **structured failures** — a job that exhausts its attempts yields a
  :class:`JobFailure` in its slot instead of crashing the batch, so one
  bad cell cannot erase an otherwise complete sweep;
- **checkpointed sweep state** — with ``checkpoint=`` every finished
  outcome is appended to a JSONL file keyed by a content fingerprint of
  ``(index, job)``; re-running the same grid after a kill replays the
  finished jobs from disk and computes only the rest.

Results come back in job order as ``Outcome | JobFailure``.  Supervised
outcomes cross a process boundary as plain dicts and therefore carry
**no trace and no agent objects** (``trace=None``, ``agents=()``) — use
the in-process engines when you need those.

Jobs that cannot be pickled (or ``processes <= 1``) run serially under
the same contract minus preemption: exceptions still become
:class:`JobFailure` rows and checkpoints still work, but a hung job
cannot be interrupted from within its own process.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pickle
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from ..telemetry import (
    Telemetry,
    current as _telemetry,
    use as _use_telemetry,
)
from .batch import (
    BatchJob,
    GatheringJob,
    _picklable,
    _run_gathering_job,
    _run_job,
)
from .engine import RendezvousOutcome
from .multi import GatheringOutcome

__all__ = [
    "JobFailure",
    "SweepCheckpoint",
    "job_fingerprint",
    "encode_outcome",
    "decode_outcome",
    "run_batch_supervised",
    "run_gathering_batch_supervised",
]

# How often the supervisor re-checks deadlines while waiting on worker
# pipes.  Bounds timeout overshoot; low enough to be invisible next to
# any real job, high enough that an idle supervisor costs nothing.
_POLL_INTERVAL = 0.05


@dataclass(frozen=True, slots=True)
class JobFailure:
    """A job slot that produced no outcome.

    ``kind`` is one of ``"timeout"`` (the job exceeded its wall-clock
    budget on every attempt), ``"crash"`` (the worker process died
    mid-job on every attempt), or ``"error"`` (the job itself raised —
    deterministic, never retried).  ``attempts`` counts executions
    performed, including the failing one.

    ``duration_seconds`` is the total wall-clock spent across all
    attempts and ``attempt_seconds`` the per-attempt breakdown (both
    monotonic deltas — wall timestamps never enter result rows, per the
    determinism contract), so checkpoint-resumed sweeps can report time
    lost to retries.  They default to zero/empty so positional
    construction from older call sites stays valid.
    """

    index: int
    kind: str
    message: str
    attempts: int
    duration_seconds: float = 0.0
    attempt_seconds: tuple[float, ...] = ()


def job_fingerprint(index: int, job: Union[BatchJob, GatheringJob]) -> str:
    """Content fingerprint of one grid cell, stable across runs.

    Pickle gives a canonical byte encoding of the full job (tree,
    prototype, parameters); unpicklable jobs fall back to ``repr``,
    which is stable for the dataclass fields that matter.  The index is
    mixed in so identical jobs at different grid positions checkpoint
    independently (results are positional).
    """
    try:
        blob = pickle.dumps((index, job), protocol=4)
    # repro-lint: disable=RPR002 -- pickling probe: any unpicklable job falls back to the repr fingerprint by design; nothing is lost but cache affinity
    except Exception:
        blob = repr((index, job)).encode()
    return hashlib.sha256(blob).hexdigest()


def encode_outcome(
    out: Union[RendezvousOutcome, GatheringOutcome],
) -> dict:
    """JSON-safe dict form of an outcome (drops trace/agents)."""
    if isinstance(out, RendezvousOutcome):
        return {
            "type": "rendezvous",
            "met": out.met,
            "meeting_round": out.meeting_round,
            "meeting_node": out.meeting_node,
            "rounds_executed": out.rounds_executed,
            "certified_never": out.certified_never,
            "crossings": out.crossings,
            "crashed": list(out.crashed),
        }
    if isinstance(out, GatheringOutcome):
        return {
            "type": "gathering",
            "gathered": out.gathered,
            "gathering_round": out.gathering_round,
            "gathering_node": out.gathering_node,
            "rounds_executed": out.rounds_executed,
            "positions": list(out.positions),
            "largest_cluster": out.largest_cluster,
            "certified_never": out.certified_never,
            "crashed": list(out.crashed),
        }
    raise TypeError(f"not an outcome: {type(out).__name__}")


def decode_outcome(payload: dict) -> Union[RendezvousOutcome, GatheringOutcome]:
    """Inverse of :func:`encode_outcome` (``trace=None``, ``agents=()``)."""
    if payload["type"] == "rendezvous":
        return RendezvousOutcome(
            payload["met"],
            payload["meeting_round"],
            payload["meeting_node"],
            payload["rounds_executed"],
            payload["certified_never"],
            payload["crossings"],
            None,
            (),
            tuple(payload.get("crashed", ())),
        )
    if payload["type"] == "gathering":
        return GatheringOutcome(
            payload["gathered"],
            payload["gathering_round"],
            payload["gathering_node"],
            payload["rounds_executed"],
            tuple(payload["positions"]),
            payload["largest_cluster"],
            payload["certified_never"],
            tuple(payload.get("crashed", ())),
        )
    raise ValueError(f"unknown outcome type: {payload.get('type')!r}")


class SweepCheckpoint:
    """Append-only JSONL record of finished grid cells.

    One line per finished job: ``{"fingerprint": ..., "outcome": ...}``.
    :meth:`load` tolerates a torn final line (the process died
    mid-write) by skipping anything that does not parse — losing the
    last record costs one recomputation, never the whole file.
    Failures are deliberately *not* recorded: a retried run should
    re-attempt them.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)

    def load(self) -> dict[str, dict]:
        """``fingerprint -> encoded outcome`` for every intact record."""
        finished: dict[str, dict] = {}
        if not self.path.exists():
            return finished
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                finished[rec["fingerprint"]] = rec["outcome"]
            except (ValueError, KeyError, TypeError):
                continue  # torn tail or foreign line — recompute that cell
        return finished

    def append(self, fingerprint: str, outcome: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps({"fingerprint": fingerprint, "outcome": outcome}) + "\n")
            fh.flush()


def run_batch_supervised(
    jobs: Sequence[BatchJob],
    *,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.1,
    checkpoint: Union[SweepCheckpoint, str, os.PathLike, None] = None,
) -> list[Union[RendezvousOutcome, JobFailure]]:
    """Run every rendezvous job under supervision; job order kept.

    ``timeout`` is the per-job wall-clock budget in seconds (``None``
    disables preemption); ``retries`` bounds *extra* attempts after an
    infrastructure failure; ``backoff`` scales the exponential retry
    delay; ``checkpoint`` (a path or :class:`SweepCheckpoint`) resumes
    finished jobs from a previous run of the same grid.
    """
    return _supervise(jobs, "rendezvous", processes, timeout, retries, backoff, checkpoint)


def run_gathering_batch_supervised(
    jobs: Sequence[GatheringJob],
    *,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.1,
    checkpoint: Union[SweepCheckpoint, str, os.PathLike, None] = None,
) -> list[Union[GatheringOutcome, JobFailure]]:
    """Run every gathering job under supervision; job order kept."""
    return _supervise(jobs, "gathering", processes, timeout, retries, backoff, checkpoint)


def _worker_loop(conn, kind: str, collect: bool = False) -> None:  # pragma: no cover - child process
    """One pool worker: recv ``(index, attempt, job)``, run, send back.

    Replies are 5-tuples ``(tag, index, attempt, payload, telemetry)``.
    Results are sent as *encoded* dicts (see :func:`encode_outcome`) so
    the reply never drags agent objects or traces through the pipe.  A
    job exception is reported, not raised — the worker stays healthy for
    the next assignment.  ``None`` (or a closed pipe) means shut down.

    With ``collect=True`` each job runs under a fresh worker-local
    :class:`~repro.telemetry.Telemetry` and its
    :meth:`~repro.telemetry.Telemetry.export_batch` rides back in the
    reply's fifth slot (``None`` otherwise — and on the error path the
    partial batch still ships, so cache/fallback counters accrued before
    the exception are not lost) for the supervisor to merge.

    ``KeyboardInterrupt`` / ``SystemExit`` are *never* absorbed into an
    error payload: a ^C must kill the worker (non-zero exit, visible to
    the supervisor as a death, handled by *its* own interrupt), not
    masquerade as a retryable :class:`JobFailure`.
    """
    run_one = _run_job if kind == "rendezvous" else _run_gathering_job
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                return
            index, attempt, job = msg
            telem = Telemetry() if collect else None
            try:
                if telem is not None:
                    with _use_telemetry(telem):
                        encoded = encode_outcome(run_one(job))
                else:
                    encoded = encode_outcome(run_one(job))
                batch = telem.export_batch() if telem is not None else None
                payload = ("ok", index, attempt, encoded, batch)
            # repro-lint: disable=RPR002 -- deliberate job-error capture: the failure is surfaced structurally as an ("error", ...) payload the supervisor turns into a JobFailure row; KeyboardInterrupt/SystemExit still propagate past Exception
            except Exception as exc:
                batch = telem.export_batch() if telem is not None else None
                payload = ("error", index, attempt, f"{type(exc).__name__}: {exc}", batch)
            conn.send(payload)
    except (EOFError, OSError):
        return  # supervisor hung up: clean shutdown


class _Worker:
    """Supervisor-side handle: process + duplex pipe + current assignment."""

    __slots__ = ("proc", "conn", "busy")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        # (index, attempt, deadline, started_at) — started_at feeds the
        # per-attempt durations reported on JobFailure rows.
        self.busy: Optional[tuple[int, int, float, float]] = None

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.terminate()
        self.proc.join()


def _spawn(ctx, kind: str, collect: bool = False) -> _Worker:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    proc = ctx.Process(target=_worker_loop, args=(child_conn, kind, collect), daemon=True)
    proc.start()
    # Close our copy of the child end: the parent's recv must see EOF the
    # moment the worker dies, not hang on a half-open pipe.
    child_conn.close()
    return _Worker(proc, parent_conn)


def _supervise(
    jobs: Sequence,
    kind: str,
    processes: Optional[int],
    timeout: Optional[float],
    retries: int,
    backoff: float,
    checkpoint,
) -> list:
    jobs = list(jobs)
    if not jobs:
        return []
    if retries < 0:
        retries = 0
    ckpt: Optional[SweepCheckpoint] = None
    if checkpoint is not None:
        ckpt = checkpoint if isinstance(checkpoint, SweepCheckpoint) else SweepCheckpoint(checkpoint)

    results: list = [None] * len(jobs)
    fingerprints = [job_fingerprint(i, job) for i, job in enumerate(jobs)]
    if ckpt is not None:
        finished = ckpt.load()
        for i, fp in enumerate(fingerprints):
            payload = finished.get(fp)
            if payload is not None:
                try:
                    results[i] = decode_outcome(payload)
                except (ValueError, KeyError, TypeError):
                    results[i] = None  # corrupt record — recompute
    pending = [i for i in range(len(jobs)) if results[i] is None]
    if not pending:
        return results

    if processes is None:
        processes = os.cpu_count() or 1
    processes = max(1, min(processes, len(pending)))
    # A requested timeout forces the pooled path even for one worker:
    # preemption needs a process boundary.  Serial is only for jobs that
    # cannot cross one, or single-process runs with nothing to preempt.
    if not _picklable([jobs[i] for i in pending]) or (
        processes <= 1 and timeout is None
    ):
        return _supervise_serial(jobs, pending, kind, results, fingerprints, ckpt)

    import multiprocessing
    from multiprocessing import connection as mpconn

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()

    telem = _telemetry()
    collect = telem.enabled

    # (ready_at, index, attempt): attempt is the number this execution
    # *will* be; backoff pushes ready_at into the future instead of
    # blocking the supervisor.
    queue: list[tuple[float, int, int]] = [(0.0, i, 1) for i in pending]
    remaining = len(pending)
    workers = [_spawn(ctx, kind, collect) for _ in range(processes)]
    # Per-index attempt durations (monotonic deltas), accumulated across
    # retries so a final JobFailure can report total time lost.
    durations: dict[int, list[float]] = {}

    def record_attempt(index: int, started_at: float) -> float:
        elapsed = time.monotonic() - started_at
        durations.setdefault(index, []).append(elapsed)
        if collect:
            telem.add_span("supervise/job", elapsed)
        return elapsed

    def settle(index: int, value) -> None:
        nonlocal remaining
        results[index] = value
        remaining -= 1

    def retry_or_fail(index: int, attempt: int, fail_kind: str, message: str) -> None:
        if collect:
            telem.count(f"supervise.job.{fail_kind}")
        if attempt <= retries:
            if collect:
                telem.count("supervise.job.retry")
            ready_at = time.monotonic() + backoff * (2 ** (attempt - 1))
            queue.append((ready_at, index, attempt + 1))
        else:
            spent = tuple(round(d, 6) for d in durations.get(index, ()))
            failure = JobFailure(
                index,
                fail_kind,
                message,
                attempt,
                duration_seconds=round(sum(spent), 6),
                attempt_seconds=spent,
            )
            if collect:
                telem.count("supervise.job.failed")
                telem.event(
                    "supervise.job_failed",
                    index=index,
                    kind=fail_kind,
                    attempts=attempt,
                    duration_seconds=failure.duration_seconds,
                )
            settle(index, failure)

    def reap(worker: _Worker, message: str) -> None:
        """A worker died or was preempted mid-job: account for the job,
        replace the worker if there is still work it could do."""
        assignment = worker.busy
        worker.kill()
        workers.remove(worker)
        if assignment is not None:
            index, attempt, _, started_at = assignment
            record_attempt(index, started_at)
            fail_kind = "timeout" if message.startswith("timed out") else "crash"
            retry_or_fail(index, attempt, fail_kind, message)
        if remaining > len(workers):
            if collect:
                telem.count("supervise.worker.respawn")
            workers.append(_spawn(ctx, kind, collect))

    try:
        while remaining:
            now = time.monotonic()
            # Assign ready queue items to idle workers.
            for worker in workers:
                if worker.busy is not None or not queue:
                    continue
                slot = next((j for j, item in enumerate(queue) if item[0] <= now), None)
                if slot is None:
                    break
                _, index, attempt = queue.pop(slot)
                try:
                    worker.conn.send((index, attempt, jobs[index]))
                except (BrokenPipeError, OSError):
                    queue.append((now, index, attempt))
                    worker.busy = None
                    reap(worker, "worker pipe broke on dispatch")
                    break
                deadline = now + timeout if timeout is not None else math.inf
                worker.busy = (index, attempt, deadline, time.monotonic())
                if collect:
                    telem.count("supervise.job.started")

            busy_conns = {w.conn: w for w in workers if w.busy is not None}
            if busy_conns:
                ready = mpconn.wait(list(busy_conns), timeout=_POLL_INTERVAL)
            else:
                ready = []
                if queue:  # everything is backing off; nap until the earliest retry
                    nap = min(item[0] for item in queue) - time.monotonic()
                    if nap > 0:
                        time.sleep(min(nap, _POLL_INTERVAL))

            for conn in ready:
                worker = busy_conns[conn]
                try:
                    tag, index, attempt, payload, batch = conn.recv()
                except (EOFError, OSError):
                    reap(worker, "worker process died mid-job")
                    continue
                if worker.busy is None or (index, attempt) != worker.busy[:2]:
                    continue  # stale reply from a superseded attempt
                started_at = worker.busy[3]
                worker.busy = None
                elapsed = record_attempt(index, started_at)
                if collect and batch is not None:
                    telem.merge(batch)
                if tag == "ok":
                    if collect:
                        telem.count("supervise.job.finished")
                    settle(index, decode_outcome(payload))
                    if ckpt is not None:
                        ckpt.append(fingerprints[index], payload)
                else:
                    # In-job exceptions are deterministic: retrying would
                    # reproduce them, so fail the slot immediately.
                    spent = tuple(round(d, 6) for d in durations.get(index, ()))
                    if collect:
                        telem.count("supervise.job.error")
                        telem.count("supervise.job.failed")
                        telem.event(
                            "supervise.job_failed",
                            index=index,
                            kind="error",
                            attempts=attempt,
                            duration_seconds=round(elapsed, 6),
                        )
                    settle(
                        index,
                        JobFailure(
                            index,
                            "error",
                            payload,
                            attempt,
                            duration_seconds=round(sum(spent), 6),
                            attempt_seconds=spent,
                        ),
                    )

            # Deadline and liveness sweep (copy: reap mutates workers).
            now = time.monotonic()
            for worker in list(workers):
                if worker.busy is None:
                    continue
                index, attempt, deadline, started_at = worker.busy
                if not worker.proc.is_alive():
                    # Drain a reply that raced ahead of the death notice.
                    try:
                        if worker.conn.poll():
                            tag, r_index, r_attempt, payload, batch = worker.conn.recv()
                            if tag == "ok" and (r_index, r_attempt) == (index, attempt):
                                worker.busy = None
                                record_attempt(index, started_at)
                                if collect:
                                    if batch is not None:
                                        telem.merge(batch)
                                    telem.count("supervise.job.finished")
                                settle(index, decode_outcome(payload))
                                if ckpt is not None:
                                    ckpt.append(fingerprints[index], payload)
                    except (EOFError, OSError):
                        pass
                    reap(worker, "worker process died mid-job")
                elif now >= deadline:
                    reap(worker, f"timed out after {timeout}s")
    finally:
        # Supervised batches must never leak workers — not on success,
        # not on an exception, not on ^C mid-sweep.
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.kill()
    return results


def _supervise_serial(
    jobs: list,
    pending: list[int],
    kind: str,
    results: list,
    fingerprints: list[str],
    ckpt: Optional[SweepCheckpoint],
) -> list:
    """In-process supervised execution: same failure/checkpoint contract,
    no preemption (a hung job cannot be timed out from inside its own
    process).  Outcomes round-trip through the codec so serial and
    pooled runs return identical objects (no trace/agents)."""
    run_one = _run_job if kind == "rendezvous" else _run_gathering_job
    telem = _telemetry()
    collect = telem.enabled
    seeded = any(jobs[i].seed is not None for i in pending)
    state = random.getstate() if seeded else None
    try:
        for i in pending:
            started_at = time.monotonic()
            if collect:
                telem.count("supervise.job.started")
            try:
                payload = encode_outcome(run_one(jobs[i]))
            except KeyboardInterrupt:
                raise
            # repro-lint: disable=RPR002 -- deliberate job-error capture: the failure is surfaced structurally as a JobFailure row (same contract as the pooled path); KeyboardInterrupt re-raised above, SystemExit propagates past Exception
            except Exception as exc:
                elapsed = round(time.monotonic() - started_at, 6)
                if collect:
                    telem.add_span("supervise/job", elapsed)
                    telem.count("supervise.job.error")
                    telem.count("supervise.job.failed")
                    telem.event(
                        "supervise.job_failed",
                        index=i,
                        kind="error",
                        attempts=1,
                        duration_seconds=elapsed,
                    )
                results[i] = JobFailure(
                    i,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    1,
                    duration_seconds=elapsed,
                    attempt_seconds=(elapsed,),
                )
                continue
            if collect:
                telem.add_span("supervise/job", time.monotonic() - started_at)
                telem.count("supervise.job.finished")
            results[i] = decode_outcome(payload)
            if ckpt is not None:
                ckpt.append(fingerprints[i], payload)
    finally:
        if state is not None:
            random.setstate(state)
    return results
