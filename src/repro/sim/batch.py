"""Multiprocessing fan-out for simulation sweeps.

The adversarial sweeps (labelings × start pairs × delays) and the
gathering grids (start sets × per-agent delay vectors) are
embarrassingly parallel: every run is independent and the inputs are
small.  This module fans lists of :class:`BatchJob` /
:class:`GatheringJob` descriptions out over a process pool, routing each
job through the fast backend dispatch
(:func:`repro.sim.compiled.run_rendezvous_fast` /
:func:`repro.sim.multi.run_gathering`).

Robustness over raw throughput:

- ``processes=None`` uses ``os.cpu_count()``; ``processes<=1`` runs the
  jobs serially in-process (no pool overhead, easier debugging);
- jobs that cannot be pickled (e.g. agents wrapping closures) make the
  whole batch fall back to the serial path rather than erroring — results
  are identical, only slower.  The probe covers *every* job, not just the
  first: batches are allowed to be heterogeneous, pickling a
  closure-holding agent raises ``AttributeError``/``TypeError`` rather
  than ``PicklingError``, and catching those around ``pool.map`` instead
  would swallow genuine worker exceptions — so the probe is deliberately
  broad and the pool-failure catch deliberately narrow;
- results always come back in job order.

Explicit automata are picklable (:class:`~repro.agents.automaton.
LineAutomaton` implements ``__reduce__`` for its internal closure);
register programs generally are not until they are started, but their
factories may hold lambdas — hence the fallback.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

from ..agents.observations import AgentBase
from ..trees.tree import Tree
from .compiled import run_rendezvous_fast
from .engine import RendezvousOutcome
from .multi import GatheringOutcome, run_gathering

__all__ = [
    "BatchJob",
    "GatheringJob",
    "run_batch",
    "run_gathering_batch",
    "derive_seed",
]

_J = TypeVar("_J")  # BatchJob | GatheringJob
_O = TypeVar("_O")


def derive_seed(master: int, *parts: object) -> int:
    """A stable 64-bit seed derived from a master seed and a job identity.

    Used to thread one scenario-level ``seed`` through batch workers: the
    derived seed depends only on ``(master, parts)``, never on which
    process (or in what order) the job runs, so multiprocess sweeps are
    bit-reproducible against serial ones.
    """
    blob = repr((int(master), parts)).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


@dataclass(frozen=True, slots=True)
class BatchJob:
    """One independent rendezvous run.

    ``seed`` (optional) re-seeds the worker's global :mod:`random` state
    right before the run, so agents that consult module-level randomness
    behave identically whether the job runs serially or in a pool worker
    with inherited RNG state.

    ``faults`` (optional) is a :class:`~repro.sim.faults.FaultPlan`
    executed by the run; it is only forwarded when set, so fault-free
    jobs keep working against runners without a ``faults`` parameter.
    """

    tree: Tree
    prototype: AgentBase
    start1: int
    start2: int
    delay: int = 0
    delayed: int = 2
    max_rounds: int = 1_000_000
    certify: bool = False
    seed: Optional[int] = None
    faults: Optional[object] = None

    def apply(self, run: Callable[..., _O]) -> _O:
        """Invoke a ``run_rendezvous``-shaped callable on this job — the
        one place the job→kwargs expansion lives (the pool worker and
        ``Backend.run_many`` both route through it)."""
        kwargs = dict(
            delay=self.delay,
            delayed=self.delayed,
            max_rounds=self.max_rounds,
            certify=self.certify,
        )
        if self.faults is not None:
            kwargs["faults"] = self.faults
        return run(
            self.tree,
            self.prototype,
            self.start1,
            self.start2,
            **kwargs,
        )


@dataclass(frozen=True, slots=True)
class GatheringJob:
    """One independent k-agent gathering run (``BatchJob``'s k-agent twin).

    ``delays`` aligns with ``starts`` (``None`` means all zero); ``seed``
    and ``faults`` behave exactly as on :class:`BatchJob`.
    """

    tree: Tree
    prototype: AgentBase
    starts: tuple[int, ...]
    delays: Optional[tuple[int, ...]] = None
    max_rounds: int = 1_000_000
    certify: bool = False
    seed: Optional[int] = None
    faults: Optional[object] = None

    def apply(self, run: Callable[..., _O]) -> _O:
        """Invoke a ``run_gathering``-shaped callable on this job (see
        :meth:`BatchJob.apply`)."""
        kwargs = dict(
            delays=list(self.delays) if self.delays is not None else None,
            max_rounds=self.max_rounds,
            certify=self.certify,
        )
        if self.faults is not None:
            kwargs["faults"] = self.faults
        return run(
            self.tree,
            self.prototype,
            list(self.starts),
            **kwargs,
        )


def _run_job(job: BatchJob) -> RendezvousOutcome:
    if job.seed is not None:
        random.seed(job.seed)
    return job.apply(run_rendezvous_fast)


def _run_gathering_job(job: GatheringJob) -> GatheringOutcome:
    if job.seed is not None:
        random.seed(job.seed)
    return job.apply(run_gathering)


def _picklable(jobs: Sequence) -> bool:
    # Probe the whole batch: heterogeneous batches may hold an unpicklable
    # agent in any position, and crashing the pool mid-map is exactly what
    # the serial fallback exists to avoid.
    from ..telemetry import current as _telemetry

    t = _telemetry()
    try:
        pickle.dumps(list(jobs))
        if t.enabled:
            t.count("batch.probe.picklable")
        return True
    # repro-lint: disable=RPR002 -- pickling probe: "cannot pickle" is this function's False answer, whatever exception type the payload's reduce hooks raise; the serial fallback is the surfacing
    except Exception:
        if t.enabled:
            t.count("batch.probe.unpicklable")
            t.event("batch.probe.unpicklable", jobs=len(jobs))
        return False


def run_batch(
    jobs: Sequence[BatchJob],
    *,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> list[RendezvousOutcome]:
    """Run every rendezvous job, in parallel when possible; job order kept."""
    return _fan_out(jobs, _run_job, processes, chunksize)


def run_gathering_batch(
    jobs: Sequence[GatheringJob],
    *,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> list[GatheringOutcome]:
    """Run every gathering job, in parallel when possible; job order kept."""
    return _fan_out(jobs, _run_gathering_job, processes, chunksize)


def _fan_out(
    jobs: Sequence[_J],
    run_one: Callable[[_J], _O],
    processes: Optional[int],
    chunksize: Optional[int],
) -> list[_O]:
    from ..telemetry import current as _telemetry

    jobs = list(jobs)
    if not jobs:
        return []
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(jobs))
    t = _telemetry()
    if processes <= 1 or not _picklable(jobs):
        if t.enabled:
            t.count("batch.serial_fallback")
            t.event("batch.serial", jobs=len(jobs), processes=processes)
        return _run_serial(jobs, run_one)
    if t.enabled:
        t.count("batch.pool.spawned")
        t.event("batch.pool", jobs=len(jobs), processes=processes)

    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    if chunksize is None:
        chunksize = max(1, len(jobs) // (4 * processes))
    pool = ctx.Pool(processes)
    try:
        return pool.map(run_one, jobs, chunksize)
    except (pickle.PicklingError, OSError):  # pragma: no cover - env-specific
        # Covers what the up-front probe cannot: a pickle failure on the
        # *result* path, or pool breakage from the environment.  Kept
        # narrow on purpose — the probe already vetted every job, so an
        # AttributeError/TypeError here is a genuine worker bug that must
        # surface, not trigger a full serial re-run.
        return _run_serial(jobs, run_one)
    finally:
        # A failed — or ^C-interrupted — batch must never leak workers:
        # terminate unconditionally (a no-op cost on the success path,
        # where map has already drained) and join before the exception
        # propagates.  ``with Pool(...)`` alone is not enough: its
        # __exit__ can itself be interrupted before reaping the children.
        pool.terminate()
        pool.join()


def _run_serial(jobs: Sequence[_J], run_one: Callable[[_J], _O]) -> list[_O]:
    """In-process execution; seeded jobs must not leak RNG state to the
    caller (pool workers are forked, so their reseeding dies with them)."""
    seeded = any(job.seed is not None for job in jobs)
    state = random.getstate() if seeded else None
    try:
        return [run_one(job) for job in jobs]
    finally:
        if state is not None:
            random.setstate(state)
