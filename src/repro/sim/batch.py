"""Multiprocessing fan-out for simulation sweeps.

The adversarial sweeps (labelings × start pairs × delays) are
embarrassingly parallel: every run is independent and the inputs are
small.  This module fans a list of :class:`BatchJob` descriptions out over
a process pool, routing each job through the fast backend dispatch
(:func:`repro.sim.compiled.run_rendezvous_fast`).

Robustness over raw throughput:

- ``processes=None`` uses ``os.cpu_count()``; ``processes<=1`` runs the
  jobs serially in-process (no pool overhead, easier debugging);
- jobs that cannot be pickled (e.g. agents wrapping closures) make the
  whole batch fall back to the serial path rather than erroring — results
  are identical, only slower;
- results always come back in job order.

Explicit automata are picklable (:class:`~repro.agents.automaton.
LineAutomaton` implements ``__reduce__`` for its internal closure);
register programs generally are not until they are started, but their
factories may hold lambdas — hence the fallback.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Optional, Sequence

from ..agents.observations import AgentBase
from ..trees.tree import Tree
from .compiled import run_rendezvous_fast
from .engine import RendezvousOutcome

__all__ = ["BatchJob", "run_batch"]


@dataclass(frozen=True, slots=True)
class BatchJob:
    """One independent rendezvous run."""

    tree: Tree
    prototype: AgentBase
    start1: int
    start2: int
    delay: int = 0
    delayed: int = 2
    max_rounds: int = 1_000_000
    certify: bool = False


def _run_job(job: BatchJob) -> RendezvousOutcome:
    return run_rendezvous_fast(
        job.tree,
        job.prototype,
        job.start1,
        job.start2,
        delay=job.delay,
        delayed=job.delayed,
        max_rounds=job.max_rounds,
        certify=job.certify,
    )


def _picklable(jobs: Sequence[BatchJob]) -> bool:
    try:
        pickle.dumps(jobs[0])
        return True
    except Exception:
        return False


def run_batch(
    jobs: Sequence[BatchJob],
    *,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> list[RendezvousOutcome]:
    """Run every job, in parallel when possible; results in job order."""
    jobs = list(jobs)
    if not jobs:
        return []
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(jobs))
    if processes <= 1 or not _picklable(jobs):
        return [_run_job(job) for job in jobs]

    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    if chunksize is None:
        chunksize = max(1, len(jobs) // (4 * processes))
    try:
        with ctx.Pool(processes) as pool:
            return pool.map(_run_job, jobs, chunksize)
    except (pickle.PicklingError, OSError):  # pragma: no cover - env-specific
        return [_run_job(job) for job in jobs]
