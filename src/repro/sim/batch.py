"""Multiprocessing fan-out for simulation sweeps.

The adversarial sweeps (labelings × start pairs × delays) are
embarrassingly parallel: every run is independent and the inputs are
small.  This module fans a list of :class:`BatchJob` descriptions out over
a process pool, routing each job through the fast backend dispatch
(:func:`repro.sim.compiled.run_rendezvous_fast`).

Robustness over raw throughput:

- ``processes=None`` uses ``os.cpu_count()``; ``processes<=1`` runs the
  jobs serially in-process (no pool overhead, easier debugging);
- jobs that cannot be pickled (e.g. agents wrapping closures) make the
  whole batch fall back to the serial path rather than erroring — results
  are identical, only slower;
- results always come back in job order.

Explicit automata are picklable (:class:`~repro.agents.automaton.
LineAutomaton` implements ``__reduce__`` for its internal closure);
register programs generally are not until they are started, but their
factories may hold lambdas — hence the fallback.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..agents.observations import AgentBase
from ..trees.tree import Tree
from .compiled import run_rendezvous_fast
from .engine import RendezvousOutcome

__all__ = ["BatchJob", "run_batch", "derive_seed"]


def derive_seed(master: int, *parts: object) -> int:
    """A stable 64-bit seed derived from a master seed and a job identity.

    Used to thread one scenario-level ``seed`` through batch workers: the
    derived seed depends only on ``(master, parts)``, never on which
    process (or in what order) the job runs, so multiprocess sweeps are
    bit-reproducible against serial ones.
    """
    blob = repr((int(master), parts)).encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


@dataclass(frozen=True, slots=True)
class BatchJob:
    """One independent rendezvous run.

    ``seed`` (optional) re-seeds the worker's global :mod:`random` state
    right before the run, so agents that consult module-level randomness
    behave identically whether the job runs serially or in a pool worker
    with inherited RNG state.
    """

    tree: Tree
    prototype: AgentBase
    start1: int
    start2: int
    delay: int = 0
    delayed: int = 2
    max_rounds: int = 1_000_000
    certify: bool = False
    seed: Optional[int] = None


def _run_job(job: BatchJob) -> RendezvousOutcome:
    if job.seed is not None:
        random.seed(job.seed)
    return run_rendezvous_fast(
        job.tree,
        job.prototype,
        job.start1,
        job.start2,
        delay=job.delay,
        delayed=job.delayed,
        max_rounds=job.max_rounds,
        certify=job.certify,
    )


def _picklable(jobs: Sequence[BatchJob]) -> bool:
    try:
        pickle.dumps(jobs[0])
        return True
    except Exception:
        return False


def run_batch(
    jobs: Sequence[BatchJob],
    *,
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> list[RendezvousOutcome]:
    """Run every job, in parallel when possible; results in job order."""
    jobs = list(jobs)
    if not jobs:
        return []
    if processes is None:
        processes = os.cpu_count() or 1
    processes = min(processes, len(jobs))
    if processes <= 1 or not _picklable(jobs):
        return _run_serial(jobs)

    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    if chunksize is None:
        chunksize = max(1, len(jobs) // (4 * processes))
    try:
        with ctx.Pool(processes) as pool:
            return pool.map(_run_job, jobs, chunksize)
    except (pickle.PicklingError, OSError):  # pragma: no cover - env-specific
        return _run_serial(jobs)


def _run_serial(jobs: Sequence[BatchJob]) -> list[RendezvousOutcome]:
    """In-process execution; seeded jobs must not leak RNG state to the
    caller (pool workers are forked, so their reseeding dies with them)."""
    seeded = any(job.seed is not None for job in jobs)
    state = random.getstate() if seeded else None
    try:
        return [_run_job(job) for job in jobs]
    finally:
        if state is not None:
            random.setstate(state)
