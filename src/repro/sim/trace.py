"""Round-by-round traces of two-agent executions.

Traces are optional (recording costs memory); the engine fills one in when
``record_trace=True``.  They are heavily used by the test-suite to assert
fine-grained claims from the paper's proofs (e.g. the Parity Lemma: the
parity of the inter-agent distance changes exactly when one agent moves and
the other does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..agents.observations import STAY

__all__ = ["RoundRecord", "Trace"]


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """State of the world after one synchronous round.

    ``action1``/``action2`` are the *resolved* actions (an actual port or
    ``STAY``); an agent that has not started yet, or has finished its
    program, records ``STAY``.
    """

    round_index: int
    pos1: int
    pos2: int
    action1: int
    action2: int

    @property
    def moved1(self) -> bool:
        return self.action1 != STAY

    @property
    def moved2(self) -> bool:
        return self.action2 != STAY


@dataclass(slots=True)
class Trace:
    """A full execution trace: initial positions plus one record per round."""

    start1: int
    start2: int
    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def positions(self) -> list[tuple[int, int]]:
        """(pos1, pos2) per round, including the initial placement."""
        out = [(self.start1, self.start2)]
        out.extend((r.pos1, r.pos2) for r in self.records)
        return out

    def idle_counts(self, upto: int) -> tuple[int, int]:
        """How many of the first ``upto`` rounds each agent spent idle.

        Mirrors the q / q' bookkeeping of the Parity Lemma (Lemma 4.4).
        """
        q1 = sum(1 for r in self.records[:upto] if not r.moved1)
        q2 = sum(1 for r in self.records[:upto] if not r.moved2)
        return q1, q2
