"""The vectorized sweep kernel: whole frontiers per step, not configs.

The exact solvers (:func:`repro.sim.compiled.solve_all_delays`,
:func:`repro.sim.gathering_solver.solve_gathering`) walk the product
configuration graph one Python dict lookup at a time.  This module keeps
their verdict semantics but advances *every* undecided adversary choice
at once:

- each per-agent configuration ``(position, automaton state, entry
  port)`` is encoded as one integer id ``(state * n + pos) * width +
  ip`` (``width = stride + 1``, entry ports stored as ``in_port + 1``,
  exactly the compiled backend's convention);
- one flat numpy successor array per ``(automaton, tree)`` —
  ``succ[id] -> id'`` — is built vectorized from the existing
  :class:`~repro.sim.compiled.CompiledAgent` tables, so a joint step of
  the whole frontier is a gather (``succ[frontier]``) per agent;
- meeting / never-meeting masks are boolean reductions over the
  frontier: positions are decoded arithmetically, certification is
  per-lane Brent cycle detection with a shared doubling schedule, and
  decided lanes are compacted away so the gather only touches live work.

Tables are memoized in-process (weakly, so they die with their automaton
— cf. ``_COMPILE_CACHE``) and optionally persisted to an on-disk cache
of ``.npy`` files keyed by a content hash of tree shape + compiled
automaton tables (set ``REPRO_KERNEL_CACHE`` to a directory).  Cached
tables are loaded with ``np.load(mmap_mode="r")``, so a warm
service-style process skips table building *and* table reading until a
sweep actually gathers from the pages it needs.  A corrupt or truncated
cache file is quarantined to ``<name>.corrupt`` and rebuilt — the same
contract as :class:`~repro.scenarios.store.ResultStore`.

The dict solvers stay the oracle: :func:`solve_all_delays_auto` /
:func:`solve_gathering_auto` run the kernel when it applies (numpy
present, ``REPRO_KERNEL != 0``, fault-free, tables within the memory
cap) and fall back to the dict solver on anything else — including the
kernel's own budget guard tripping, so explicit caller budgets keep the
dict solver's exact semantics on every path.  Verdict parity is
asserted by ``tests/properties/test_kernel_parity.py``.
"""

from __future__ import annotations

import hashlib
import os
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

try:  # numpy is the kernel's substrate; everything degrades without it
    import numpy as _np
# repro-lint: disable=RPR002 -- import probe: numpy breakage must mean "no kernel", never a crash; kernel_available() reports it
except Exception:  # pragma: no cover - exercised via kernel_available()
    _np = None

from ..agents.automaton import Automaton
from ..agents.observations import STAY
from ..errors import BudgetExceededError, SimulationError
from ..telemetry import current as _telemetry
from ..trees.tree import Tree
from .compiled import _INVALID, DelayVerdict, compile_agent, solve_all_delays
from .gathering_solver import GatheringVerdict, solve_gathering
from .multi import _validate

__all__ = [
    "KernelUnsupported",
    "PairVerdict",
    "AgentTable",
    "agent_table",
    "kernel_available",
    "kernel_cache_dir",
    "table_cache_key",
    "solve_all_delays_kernel",
    "solve_delay_grid_kernel",
    "solve_gathering_kernel",
    "run_pairs_kernel",
    "solve_all_delays_auto",
    "solve_gathering_auto",
]

_ENV_DISABLE = "REPRO_KERNEL"
_ENV_CACHE = "REPRO_KERNEL_CACHE"

# Successor tables above this entry count (int32 -> ~256 MB) stay on the
# dict solver: the kernel must never surprise-allocate its way into an
# OOM on a machine the dict path served fine.
_MAX_TABLE_ENTRIES = 64_000_000


class KernelUnsupported(Exception):
    """The kernel cannot decide this instance; use the dict solver.

    Raised for oversized tables, invalid-transition lanes (the dict
    solver re-invokes the automaton so the genuine error surfaces), and
    numpy-less environments.  The ``*_auto`` wrappers catch it.
    """


@dataclass(frozen=True, slots=True)
class PairVerdict:
    """Delay-0 fate of one start pair from a batched pairs decision.

    ``met``/``meeting_round`` follow the engines' parity contract; a
    budget-bound lane comes back with neither ``met`` nor
    ``certified_never`` set (undecided — never proof).
    """

    met: bool
    meeting_round: Optional[int]
    certified_never: bool = False


def kernel_available() -> bool:
    """Is the vectorized kernel usable here (numpy present, not
    disabled via ``REPRO_KERNEL=0``)?"""
    return _np is not None and os.environ.get(_ENV_DISABLE, "") != "0"


def _require_kernel() -> None:
    if not kernel_available():
        raise KernelUnsupported("numpy missing or REPRO_KERNEL=0")


# ----------------------------------------------------------------------
# Successor tables: build, memoize, persist
# ----------------------------------------------------------------------


class AgentTable:
    """One automaton's flat successor array on one concrete tree.

    ``succ[(state * n + pos) * width + ip]`` is the id after one active
    round (``-1`` marks entries whose live transition raised — a lane
    touching one aborts to the dict solver so the genuine error
    surfaces).  ``start_ids[v]`` is the id after executing the start
    action from node ``v``.  ``succ`` may be a read-only ``np.memmap``
    when served from the on-disk cache.
    """

    __slots__ = ("succ", "start_ids", "n", "width", "num_states", "has_invalid")

    def __init__(self, succ, start_ids, n: int, width: int, num_states: int):
        self.succ = succ
        self.start_ids = start_ids
        self.n = n
        self.width = width
        self.num_states = num_states
        # Tables without invalid entries skip the per-step error scan.
        self.has_invalid = bool((succ < 0).any())

    @property
    def size(self) -> int:
        return self.num_states * self.n * self.width


def table_cache_key(automaton: Automaton, tree: Tree) -> str:
    """Content hash of (tree shape, compiled automaton tables).

    The compiled tables capture the automaton's full observable behavior
    (resolved actions and state transitions per observation), and the
    flat move tables capture the port-labeled tree exactly, so equal
    keys imply equal successor arrays — the property that makes the hash
    safe as a cross-process cache address.
    """
    stride, deg, move_to, move_in = tree.flat_move_tables()
    compiled = compile_agent(automaton, tree)
    h = hashlib.sha256()
    h.update(b"repro-kernel-table-v1")
    for scalar in (tree.n, stride, compiled.automaton.num_states,
                   compiled.initial_state):
        h.update(int(scalar).to_bytes(8, "little", signed=True))
    for seq in (deg, move_to, move_in, compiled.next_state,
                compiled.action, compiled.start_action):
        h.update(_np.asarray(seq, dtype=_np.int64).tobytes())
        h.update(b"|")
    return h.hexdigest()


def kernel_cache_dir() -> Optional[Path]:
    """Directory of the on-disk table cache (``REPRO_KERNEL_CACHE``),
    or ``None`` when persistence is disabled (the default — the
    in-process memo still applies)."""
    path = os.environ.get(_ENV_CACHE)
    return Path(path) if path else None


def _quarantine(path: Path) -> None:
    """Move a bad cache file aside (never delete evidence, never crash
    the sweep) — mirrors ``ResultStore``'s corrupt-file handling."""
    t = _telemetry()
    if t.enabled:
        t.count("kernel.table.quarantine")
        t.event("kernel.table.quarantine", path=str(path))
    try:
        os.replace(path, path.with_name(path.name + ".corrupt"))
    except OSError:  # pragma: no cover - racing cleaners are fine
        pass


def _load_table_file(path: Path, expected_size: int):
    """Memmap a cached successor array; quarantine anything unusable."""
    try:
        arr = _np.load(path, mmap_mode="r", allow_pickle=False)
    except FileNotFoundError:
        return None
    # repro-lint: disable=RPR002 -- cache-read probe: any unreadable cache file is quarantined (evidence kept) and the table rebuilt from source; a crash here would fail sweeps the dict path serves fine
    except Exception:  # corrupt header / truncated payload / wrong format
        _quarantine(path)
        return None
    if (getattr(arr, "dtype", None) != _np.int32 or arr.ndim != 1
            or arr.shape[0] != expected_size):
        _quarantine(path)
        return None
    return arr


def _save_table_file(path: Path, succ) -> None:
    """Atomic best-effort persist: tmp file + ``os.replace``."""
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as fh:
            _np.save(fh, succ)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - cache is an optimization only
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass


def _build_succ(compiled, tree: Tree):
    """Vectorized build of the flat successor array from the compiled
    tables (no per-configuration Python loop)."""
    stride, deg, move_to, move_in = tree.flat_move_tables()
    width = stride + 1
    n = tree.n
    num_states = compiled.automaton.num_states
    if num_states * n * width > _MAX_TABLE_ENTRIES:
        raise KernelUnsupported(
            f"successor table would hold {num_states * n * width} entries "
            f"(cap {_MAX_TABLE_ENTRIES}); dict solver handles this instance"
        )
    nxt = _np.asarray(compiled.next_state, dtype=_np.int64)
    nxt = nxt.reshape(num_states, width, width)
    act = _np.asarray(compiled.action, dtype=_np.int64)
    act = act.reshape(num_states, width, width)
    deg_arr = _np.asarray(deg, dtype=_np.int64)

    s_g = _np.arange(num_states, dtype=_np.int64)[:, None, None]
    p_g = _np.arange(n, dtype=_np.int64)[None, :, None]
    i_g = _np.arange(width, dtype=_np.int64)[None, None, :]
    d_g = deg_arr[None, :, None]
    s2 = nxt[s_g, i_g, d_g]  # (num_states, n, width)
    a = act[s_g, i_g, d_g]
    invalid = s2 == _INVALID
    stay = (a == STAY) | invalid
    if stride > 0:
        mt = _np.asarray(move_to, dtype=_np.int64)
        mi = _np.asarray(move_in, dtype=_np.int64)
        base = p_g * stride + _np.where(stay, 0, a)
        pos2 = _np.where(stay, _np.broadcast_to(p_g, s2.shape), mt[base])
        ip2 = _np.where(stay, 0, mi[base] + 1)
    else:  # one-node tree: every action resolves to STAY
        pos2 = _np.broadcast_to(p_g, s2.shape)
        ip2 = _np.zeros_like(s2)
    succ = (s2 * n + pos2) * width + ip2
    succ[invalid] = -1
    return succ.reshape(-1).astype(_np.int32)


def _build_start_ids(compiled, tree: Tree):
    """Ids after the start round from every node (tiny: one per node)."""
    stride, deg, move_to, move_in = tree.flat_move_tables()
    width = stride + 1
    s0 = compiled.initial_state
    ids = []
    for v in range(tree.n):
        a = compiled.start_action[deg[v]]
        if a == STAY:
            pos, ip = v, 0
        else:
            base = v * stride + a
            pos, ip = move_to[base], move_in[base] + 1
        ids.append((s0 * tree.n + pos) * width + ip)
    return _np.asarray(ids, dtype=_np.int64)


# automaton -> tree -> AgentTable; both levels weak so tables die with
# their owners and never leak into pickles (cf. _COMPILE_CACHE).
_TABLE_CACHE: "weakref.WeakKeyDictionary[Automaton, weakref.WeakKeyDictionary]" = (
    weakref.WeakKeyDictionary()
)


def agent_table(automaton: Automaton, tree: Tree) -> AgentTable:
    """Successor table for ``automaton`` on ``tree``: in-process memo,
    then the on-disk cache (when configured), then a vectorized build
    (persisted back when a cache directory is configured)."""
    _require_kernel()
    t = _telemetry()
    per_tree = None
    try:
        per_tree = _TABLE_CACHE.setdefault(automaton, weakref.WeakKeyDictionary())
        table = per_tree.get(tree)
        if table is not None:
            if t.enabled:
                t.count("kernel.table.memo_hit")
            return table
    except TypeError:  # pragma: no cover - not weak-referenceable
        per_tree = None

    compiled = compile_agent(automaton, tree)
    stride, deg, _mt, _mi = tree.flat_move_tables()
    width = stride + 1
    expected = compiled.automaton.num_states * tree.n * width
    if expected > _MAX_TABLE_ENTRIES:
        raise KernelUnsupported(
            f"successor table would hold {expected} entries "
            f"(cap {_MAX_TABLE_ENTRIES}); dict solver handles this instance"
        )

    succ = None
    cache_dir = kernel_cache_dir()
    path = None
    if cache_dir is not None:
        path = cache_dir / f"{table_cache_key(automaton, tree)}.npy"
        succ = _load_table_file(path, expected)
        if succ is not None and t.enabled:
            t.count("kernel.table.disk_hit")
    if succ is None:
        with t.span("kernel/table_build"):
            succ = _build_succ(compiled, tree)
        if t.enabled:
            t.count("kernel.table.build")
            t.event("kernel.table.build", entries=int(expected),
                    persisted=path is not None)
        if path is not None:
            _save_table_file(path, succ)
    table = AgentTable(
        succ, _build_start_ids(compiled, tree),
        tree.n, width, compiled.automaton.num_states,
    )
    if per_tree is not None:
        try:
            per_tree[tree] = table
        except TypeError:  # pragma: no cover - tree not weak-referenceable
            pass
    return table


# ----------------------------------------------------------------------
# The frontier loop
# ----------------------------------------------------------------------


def _joint_fates(
    tables: Sequence[AgentTable],
    id_cols: Sequence,
    *,
    max_configs: Optional[int],
    budgets=None,
):
    """Fates of every lane, all advanced together.

    Lane ``j`` is the joint configuration ``(id_cols[0][j], ...,
    id_cols[k-1][j])`` reached after some round.  Per step: decode
    positions, mark meeting lanes (all agents on one node), mark
    certified-never lanes (joint id equals its Brent anchor), drop
    budget-exhausted lanes (``budgets[j]`` steps allowed after entry),
    compact survivors, gather successors.  Returns ``(met, dist,
    undecided)`` arrays — ``dist[j]`` is steps after entry for meeting
    lanes, else ``-1``.

    ``max_configs`` guards cumulative live-lane steps (the kernel's
    analogue of the dict solver's distinct-configuration count); the
    ``*_auto`` wrappers translate a trip back into dict-solver
    semantics by falling back.  A lane gathering a ``-1`` successor
    raises :class:`KernelUnsupported` — the dict solver re-runs the
    instance so the automaton's genuine error surfaces.
    """
    k = len(tables)
    m = len(id_cols[0])
    met = _np.zeros(m, dtype=bool)
    dist = _np.full(m, -1, dtype=_np.int64)
    undecided = _np.zeros(m, dtype=bool)
    if m == 0:
        return met, dist, undecided

    lanes = _np.arange(m, dtype=_np.int64)
    curs = [_np.asarray(col, dtype=_np.int64) for col in id_cols]
    anchors = [_np.full(m, -1, dtype=_np.int64) for _ in range(k)]
    buds = None if budgets is None else _np.asarray(budgets, dtype=_np.int64)
    succs = [t.succ for t in tables]
    widths = [t.width for t in tables]
    n = tables[0].n

    any_invalid = any(t.has_invalid for t in tables)
    telem = _telemetry()
    step = 0  # rounds advanced past the entry configurations
    brent_steps = 0
    brent_power = 1
    work = 0
    while lanes.size:
        pos0 = (curs[0] // widths[0]) % n
        if k == 2:
            meet = (curs[1] // widths[1]) % n == pos0
        else:
            meet = _np.ones(lanes.size, dtype=bool)
            for i in range(1, k):
                meet &= (curs[i] // widths[i]) % n == pos0
        if meet.any():
            hit = lanes[meet]
            met[hit] = True
            dist[hit] = step
        never = ~meet
        for i in range(k):
            never &= curs[i] == anchors[i]
        done = meet | never
        if buds is not None:
            over = ~done & (step >= buds)
            if over.any():
                undecided[lanes[over]] = True
                done |= over
        if done.any():
            keep = ~done
            lanes = lanes[keep]
            curs = [c[keep] for c in curs]
            anchors = [a[keep] for a in anchors]
            if buds is not None:
                buds = buds[keep]
            if not lanes.size:
                break
        brent_steps += 1
        if brent_steps == brent_power:
            anchors = [c.copy() for c in curs]
            brent_steps = 0
            brent_power <<= 1
        work += lanes.size
        if max_configs is not None and work > max_configs:
            if telem.enabled:
                _note_frontier(telem, m, step, work, max_configs,
                               budget_exceeded=True)
            raise BudgetExceededError(
                f"sweep kernel exceeded max_configs={max_configs}"
            )
        curs = [succ[c] for succ, c in zip(succs, curs)]
        if any_invalid:
            for c in curs:
                if (c < 0).any():
                    raise KernelUnsupported(
                        "lane reached an invalid transition entry; "
                        "the dict solver will surface the live error"
                    )
        step += 1
    if telem.enabled:
        _note_frontier(telem, m, step, work, max_configs,
                       budget_exceeded=False)
    return met, dist, undecided


def _note_frontier(
    telem, lanes_entered: int, steps: int, work: int,
    max_configs: Optional[int], *, budget_exceeded: bool,
) -> None:
    """Per-call frontier accounting (outside the hot loop on purpose:
    one event per frontier, never one per step).

    ``work`` is cumulative live-lane steps; ``compaction`` relates it to
    the uncompacted cost ``lanes_entered * steps`` — low means decided
    lanes were dropped early and the gathers touched little dead work.
    """
    telem.count("kernel.frontier.calls")
    telem.count("kernel.frontier.lanes", lanes_entered)
    telem.count("kernel.frontier.steps", steps)
    telem.count("kernel.frontier.lane_steps", work)
    if budget_exceeded:
        telem.count("kernel.frontier.budget_exceeded")
    dense = lanes_entered * steps
    telem.event(
        "kernel.frontier",
        lanes=int(lanes_entered), steps=int(steps), lane_steps=int(work),
        compaction=round(work / dense, 4) if dense else 1.0,
        budget=max_configs, budget_exceeded=budget_exceeded,
    )


# ----------------------------------------------------------------------
# Delay sweeps
# ----------------------------------------------------------------------


def _check_delay_args(tree, prototype, prototype2, pairs, max_delay, sides):
    if not isinstance(prototype, Automaton):
        raise SimulationError("the all-delays solver requires a finite-state Automaton")
    if prototype2 is not None and not isinstance(prototype2, Automaton):
        raise SimulationError("the all-delays solver requires a finite-state Automaton")
    for start1, start2 in pairs:
        if not (0 <= start1 < tree.n and 0 <= start2 < tree.n):
            raise SimulationError("start nodes outside the tree")
    if max_delay < 0:
        raise SimulationError("max_delay must be >= 0")
    for side in sides:
        if side not in (1, 2):
            raise SimulationError("'delayed_sides' entries must be 1 or 2")


def _trivial_sweep(max_delay, sides, zero_side):
    return [
        DelayVerdict(theta, side, True, 0, False)
        for theta in range(max_delay + 1)
        for side in sides
        if theta > 0 or side == zero_side
    ]


def _solo_batch(table: AgentTable, runner_starts, sleeper_starts, max_delay: int):
    """Batched runner solo prefixes in id space — the dict solver's
    prefix (with its early break) for many walks per numpy gather.

    ``rows[t][w]`` is walk ``w``'s runner id after round ``t + 1``;
    ``first_hit[w]`` is the first round the runner steps onto its
    sleeper's start node (0 = no hit within ``max_delay``).  A walk
    freezes once its hit is found, so — exactly like the scalar prefix —
    an invalid successor only raises when some walk genuinely still
    needs that step.
    """
    succ = table.succ
    n, width = table.n, table.width
    starts = _np.asarray(runner_starts, dtype=_np.int64)
    sleep = _np.asarray(sleeper_starts, dtype=_np.int64)
    if starts.size <= 4:  # numpy per-op overhead dwarfs tiny batches
        return _solo_batch_scalar(table, starts, sleep, max_delay)
    cur = table.start_ids[starts].astype(_np.int64)
    fh = _np.where((cur // width) % n == sleep, 1, 0)
    rows = [cur]
    for t in range(2, max_delay + 2):
        active = fh == 0
        if not active.any():
            break
        nxt = succ[cur[active]]
        if (nxt < 0).any():
            raise KernelUnsupported(
                "solo prefix reached an invalid transition entry"
            )
        cur = cur.copy()
        cur[active] = nxt
        if t <= max_delay:
            hit = active & ((cur // width) % n == sleep)
            fh[hit] = t
        rows.append(cur)
    while len(rows) < max_delay + 1:  # frozen tail, never read past first_hit
        rows.append(rows[-1])
    return _np.stack(rows), fh


def _solo_batch_scalar(table: AgentTable, starts, sleep, max_delay: int):
    """Per-walk scalar prefixes (same semantics as the batched pass);
    long single-pair sweeps step one int at a time instead of paying
    numpy dispatch on one-element arrays every round."""
    succ = table.succ
    n, width = table.n, table.width
    mat = _np.empty((max_delay + 1, starts.size), dtype=_np.int64)
    fh = _np.zeros(starts.size, dtype=_np.int64)
    for w in range(starts.size):
        sid = int(table.start_ids[starts[w]])
        target = int(sleep[w])
        ids = [sid]
        first_hit = 1 if (sid // width) % n == target else 0
        t = 1
        while t < (first_hit or max_delay + 1):
            nxt = int(succ[ids[-1]])
            if nxt < 0:
                raise KernelUnsupported(
                    "solo prefix reached an invalid transition entry"
                )
            t += 1
            ids.append(nxt)
            if not first_hit and t <= max_delay and (nxt // width) % n == target:
                first_hit = t
        fh[w] = first_hit
        mat[:len(ids), w] = ids
        mat[len(ids):, w] = ids[-1]  # frozen tail, never read past first_hit
    return mat, fh


def solve_delay_grid_kernel(
    tree: Tree,
    prototype: Automaton,
    pairs: Sequence[tuple[int, int]],
    *,
    max_delay: int,
    delayed_sides: Sequence[int] = (1, 2),
    max_configs: int = 4_000_000,
    prototype2: Optional[Automaton] = None,
) -> list[list[DelayVerdict]]:
    """Decide whole delay sweeps for *many* start pairs in one frontier.

    Returns one :func:`repro.sim.compiled.solve_all_delays`-ordered
    verdict list per input pair.  Every undecided (pair, θ, side) lane
    advances in the same vectorized step — this is the shape the
    ``success-families`` grid benchmark measures.  ``max_configs`` is
    granted per pair (the grid call may spend ``max_configs *
    len(pairs)`` lane-steps total), matching a per-pair dict-solver
    loop's aggregate budget.
    """
    _require_kernel()
    sides = list(dict.fromkeys(delayed_sides))
    _check_delay_args(tree, prototype, prototype2, pairs, max_delay, sides)
    zero_side = 2 if 2 in sides else sides[0]

    t1 = agent_table(prototype, tree)
    t2 = t1 if prototype2 is None else agent_table(prototype2, tree)

    live = [i for i, (a, b) in enumerate(pairs) if a != b]
    num_live = len(live)
    if num_live == 0:
        return [_trivial_sweep(max_delay, sides, zero_side) for _ in pairs]
    s1 = _np.asarray([pairs[i][0] for i in live], dtype=_np.int64)
    s2 = _np.asarray([pairs[i][1] for i in live], dtype=_np.int64)

    # One batched solo-prefix pass per delayed side; each side's block
    # holds its walks' verdict slots in (walk, θ) order — lanes where
    # the joint fate is still open, short-circuit cells (θ >= first_hit
    # meets at round first_hit) prefilled.
    lane_ids1, lane_ids2 = [], []
    block_meta = []  # (side, lo, met_block, round_block, lane_scatter...)
    for side in sides:
        lo = 0 if side == zero_side else 1
        width_cols = max_delay + 1 - lo
        if width_cols <= 0:
            continue
        runner_t, sleeper_t = (t1, t2) if side == 2 else (t2, t1)
        runner_starts = s1 if side == 2 else s2
        sleeper_starts = s2 if side == 2 else s1
        rows, fh = _solo_batch(runner_t, runner_starts, sleeper_starts, max_delay)
        sleeper_entry = sleeper_t.start_ids[sleeper_starts].astype(_np.int64)

        hi = _np.where(fh > 0, fh - 1, max_delay)
        counts = _np.maximum(hi - lo + 1, 0)
        total = int(counts.sum())
        walk = _np.repeat(_np.arange(num_live, dtype=_np.int64), counts)
        offs = _np.cumsum(counts) - counts
        theta = _np.arange(total, dtype=_np.int64) - offs[walk] + lo
        runner_ids = rows[theta, walk]
        sleeper_ids = sleeper_entry[walk]
        lane_ids1.append(runner_ids if side == 2 else sleeper_ids)
        lane_ids2.append(sleeper_ids if side == 2 else runner_ids)

        met_blk = _np.ones((num_live, width_cols), dtype=bool)
        round_blk = _np.repeat(fh[:, None], width_cols, axis=1)
        block_meta.append((side, lo, met_blk, round_blk,
                           walk * width_cols + (theta - lo), theta))

    met, dist, _und = _joint_fates(
        (t1, t2),
        (_np.concatenate(lane_ids1), _np.concatenate(lane_ids2)),
        max_configs=max_configs * max(1, len(pairs)),
    )

    # Scatter lane fates into the blocks, stitch blocks into the dict
    # solver's θ-major output order, and materialize verdicts in bulk.
    pos = 0
    for _side, _lo, met_blk, round_blk, scatter, theta in block_meta:
        m = met[pos:pos + len(scatter)]
        d = dist[pos:pos + len(scatter)]
        pos += len(scatter)
        met_blk.flat[scatter] = m
        round_blk.flat[scatter] = _np.where(m, theta + 1 + d, -1)

    met_cat = _np.concatenate([b[2] for b in block_meta], axis=1)
    round_cat = _np.concatenate([b[3] for b in block_meta], axis=1)
    col_of = {}
    off = 0
    for side, lo, met_blk, _r, _s, _t in block_meta:
        for th in range(lo, max_delay + 1):
            col_of[(th, side)] = off + (th - lo)
        off += met_blk.shape[1]
    out_keys = [(0, zero_side)] + [
        (th, side) for th in range(1, max_delay + 1) for side in sides
    ]
    perm = _np.asarray([col_of[k] for k in out_keys], dtype=_np.int64)
    met_flat = met_cat[:, perm].ravel().tolist()
    round_flat = round_cat[:, perm].ravel().tolist()

    keys_tiled = out_keys * num_live
    verdicts = [
        DelayVerdict(th, sd, m, mr if m else None, not m)
        for (th, sd), m, mr in zip(keys_tiled, met_flat, round_flat)
    ]

    stride = len(out_keys)
    by_live = {
        p_idx: verdicts[q * stride:(q + 1) * stride]
        for q, p_idx in enumerate(live)
    }
    return [
        by_live.get(p_idx) or _trivial_sweep(max_delay, sides, zero_side)
        for p_idx in range(len(pairs))
    ]


def solve_all_delays_kernel(
    tree: Tree,
    prototype: Automaton,
    start1: int,
    start2: int,
    *,
    max_delay: int,
    delayed_sides: Sequence[int] = (1, 2),
    max_configs: int = 4_000_000,
    prototype2: Optional[Automaton] = None,
) -> list[DelayVerdict]:
    """Vectorized drop-in for :func:`repro.sim.compiled.solve_all_delays`
    (fault-free): every (θ, side) lane of one pair advances per step."""
    return solve_delay_grid_kernel(
        tree, prototype, [(start1, start2)],
        max_delay=max_delay, delayed_sides=delayed_sides,
        max_configs=max_configs, prototype2=prototype2,
    )[0]


# ----------------------------------------------------------------------
# Gathering grids
# ----------------------------------------------------------------------


def solve_gathering_kernel(
    tree: Tree,
    prototype: Automaton,
    starts: Sequence[int],
    delay_vectors: Sequence[Sequence[int]],
    *,
    max_configs: int = 4_000_000,
    prototypes: Optional[Sequence[Automaton]] = None,
) -> list[GatheringVerdict]:
    """Vectorized drop-in for
    :func:`repro.sim.gathering_solver.solve_gathering` (fault-free).

    Staggered prefixes (agents still waking up) replay in id space per
    vector; the fully-started entry configurations are deduplicated and
    resolved in one k-agent frontier.
    """
    _require_kernel()
    starts = list(starts)
    protos = list(prototypes) if prototypes is not None else [prototype] * len(starts)
    if len(protos) != len(starts):
        raise SimulationError("'prototypes' must align with 'starts'")
    for p in protos:
        if not isinstance(p, Automaton):
            raise SimulationError(
                "the gathering solver requires finite-state Automaton agents"
            )
    vectors = [list(_validate(tree, starts, vec)) for vec in delay_vectors]
    k = len(starts)
    tables = [agent_table(p, tree) for p in protos]
    n = tree.n

    # Entry dedup: grids share entry configurations heavily (the dict
    # solver's memo exploits the same structure).
    entry_lane: dict[tuple[int, ...], int] = {}
    entry_cols: list[list[int]] = [[] for _ in range(k)]
    # per vector: ("done", verdict) or ("lane", lane_index, first_joint)
    plan: list[tuple] = []

    for delays in vectors:
        key = tuple(delays)
        if len(set(starts)) == 1:
            plan.append(("done", GatheringVerdict(key, True, 0, False)))
            continue
        first_joint = max(delays) + 1
        ids = [0] * k
        started = [False] * k
        pos = list(starts)
        gathered_at: Optional[int] = None
        for rnd in range(1, first_joint + 1):
            for i in range(k):
                if started[i]:
                    nxt = int(tables[i].succ[ids[i]])
                    if nxt < 0:
                        raise KernelUnsupported(
                            "prefix reached an invalid transition entry"
                        )
                    ids[i] = nxt
                    pos[i] = (nxt // tables[i].width) % n
                elif rnd > delays[i]:
                    started[i] = True
                    ids[i] = int(tables[i].start_ids[pos[i]])
                    pos[i] = (ids[i] // tables[i].width) % n
            if all(p == pos[0] for p in pos):
                gathered_at = rnd
                break
        if gathered_at is not None:
            plan.append(("done", GatheringVerdict(key, True, gathered_at, False)))
            continue
        entry = tuple(ids)
        lane = entry_lane.get(entry)
        if lane is None:
            lane = len(entry_cols[0])
            entry_lane[entry] = lane
            for i in range(k):
                entry_cols[i].append(entry[i])
        plan.append(("lane", lane, first_joint, key))

    met, dist, _und = _joint_fates(
        tables, entry_cols, max_configs=max_configs
    )

    out: list[GatheringVerdict] = []
    for item in plan:
        if item[0] == "done":
            out.append(item[1])
            continue
        _tag, lane, first_joint, key = item
        if met[lane]:
            out.append(GatheringVerdict(key, True, first_joint + int(dist[lane]), False))
        else:
            out.append(GatheringVerdict(key, False, None, True))
    return out


# ----------------------------------------------------------------------
# Batched delay-0 pairs (native automata)
# ----------------------------------------------------------------------


def run_pairs_kernel(
    tree: Tree,
    prototype: Automaton,
    pairs: Sequence[tuple[int, int]],
    *,
    max_rounds: int,
    prototype2: Optional[Automaton] = None,
) -> list[PairVerdict]:
    """Decide delay-0 rendezvous for many start pairs in one frontier.

    Parity with per-pair compiled runs: ``met`` iff the first meeting
    round is ``<= max_rounds``; a lane exhausting its budget before
    meeting or certifying comes back undecided.
    """
    _require_kernel()
    if not isinstance(prototype, Automaton):
        raise SimulationError("compiled backend requires a finite-state Automaton")
    for u, v in pairs:
        if not (0 <= u < tree.n and 0 <= v < tree.n):
            raise SimulationError("start nodes outside the tree")
    t1 = agent_table(prototype, tree)
    t2 = t1 if prototype2 is None else agent_table(prototype2, tree)

    verdicts: list[Optional[PairVerdict]] = [None] * len(pairs)
    lane_idx: list[int] = []
    ids1: list[int] = []
    ids2: list[int] = []
    for j, (u, v) in enumerate(pairs):
        if u == v:
            verdicts[j] = PairVerdict(True, 0, False)
        elif max_rounds < 1:
            verdicts[j] = PairVerdict(False, None, False)
        else:
            lane_idx.append(j)
            ids1.append(int(t1.start_ids[u]))
            ids2.append(int(t2.start_ids[v]))

    # Entry ids sit after round 1, so max_rounds - 1 steps remain.
    budgets = _np.full(len(lane_idx), max_rounds - 1, dtype=_np.int64)
    met, dist, undecided = _joint_fates(
        (t1, t2), (ids1, ids2), max_configs=None, budgets=budgets
    )
    for lane, j in enumerate(lane_idx):
        if met[lane]:
            verdicts[j] = PairVerdict(True, 1 + int(dist[lane]), False)
        elif undecided[lane]:
            verdicts[j] = PairVerdict(False, None, False)
        else:
            verdicts[j] = PairVerdict(False, None, True)
    return verdicts


# ----------------------------------------------------------------------
# Auto dispatch: kernel when it applies, dict solver as the oracle
# ----------------------------------------------------------------------


def solve_all_delays_auto(
    tree: Tree,
    prototype: Automaton,
    start1: int,
    start2: int,
    *,
    max_delay: int,
    delayed_sides: Sequence[int] = (1, 2),
    max_configs: int = 4_000_000,
    prototype2: Optional[Automaton] = None,
    faults=None,
) -> list[DelayVerdict]:
    """Kernel-dispatched :func:`~repro.sim.compiled.solve_all_delays`.

    Fault-free sweeps with numpy available ride the vectorized kernel;
    everything else — faults, disabled kernel, oversized tables,
    invalid-transition lanes, or the kernel's own budget guard — runs
    the dict solver, preserving its exact semantics (including raising
    :class:`~repro.errors.BudgetExceededError` only when the *dict*
    solver's guard genuinely trips).
    """
    t = _telemetry()
    if faults is None and kernel_available():
        try:
            verdicts = solve_all_delays_kernel(
                tree, prototype, start1, start2,
                max_delay=max_delay, delayed_sides=delayed_sides,
                max_configs=max_configs, prototype2=prototype2,
            )
            if t.enabled:
                t.count("kernel.dispatch.delays.kernel")
            return verdicts
        except (KernelUnsupported, BudgetExceededError) as exc:
            if t.enabled:
                t.count(f"kernel.fallback.{type(exc).__name__}")
                t.event("kernel.fallback", solver="delays",
                        reason=type(exc).__name__, detail=str(exc))
    if t.enabled:
        t.count("kernel.dispatch.delays.dict")
    return solve_all_delays(
        tree, prototype, start1, start2,
        max_delay=max_delay, delayed_sides=delayed_sides,
        max_configs=max_configs, prototype2=prototype2, faults=faults,
    )


def solve_gathering_auto(
    tree: Tree,
    prototype: Automaton,
    starts: Sequence[int],
    delay_vectors: Sequence[Sequence[int]],
    *,
    max_configs: int = 4_000_000,
    prototypes: Optional[Sequence[Automaton]] = None,
    faults=None,
) -> list[GatheringVerdict]:
    """Kernel-dispatched
    :func:`~repro.sim.gathering_solver.solve_gathering` (see
    :func:`solve_all_delays_auto` for the dispatch rules)."""
    t = _telemetry()
    if faults is None and kernel_available():
        try:
            verdicts = solve_gathering_kernel(
                tree, prototype, starts, delay_vectors,
                max_configs=max_configs, prototypes=prototypes,
            )
            if t.enabled:
                t.count("kernel.dispatch.gathering.kernel")
            return verdicts
        except (KernelUnsupported, BudgetExceededError) as exc:
            if t.enabled:
                t.count(f"kernel.fallback.{type(exc).__name__}")
                t.event("kernel.fallback", solver="gathering",
                        reason=type(exc).__name__, detail=str(exc))
    if t.enabled:
        t.count("kernel.dispatch.gathering.dict")
    return solve_gathering(
        tree, prototype, starts, delay_vectors,
        max_configs=max_configs, prototypes=prototypes, faults=faults,
    )
