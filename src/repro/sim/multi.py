"""Multi-agent synchronous simulation: the gathering extension.

The paper notes (§1.3) that gathering — more than two identical agents
meeting at one node — is the natural extension of rendezvous.  This module
generalizes the two-agent engine to k agents with per-agent start delays:

- *gathering* is achieved the first round at the end of which all agents
  occupy the same node;
- the engine also reports the partial-meeting structure (which subsets
  co-locate), which the gathering algorithm's analysis cares about.

The feasible fragment implemented in :mod:`repro.core.gathering` covers the
cases where all agents can agree on a single target node of the contraction
(central node, or asymmetric central edge) — for the symmetric case with
k > 2 the paper makes no claim and neither do we (see the module docs
there).

Backend dispatch mirrors the two-agent engine: finite-state prototypes
(:func:`repro.sim.compiled.supports_compilation`) run on flat transition
tables (:func:`_run_gathering_compiled`), arbitrary ``AgentBase`` programs
on the readable reference loop (:func:`run_gathering_reference`, the
oracle).  The parity suite in ``tests/sim/test_gathering_compiled.py``
asserts identical outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..agents.observations import NULL_PORT, STAY, AgentBase, resolve_action
from ..errors import SimulationError
from ..trees.tree import Tree
from .compiled import _INVALID, compile_agent, supports_compilation

# The per-agent bookkeeping (and the certification key) is exactly the
# two-agent engine's; reusing it keeps the joint-configuration semantics
# defined in one place.
from .engine import _AgentState as _State

__all__ = [
    "GatheringOutcome",
    "run_gathering",
    "run_gathering_reference",
    "run_gathering_compiled",
]


@dataclass(frozen=True)
class GatheringOutcome:
    """Result of a k-agent gathering run.

    Exactly one of three verdicts holds (mirroring
    :class:`~repro.sim.engine.RendezvousOutcome`):

    - ``gathered`` — all agents co-located at ``gathering_round``;
    - ``certified_never`` — a joint-configuration recurrence proves the
      agents can never gather (``certify`` runs on finite-state agents);
    - neither — the round budget ran out without a verdict.
    """

    gathered: bool
    gathering_round: Optional[int]
    gathering_node: Optional[int]
    rounds_executed: int
    positions: tuple[int, ...]  # final positions
    largest_cluster: int  # max #agents ever co-located in a single round
    certified_never: bool = False
    # Agents whose crash fault had fired by the final executed round;
    # always () for fault-free runs.
    crashed: tuple[int, ...] = ()

    @property
    def undecided(self) -> bool:
        return not self.gathered and not self.certified_never

    @property
    def num_agents(self) -> int:
        return len(self.positions)


def _validate(tree: Tree, starts: Sequence[int], delays) -> list[int]:
    if len(starts) < 2:
        raise SimulationError("gathering needs at least two agents")
    for s in starts:
        if not (0 <= s < tree.n):
            raise SimulationError("start node outside the tree")
    delay_list = list(delays) if delays is not None else [0] * len(starts)
    if len(delay_list) != len(starts) or any(d < 0 for d in delay_list):
        raise SimulationError("delays must align with starts and be >= 0")
    return delay_list


def run_gathering(
    tree: Tree,
    prototype: AgentBase,
    starts: Sequence[int],
    *,
    delays: Optional[Sequence[int]] = None,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    faults=None,
) -> GatheringOutcome:
    """Run ``len(starts)`` copies of ``prototype`` until they all co-locate.

    ``delays[i]`` (default all 0) is agent i's start delay.  Agents that
    have not started yet still occupy their start node.  ``certify``
    detects a joint-configuration recurrence to certify non-gathering
    (finite-state agents; silently ignored when agents expose no state).
    ``faults`` (an optional :class:`~repro.sim.faults.FaultPlan`)
    dispatches to the faulted twins of both loops.

    Finite-state prototypes are dispatched to the compiled table-driven
    loop; everything else runs on :func:`run_gathering_reference`.
    """
    if faults:
        from .faults import run_gathering_faulted

        return run_gathering_faulted(
            tree, prototype, starts, faults=faults,
            delays=delays, max_rounds=max_rounds, certify=certify,
        )
    delay_list = _validate(tree, starts, delays)
    if supports_compilation(prototype) == "native":
        return _run_gathering_compiled(
            tree, prototype, list(starts), delay_list, max_rounds, certify
        )
    return _run_gathering_loop(
        tree, prototype, list(starts), delay_list, max_rounds, certify
    )


def run_gathering_reference(
    tree: Tree,
    prototype: AgentBase,
    starts: Sequence[int],
    *,
    delays: Optional[Sequence[int]] = None,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    faults=None,
) -> GatheringOutcome:
    """The oracle loop, forced for every agent type (parity testing)."""
    if faults:
        from .faults import run_gathering_faulted_reference

        return run_gathering_faulted_reference(
            tree, prototype, starts, faults=faults,
            delays=delays, max_rounds=max_rounds, certify=certify,
        )
    delay_list = _validate(tree, starts, delays)
    return _run_gathering_loop(
        tree, prototype, list(starts), delay_list, max_rounds, certify
    )


def run_gathering_compiled(
    tree: Tree,
    prototype: AgentBase,
    starts: Sequence[int],
    *,
    delays: Optional[Sequence[int]] = None,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    faults=None,
) -> GatheringOutcome:
    """The table-driven loop, forced (requires a finite-state Automaton)."""
    if faults:
        from .faults import run_gathering_faulted_compiled

        return run_gathering_faulted_compiled(
            tree, prototype, starts, faults=faults,
            delays=delays, max_rounds=max_rounds, certify=certify,
        )
    if supports_compilation(prototype) != "native":
        raise SimulationError(
            "compiled gathering requires a finite-state Automaton"
        )
    delay_list = _validate(tree, starts, delays)
    return _run_gathering_compiled(
        tree, prototype, list(starts), delay_list, max_rounds, certify
    )


def _run_gathering_loop(
    tree: Tree,
    prototype: AgentBase,
    starts: list[int],
    delay_list: list[int],
    max_rounds: int,
    certify: bool = False,
) -> GatheringOutcome:
    agents = [
        _State(prototype.clone(), pos, delay)
        for pos, delay in zip(starts, delay_list)
    ]

    def cluster_size(states: Sequence[_State]) -> int:
        counts: dict[int, int] = {}
        for st in states:
            counts[st.pos] = counts.get(st.pos, 0) + 1
        return max(counts.values())

    largest = cluster_size(agents)
    if largest == len(agents):
        return GatheringOutcome(
            True, 0, agents[0].pos, 0, tuple(a.pos for a in agents), largest
        )

    # Certification mirrors the two-agent engine: once every agent has
    # executed its start action (round max(delays) + 1), the joint
    # configuration is a pure function of the previous one, so a
    # recurrence with no gathering in between proves non-gathering.
    certifiable = certify and all(
        getattr(a.agent, "state", None) is not None for a in agents
    )
    first_joint = max(delay_list) + 1
    seen: set[tuple] = set()

    for rnd in range(1, max_rounds + 1):
        actions = [_action(tree, a, rnd) for a in agents]
        for a, act in zip(agents, actions):
            if act == STAY:
                a.in_port = NULL_PORT
            else:
                a.pos, a.in_port = tree.move(a.pos, act)
        size = cluster_size(agents)
        largest = max(largest, size)
        if size == len(agents):
            return GatheringOutcome(
                True, rnd, agents[0].pos, rnd, tuple(a.pos for a in agents), largest
            )
        if certifiable and rnd > first_joint:
            key = tuple(a.config_key() for a in agents)
            if key in seen:
                return GatheringOutcome(
                    False, None, None, rnd,
                    tuple(a.pos for a in agents), largest, True,
                )
            seen.add(key)
    return GatheringOutcome(
        False, None, None, max_rounds, tuple(a.pos for a in agents), largest
    )


def _action(tree: Tree, a: _State, rnd: int) -> int:
    degree = tree.degree(a.pos)
    if not a.started:
        if rnd <= a.start_round:
            return STAY
        a.started = True
        raw = a.agent.start(degree)
    else:
        raw = a.agent.step(a.in_port, degree)
    return resolve_action(raw, degree)


def _run_gathering_compiled(
    tree: Tree,
    prototype,
    starts: list[int],
    delay_list: list[int],
    max_rounds: int,
    certify: bool = False,
) -> GatheringOutcome:
    """Table-driven replay of the reference gathering loop.

    Each agent's action depends only on its own (position, state, entry
    port), so per-agent sequential updates within a round are equivalent
    to the reference's compute-all-then-move order.  ``certify`` uses
    Brent cycle detection on the k-agent joint configuration — O(1)
    memory, same verdicts as the reference's ``seen``-set (the round a
    certificate fires at may differ, as with the two-agent backends).
    """
    compiled = compile_agent(prototype, tree)
    stride, deg, move_to, move_in = tree.flat_move_tables()
    width = stride + 1
    nxt, act = compiled.next_state, compiled.action
    start_act = compiled.start_action
    s0 = compiled.initial_state
    automaton = compiled.automaton

    k = len(starts)
    pos = list(starts)
    st = [0] * k
    ip = [0] * k  # entry-port indices (in_port + 1; 0 == NULL_PORT)
    started = [False] * k

    def cluster_size() -> int:
        counts: dict[int, int] = {}
        for p in pos:
            counts[p] = counts.get(p, 0) + 1
        return max(counts.values())

    largest = cluster_size()
    if largest == k:
        return GatheringOutcome(True, 0, pos[0], 0, tuple(pos), largest)

    first_joint = max(delay_list) + 1
    # Brent cycle detection state (see run_rendezvous_compiled).
    anchor: Optional[tuple] = None
    steps = 0
    power = 1

    for rnd in range(1, max_rounds + 1):
        for i in range(k):
            if started[i]:
                d = deg[pos[i]]
                idx = (st[i] * width + ip[i]) * width + d
                s2 = nxt[idx]
                if s2 == _INVALID:
                    automaton.transition(st[i], ip[i] - 1, d)  # raises the real error
                    raise SimulationError("invalid transition entry")  # pragma: no cover
                st[i] = s2
                a = act[idx]
            elif rnd > delay_list[i]:
                started[i] = True
                st[i] = s0
                a = start_act[deg[pos[i]]]
            else:
                a = STAY
            if a == STAY:
                ip[i] = 0
            else:
                base = pos[i] * stride + a
                pos[i] = move_to[base]
                ip[i] = move_in[base] + 1
        size = cluster_size()
        largest = max(largest, size)
        if size == k:
            return GatheringOutcome(True, rnd, pos[0], rnd, tuple(pos), largest)
        if certify and rnd > first_joint:
            config = tuple(x for i in range(k) for x in (pos[i], st[i], ip[i]))
            if config == anchor:
                return GatheringOutcome(
                    False, None, None, rnd, tuple(pos), largest, True
                )
            steps += 1
            if steps == power:
                anchor = config
                steps = 0
                power <<= 1
    return GatheringOutcome(False, None, None, max_rounds, tuple(pos), largest)
