"""Multi-agent synchronous simulation: the gathering extension.

The paper notes (§1.3) that gathering — more than two identical agents
meeting at one node — is the natural extension of rendezvous.  This module
generalizes the two-agent engine to k agents with per-agent start delays:

- *gathering* is achieved the first round at the end of which all agents
  occupy the same node;
- the engine also reports the partial-meeting structure (which subsets
  co-locate), which the gathering algorithm's analysis cares about.

The feasible fragment implemented in :mod:`repro.core.gathering` covers the
cases where all agents can agree on a single target node of the contraction
(central node, or asymmetric central edge) — for the symmetric case with
k > 2 the paper makes no claim and neither do we (see the module docs
there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..agents.observations import NULL_PORT, STAY, AgentBase, resolve_action
from ..errors import SimulationError
from ..trees.tree import Tree

__all__ = ["GatheringOutcome", "run_gathering"]


@dataclass(frozen=True)
class GatheringOutcome:
    """Result of a k-agent gathering run."""

    gathered: bool
    gathering_round: Optional[int]
    gathering_node: Optional[int]
    rounds_executed: int
    positions: tuple[int, ...]  # final positions
    largest_cluster: int  # max #agents ever co-located in a single round

    @property
    def num_agents(self) -> int:
        return len(self.positions)


@dataclass
class _State:
    agent: AgentBase
    pos: int
    start_round: int
    started: bool = False
    in_port: int = NULL_PORT


def run_gathering(
    tree: Tree,
    prototype: AgentBase,
    starts: Sequence[int],
    *,
    delays: Optional[Sequence[int]] = None,
    max_rounds: int = 1_000_000,
) -> GatheringOutcome:
    """Run ``len(starts)`` copies of ``prototype`` until they all co-locate.

    ``delays[i]`` (default all 0) is agent i's start delay.  Agents that
    have not started yet still occupy their start node.
    """
    if len(starts) < 2:
        raise SimulationError("gathering needs at least two agents")
    for s in starts:
        if not (0 <= s < tree.n):
            raise SimulationError("start node outside the tree")
    delay_list = list(delays) if delays is not None else [0] * len(starts)
    if len(delay_list) != len(starts) or any(d < 0 for d in delay_list):
        raise SimulationError("delays must align with starts and be >= 0")

    agents = [
        _State(prototype.clone(), pos, delay)
        for pos, delay in zip(starts, delay_list)
    ]

    def cluster_size(states: Sequence[_State]) -> int:
        counts: dict[int, int] = {}
        for st in states:
            counts[st.pos] = counts.get(st.pos, 0) + 1
        return max(counts.values())

    largest = cluster_size(agents)
    if largest == len(agents):
        return GatheringOutcome(
            True, 0, agents[0].pos, 0, tuple(a.pos for a in agents), largest
        )

    for rnd in range(1, max_rounds + 1):
        actions = [_action(tree, a, rnd) for a in agents]
        for a, act in zip(agents, actions):
            if act == STAY:
                a.in_port = NULL_PORT
            else:
                a.pos, a.in_port = tree.move(a.pos, act)
        size = cluster_size(agents)
        largest = max(largest, size)
        if size == len(agents):
            return GatheringOutcome(
                True, rnd, agents[0].pos, rnd, tuple(a.pos for a in agents), largest
            )
    return GatheringOutcome(
        False, None, None, max_rounds, tuple(a.pos for a in agents), largest
    )


def _action(tree: Tree, a: _State, rnd: int) -> int:
    degree = tree.degree(a.pos)
    if not a.started:
        if rnd <= a.start_round:
            return STAY
        a.started = True
        raw = a.agent.start(degree)
    else:
        raw = a.agent.step(a.in_port, degree)
    return resolve_action(raw, degree)
