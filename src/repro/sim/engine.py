"""The synchronous two-agent rendezvous simulator.

Model (paper §2.1):

- two copies of one agent are placed at distinct nodes;
- the adversary delays the later agent by ``delay >= 0`` rounds (the earlier
  agent is chosen by the ``delayed`` argument);
- rounds are synchronous; in each round every *started* agent performs one
  action (a move through a port, or a null move); an agent that has not
  started yet sits at its initial node (it occupies the node — a meeting
  with a not-yet-started agent counts, since rendezvous only asks that both
  agents be at the same node in the same round);
- rendezvous is achieved the first round at the end of which both agents
  occupy the same node (including round 0 if the starts coincide).

Certification of *non*-meeting: for finite-state (automaton) agents the
joint configuration ``(pos1, state1, obs1, pos2, state2, obs2)`` after a
round determines the entire future; if a configuration recurs with no
meeting in between, the execution is periodic and the agents provably never
meet.  The engine detects this when ``certify=True`` and both agents expose
a hashable ``state`` attribute (explicit automata do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..agents.observations import NULL_PORT, STAY, AgentBase, resolve_action
from ..errors import SimulationError
from ..trees.tree import Tree
from .trace import RoundRecord, Trace

__all__ = ["RendezvousOutcome", "run_rendezvous"]


@dataclass(slots=True)
class _AgentState:
    agent: AgentBase
    pos: int
    start_round: int
    started: bool = False
    in_port: int = NULL_PORT  # pending observation for the next step

    def config_key(self) -> tuple:
        # Certification keys are only formed once both agents have started,
        # so the started flag is constant there and carries no information.
        state = getattr(self.agent, "state", None)
        return (self.pos, state, self.in_port)


@dataclass(frozen=True)
class RendezvousOutcome:
    """Result of a simulated execution.

    Exactly one of three verdicts holds:

    - ``met`` — rendezvous achieved at ``meeting_round`` on ``meeting_node``;
    - ``certified_never`` — a configuration recurrence proves the agents can
      never meet (only possible for finite-state agents with ``certify``);
    - neither — the round budget ran out without a verdict.
    """

    met: bool
    meeting_round: Optional[int]
    meeting_node: Optional[int]
    rounds_executed: int
    certified_never: bool
    crossings: int
    trace: Optional[Trace]
    agents: tuple[AgentBase, AgentBase]
    # Agents (0-based: rendezvous agent 1 -> 0) whose crash fault had
    # fired by the final executed round; always () for fault-free runs.
    crashed: tuple[int, ...] = ()

    @property
    def undecided(self) -> bool:
        return not self.met and not self.certified_never


def run_rendezvous(
    tree: Tree,
    prototype: AgentBase,
    start1: int,
    start2: int,
    *,
    delay: int = 0,
    delayed: int = 2,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    record_trace: bool = False,
    faults=None,
) -> RendezvousOutcome:
    """Execute the rendezvous problem for two copies of ``prototype``.

    Parameters
    ----------
    delay:
        The adversary's delay θ >= 0.
    delayed:
        Which agent starts late (1 or 2); irrelevant when ``delay == 0``.
    max_rounds:
        Hard budget; the outcome is ``undecided`` if it is exhausted.
    certify:
        Detect configuration recurrence to certify non-meeting (finite-state
        agents only; silently ignored when agents expose no ``state``).
    record_trace:
        Fill in a full :class:`~repro.sim.trace.Trace`.
    faults:
        An optional :class:`~repro.sim.faults.FaultPlan` (or its JSON
        form): crash-stop / pause / relabel faults, executed by the
        faulted twin of this loop.  ``None`` or an empty plan means the
        fault-free engine below.
    """
    if faults:
        from .faults import run_rendezvous_faulted

        return run_rendezvous_faulted(
            tree, prototype, start1, start2, faults=faults,
            delay=delay, delayed=delayed, max_rounds=max_rounds,
            certify=certify, record_trace=record_trace,
        )
    if not (0 <= start1 < tree.n and 0 <= start2 < tree.n):
        raise SimulationError("start nodes outside the tree")
    if delay < 0:
        raise SimulationError("delay must be >= 0")
    if delayed not in (1, 2):
        raise SimulationError("'delayed' must be 1 or 2")

    a1 = _AgentState(prototype.clone(), start1, delay if delayed == 1 else 0)
    a2 = _AgentState(prototype.clone(), start2, delay if delayed == 2 else 0)
    trace = Trace(start1, start2) if record_trace else None

    if start1 == start2:
        return RendezvousOutcome(True, 0, start1, 0, False, 0, trace, (a1.agent, a2.agent))

    certifiable = certify and all(
        getattr(a.agent, "state", None) is not None for a in (a1, a2)
    )
    # Certification starts at the first fully post-start round: the round
    # after the later agent executed its start action.  The joint
    # configuration only becomes a pure function of the previous one from
    # that point on (the start action is driven by the start rule, not the
    # step rule), and the compiled backend's cycle detection anchors on the
    # same round, keeping the two backends' verdicts aligned.
    first_joint = max(a1.start_round, a2.start_round) + 1
    seen: set[tuple] = set()
    crossings = 0

    for rnd in range(1, max_rounds + 1):
        prev1, prev2 = a1.pos, a2.pos
        act1 = _agent_action(tree, a1, rnd)
        act2 = _agent_action(tree, a2, rnd)
        _execute(tree, a1, act1)
        _execute(tree, a2, act2)
        if trace is not None:
            trace.append(RoundRecord(rnd, a1.pos, a2.pos, act1, act2))
        if a1.pos == prev2 and a2.pos == prev1 and a1.pos != a2.pos:
            crossings += 1
        if a1.pos == a2.pos:
            return RendezvousOutcome(
                True, rnd, a1.pos, rnd, False, crossings, trace, (a1.agent, a2.agent)
            )
        if certifiable and rnd > first_joint:
            key = (a1.config_key(), a2.config_key())
            if key in seen:
                return RendezvousOutcome(
                    False, None, None, rnd, True, crossings, trace, (a1.agent, a2.agent)
                )
            seen.add(key)

    return RendezvousOutcome(
        False, None, None, max_rounds, False, crossings, trace, (a1.agent, a2.agent)
    )


def _agent_action(tree: Tree, a: _AgentState, rnd: int) -> int:
    """The resolved action of agent ``a`` at global round ``rnd`` (1-based)."""
    degree = tree.degree(a.pos)
    if not a.started:
        if rnd <= a.start_round:
            return STAY
        a.started = True
        raw = a.agent.start(degree)
    else:
        raw = a.agent.step(a.in_port, degree)
    return resolve_action(raw, degree)


def _execute(tree: Tree, a: _AgentState, action: int) -> None:
    if action == STAY:
        a.in_port = NULL_PORT
        return
    a.pos, a.in_port = tree.move(a.pos, action)
