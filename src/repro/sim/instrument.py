"""Single-agent instrumented execution.

Debugging the paper's agents requires watching *one* agent walk a tree:
where it is, which registers change when, and how long each phase takes.
:func:`run_solo` drives one agent (an :class:`~repro.agents.program.AgentProgram`
prototype or any :class:`~repro.agents.observations.AgentBase`) on a tree
with no partner and full recording:

>>> from repro.core import rendezvous_agent
>>> from repro.trees import line
>>> run = run_solo(line(9), 0, rendezvous_agent(max_outer=1), 5000)
>>> run.rounds > 0 and run.start == 0
True

The register timeline makes claims like "the prime counter first moves at
round r" checkable in tests, and powers the memory experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..agents.observations import NULL_PORT, STAY, AgentBase, resolve_action
from ..agents.program import AgentProgram
from ..errors import SimulationError
from ..trees.tree import Tree

__all__ = ["RegisterEvent", "SoloRun", "run_solo"]


@dataclass(frozen=True)
class RegisterEvent:
    """A register changed value at the end of ``round_index``."""

    round_index: int
    name: str
    value: int


@dataclass
class SoloRun:
    """Recorded single-agent execution."""

    start: int
    positions: list[int] = field(default_factory=list)  # after each round
    register_events: list[RegisterEvent] = field(default_factory=list)
    finished: bool = False  # the program returned (waits forever)

    @property
    def rounds(self) -> int:
        return len(self.positions)

    @property
    def final_position(self) -> int:
        return self.positions[-1] if self.positions else self.start

    def first_change(self, name: str) -> Optional[int]:
        """Round of the first recorded change of register ``name``."""
        for ev in self.register_events:
            if ev.name == name:
                return ev.round_index
        return None

    def value_series(self, name: str) -> list[tuple[int, int]]:
        """(round, value) history of one register."""
        return [
            (ev.round_index, ev.value)
            for ev in self.register_events
            if ev.name == name
        ]


def run_solo(
    tree: Tree,
    start: int,
    prototype: AgentBase,
    max_rounds: int,
    *,
    record_registers: bool = True,
) -> SoloRun:
    """Drive one clone of ``prototype`` from ``start`` for ``max_rounds``
    rounds (or until a program agent finishes)."""
    if not (0 <= start < tree.n):
        raise SimulationError("start node outside the tree")
    agent = prototype.clone()
    run = SoloRun(start=start)
    pos = start
    snapshot: dict[str, int] = {}

    def record(rnd: int) -> None:
        if not record_registers or not isinstance(agent, AgentProgram):
            return
        values = dict(agent.registers._values)
        for name, value in values.items():
            if snapshot.get(name) != value:
                run.register_events.append(RegisterEvent(rnd, name, value))
                snapshot[name] = value

    action = resolve_action(agent.start(tree.degree(pos)), tree.degree(pos))
    record(0)
    for rnd in range(1, max_rounds + 1):
        if isinstance(agent, AgentProgram) and agent.finished:
            run.finished = True
            break
        if action == STAY:
            obs = (NULL_PORT, tree.degree(pos))
        else:
            pos, in_port = tree.move(pos, action)
            obs = (in_port, tree.degree(pos))
        run.positions.append(pos)
        action = resolve_action(agent.step(*obs), tree.degree(pos))
        record(rnd)
    else:
        run.finished = isinstance(agent, AgentProgram) and agent.finished
    return run
