"""Adversarial sweeps: labelings × start pairs × delays against one agent.

Definition 1.1 quantifies over *every* port labeling; the adversary also
controls the delay.  This module provides the exhaustive/randomized sweeps
the tests and experiments use to attack an agent, and the bookkeeping to
report which instances defeated it.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Optional

from ..agents.observations import AgentBase
from ..trees.automorphism import perfectly_symmetrizable
from ..trees.labelings import all_labelings, random_relabel
from ..trees.tree import Tree
from .batch import BatchJob, derive_seed, run_batch
from .compiled import run_rendezvous_fast
from .engine import RendezvousOutcome

__all__ = [
    "all_start_pairs",
    "feasible_start_pairs",
    "FailedInstance",
    "AdversaryReport",
    "adversarial_search",
    "labelings_for",
]


def all_start_pairs(tree: Tree) -> Iterator[tuple[int, int]]:
    """All unordered pairs of distinct nodes."""
    return itertools.combinations(range(tree.n), 2)


def feasible_start_pairs(tree: Tree) -> Iterator[tuple[int, int]]:
    """Pairs from which rendezvous is solvable (not perfectly symmetrizable)."""
    for u, v in all_start_pairs(tree):
        if not perfectly_symmetrizable(tree, u, v):
            yield (u, v)


def labelings_for(
    tree: Tree,
    *,
    exhaustive_limit: int = 5000,
    samples: int = 24,
    rng: Optional[random.Random] = None,
) -> list[Tree]:
    """A labeling battery: exhaustive when small, random samples otherwise."""
    from ..trees.labelings import count_labelings

    if count_labelings(tree) <= exhaustive_limit:
        return list(all_labelings(tree))
    rng = rng or random.Random(0)
    out = [tree]
    out.extend(random_relabel(tree, rng) for _ in range(samples - 1))
    return out


@dataclass(frozen=True)
class FailedInstance:
    """One instance on which the agent failed to rendezvous."""

    tree: Tree
    start1: int
    start2: int
    delay: int
    delayed: int
    outcome: RendezvousOutcome


@dataclass
class AdversaryReport:
    """Aggregate result of an adversarial sweep."""

    instances_run: int = 0
    successes: int = 0
    failures: list[FailedInstance] = field(default_factory=list)
    undecided: int = 0
    max_meeting_round: int = 0

    @property
    def all_succeeded(self) -> bool:
        return not self.failures and self.undecided == 0

    def record(self, inst: FailedInstance) -> None:
        self.instances_run += 1
        if inst.outcome.met:
            self.successes += 1
            self.max_meeting_round = max(
                self.max_meeting_round, inst.outcome.meeting_round or 0
            )
        else:
            self.failures.append(inst)
            if inst.outcome.undecided:
                self.undecided += 1


def adversarial_search(
    tree: Tree,
    prototype: AgentBase,
    *,
    pairs: Optional[Iterable[tuple[int, int]]] = None,
    labelings: Optional[Iterable[Tree]] = None,
    delays: Iterable[int] = (0,),
    max_rounds: int = 200_000,
    certify: bool = False,
    stop_at_first_failure: bool = False,
    processes: Optional[int] = None,
    seed: Optional[int] = None,
) -> AdversaryReport:
    """Attack ``prototype`` with every (labeling, start pair, delay) combo.

    ``pairs`` defaults to the feasible (non perfectly symmetrizable) pairs of
    the *topology* — perfect symmetrizability is labeling-independent, so the
    same pair list applies to every relabeling.

    Finite-state prototypes run on the compiled backend automatically.
    ``processes`` > 1 fans the sweep out over a process pool
    (:mod:`repro.sim.batch`); it is ignored when ``stop_at_first_failure``
    is set, since early exit needs sequential results anyway.

    ``seed`` (optional) derives one per-instance RNG seed
    (:func:`repro.sim.batch.derive_seed`) and threads it through the
    workers, so sweeps over randomness-consuming agents are reproducible
    regardless of process count or scheduling.
    """
    report = AdversaryReport()
    pair_list = list(pairs) if pairs is not None else list(feasible_start_pairs(tree))
    labeled = list(labelings) if labelings is not None else labelings_for(tree)
    grid = [
        (labeled_tree, u, v, delay, delayed)
        for labeled_tree in labeled
        for u, v in pair_list
        for delay in delays
        for delayed in ((2,) if delay == 0 else (1, 2))
    ]
    job_seed = (
        (lambda idx: derive_seed(seed, idx)) if seed is not None else (lambda idx: None)
    )
    if processes is not None and processes > 1 and not stop_at_first_failure:
        jobs = [
            BatchJob(t, prototype, u, v, delay=d, delayed=side,
                     max_rounds=max_rounds, certify=certify, seed=job_seed(idx))
            for idx, (t, u, v, d, side) in enumerate(grid)
        ]
        for (t, u, v, d, side), outcome in zip(grid, run_batch(jobs, processes=processes)):
            report.record(FailedInstance(t, u, v, d, side, outcome))
        return report
    # seeded serial runs must not leak deterministic state to the caller
    saved_state = random.getstate() if seed is not None else None
    try:
        for idx, (t, u, v, d, side) in enumerate(grid):
            if seed is not None:
                random.seed(job_seed(idx))
            outcome = run_rendezvous_fast(
                t, prototype, u, v,
                delay=d, delayed=side, max_rounds=max_rounds, certify=certify,
            )
            report.record(FailedInstance(t, u, v, d, side, outcome))
            if stop_at_first_failure and report.failures:
                return report
        return report
    finally:
        if saved_state is not None:
            random.setstate(saved_state)
