"""The batched k-agent gathering solver: joint-configuration recurrence.

:func:`repro.sim.compiled.solve_all_delays` decides a whole two-agent
delay sweep in one reachability pass over the product configuration
graph.  This module extends the same technique to the gathering problem
(§1.3's k > 2 extension): for finite-state agents, the joint
configuration — every agent's ``(position, automaton state, entry
port)`` — after a fully-started round determines the entire future, so
each configuration's fate (*gathers after d more rounds* / *provably
never gathers*) can be computed once and shared across every delay
vector of a sweep.

For one delay vector ``(θ_0, ..., θ_{k-1})`` the solver:

1. replays the staggered prefix, rounds ``1 .. max(θ) + 1``, with the
   flat-table loop (agents are still waking up, so the configuration is
   not yet a pure function of its predecessor), checking gathering after
   every round;
2. from the configuration reached after round ``max(θ) + 1`` walks the
   deterministic product configuration graph, memoizing each visited
   configuration's fate in a dictionary shared across *all* delay
   vectors of the call.

Because the product graph is finite, every verdict is exact: exactly one
of ``gathered`` / ``certified_never`` holds — the sweep executors never
have to report a round-budget exhaustion as an answer.  ``max_configs``
is a guard against pathological state-space blowups (k-agent spaces grow
as ``(n·K·(Δ+1))^k``), not a round budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..agents.automaton import Automaton
from ..agents.observations import STAY
from ..errors import BudgetExceededError, SimulationError
from ..trees.tree import Tree
from .compiled import _make_stepper, compile_agent
from .multi import _validate

__all__ = ["GatheringVerdict", "solve_gathering"]

_NEVER = (False, -1)


@dataclass(frozen=True, slots=True)
class GatheringVerdict:
    """Fate of one per-agent delay vector.

    :func:`solve_gathering` always decides (the product configuration
    graph is finite): exactly one of ``gathered`` / ``certified_never``
    is true in its output.  The budgeted sweep path
    (``Backend.sweep_gathering`` over per-run engines) may return a
    verdict with *neither* flag set — an undecided round-budget
    exhaustion, which callers must never treat as a non-gathering proof.
    """

    delays: tuple[int, ...]
    gathered: bool
    gathering_round: Optional[int]
    certified_never: bool
    # Did a crash fault fire by this vector's final decided round?
    # Always False for fault-free sweeps (see DelayVerdict.crashed).
    crashed: bool = False


def solve_gathering(
    tree: Tree,
    prototype: Automaton,
    starts: Sequence[int],
    delay_vectors: Sequence[Sequence[int]],
    *,
    max_configs: int = 4_000_000,
    prototypes: Optional[Sequence[Automaton]] = None,
    faults=None,
) -> list[GatheringVerdict]:
    """Decide gathering for every per-agent delay vector, exactly.

    ``delay_vectors[j][i]`` is agent i's start delay in the j-th
    adversary choice; each vector must have one entry per start.
    Verdicts come back in ``delay_vectors`` order.  Raises
    :class:`~repro.errors.BudgetExceededError` if more than
    ``max_configs`` distinct joint configurations are explored (a guard,
    not a round budget — the solver is otherwise exact) and
    :class:`SimulationError` if ``prototype`` is not a finite-state
    :class:`~repro.agents.automaton.Automaton`.

    ``prototypes`` (default: ``prototype`` for every agent) gives agent
    i its own automaton — the heterogeneous seam traced lowering
    (:mod:`repro.sim.traced`) feeds per-(tree, start) tables through.
    ``faults`` (an optional :class:`~repro.sim.faults.FaultPlan`)
    routes to the faulted exact solver.
    """
    if faults:
        from .faults import solve_gathering_faulted

        return solve_gathering_faulted(
            tree, prototype, starts, delay_vectors, faults=faults,
            max_configs=max_configs, prototypes=prototypes,
        )
    starts = list(starts)
    protos = list(prototypes) if prototypes is not None else [prototype] * len(starts)
    if len(protos) != len(starts):
        raise SimulationError("'prototypes' must align with 'starts'")
    for p in protos:
        if not isinstance(p, Automaton):
            raise SimulationError(
                "the gathering solver requires finite-state Automaton agents"
            )
    vectors = [list(_validate(tree, starts, vec)) for vec in delay_vectors]
    k = len(starts)

    compileds = [compile_agent(p, tree) for p in protos]
    stride, deg, move_to, move_in = tree.flat_move_tables()
    start_acts = [c.start_action for c in compileds]
    s0s = [c.initial_state for c in compileds]
    steppers = [_make_stepper(c, tree) for c in compileds]

    def step_joint(config: tuple) -> tuple:
        return tuple(
            x
            for i in range(k)
            for x in steppers[i](config[3 * i], config[3 * i + 1], config[3 * i + 2])
        )

    def is_meeting(config: tuple) -> bool:
        first = config[0]
        return all(config[3 * i] == first for i in range(1, k))

    # verdict[config] = (True, d): gathers d rounds after reaching config;
    #                   (False, -1): provably never gathers from config.
    verdict: dict[tuple, tuple[bool, int]] = {}

    def resolve(config: tuple) -> tuple[bool, int]:
        """Fate of ``config`` (the joint configuration after some
        fully-started round) — cf. ``solve_all_delays``'s resolver."""
        path: list[tuple] = []
        on_path: dict[tuple, int] = {}
        cur = config
        while True:
            known = verdict.get(cur)
            if known is not None:
                res = known
                break
            if is_meeting(cur):
                res = (True, 0)
                verdict[cur] = res
                break
            if cur in on_path:  # fresh cycle, and no gathering on it
                res = _NEVER
                break
            on_path[cur] = len(path)
            path.append(cur)
            if len(verdict) + len(path) > max_configs:
                raise BudgetExceededError(
                    f"gathering solver exceeded max_configs={max_configs}"
                )
            cur = step_joint(cur)
        met, dist = res
        if met:
            for c in reversed(path):
                dist += 1
                verdict[c] = (True, dist)
        else:
            for c in path:
                verdict[c] = _NEVER
        return verdict[config]

    out: list[GatheringVerdict] = []
    for delays in vectors:
        key = tuple(delays)
        if len(set(starts)) == 1:
            out.append(GatheringVerdict(key, True, 0, False))
            continue

        # Staggered prefix: rounds 1 .. max(delays) + 1.  After the last
        # of these every agent has executed its start action and the
        # joint configuration becomes a pure function of its predecessor.
        first_joint = max(delays) + 1
        pos = list(starts)
        st = [0] * k
        ip = [0] * k
        started = [False] * k
        gathered_at: Optional[int] = None
        for rnd in range(1, first_joint + 1):
            for i in range(k):
                if started[i]:
                    pos[i], st[i], ip[i] = steppers[i](pos[i], st[i], ip[i])
                elif rnd > delays[i]:
                    started[i] = True
                    st[i] = s0s[i]
                    a = start_acts[i][deg[pos[i]]]
                    if a == STAY:
                        ip[i] = 0
                    else:
                        base = pos[i] * stride + a
                        pos[i] = move_to[base]
                        ip[i] = move_in[base] + 1
            if all(p == pos[0] for p in pos):
                gathered_at = rnd
                break
        if gathered_at is not None:
            out.append(GatheringVerdict(key, True, gathered_at, False))
            continue

        entry = tuple(x for i in range(k) for x in (pos[i], st[i], ip[i]))
        met, dist = resolve(entry)
        if met:
            out.append(GatheringVerdict(key, True, first_joint + dist, False))
        else:
            out.append(GatheringVerdict(key, False, None, True))
    return out
