"""The fault-model layer: crash-stop, transient pauses, adversarial relabeling.

The paper's adversary controls the start delay θ and the port labeling.
This module widens the adversary with three *runtime* fault families and
threads them through every execution engine with reference/compiled
parity as the correctness gate:

- :class:`CrashFault` — crash-stop: from its round on the agent executes
  nothing, forever.  A crashed agent still occupies its node, so meeting
  a crashed agent counts (rendezvous only asks that both agents share a
  node at the end of a round).
- :class:`PauseFault` — a transient freeze: for ``duration`` rounds the
  agent executes nothing (its automaton state *and* its pending entry
  port are preserved — time dilation, not observation loss).  A pause
  covering an agent's would-be start round defers the start.
- :class:`RelabelFault` — before the actions of its round, the adversary
  re-draws the port labeling with a seeded RNG.  Node identities are
  untouched; only ports change.  The draw is *automorphism-respecting*:
  candidates are resampled (bounded attempts) until the relabeled tree
  agrees with the base labeling on whether a nontrivial port-preserving
  automorphism exists, so a relabel attack cannot smuggle a tree across
  the symmetric/asymmetric frontier the paper's feasibility
  characterization (Def. 1.2) is built on.

Certification stays sound because every fault plan has a finite
``horizon`` (the last round any fault is active).  Past
``max(first fully-started round, horizon)`` the joint configuration is
again a pure function of its predecessor — crashed agents are constant,
pauses have expired, the labeling is final — so both the reference
``seen``-set and the compiled Brent anchor simply begin *after* that
round, at the same round on both backends, preserving the parity
contract (``met`` / ``meeting_round`` / ``meeting_node`` /
``certified_never`` identical; ``rounds_executed`` on certified-never
may differ).

The exact sweep solvers get faulted twins
(:func:`solve_all_delays_faulted`, :func:`solve_gathering_faulted`):
each adversary choice simulates its faulted prefix through the horizon,
then resolves the reached configuration against a fate memo shared
across the whole grid — the post-horizon dynamics (final labeling,
crashed agents frozen) are choice-independent, so the memo is valid
grid-wide and the solvers stay exact.

Outcomes gain a ``crashed`` field (the agents whose crash had fired by
the final executed round) and the sweep verdicts a ``crashed`` flag, so
"never meets *because a fault killed an agent*" is certified distinctly
from healthy never-meeting all the way up to the scenario rows
(verdict ``certified-never-crash``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..agents.automaton import Automaton
from ..agents.observations import STAY, AgentBase
from ..errors import BudgetExceededError, SimulationError
from ..trees.automorphism import is_symmetric_labeling
from ..trees.labelings import random_relabel
from ..trees.tree import Tree
from .compiled import (
    _INVALID,
    DelayVerdict,
    _final_agents,
    _make_stepper,
    compile_agent,
)
from .engine import RendezvousOutcome, _agent_action, _AgentState, _execute
from .gathering_solver import GatheringVerdict
from .multi import GatheringOutcome, _validate
from .trace import RoundRecord, Trace

__all__ = [
    "CrashFault",
    "PauseFault",
    "RelabelFault",
    "FaultPlan",
    "run_rendezvous_faulted",
    "run_rendezvous_faulted_compiled",
    "run_gathering_faulted",
    "run_gathering_faulted_reference",
    "run_gathering_faulted_compiled",
    "solve_all_delays_faulted",
    "solve_gathering_faulted",
]

_NEVER = (False, -1)
_RELABEL_ATTEMPTS = 32


@dataclass(frozen=True, slots=True)
class CrashFault:
    """Agent ``agent`` (0-based) crash-stops at round ``round`` (1-based):
    that round and every later one it executes nothing, but keeps
    occupying its node."""

    agent: int
    round: int


@dataclass(frozen=True, slots=True)
class PauseFault:
    """Agent ``agent`` freezes for rounds ``round .. round+duration-1``:
    no automaton step, no move, pending entry port preserved."""

    agent: int
    round: int
    duration: int = 1


@dataclass(frozen=True, slots=True)
class RelabelFault:
    """Before round ``round``'s actions the ports are re-drawn with
    ``random.Random(seed)`` (automorphism-respecting; node ids fixed)."""

    round: int
    seed: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """One adversary's complete fault schedule for a run or sweep.

    Plans are immutable, picklable (they ride inside batch jobs and
    scenario params) and JSON round-trippable.  An empty plan is falsy,
    so every engine treats ``faults=FaultPlan()`` like ``faults=None``.
    """

    crashes: tuple[CrashFault, ...] = ()
    pauses: tuple[PauseFault, ...] = ()
    relabels: tuple[RelabelFault, ...] = ()

    def __post_init__(self):
        object.__setattr__(
            self,
            "crashes",
            tuple(sorted(self.crashes, key=lambda c: (c.round, c.agent))),
        )
        object.__setattr__(
            self,
            "pauses",
            tuple(sorted(self.pauses, key=lambda p: (p.round, p.agent))),
        )
        object.__setattr__(
            self, "relabels", tuple(sorted(self.relabels, key=lambda r: r.round))
        )
        for c in self.crashes:
            if c.agent < 0 or c.round < 1:
                raise SimulationError(
                    "crash faults need agent >= 0 and round >= 1"
                )
        crashed_agents = [c.agent for c in self.crashes]
        if len(set(crashed_agents)) != len(crashed_agents):
            raise SimulationError("at most one crash fault per agent")
        for p in self.pauses:
            if p.agent < 0 or p.round < 1 or p.duration < 1:
                raise SimulationError(
                    "pause faults need agent >= 0, round >= 1, duration >= 1"
                )
        by_agent: dict[int, list[PauseFault]] = {}
        for p in self.pauses:
            by_agent.setdefault(p.agent, []).append(p)
        for plist in by_agent.values():
            for a, b in zip(plist, plist[1:]):
                if b.round < a.round + a.duration:
                    raise SimulationError(
                        "pause faults for one agent must not overlap"
                    )
        rounds = [r.round for r in self.relabels]
        if len(set(rounds)) != len(rounds):
            raise SimulationError("at most one relabel fault per round")
        for r in self.relabels:
            if r.round < 1:
                raise SimulationError("relabel faults need round >= 1")

    # -- structure ----------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.crashes or self.pauses or self.relabels)

    @property
    def horizon(self) -> int:
        """The last round any fault is active; 0 for the empty plan.
        Past it the joint dynamics are autonomous again."""
        ends = [0]
        ends.extend(c.round for c in self.crashes)
        ends.extend(p.round + p.duration - 1 for p in self.pauses)
        ends.extend(r.round for r in self.relabels)
        return max(ends)

    @property
    def max_agent_index(self) -> int:
        agents = [-1]
        agents.extend(c.agent for c in self.crashes)
        agents.extend(p.agent for p in self.pauses)
        return max(agents)

    def validate_for(self, num_agents: int) -> None:
        if self.max_agent_index >= num_agents:
            raise SimulationError(
                f"fault plan names agent {self.max_agent_index} but the "
                f"run has {num_agents} agents (indices 0..{num_agents - 1})"
            )

    def frozen_in_round(self, agent: int, rnd: int) -> bool:
        """Does agent ``agent`` execute nothing in round ``rnd``?"""
        for c in self.crashes:
            if c.agent == agent and rnd >= c.round:
                return True
        for p in self.pauses:
            if p.agent == agent and p.round <= rnd < p.round + p.duration:
                return True
        return False

    def crashed_by(self, rnd: int) -> tuple[int, ...]:
        """Agents whose crash has fired by the end of round ``rnd``."""
        return tuple(sorted({c.agent for c in self.crashes if c.round <= rnd}))

    # -- relabeling ---------------------------------------------------

    def labeling_schedule(self, tree: Tree) -> list[tuple[int, Tree]]:
        """``[(first_round, labeled_tree), ...]`` — the tree in force from
        each round on.  Deterministic in ``(tree, plan)``; the base
        labeling always opens the schedule at round 1."""
        schedule = [(1, tree)]
        if not self.relabels:
            return schedule
        base_symmetric = is_symmetric_labeling(tree)
        cur = tree
        for rf in self.relabels:
            cur = _respectful_relabel(cur, base_symmetric, rf.seed)
            schedule.append((rf.round, cur))
        return schedule

    # -- serialization ------------------------------------------------

    def to_json(self) -> dict:
        out: dict = {}
        if self.crashes:
            out["crashes"] = [[c.agent, c.round] for c in self.crashes]
        if self.pauses:
            out["pauses"] = [[p.agent, p.round, p.duration] for p in self.pauses]
        if self.relabels:
            out["relabels"] = [[r.round, r.seed] for r in self.relabels]
        return out

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise SimulationError(
                f"fault plan payload must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"crashes", "pauses", "relabels"}
        if unknown:
            raise SimulationError(
                f"unknown fault plan keys: {sorted(unknown)}"
            )
        try:
            return cls(
                crashes=tuple(
                    CrashFault(int(a), int(r)) for a, r in payload.get("crashes", ())
                ),
                pauses=tuple(
                    PauseFault(int(a), int(r), int(d))
                    for a, r, d in payload.get("pauses", ())
                ),
                relabels=tuple(
                    RelabelFault(int(r), int(s))
                    for r, s in payload.get("relabels", ())
                ),
            )
        except (TypeError, ValueError) as exc:
            raise SimulationError(f"malformed fault plan payload: {exc}") from exc

    @classmethod
    def parse_many(cls, specs: Sequence[str]) -> "FaultPlan":
        """Build a plan from CLI fault strings:

        - ``crash:AGENT@ROUND``
        - ``pause:AGENT@ROUND:DURATION`` (duration defaults to 1)
        - ``relabel@ROUND:SEED`` (seed defaults to 0)
        """
        crashes, pauses, relabels = [], [], []
        for spec in specs:
            try:
                if spec.startswith("crash:"):
                    agent, _, rnd = spec[len("crash:"):].partition("@")
                    crashes.append(CrashFault(int(agent), int(rnd)))
                elif spec.startswith("pause:"):
                    agent, _, rest = spec[len("pause:"):].partition("@")
                    rnd, _, dur = rest.partition(":")
                    pauses.append(
                        PauseFault(int(agent), int(rnd), int(dur) if dur else 1)
                    )
                elif spec.startswith("relabel@"):
                    rnd, _, seed = spec[len("relabel@"):].partition(":")
                    relabels.append(
                        RelabelFault(int(rnd), int(seed) if seed else 0)
                    )
                else:
                    raise ValueError("unknown fault kind")
            except (TypeError, ValueError) as exc:
                raise SimulationError(
                    f"cannot parse fault {spec!r} "
                    "(expected crash:AGENT@ROUND, pause:AGENT@ROUND:DURATION "
                    f"or relabel@ROUND:SEED): {exc}"
                ) from exc
        return cls(tuple(crashes), tuple(pauses), tuple(relabels))

    @classmethod
    def coerce(cls, value) -> Optional["FaultPlan"]:
        """Liberal constructor for spec params and CLI surfaces.

        ``None`` and empty plans come back as ``None`` so callers can
        branch on truthiness; accepts a plan, a JSON object, a fault
        string, or a list of fault strings.
        """
        if value is None:
            return None
        if isinstance(value, FaultPlan):
            return value or None
        if isinstance(value, dict):
            return cls.from_json(value) or None
        if isinstance(value, str):
            return cls.parse_many([value]) or None
        if isinstance(value, (list, tuple)) and all(
            isinstance(s, str) for s in value
        ):
            return cls.parse_many(value) or None
        raise SimulationError(
            f"cannot build a fault plan from {type(value).__name__}"
        )


def _respectful_relabel(tree: Tree, base_symmetric: bool, seed: int) -> Tree:
    """A seeded random relabeling preserving the base labeling's
    symmetry class (bounded resampling; falls back to the input)."""
    rng = random.Random(seed)
    for _ in range(_RELABEL_ATTEMPTS):
        cand = random_relabel(tree, rng)
        if is_symmetric_labeling(cand) == base_symmetric:
            return cand
    return tree


def _as_plan(faults) -> FaultPlan:
    plan = FaultPlan.coerce(faults)
    if plan is None:
        raise SimulationError("the faulted engines need a non-empty fault plan")
    return plan


# ----------------------------------------------------------------------
# Reference (oracle) loops
# ----------------------------------------------------------------------

def run_rendezvous_faulted(
    tree: Tree,
    prototype: AgentBase,
    start1: int,
    start2: int,
    *,
    faults,
    delay: int = 0,
    delayed: int = 2,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    record_trace: bool = False,
) -> RendezvousOutcome:
    """:func:`repro.sim.engine.run_rendezvous` under a fault plan.

    Rendezvous agent 1 is fault-plan agent 0, agent 2 is agent 1.
    Frozen rounds are recorded as ``STAY`` in the trace; certification
    begins after ``max(first fully-started round, plan horizon)``.
    """
    plan = _as_plan(faults)
    plan.validate_for(2)
    if not (0 <= start1 < tree.n and 0 <= start2 < tree.n):
        raise SimulationError("start nodes outside the tree")
    if delay < 0:
        raise SimulationError("delay must be >= 0")
    if delayed not in (1, 2):
        raise SimulationError("'delayed' must be 1 or 2")

    a1 = _AgentState(prototype.clone(), start1, delay if delayed == 1 else 0)
    a2 = _AgentState(prototype.clone(), start2, delay if delayed == 2 else 0)
    trace = Trace(start1, start2) if record_trace else None

    if start1 == start2:
        return RendezvousOutcome(True, 0, start1, 0, False, 0, trace, (a1.agent, a2.agent))

    certifiable = certify and all(
        getattr(a.agent, "state", None) is not None for a in (a1, a2)
    )
    cert_start = max(max(a1.start_round, a2.start_round) + 1, plan.horizon + 1)
    schedule = plan.labeling_schedule(tree)
    seg = 0
    cur = schedule[0][1]
    seen: set[tuple] = set()
    crossings = 0

    for rnd in range(1, max_rounds + 1):
        while seg + 1 < len(schedule) and schedule[seg + 1][0] <= rnd:
            seg += 1
            cur = schedule[seg][1]
        prev1, prev2 = a1.pos, a2.pos
        f1 = plan.frozen_in_round(0, rnd)
        f2 = plan.frozen_in_round(1, rnd)
        act1 = STAY if f1 else _agent_action(cur, a1, rnd)
        act2 = STAY if f2 else _agent_action(cur, a2, rnd)
        if not f1:
            _execute(cur, a1, act1)
        if not f2:
            _execute(cur, a2, act2)
        if trace is not None:
            trace.append(RoundRecord(rnd, a1.pos, a2.pos, act1, act2))
        if a1.pos == prev2 and a2.pos == prev1 and a1.pos != a2.pos:
            crossings += 1
        if a1.pos == a2.pos:
            return RendezvousOutcome(
                True, rnd, a1.pos, rnd, False, crossings, trace,
                (a1.agent, a2.agent), plan.crashed_by(rnd),
            )
        if certifiable and rnd > cert_start:
            key = (a1.config_key(), a2.config_key())
            if key in seen:
                return RendezvousOutcome(
                    False, None, None, rnd, True, crossings, trace,
                    (a1.agent, a2.agent), plan.crashed_by(rnd),
                )
            seen.add(key)

    return RendezvousOutcome(
        False, None, None, max_rounds, False, crossings, trace,
        (a1.agent, a2.agent), plan.crashed_by(max_rounds),
    )


def run_gathering_faulted(
    tree: Tree,
    prototype: AgentBase,
    starts: Sequence[int],
    *,
    faults,
    delays: Optional[Sequence[int]] = None,
    max_rounds: int = 1_000_000,
    certify: bool = False,
) -> GatheringOutcome:
    """Faulted gathering with the usual engine dispatch (compiled for
    finite-state automata, reference loop otherwise)."""
    if isinstance(prototype, Automaton):
        return run_gathering_faulted_compiled(
            tree, prototype, starts, faults=faults,
            delays=delays, max_rounds=max_rounds, certify=certify,
        )
    return run_gathering_faulted_reference(
        tree, prototype, starts, faults=faults,
        delays=delays, max_rounds=max_rounds, certify=certify,
    )


def run_gathering_faulted_reference(
    tree: Tree,
    prototype: AgentBase,
    starts: Sequence[int],
    *,
    faults,
    delays: Optional[Sequence[int]] = None,
    max_rounds: int = 1_000_000,
    certify: bool = False,
) -> GatheringOutcome:
    """The oracle gathering loop under a fault plan (agent i is
    fault-plan agent i)."""
    plan = _as_plan(faults)
    delay_list = _validate(tree, starts, delays)
    plan.validate_for(len(starts))
    agents = [
        _AgentState(prototype.clone(), pos, d)
        for pos, d in zip(starts, delay_list)
    ]
    k = len(agents)

    def cluster_size() -> int:
        counts: dict[int, int] = {}
        for a in agents:
            counts[a.pos] = counts.get(a.pos, 0) + 1
        return max(counts.values())

    largest = cluster_size()
    if largest == k:
        return GatheringOutcome(
            True, 0, agents[0].pos, 0, tuple(a.pos for a in agents), largest
        )

    certifiable = certify and all(
        getattr(a.agent, "state", None) is not None for a in agents
    )
    cert_start = max(max(delay_list) + 1, plan.horizon + 1)
    schedule = plan.labeling_schedule(tree)
    seg = 0
    cur = schedule[0][1]
    seen: set[tuple] = set()

    for rnd in range(1, max_rounds + 1):
        while seg + 1 < len(schedule) and schedule[seg + 1][0] <= rnd:
            seg += 1
            cur = schedule[seg][1]
        for i, a in enumerate(agents):
            if plan.frozen_in_round(i, rnd):
                continue
            _execute(cur, a, _agent_action(cur, a, rnd))
        size = cluster_size()
        largest = max(largest, size)
        if size == k:
            return GatheringOutcome(
                True, rnd, agents[0].pos, rnd, tuple(a.pos for a in agents),
                largest, False, plan.crashed_by(rnd),
            )
        if certifiable and rnd > cert_start:
            key = tuple(a.config_key() for a in agents)
            if key in seen:
                return GatheringOutcome(
                    False, None, None, rnd, tuple(a.pos for a in agents),
                    largest, True, plan.crashed_by(rnd),
                )
            seen.add(key)
    return GatheringOutcome(
        False, None, None, max_rounds, tuple(a.pos for a in agents),
        largest, False, plan.crashed_by(max_rounds),
    )


# ----------------------------------------------------------------------
# Compiled loops
# ----------------------------------------------------------------------

def _iter_compiled_faulted(
    tree: Tree,
    plan: FaultPlan,
    compileds: list,
    starts: list[int],
    start_rounds: list[int],
    max_rounds: int,
):
    """Flat-table faulted stepping, one yield per executed round:
    ``(rnd, pos, st, ip, started, acts)`` — the lists are live (mutated
    in place), ``acts`` records ``STAY`` for frozen agents.

    Relabel segments swap the move tables only: the transition tables
    are keyed on ``(stride, degree set)``, both labeling-invariant, so
    one compilation serves every segment.
    """
    k = len(starts)
    schedule = plan.labeling_schedule(tree)
    tables = [t.flat_move_tables() for _, t in schedule]
    seg = 0
    stride, deg, move_to, move_in = tables[0]
    width = stride + 1
    nxts = [c.next_state for c in compileds]
    acts_t = [c.action for c in compileds]
    start_acts = [c.start_action for c in compileds]
    s0s = [c.initial_state for c in compileds]

    pos = list(starts)
    st = [0] * k
    ip = [0] * k  # entry-port indices (in_port + 1; 0 == NULL_PORT)
    started = [False] * k
    acts = [STAY] * k

    for rnd in range(1, max_rounds + 1):
        while seg + 1 < len(schedule) and schedule[seg + 1][0] <= rnd:
            seg += 1
            stride, deg, move_to, move_in = tables[seg]
        for i in range(k):
            if plan.frozen_in_round(i, rnd):
                acts[i] = STAY
                continue
            if started[i]:
                d = deg[pos[i]]
                idx = (st[i] * width + ip[i]) * width + d
                s2 = nxts[i][idx]
                if s2 == _INVALID:
                    compileds[i].automaton.transition(st[i], ip[i] - 1, d)
                    raise SimulationError("invalid transition entry")  # pragma: no cover
                st[i] = s2
                a = acts_t[i][idx]
            elif rnd > start_rounds[i]:
                started[i] = True
                st[i] = s0s[i]
                a = start_acts[i][deg[pos[i]]]
            else:
                a = STAY
            acts[i] = a
            if a == STAY:
                ip[i] = 0
            else:
                base = pos[i] * stride + a
                pos[i] = move_to[base]
                ip[i] = move_in[base] + 1
        yield rnd, pos, st, ip, started, acts


def run_rendezvous_faulted_compiled(
    tree: Tree,
    prototype: Automaton,
    start1: int,
    start2: int,
    *,
    faults,
    delay: int = 0,
    delayed: int = 2,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    record_trace: bool = False,
    prototype2: Optional[Automaton] = None,
) -> RendezvousOutcome:
    """Table-driven twin of :func:`run_rendezvous_faulted`; Brent
    certification anchored after ``max(first joint round, horizon)`` —
    the same round the reference's ``seen``-set starts at."""
    plan = _as_plan(faults)
    plan.validate_for(2)
    if not isinstance(prototype, Automaton):
        raise SimulationError("compiled backend requires a finite-state Automaton")
    if prototype2 is not None and not isinstance(prototype2, Automaton):
        raise SimulationError("compiled backend requires a finite-state Automaton")
    if not (0 <= start1 < tree.n and 0 <= start2 < tree.n):
        raise SimulationError("start nodes outside the tree")
    if delay < 0:
        raise SimulationError("delay must be >= 0")
    if delayed not in (1, 2):
        raise SimulationError("'delayed' must be 1 or 2")

    trace = Trace(start1, start2) if record_trace else None
    if start1 == start2:
        return RendezvousOutcome(
            True, 0, start1, 0, False, 0, trace,
            _final_agents(prototype, 0, False, 0, False, prototype2),
        )

    compiled = compile_agent(prototype, tree)
    compiled2 = compiled if prototype2 is None else compile_agent(prototype2, tree)
    sr1 = delay if delayed == 1 else 0
    sr2 = delay if delayed == 2 else 0
    cert_start = max(max(sr1, sr2) + 1, plan.horizon + 1)

    prev1, prev2 = start1, start2
    crossings = 0
    anchor: Optional[tuple] = None
    steps = 0
    power = 1

    rounds = _iter_compiled_faulted(
        tree, plan, [compiled, compiled2], [start1, start2], [sr1, sr2], max_rounds
    )
    pos, st, ip, started = [start1, start2], [0, 0], [0, 0], [False, False]
    for rnd, pos, st, ip, started, acts in rounds:
        if trace is not None:
            trace.append(RoundRecord(rnd, pos[0], pos[1], acts[0], acts[1]))
        if pos[0] == prev2 and pos[1] == prev1 and pos[0] != pos[1]:
            crossings += 1
        if pos[0] == pos[1]:
            return RendezvousOutcome(
                True, rnd, pos[0], rnd, False, crossings, trace,
                _final_agents(
                    prototype, st[0], started[0], st[1], started[1], prototype2
                ),
                plan.crashed_by(rnd),
            )
        if certify and rnd > cert_start:
            config = (pos[0], st[0], ip[0], pos[1], st[1], ip[1])
            if config == anchor:
                return RendezvousOutcome(
                    False, None, None, rnd, True, crossings, trace,
                    _final_agents(
                        prototype, st[0], started[0], st[1], started[1], prototype2
                    ),
                    plan.crashed_by(rnd),
                )
            steps += 1
            if steps == power:
                anchor = config
                steps = 0
                power <<= 1
        prev1, prev2 = pos[0], pos[1]

    return RendezvousOutcome(
        False, None, None, max_rounds, False, crossings, trace,
        _final_agents(prototype, st[0], started[0], st[1], started[1], prototype2),
        plan.crashed_by(max_rounds),
    )


def run_gathering_faulted_compiled(
    tree: Tree,
    prototype: Automaton,
    starts: Sequence[int],
    *,
    faults,
    delays: Optional[Sequence[int]] = None,
    max_rounds: int = 1_000_000,
    certify: bool = False,
) -> GatheringOutcome:
    """Table-driven twin of :func:`run_gathering_faulted_reference`."""
    plan = _as_plan(faults)
    if not isinstance(prototype, Automaton):
        raise SimulationError("compiled gathering requires a finite-state Automaton")
    delay_list = _validate(tree, starts, delays)
    plan.validate_for(len(starts))
    k = len(starts)
    compiled = compile_agent(prototype, tree)

    def cluster_size(positions) -> int:
        counts: dict[int, int] = {}
        for p in positions:
            counts[p] = counts.get(p, 0) + 1
        return max(counts.values())

    largest = cluster_size(starts)
    if largest == k:
        return GatheringOutcome(True, 0, starts[0], 0, tuple(starts), largest)

    cert_start = max(max(delay_list) + 1, plan.horizon + 1)
    anchor: Optional[tuple] = None
    steps = 0
    power = 1

    rounds = _iter_compiled_faulted(
        tree, plan, [compiled] * k, list(starts), delay_list, max_rounds
    )
    pos = list(starts)
    for rnd, pos, st, ip, started, _acts in rounds:
        size = cluster_size(pos)
        largest = max(largest, size)
        if size == k:
            return GatheringOutcome(
                True, rnd, pos[0], rnd, tuple(pos), largest, False,
                plan.crashed_by(rnd),
            )
        if certify and rnd > cert_start:
            config = tuple(x for i in range(k) for x in (pos[i], st[i], ip[i]))
            if config == anchor:
                return GatheringOutcome(
                    False, None, None, rnd, tuple(pos), largest, True,
                    plan.crashed_by(rnd),
                )
            steps += 1
            if steps == power:
                anchor = config
                steps = 0
                power <<= 1
    return GatheringOutcome(
        False, None, None, max_rounds, tuple(pos), largest, False,
        plan.crashed_by(max_rounds),
    )


# ----------------------------------------------------------------------
# Exact faulted sweep solvers
# ----------------------------------------------------------------------

def _faulted_resolver(steppers, is_meeting, max_configs):
    """Shared-memo fate resolver over the post-horizon (autonomous)
    product graph — cf. ``solve_all_delays``'s resolver; ``steppers``
    already freeze crashed agents (identity step)."""
    k = len(steppers)
    verdict: dict[tuple, tuple[bool, int]] = {}

    def step_joint(config: tuple) -> tuple:
        return tuple(
            x
            for i in range(k)
            for x in steppers[i](config[3 * i], config[3 * i + 1], config[3 * i + 2])
        )

    def resolve(config: tuple) -> tuple[bool, int]:
        path: list[tuple] = []
        on_path: dict[tuple, int] = {}
        cur = config
        while True:
            known = verdict.get(cur)
            if known is not None:
                res = known
                break
            if is_meeting(cur):
                res = (True, 0)
                verdict[cur] = res
                break
            if cur in on_path:  # fresh cycle, and no meeting on it
                res = _NEVER
                break
            on_path[cur] = len(path)
            path.append(cur)
            if len(verdict) + len(path) > max_configs:
                raise BudgetExceededError(
                    f"faulted sweep solver exceeded max_configs={max_configs}"
                )
            cur = step_joint(cur)
        met, dist = res
        if met:
            for c in reversed(path):
                dist += 1
                verdict[c] = (True, dist)
        else:
            for c in path:
                verdict[c] = _NEVER
        return verdict[config]

    return resolve


def _frozen_steppers(compileds, final_tree, crashed_agents):
    """Per-agent post-horizon steppers on the final labeling; crashed
    agents step by identity (they are constant forever)."""
    def identity(p: int, s: int, i: int) -> tuple[int, int, int]:
        return p, s, i

    return [
        identity if i in crashed_agents else _make_stepper(c, final_tree)
        for i, c in enumerate(compileds)
    ]


def solve_all_delays_faulted(
    tree: Tree,
    prototype: Automaton,
    start1: int,
    start2: int,
    *,
    max_delay: int,
    faults,
    delayed_sides: Sequence[int] = (1, 2),
    max_configs: int = 4_000_000,
    prototype2: Optional[Automaton] = None,
) -> list[DelayVerdict]:
    """:func:`repro.sim.compiled.solve_all_delays` under a fault plan.

    Each ``(θ, side)`` choice simulates its faulted prefix — rounds
    ``1 .. max(θ, horizon) + 1``, after which every surviving agent has
    started, every pause has expired and the labeling is final — then
    resolves the reached configuration against a fate memo shared across
    the whole grid (the post-horizon dynamics are choice-independent).
    Still exact: every verdict is ``met`` or ``certified_never``.
    """
    plan = _as_plan(faults)
    plan.validate_for(2)
    if not isinstance(prototype, Automaton):
        raise SimulationError("the all-delays solver requires a finite-state Automaton")
    if prototype2 is not None and not isinstance(prototype2, Automaton):
        raise SimulationError("the all-delays solver requires a finite-state Automaton")
    if not (0 <= start1 < tree.n and 0 <= start2 < tree.n):
        raise SimulationError("start nodes outside the tree")
    if max_delay < 0:
        raise SimulationError("max_delay must be >= 0")
    for side in delayed_sides:
        if side not in (1, 2):
            raise SimulationError("'delayed_sides' entries must be 1 or 2")

    sides = list(dict.fromkeys(delayed_sides))
    zero_side = 2 if 2 in sides else sides[0]

    if start1 == start2:
        return [
            DelayVerdict(theta, side, True, 0, False)
            for theta in range(max_delay + 1)
            for side in sides
            if theta > 0 or side == zero_side
        ]

    compiled = compile_agent(prototype, tree)
    compiled2 = compiled if prototype2 is None else compile_agent(prototype2, tree)
    final_tree = plan.labeling_schedule(tree)[-1][1]
    crashed_agents = {c.agent for c in plan.crashes}
    has_crashes = bool(crashed_agents)
    resolve = _faulted_resolver(
        _frozen_steppers([compiled, compiled2], final_tree, crashed_agents),
        lambda cfg: cfg[0] == cfg[3],
        max_configs,
    )

    out: dict[tuple[int, int], DelayVerdict] = {}
    for side in sides:
        first_theta = 0 if side == zero_side else 1
        for theta in range(first_theta, max_delay + 1):
            sr1 = theta if side == 1 else 0
            sr2 = theta if side == 2 else 0
            prefix = max(theta, plan.horizon) + 1
            met_at: Optional[int] = None
            pos = st = ip = None
            for rnd, pos, st, ip, _started, _acts in _iter_compiled_faulted(
                tree, plan, [compiled, compiled2], [start1, start2],
                [sr1, sr2], prefix,
            ):
                if pos[0] == pos[1]:
                    met_at = rnd
                    break
            if met_at is not None:
                out[(theta, side)] = DelayVerdict(
                    theta, side, True, met_at, False,
                    bool(plan.crashed_by(met_at)),
                )
                continue
            entry = (pos[0], st[0], ip[0], pos[1], st[1], ip[1])
            met, dist = resolve(entry)
            if met:
                out[(theta, side)] = DelayVerdict(
                    theta, side, True, prefix + dist, False, has_crashes
                )
            else:
                out[(theta, side)] = DelayVerdict(
                    theta, side, False, None, True, has_crashes
                )

    return [
        out[(theta, side)]
        for theta in range(max_delay + 1)
        for side in sides
        if theta > 0 or side == zero_side
    ]


def solve_gathering_faulted(
    tree: Tree,
    prototype: Automaton,
    starts: Sequence[int],
    delay_vectors: Sequence[Sequence[int]],
    *,
    faults,
    max_configs: int = 4_000_000,
    prototypes: Optional[Sequence[Automaton]] = None,
) -> list[GatheringVerdict]:
    """:func:`repro.sim.gathering_solver.solve_gathering` under a fault
    plan — faulted prefixes per delay vector, one grid-wide fate memo
    (see :func:`solve_all_delays_faulted`)."""
    plan = _as_plan(faults)
    starts = list(starts)
    protos = list(prototypes) if prototypes is not None else [prototype] * len(starts)
    if len(protos) != len(starts):
        raise SimulationError("'prototypes' must align with 'starts'")
    for p in protos:
        if not isinstance(p, Automaton):
            raise SimulationError(
                "the gathering solver requires finite-state Automaton agents"
            )
    vectors = [list(_validate(tree, starts, vec)) for vec in delay_vectors]
    plan.validate_for(len(starts))
    k = len(starts)

    compileds = [compile_agent(p, tree) for p in protos]
    final_tree = plan.labeling_schedule(tree)[-1][1]
    crashed_agents = {c.agent for c in plan.crashes}
    has_crashes = bool(crashed_agents)
    resolve = _faulted_resolver(
        _frozen_steppers(compileds, final_tree, crashed_agents),
        lambda cfg: all(cfg[3 * i] == cfg[0] for i in range(1, k)),
        max_configs,
    )

    out: list[GatheringVerdict] = []
    for delays in vectors:
        key = tuple(delays)
        if len(set(starts)) == 1:
            out.append(GatheringVerdict(key, True, 0, False))
            continue
        prefix = max(max(delays), plan.horizon) + 1
        met_at: Optional[int] = None
        pos = st = ip = None
        for rnd, pos, st, ip, _started, _acts in _iter_compiled_faulted(
            tree, plan, compileds, starts, delays, prefix
        ):
            if all(p == pos[0] for p in pos):
                met_at = rnd
                break
        if met_at is not None:
            out.append(
                GatheringVerdict(
                    key, True, met_at, False, bool(plan.crashed_by(met_at))
                )
            )
            continue
        entry = tuple(x for i in range(k) for x in (pos[i], st[i], ip[i]))
        met, dist = resolve(entry)
        if met:
            out.append(
                GatheringVerdict(key, True, prefix + dist, False, has_crashes)
            )
        else:
            out.append(GatheringVerdict(key, False, None, True, has_crashes))
    return out
