"""Compiled table-driven simulation backend.

The reference engine (:mod:`repro.sim.engine`) is written for clarity: it
re-dispatches through ``AgentBase.step`` every round, re-queries
``tree.degree`` / ``tree.move``, and certifies non-meeting with an
unbounded per-run ``seen`` set.  Every experiment in the reproduction —
the Theorem 4.1 sweeps, the exhaustive small-tree verification, the lower
bound certifications — bottoms out in that loop, so this module *lowers*
a ``(Tree, finite-state agent)`` pair into flat integer tables and steps
the joint configuration with array indexing only:

- the tree contributes its cached flat navigation tables
  (:meth:`repro.trees.tree.Tree.flat_move_tables`);
- an :class:`~repro.agents.automaton.Automaton` is compiled into a flat
  ``(state, in_port, degree) -> (resolved action, next state)`` table by
  :func:`compile_agent` (memoized per automaton × tree shape);
- :func:`run_rendezvous_compiled` replays the exact reference semantics
  over those tables, replacing the ``seen``-set certificate with Brent
  cycle detection on the deterministic joint successor — O(1) memory
  instead of O(rounds);
- :func:`solve_all_delays` decides *every* delay θ ∈ [0, Θ] (and both
  delayed-agent choices) in one shared reachability pass over the product
  configuration graph: trajectories for different delays re-enter the same
  joint configurations, so each configuration's fate (meets after k rounds
  / provably never) is computed once and spliced into every later delay.

:func:`run_rendezvous_fast` is the dispatch point the analysis and
lower-bound layers use: compiled backend for automata, reference engine
for arbitrary ``AgentBase`` programs.  Register programs become
compiled-backend citizens through the lowering subsystem
(:mod:`repro.agents.lowering` for explicit-automaton enumeration,
:mod:`repro.sim.traced` for per-(tree, start) solo traces) — the
scenario backends route grid workloads there.  The reference engine
remains the oracle; the parity property suites assert identical
verdicts.

Verdict parity contract: ``met``, ``meeting_round``, ``meeting_node`` and
``certified_never`` agree with the reference engine (given budgets large
enough for both to decide).  ``rounds_executed`` on a certified-never
outcome may differ — Brent's anchor detects the cycle at a different (but
boundedly larger) round than the first-repeat ``seen`` set.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Optional, Sequence

from ..agents.automaton import Automaton
from ..agents.observations import STAY, AgentBase, resolve_action
from ..agents.program import AgentProgram
from ..errors import BudgetExceededError, SimulationError
from ..trees.tree import Tree
from .engine import RendezvousOutcome, run_rendezvous
from .trace import RoundRecord, Trace

__all__ = [
    "CompiledAgent",
    "compile_agent",
    "supports_compilation",
    "run_rendezvous_compiled",
    "run_rendezvous_fast",
    "DelayVerdict",
    "solve_all_delays",
]

_INVALID = -2  # table sentinel: the live transition raised for this input


class CompiledAgent:
    """Flat transition tables for one automaton on one tree shape.

    The table shape depends only on the tree's maximum degree ``stride``
    and its set of occurring degrees, so one compilation is reused across
    every run on trees of the same shape (notably: all relabelings).

    Index layout: for state ``s``, entry port ``ip`` (``-1`` for a null
    observation) and node degree ``d``::

        idx = (s * (stride + 1) + (ip + 1)) * (stride + 1) + d
        next_state[idx], action[idx]

    ``action`` is the *resolved* action: ``STAY`` or a concrete port
    ``< d`` (the ``λ(s') mod d`` rule is baked in at compile time).
    Entries whose live transition raised hold ``_INVALID`` in
    ``next_state``; hitting one at run time re-invokes the automaton so
    the genuine error surfaces exactly as it would in the reference
    engine.
    """

    __slots__ = ("automaton", "stride", "next_state", "action", "start_action", "initial_state")

    def __init__(self, automaton: Automaton, stride: int, degrees: frozenset[int]):
        self.automaton = automaton
        self.stride = stride
        self.initial_state = automaton.initial_state
        width = stride + 1
        size = automaton.num_states * width * width
        nxt = [_INVALID] * size
        act = [STAY] * size
        output = automaton.output
        for s in range(automaton.num_states):
            for d in degrees:
                for ip in range(-1, d):
                    try:
                        s2 = automaton.transition(s, ip, d)
                    # repro-lint: disable=RPR002 -- table-build probe over every (state, port, degree) cell: unreachable cells may raise anything; the _INVALID sentinel re-runs the automaton live so the genuine error surfaces if ever hit
                    except Exception:
                        continue  # keep the sentinel; re-raised live if hit
                    idx = (s * width + (ip + 1)) * width + d
                    nxt[idx] = s2
                    act[idx] = resolve_action(output[s2], d)
        self.next_state = nxt
        self.action = act
        self.start_action = tuple(
            resolve_action(output[automaton.initial_state], d) for d in range(width)
        )


def supports_compilation(prototype: AgentBase):
    """Can ``prototype`` be lowered to transition tables?

    Three answers (the first two truthy, so boolean callers keep
    working):

    - ``"native"`` — a finite-state :class:`Automaton`: compiles
      directly to flat tables;
    - ``"lowerable"`` — a bounded-register
      :class:`~repro.agents.program.AgentProgram`: the lowering
      subsystem (:mod:`repro.agents.lowering` /
      :mod:`repro.sim.traced`) can turn it into an explicit automaton
      or per-(tree, start) traced tables;
    - ``False`` — an arbitrary duck-typed agent: reference engine only.
    """
    if isinstance(prototype, Automaton):
        return "native"
    if isinstance(prototype, AgentProgram):
        return "lowerable"
    return False


# Compilations are memoized per live automaton object: the weak keying
# keeps the cache out of pickles (multiprocessing fan-out) and lets table
# memory die with the automaton.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[Automaton, dict]" = weakref.WeakKeyDictionary()


def compile_agent(automaton: Automaton, tree: Tree) -> CompiledAgent:
    """Compile (and memoize) ``automaton`` against ``tree``'s shape."""
    stride, deg, _move_to, _move_in = tree.flat_move_tables()
    key = (stride, frozenset(deg))
    try:
        cache = _COMPILE_CACHE.setdefault(automaton, {})
    except TypeError:  # pragma: no cover - automaton not weak-referenceable
        return CompiledAgent(automaton, key[0], key[1])
    compiled = cache.get(key)
    if compiled is None:
        compiled = CompiledAgent(automaton, key[0], key[1])
        cache[key] = compiled
    return compiled


def _make_stepper(compiled: CompiledAgent, tree: Tree):
    """One started-agent round over the flat tables:
    ``(pos, state, ip-index) -> successor``.

    Shared by the exact solvers (:func:`solve_all_delays` here and
    :func:`repro.sim.gathering_solver.solve_gathering`) so the table
    stepping semantics live in one place; the per-round simulation loops
    keep their hand-inlined copies for speed.
    """
    stride, deg, move_to, move_in = tree.flat_move_tables()
    width = stride + 1
    nxt, act = compiled.next_state, compiled.action
    automaton = compiled.automaton

    def step_one(pos: int, st: int, ip: int) -> tuple[int, int, int]:
        d = deg[pos]
        idx = (st * width + ip) * width + d
        s2 = nxt[idx]
        if s2 == _INVALID:
            automaton.transition(st, ip - 1, d)  # raises the real error
            raise SimulationError("invalid transition entry")  # pragma: no cover
        a = act[idx]
        if a == STAY:
            return pos, s2, 0
        base = pos * stride + a
        return move_to[base], s2, move_in[base] + 1

    return step_one


def _final_agents(
    prototype: Automaton,
    s1: int,
    started1: bool,
    s2: int,
    started2: bool,
    prototype2: Optional[Automaton] = None,
) -> tuple[Automaton, Automaton]:
    """Clones carrying the final automaton states, like the reference
    engine's outcome.agents."""
    a1, a2 = prototype.clone(), (prototype2 or prototype).clone()
    if started1:
        a1.state = s1
    if started2:
        a2.state = s2
    return a1, a2


def run_rendezvous_compiled(
    tree: Tree,
    prototype: Automaton,
    start1: int,
    start2: int,
    *,
    delay: int = 0,
    delayed: int = 2,
    max_rounds: int = 1_000_000,
    certify: bool = False,
    record_trace: bool = False,
    prototype2: Optional[Automaton] = None,
    faults=None,
) -> RendezvousOutcome:
    """Table-driven replay of :func:`repro.sim.engine.run_rendezvous`.

    Semantics are identical to the reference engine; non-meeting
    certification uses Brent cycle detection on the joint configuration
    (O(1) memory) instead of a ``seen`` set.

    ``prototype2`` (default: ``prototype``) lets the two agents run
    different automata — the seam the lowering subsystem
    (:mod:`repro.sim.traced`) uses to feed per-(tree, start) traced
    tables through the product machinery.  The classic rendezvous
    problem (two *identical* agents) simply leaves it unset.

    ``faults`` (an optional :class:`~repro.sim.faults.FaultPlan`)
    dispatches to the faulted twin of this loop.
    """
    if faults:
        from .faults import run_rendezvous_faulted_compiled

        return run_rendezvous_faulted_compiled(
            tree, prototype, start1, start2, faults=faults,
            delay=delay, delayed=delayed, max_rounds=max_rounds,
            certify=certify, record_trace=record_trace, prototype2=prototype2,
        )
    if not isinstance(prototype, Automaton):
        raise SimulationError("compiled backend requires a finite-state Automaton")
    if prototype2 is not None and not isinstance(prototype2, Automaton):
        raise SimulationError("compiled backend requires a finite-state Automaton")
    if not (0 <= start1 < tree.n and 0 <= start2 < tree.n):
        raise SimulationError("start nodes outside the tree")
    if delay < 0:
        raise SimulationError("delay must be >= 0")
    if delayed not in (1, 2):
        raise SimulationError("'delayed' must be 1 or 2")

    trace = Trace(start1, start2) if record_trace else None
    if start1 == start2:
        return RendezvousOutcome(
            True, 0, start1, 0, False, 0, trace,
            _final_agents(prototype, 0, False, 0, False, prototype2),
        )

    compiled = compile_agent(prototype, tree)
    compiled2 = compiled if prototype2 is None else compile_agent(prototype2, tree)
    stride, deg, move_to, move_in = tree.flat_move_tables()
    width = stride + 1
    nxt, act = compiled.next_state, compiled.action
    nxt2, act2_t = compiled2.next_state, compiled2.action
    start_act = compiled.start_action
    start_act2 = compiled2.start_action
    s0 = compiled.initial_state
    s0_2 = compiled2.initial_state
    automaton = compiled.automaton
    automaton2 = compiled2.automaton

    sr1 = delay if delayed == 1 else 0
    sr2 = delay if delayed == 2 else 0
    first_joint = max(sr1, sr2) + 1

    pos1, pos2 = start1, start2
    st1 = st2 = 0  # automaton states (meaningless until started)
    ip1 = ip2 = 0  # entry-port *indices* (in_port + 1; 0 == NULL_PORT)
    started1 = started2 = False

    crossings = 0
    # Brent cycle detection state.
    anchor: Optional[tuple] = None
    steps = 0
    power = 1

    for rnd in range(1, max_rounds + 1):
        prev1, prev2 = pos1, pos2

        # -- agent 1 -----------------------------------------------------
        if started1:
            d = deg[pos1]
            idx = (st1 * width + ip1) * width + d
            s2_ = nxt[idx]
            if s2_ == _INVALID:
                automaton.transition(st1, ip1 - 1, d)  # raises the real error
                raise SimulationError("invalid transition entry")  # pragma: no cover
            st1 = s2_
            a = act[idx]
        elif rnd > sr1:
            started1 = True
            st1 = s0
            a = start_act[deg[pos1]]
        else:
            a = STAY
        act1 = a
        if a == STAY:
            ip1 = 0
        else:
            base = pos1 * stride + a
            pos1 = move_to[base]
            ip1 = move_in[base] + 1

        # -- agent 2 -----------------------------------------------------
        if started2:
            d = deg[pos2]
            idx = (st2 * width + ip2) * width + d
            s2_ = nxt2[idx]
            if s2_ == _INVALID:
                automaton2.transition(st2, ip2 - 1, d)
                raise SimulationError("invalid transition entry")  # pragma: no cover
            st2 = s2_
            a = act2_t[idx]
        elif rnd > sr2:
            started2 = True
            st2 = s0_2
            a = start_act2[deg[pos2]]
        else:
            a = STAY
        act2 = a
        if a == STAY:
            ip2 = 0
        else:
            base = pos2 * stride + a
            pos2 = move_to[base]
            ip2 = move_in[base] + 1

        # -- bookkeeping (reference order: trace, crossing, meet, certify)
        if trace is not None:
            trace.append(RoundRecord(rnd, pos1, pos2, act1, act2))
        if pos1 == prev2 and pos2 == prev1 and pos1 != pos2:
            crossings += 1
        if pos1 == pos2:
            return RendezvousOutcome(
                True, rnd, pos1, rnd, False, crossings, trace,
                _final_agents(prototype, st1, started1, st2, started2, prototype2),
            )
        if certify and rnd > first_joint:
            config = (pos1, st1, ip1, pos2, st2, ip2)
            if config == anchor:
                return RendezvousOutcome(
                    False, None, None, rnd, True, crossings, trace,
                    _final_agents(prototype, st1, started1, st2, started2, prototype2),
                )
            steps += 1
            if steps == power:
                anchor = config
                steps = 0
                power <<= 1

    return RendezvousOutcome(
        False, None, None, max_rounds, False, crossings, trace,
        _final_agents(prototype, st1, started1, st2, started2, prototype2),
    )


def run_rendezvous_fast(
    tree: Tree,
    prototype: AgentBase,
    start1: int,
    start2: int,
    **kwargs,
) -> RendezvousOutcome:
    """Backend dispatch: compiled tables for finite-state automata, the
    reference engine for everything else.

    Accepts exactly the keyword arguments of
    :func:`repro.sim.engine.run_rendezvous`.  Force the reference engine
    by calling it directly.

    Register programs ("lowerable") deliberately take the reference
    engine here: a *single* fresh run gains nothing from tracing (the
    trace is built by interpreting the very run it would replay), and
    the reference outcome carries the executed agents' registers.  Grid
    workloads that reuse (tree, start) pairs route through the scenario
    backends, whose compiled path shares traces across runs
    (:mod:`repro.sim.traced`).
    """
    if supports_compilation(prototype) == "native":
        return run_rendezvous_compiled(tree, prototype, start1, start2, **kwargs)
    return run_rendezvous(tree, prototype, start1, start2, **kwargs)


# ----------------------------------------------------------------------
# The batched all-delays solver
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class DelayVerdict:
    """Exact fate of one ``(delay, delayed)`` adversary choice.

    The product-configuration graph is finite, so the batch solver always
    decides: exactly one of ``met`` / ``certified_never`` is true.
    """

    delay: int
    delayed: int
    met: bool
    meeting_round: Optional[int]
    certified_never: bool
    # Did a crash fault fire by this choice's final decided round?
    # Always False for fault-free sweeps; lets executors certify
    # "never meets because a fault killed an agent" distinctly.
    crashed: bool = False


_NEVER = (False, -1)


def solve_all_delays(
    tree: Tree,
    prototype: Automaton,
    start1: int,
    start2: int,
    *,
    max_delay: int,
    delayed_sides: Sequence[int] = (1, 2),
    max_configs: int = 4_000_000,
    prototype2: Optional[Automaton] = None,
    faults=None,
) -> list[DelayVerdict]:
    """Decide every delay θ ∈ [0, max_delay] in one shared reachability pass.

    For each requested ``delayed`` side, the non-delayed agent's solo
    trajectory is simulated once; each delay's joint phase then starts
    from the configuration reached at its θ and walks the deterministic
    product configuration graph.  Configuration fates are memoized in one
    dictionary shared across all delays *and both sides*, so the total
    work is proportional to the number of distinct joint configurations
    reached — not to Θ × (rounds per run) as with per-delay simulation.

    Returns verdicts ordered by (delay, position of side in
    ``delayed_sides``).  At θ = 0 the two sides are the same adversary
    choice, so — matching the sweep convention elsewhere — only one
    verdict is emitted for it (side 2 when requested, else the single
    requested side).  Raises :class:`~repro.errors.BudgetExceededError`
    if more than ``max_configs`` distinct configurations are explored (a
    guard, not a round budget — the solver is otherwise exact).

    ``prototype2`` (default: ``prototype``) is agent 2's automaton — the
    heterogeneous-agent seam used by traced lowering
    (:mod:`repro.sim.traced`).  ``faults`` (an optional
    :class:`~repro.sim.faults.FaultPlan`) routes to the faulted exact
    solver, which keeps the same shared-memo structure.
    """
    if faults:
        from .faults import solve_all_delays_faulted

        return solve_all_delays_faulted(
            tree, prototype, start1, start2, max_delay=max_delay,
            faults=faults, delayed_sides=delayed_sides,
            max_configs=max_configs, prototype2=prototype2,
        )
    if not isinstance(prototype, Automaton):
        raise SimulationError("the all-delays solver requires a finite-state Automaton")
    if prototype2 is not None and not isinstance(prototype2, Automaton):
        raise SimulationError("the all-delays solver requires a finite-state Automaton")
    if not (0 <= start1 < tree.n and 0 <= start2 < tree.n):
        raise SimulationError("start nodes outside the tree")
    if max_delay < 0:
        raise SimulationError("max_delay must be >= 0")
    for side in delayed_sides:
        if side not in (1, 2):
            raise SimulationError("'delayed_sides' entries must be 1 or 2")

    sides = list(dict.fromkeys(delayed_sides))
    zero_side = 2 if 2 in sides else sides[0]

    if start1 == start2:
        return [
            DelayVerdict(theta, side, True, 0, False)
            for theta in range(max_delay + 1)
            for side in sides
            if theta > 0 or side == zero_side
        ]

    compiled = compile_agent(prototype, tree)
    compiled2 = compiled if prototype2 is None else compile_agent(prototype2, tree)
    stride, deg, move_to, move_in = tree.flat_move_tables()
    step_1 = _make_stepper(compiled, tree)
    step_2 = step_1 if prototype2 is None else _make_stepper(compiled2, tree)
    # per-side views: the runner is the non-delayed agent (agent 1 when
    # side 2 is delayed), and tuple slots stay agent-major: (agent 1,
    # agent 2) regardless of which side sleeps.
    by_agent = {
        1: (compiled.start_action, compiled.initial_state, step_1),
        2: (compiled2.start_action, compiled2.initial_state, step_2),
    }

    # verdict[config] = (True, k): meets k rounds after reaching config;
    #                   (False, -1): provably never meets from config.
    verdict: dict[tuple, tuple[bool, int]] = {}

    def resolve(config: tuple) -> tuple[bool, int]:
        """Fate of ``config`` (the joint configuration after some round)."""
        path: list[tuple] = []
        on_path: dict[tuple, int] = {}
        cur = config
        while True:
            known = verdict.get(cur)
            if known is not None:
                res = known
                break
            if cur[0] == cur[3]:  # meeting configuration
                res = (True, 0)
                verdict[cur] = res
                break
            if cur in on_path:  # fresh cycle, and no meeting on it
                res = _NEVER
                break
            on_path[cur] = len(path)
            path.append(cur)
            if len(verdict) + len(path) > max_configs:
                raise BudgetExceededError(
                    f"all-delays solver exceeded max_configs={max_configs}"
                )
            cur = (
                *step_1(cur[0], cur[1], cur[2]),
                *step_2(cur[3], cur[4], cur[5]),
            )
        met, dist = res
        if met:
            for c in reversed(path):
                dist += 1
                verdict[c] = (True, dist)
        else:
            for c in path:
                verdict[c] = _NEVER
        return verdict[config]

    out: dict[tuple[int, int], DelayVerdict] = {}
    for side in sides:
        runner_start = start1 if side == 2 else start2
        sleeper_start = start2 if side == 2 else start1
        start_act_r, s0_r, step_r = by_agent[1 if side == 2 else 2]
        start_act_s, s0_s, _step_s = by_agent[side]
        first_theta = 0 if side == zero_side else 1

        # Solo prefix of the non-delayed agent: configs after rounds
        # 1..max_delay, and the first round it steps onto the sleeper.
        # Every θ >= first_hit is decided the moment the runner lands on
        # the sleeper, and the undecided θ < first_hit only enter from
        # solo[θ - 1], so the walk stops at first_hit instead of always
        # paying the full max_delay rounds.
        solo: list[tuple[int, int, int]] = []
        first_hit: Optional[int] = None
        pos, st, ip = runner_start, s0_r, 0
        a = start_act_r[deg[runner_start]]
        if a != STAY:
            base = pos * stride + a
            pos, ip = move_to[base], move_in[base] + 1
        solo.append((pos, st, ip))
        if pos == sleeper_start:
            first_hit = 1
        else:
            for t in range(2, max_delay + 1):
                pos, st, ip = step_r(pos, st, ip)
                solo.append((pos, st, ip))
                if pos == sleeper_start:
                    first_hit = t
                    break

        for theta in range(first_theta, max_delay + 1):
            if first_hit is not None and theta >= first_hit:
                out[(theta, side)] = DelayVerdict(theta, side, True, first_hit, False)
                continue
            # Round θ+1: the runner takes its (θ+1)-th active round, the
            # sleeper executes its start action.
            if theta == 0:
                r_pos, r_st, r_ip = solo[0]
            else:
                r_pos, r_st, r_ip = step_r(*solo[theta - 1])
            sl_st = s0_s
            a = start_act_s[deg[sleeper_start]]
            if a == STAY:
                sl_pos, sl_ip = sleeper_start, 0
            else:
                base = sleeper_start * stride + a
                sl_pos, sl_ip = move_to[base], move_in[base] + 1
            if side == 2:
                entry = (r_pos, r_st, r_ip, sl_pos, sl_st, sl_ip)
            else:
                entry = (sl_pos, sl_st, sl_ip, r_pos, r_st, r_ip)
            met, dist = resolve(entry)
            if met:
                out[(theta, side)] = DelayVerdict(
                    theta, side, True, theta + 1 + dist, False
                )
            else:
                out[(theta, side)] = DelayVerdict(theta, side, False, None, True)

    return [
        out[(theta, side)]
        for theta in range(max_delay + 1)
        for side in sides
        if theta > 0 or side == zero_side
    ]
