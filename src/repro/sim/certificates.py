"""Non-meeting certificates: machine-checkable impossibility proofs.

For finite-state agents, the engine's ``certify=True`` flag detects a
repeated joint configuration.  This module upgrades that detection into a
*standalone proof object*: a :class:`NonMeetingCertificate` records the
lasso (prefix + cycle) of joint configurations and can be re-verified
independently of the run that produced it — replaying each transition with
the pure automaton semantics and checking

1. every consecutive pair of configurations follows the model's round rule;
2. no configuration in the lasso has the two agents co-located;
3. the cycle closes (last configuration's successor is the cycle head).

Together these prove the agents never meet, ever.  The lower-bound
builders attach certificates to their instances; tests and users can call
``certificate.verify()`` at any time, e.g. after deserializing an instance
from JSON.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..agents.automaton import Automaton
from ..agents.observations import NULL_PORT, STAY, resolve_action
from ..errors import SimulationError
from ..trees.tree import Tree

__all__ = ["JointConfig", "NonMeetingCertificate", "build_certificate"]


@dataclass(frozen=True)
class JointConfig:
    """One joint configuration: everything that determines the future."""

    pos1: int
    state1: int
    in1: int
    pos2: int
    state2: int
    in2: int

    @property
    def meeting(self) -> bool:
        return self.pos1 == self.pos2

    def key(self) -> tuple:
        return (self.pos1, self.state1, self.in1, self.pos2, self.state2, self.in2)


def _advance_one(tree: Tree, automaton: Automaton, pos: int, state: int, in_port: int):
    """Pure one-round successor of a single agent (no engine state)."""
    degree = tree.degree(pos)
    nxt_state = automaton.transition(state, in_port, degree)
    action = resolve_action(automaton.output[nxt_state], degree)
    if action == STAY:
        return pos, nxt_state, NULL_PORT
    nxt_pos, nxt_in = tree.move(pos, action)
    return nxt_pos, nxt_state, nxt_in


@dataclass(frozen=True)
class NonMeetingCertificate:
    """A lasso of joint configurations proving eternal non-meeting.

    ``prefix`` runs from the first both-started configuration to the cycle
    head; ``cycle`` is the repeating part (head included once).  The
    pre-start phase (delay warm-up) is covered by ``warmup_ok`` computed at
    build time: the builder checks no meeting occurs before the lasso
    begins (finitely many rounds).
    """

    tree: Tree
    automaton: Automaton
    start1: int
    start2: int
    delay: int
    delayed: int
    prefix: tuple[JointConfig, ...]
    cycle: tuple[JointConfig, ...]

    @property
    def lasso_length(self) -> int:
        return len(self.prefix) + len(self.cycle)

    def verify(self) -> bool:
        """Re-check the certificate from scratch; raises on malformation,
        returns True when the proof is valid."""
        if not self.cycle:
            raise SimulationError("certificate has an empty cycle")
        chain = list(self.prefix) + list(self.cycle)
        for config in chain:
            if config.meeting:
                return False
        for here, there in zip(chain, chain[1:]):
            if self._successor(here) != there:
                return False
        # The cycle must close onto its own head.
        if self._successor(chain[-1]) != self.cycle[0]:
            return False
        # Finally, the warm-up: replay from the true starts up to the
        # prefix head and check no meeting en route.
        return self._warmup_reaches(chain[0])

    def _successor(self, config: JointConfig) -> JointConfig:
        p1, s1, i1 = _advance_one(
            self.tree, self.automaton, config.pos1, config.state1, config.in1
        )
        p2, s2, i2 = _advance_one(
            self.tree, self.automaton, config.pos2, config.state2, config.in2
        )
        return JointConfig(p1, s1, i1, p2, s2, i2)

    def _warmup_reaches(self, target: JointConfig) -> bool:
        """Replay the delayed startup and confirm it reaches ``target``
        without a meeting."""
        from .engine import run_rendezvous

        horizon = self.delay + self.lasso_length + 4
        outcome = run_rendezvous(
            self.tree,
            self.automaton,
            self.start1,
            self.start2,
            delay=self.delay,
            delayed=self.delayed,
            max_rounds=horizon,
            record_trace=True,
        )
        if outcome.met:
            return False
        assert outcome.trace is not None
        return any(
            (rec.pos1, rec.pos2) == (target.pos1, target.pos2)
            for rec in outcome.trace.records
        )


def build_certificate(
    tree: Tree,
    automaton: Automaton,
    start1: int,
    start2: int,
    *,
    delay: int = 0,
    delayed: int = 2,
    max_rounds: int = 2_000_000,
) -> NonMeetingCertificate:
    """Run the instance and extract the configuration lasso.

    Raises :class:`SimulationError` if the agents actually meet or the
    budget is exhausted before a recurrence.
    """
    # Warm up through the delay phase with the real engine semantics, then
    # track pure joint configurations.
    agent1 = automaton.clone()
    agent2 = automaton.clone()
    pos1, pos2 = start1, start2
    in1 = in2 = NULL_PORT
    started1 = started2 = False
    start_round1 = delay if delayed == 1 else 0
    start_round2 = delay if delayed == 2 else 0

    if pos1 == pos2:
        raise SimulationError("instance meets at round 0")

    seen: dict[tuple, int] = {}
    configs: list[JointConfig] = []

    for rnd in range(1, max_rounds + 1):
        pos1, in1, started1 = _engine_step(
            tree, agent1, pos1, in1, started1, rnd, start_round1
        )
        pos2, in2, started2 = _engine_step(
            tree, agent2, pos2, in2, started2, rnd, start_round2
        )
        if pos1 == pos2:
            raise SimulationError(f"agents met at round {rnd}: no certificate")
        if started1 and started2:
            config = JointConfig(pos1, agent1.state, in1, pos2, agent2.state, in2)
            idx = seen.get(config.key())
            if idx is not None:
                return NonMeetingCertificate(
                    tree,
                    automaton,
                    start1,
                    start2,
                    delay,
                    delayed,
                    tuple(configs[:idx]),
                    tuple(configs[idx:]),
                )
            seen[config.key()] = len(configs)
            configs.append(config)
    raise SimulationError("no recurrence within the round budget")


def _engine_step(tree, agent, pos, in_port, started, rnd, start_round):
    degree = tree.degree(pos)
    if not started:
        if rnd <= start_round:
            return pos, NULL_PORT, False
        action = resolve_action(agent.start(degree), degree)
    else:
        action = resolve_action(agent.step(in_port, degree), degree)
    if action == STAY:
        return pos, NULL_PORT, True
    nxt, nxt_in = tree.move(pos, action)
    return nxt, nxt_in, True
