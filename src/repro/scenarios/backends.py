"""The formal simulation-backend protocol the scenario runner targets.

Every rendezvous or gathering run a scenario performs goes through a
:class:`Backend`:

- :class:`ReferenceBackend` — the readable oracle engines
  (:func:`repro.sim.engine.run_rendezvous`,
  :func:`repro.sim.multi.run_gathering_reference`), per-run ``seen``-set
  certification, per-choice sweeps;
- :class:`CompiledBackend` — flat-table execution for finite-state
  agents (:mod:`repro.sim.compiled` / :mod:`repro.sim.multi`), Brent
  certification, and the batched product-configuration-graph solvers for
  delay sweeps (:func:`repro.sim.compiled.solve_all_delays`) and
  gathering grids (:func:`repro.sim.gathering_solver.solve_gathering`) —
  dispatched through the vectorized frontier kernel
  (:mod:`repro.sim.kernel`) when it applies, with those dict solvers as
  the oracle fallback;
  register programs become compiled-backend citizens through *lowering*
  (:mod:`repro.sim.traced`): per-run execution replays shared solo
  traces, and the exact sweeps roll lassoed traces into per-(tree,
  start) automata for the product solvers;
- :class:`BatchedBackend` — the compiled dispatch fanned out over a
  process pool (:mod:`repro.sim.batch`) for independent-run grids;
- :class:`AutoBackend` — per-call selection via
  :func:`repro.sim.compiled.supports_compilation`: automata ride the
  compiled backend natively ("native"), register programs ride it
  through lowering ("lowerable") for sweeps and grids — single fresh
  runs stay on the reference engine, where interpreting the program
  once is already optimal and the outcome carries executed registers.

Lowering degrades, never crashes: a trace that finds no lasso within
its budget (or machine state the freezer cannot capture) raises
:class:`~repro.errors.BudgetExceededError` /
:class:`~repro.errors.LoweringError`, and the sweep wrappers catch both
and fall back to budgeted per-run execution whose unprovable choices
come back *undecided* — the same honest note a budget-bound reference
sweep produces, never fake proof, never an abort.

The protocol is the seam the ISSUE's acceptance criterion tests:
``scenarios run <name> --backend compiled`` and ``--backend reference``
must produce identical outcome tables.

Sweep budgets: ``sweep_delays`` / ``sweep_gathering`` accept
``max_rounds=None`` (the default), meaning "whatever the backend needs
to decide".  The reference path substitutes a generous per-run round
budget; the exact solvers need no round budget at all — they decide
every choice by construction.  An *explicit* ``max_rounds`` is never
silently dropped: the reference path uses it as the per-run round
budget, and the exact solvers honor it as their configuration-
exploration guard, degrading to budgeted per-run verdicts (undecided
where unprovable — never a crash, never fake proof) when the guard
trips.  A caller who bounds the sweep therefore gets a bounded sweep
with the same verdict semantics on every backend.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence

from ..agents.lowering import lowered_for
from ..agents.observations import AgentBase
from ..errors import BudgetExceededError, LoweringError
from ..sim.batch import BatchJob, GatheringJob, run_batch, run_gathering_batch
from ..sim.compiled import (
    DelayVerdict,
    run_rendezvous_compiled,
    run_rendezvous_fast,
    supports_compilation,
)
from ..sim.engine import RendezvousOutcome, run_rendezvous
from ..sim.gathering_solver import GatheringVerdict
from ..sim.multi import (
    GatheringOutcome,
    run_gathering,
    run_gathering_compiled,
    run_gathering_reference,
)
from ..sim.supervise import (
    JobFailure,
    run_batch_supervised,
    run_gathering_batch_supervised,
)
from ..sim.kernel import (
    KernelUnsupported,
    PairVerdict,
    kernel_available,
    run_pairs_kernel,
    solve_all_delays_auto,
    solve_gathering_auto,
)
from ..sim.traced import (
    run_gathering_traced,
    run_pairs_traced,
    run_rendezvous_traced,
    sweep_delays_traced,
    sweep_gathering_traced,
)
from ..telemetry import current as _telemetry
from ..trees.tree import Tree
from .spec import ScenarioError

__all__ = [
    "Backend",
    "ReferenceBackend",
    "CompiledBackend",
    "BatchedBackend",
    "AutoBackend",
    "select_backend",
]

_SWEEP_BUDGET = 500_000


def _note_dispatch(method: str, tier: str) -> None:
    """Record which execution tier a backend dispatch chose.

    Dispatch decisions were previously invisible: ``--backend auto``
    told you nothing about whether a sweep rode the kernel, the traced
    windows, or degraded to per-run execution.  One counter per
    (method, tier) makes the tier auditable after the fact.
    """
    t = _telemetry()
    if t.enabled:
        t.count(f"backend.dispatch.{method}.{tier}")


def _note_fallback(method: str, exc: BaseException) -> None:
    """Record a graceful degrade and its reason.

    The ``except (BudgetExceededError, LoweringError): degrade()``
    seams absorb these silently by design (honest verdicts, never a
    crash) — telemetry is where the absorbed reason surfaces.
    """
    t = _telemetry()
    if t.enabled:
        reason = type(exc).__name__
        t.count(f"backend.fallback.{reason}")
        t.event("backend.fallback", method=method, reason=reason,
                detail=str(exc))


class Backend(abc.ABC):
    """Uniform execution surface for rendezvous and gathering runs and
    their sweeps."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        tree: Tree,
        prototype: AgentBase,
        start1: int,
        start2: int,
        *,
        delay: int = 0,
        delayed: int = 2,
        max_rounds: int = 1_000_000,
        certify: bool = False,
    ) -> RendezvousOutcome:
        """Execute one rendezvous instance."""

    def run_gathering(
        self,
        tree: Tree,
        prototype: AgentBase,
        starts: Sequence[int],
        *,
        delays: Optional[Sequence[int]] = None,
        max_rounds: int = 1_000_000,
        certify: bool = False,
    ) -> GatheringOutcome:
        """Execute one k-agent gathering instance (auto dispatch unless
        a subclass pins an engine)."""
        return run_gathering(
            tree, prototype, starts,
            delays=delays, max_rounds=max_rounds, certify=certify,
        )

    def run_many(self, jobs: Sequence[BatchJob]) -> list[RendezvousOutcome]:
        """Execute independent jobs; results in job order.

        Honors ``BatchJob.seed`` exactly like the pool worker does, so
        serial and multiprocess executions of a seeded grid agree.  The
        caller's global RNG state is restored afterwards — only the jobs
        see the deterministic state (pool workers are forked, so theirs
        dies with them).
        """
        return self._run_jobs(jobs, lambda job: job.apply(self.run))

    def run_gathering_many(
        self, jobs: Sequence[GatheringJob]
    ) -> list[GatheringOutcome]:
        """Execute independent gathering jobs; results in job order,
        seeds honored as in :meth:`run_many`."""
        return self._run_jobs(jobs, lambda job: job.apply(self.run_gathering))

    @staticmethod
    def _run_jobs(jobs, run_one):
        seeded = any(job.seed is not None for job in jobs)
        state = random.getstate() if seeded else None
        try:
            out = []
            for job in jobs:
                if job.seed is not None:
                    random.seed(job.seed)
                out.append(run_one(job))
            return out
        finally:
            if state is not None:
                random.setstate(state)

    def sweep_delays(
        self,
        tree: Tree,
        prototype: AgentBase,
        start1: int,
        start2: int,
        *,
        max_delay: int,
        sides: Sequence[int] = (1, 2),
        max_rounds: Optional[int] = None,
        faults=None,
    ) -> list[DelayVerdict]:
        """Decide every (θ ≤ max_delay, delayed side) adversary choice.

        The default implementation runs each choice independently with
        certification; backends with a batched solver override it.
        ``max_rounds=None`` lets the backend pick its own budget; an
        explicit value bounds the work on every backend (per-run rounds
        here, configuration exploration in the exact solver — see the
        module docstring).  ``faults`` (an optional
        :class:`~repro.sim.faults.FaultPlan`) applies the same fault
        schedule to every adversary choice.
        """
        budget = _SWEEP_BUDGET if max_rounds is None else max_rounds
        zero_side = 2 if 2 in sides else sides[0]
        extra = {} if faults is None else {"faults": faults}
        verdicts = []
        for theta in range(max_delay + 1):
            for side in sides:
                if theta == 0 and side != zero_side:
                    continue
                out = self.run(
                    tree,
                    prototype,
                    start1,
                    start2,
                    delay=theta,
                    delayed=side,
                    max_rounds=budget,
                    certify=True,
                    **extra,
                )
                verdicts.append(
                    DelayVerdict(
                        theta, side, out.met, out.meeting_round,
                        out.certified_never, bool(out.crashed),
                    )
                )
        return verdicts

    def sweep_gathering(
        self,
        tree: Tree,
        prototype: AgentBase,
        starts: Sequence[int],
        delay_vectors: Sequence[Sequence[int]],
        *,
        max_rounds: Optional[int] = None,
        faults=None,
    ) -> list[GatheringVerdict]:
        """Decide every per-agent delay vector of a gathering grid.

        The default implementation routes certified independent runs
        through :meth:`run_gathering_many` (on the batched backend that
        fans them over its pool); the compiled and auto backends instead
        take the exact joint-configuration solver for automata, so the
        pool is only reached for agents the solver cannot lower.  A
        budgeted per-run backend can exhaust ``max_rounds`` without a
        certificate — those verdicts come back with neither flag set and
        callers must report them as undecided, never as proof.
        ``faults`` applies the same fault schedule to every vector.
        """
        budget = _SWEEP_BUDGET if max_rounds is None else max_rounds
        jobs = [
            GatheringJob(
                tree, prototype, tuple(starts), tuple(vec),
                max_rounds=budget, certify=True, faults=faults,
            )
            for vec in delay_vectors
        ]
        return [
            GatheringVerdict(
                tuple(vec), out.gathered, out.gathering_round,
                out.certified_never, bool(out.crashed),
            )
            for vec, out in zip(delay_vectors, self.run_gathering_many(jobs))
        ]

    def run_pairs(
        self,
        tree: Tree,
        prototype: AgentBase,
        pairs: Sequence[tuple[int, int]],
        *,
        max_rounds: int,
    ) -> list[PairVerdict]:
        """Decide delay-0 rendezvous for many start pairs on one tree.

        The grid executors (success sweeps, exhaustive verification) use
        this instead of per-pair :meth:`run` calls.  The default
        implementation *is* that per-pair loop — verdict parity by
        construction; the compiled/auto backends override it with the
        batched frontier paths (the vectorized successor-table kernel
        for automata, shared-trace windows for register programs).
        """
        out = []
        for u, v in pairs:
            o = self.run(tree, prototype, u, v, delay=0, max_rounds=max_rounds)
            out.append(PairVerdict(o.met, o.meeting_round, bool(o.certified_never)))
        return out


def _lowered_for_faults(prototype: AgentBase, tree: Tree):
    """Lower a register program to an explicit automaton for faulted
    exact sweeps.

    Traced lowering is *invalid* under faults: a solo trace bakes in the
    agent's autonomous trajectory, which pauses and relabelings divert.
    Full behavioral lowering over the tree's degree alphabet stays valid
    — crash/pause faults freeze the machine in a state it can resume
    from, and relabelings preserve every node degree — so faulted sweeps
    of lowerable agents ride the explicit-automaton solver instead.
    Routed through the :func:`~repro.agents.lowering.lowered_for` memo:
    a faulted sweep grid lowers each prototype once per degree alphabet,
    not once per tree.
    """
    degrees = {tree.degree(v) for v in range(tree.n)}
    return lowered_for(prototype, degrees)


def _sweep_delays_exact(
    backend: Backend, tree, prototype, start1, start2, max_delay, sides,
    max_rounds, faults=None,
) -> list[DelayVerdict]:
    """Exact delay sweep with graceful budgeting.

    The exact solver needs no round budget — it decides every choice by
    walking the finite product configuration graph.  An explicit caller
    budget is still honored as the configuration-exploration guard, and
    tripping it degrades to the budgeted per-run path (undecided where
    unprovable) so a budgeted sweep behaves alike on every backend
    instead of aborting here.

    Register programs take the traced-lowering route: both starts' solo
    traces are lassoed and rolled into per-(tree, start) automata for
    the same solver.  A trace that cannot lasso within budget — or
    machine state the lowering cannot capture — degrades the same way,
    with undecided notes where nothing is provable, never a crash.
    Under ``faults`` traced lowering is unsound (see
    :func:`_lowered_for_faults`), so lowerable agents go through full
    behavioral lowering instead, with the same graceful degradation.
    """
    degrade = lambda: Backend.sweep_delays(  # noqa: E731 - one fallback, four exits
        backend, tree, prototype, start1, start2,
        max_delay=max_delay, sides=sides, max_rounds=max_rounds, faults=faults,
    )
    solver_proto = prototype
    if supports_compilation(prototype) == "lowerable":
        if not faults:
            try:
                kwargs = {} if max_rounds is None else dict(
                    trace_budget=max_rounds, max_configs=max_rounds
                )
                verdicts = sweep_delays_traced(
                    tree, prototype, start1, start2,
                    max_delay=max_delay, sides=tuple(sides),
                    solver=solve_all_delays_auto, **kwargs,
                )
                _note_dispatch("sweep_delays", "traced")
                return verdicts
            except (BudgetExceededError, LoweringError) as exc:
                _note_fallback("sweep_delays", exc)
                _note_dispatch("sweep_delays", "per_run")
                return degrade()
        try:
            solver_proto = _lowered_for_faults(prototype, tree)
        except (BudgetExceededError, LoweringError) as exc:
            _note_fallback("sweep_delays", exc)
            _note_dispatch("sweep_delays", "per_run")
            return degrade()
    extra = {} if faults is None else {"faults": faults}
    if max_rounds is None:
        verdicts = solve_all_delays_auto(
            tree, solver_proto, start1, start2,
            max_delay=max_delay, delayed_sides=tuple(sides), **extra,
        )
        _note_dispatch("sweep_delays", "exact")
        return verdicts
    try:
        verdicts = solve_all_delays_auto(
            tree, solver_proto, start1, start2,
            max_delay=max_delay, delayed_sides=tuple(sides),
            max_configs=max_rounds, **extra,
        )
        _note_dispatch("sweep_delays", "exact")
        return verdicts
    except BudgetExceededError as exc:
        _note_fallback("sweep_delays", exc)
        _note_dispatch("sweep_delays", "per_run")
        return degrade()


def _sweep_gathering_exact(
    backend: Backend, tree, prototype, starts, delay_vectors, max_rounds,
    faults=None,
) -> list[GatheringVerdict]:
    """Exact gathering sweep with graceful budgeting (see
    :func:`_sweep_delays_exact`)."""
    degrade = lambda: Backend.sweep_gathering(  # noqa: E731
        backend, tree, prototype, starts, delay_vectors,
        max_rounds=max_rounds, faults=faults,
    )
    solver_proto = prototype
    if supports_compilation(prototype) == "lowerable":
        if not faults:
            try:
                kwargs = {} if max_rounds is None else dict(
                    trace_budget=max_rounds, max_configs=max_rounds
                )
                verdicts = sweep_gathering_traced(
                    tree, prototype, starts, delay_vectors,
                    solver=solve_gathering_auto, **kwargs,
                )
                _note_dispatch("sweep_gathering", "traced")
                return verdicts
            except (BudgetExceededError, LoweringError) as exc:
                _note_fallback("sweep_gathering", exc)
                _note_dispatch("sweep_gathering", "per_run")
                return degrade()
        try:
            solver_proto = _lowered_for_faults(prototype, tree)
        except (BudgetExceededError, LoweringError) as exc:
            _note_fallback("sweep_gathering", exc)
            _note_dispatch("sweep_gathering", "per_run")
            return degrade()
    extra = {} if faults is None else {"faults": faults}
    if max_rounds is None:
        verdicts = solve_gathering_auto(
            tree, solver_proto, starts, delay_vectors, **extra
        )
        _note_dispatch("sweep_gathering", "exact")
        return verdicts
    try:
        verdicts = solve_gathering_auto(
            tree, solver_proto, starts, delay_vectors,
            max_configs=max_rounds, **extra,
        )
        _note_dispatch("sweep_gathering", "exact")
        return verdicts
    except BudgetExceededError as exc:
        _note_fallback("sweep_gathering", exc)
        _note_dispatch("sweep_gathering", "per_run")
        return degrade()


def _run_pairs_fast(
    backend: Backend, tree, prototype, pairs, max_rounds
) -> list[PairVerdict]:
    """Batched delay-0 dispatch shared by the compiled and auto backends.

    Automata ride the vectorized successor-table kernel (falling back to
    the per-pair compiled loop when the kernel is unavailable or punts);
    register programs ride the shared-trace window scan; anything else
    gets the base per-pair loop, whose honesty is the backend's own
    ``run`` dispatch.
    """
    kind = supports_compilation(prototype)
    if kind == "lowerable":
        verdicts = run_pairs_traced(tree, prototype, pairs, max_rounds=max_rounds)
        _note_dispatch("run_pairs", "traced")
        return verdicts
    if kind == "native" and kernel_available():
        try:
            verdicts = run_pairs_kernel(tree, prototype, pairs, max_rounds=max_rounds)
            _note_dispatch("run_pairs", "kernel")
            return verdicts
        except (KernelUnsupported, BudgetExceededError) as exc:
            _note_fallback("run_pairs", exc)
    _note_dispatch("run_pairs", "per_pair")
    return Backend.run_pairs(
        backend, tree, prototype, pairs, max_rounds=max_rounds
    )


class ReferenceBackend(Backend):
    """The oracle: duck-typed per-round dispatch, ``seen``-set certificates."""

    name = "reference"

    def run(self, tree, prototype, start1, start2, **kwargs) -> RendezvousOutcome:
        return run_rendezvous(tree, prototype, start1, start2, **kwargs)

    def run_gathering(self, tree, prototype, starts, **kwargs) -> GatheringOutcome:
        return run_gathering_reference(tree, prototype, starts, **kwargs)


class CompiledBackend(Backend):
    """Flat-table execution for automata; traced lowering for register
    programs (:mod:`repro.sim.traced`); arbitrary duck-typed agents are
    rejected — forcing ``compiled`` on them raises, the honest answer.

    Lowered outcomes carry fresh (unexecuted) agent clones — executed
    register accounts belong to the reference engine / solo replays.

    Faulted runs of lowerable agents cannot use traced replay (the solo
    trace assumes autonomous dynamics); they go through full behavioral
    lowering (:func:`_lowered_for_faults`) onto the compiled faulted
    engine.  If that lowering fails, forcing ``compiled`` raises — the
    honest answer, as with unloweable agents.
    """

    name = "compiled"

    def run(self, tree, prototype, start1, start2, **kwargs) -> RendezvousOutcome:
        if supports_compilation(prototype) == "lowerable":
            if kwargs.get("faults"):
                lowered = _lowered_for_faults(prototype, tree)
                return run_rendezvous_compiled(tree, lowered, start1, start2, **kwargs)
            kwargs.pop("faults", None)
            return run_rendezvous_traced(tree, prototype, start1, start2, **kwargs)
        return run_rendezvous_compiled(tree, prototype, start1, start2, **kwargs)

    def run_gathering(self, tree, prototype, starts, **kwargs) -> GatheringOutcome:
        if supports_compilation(prototype) == "lowerable":
            if kwargs.get("faults"):
                lowered = _lowered_for_faults(prototype, tree)
                return run_gathering_compiled(tree, lowered, starts, **kwargs)
            kwargs.pop("faults", None)
            return run_gathering_traced(tree, prototype, starts, **kwargs)
        return run_gathering_compiled(tree, prototype, starts, **kwargs)

    def sweep_delays(
        self, tree, prototype, start1, start2, *, max_delay,
        sides=(1, 2), max_rounds=None, faults=None,
    ) -> list[DelayVerdict]:
        return _sweep_delays_exact(
            self, tree, prototype, start1, start2, max_delay, sides,
            max_rounds, faults,
        )

    def sweep_gathering(
        self, tree, prototype, starts, delay_vectors, *, max_rounds=None,
        faults=None,
    ) -> list[GatheringVerdict]:
        return _sweep_gathering_exact(
            self, tree, prototype, starts, delay_vectors, max_rounds, faults
        )

    def run_pairs(self, tree, prototype, pairs, *, max_rounds):
        return _run_pairs_fast(self, tree, prototype, pairs, max_rounds)


class AutoBackend(Backend):
    """Per-call selection: compiled for automata, traced lowering for
    register programs on sweeps/grids, reference otherwise.

    Single runs of register programs stay on the reference engine (see
    :func:`repro.sim.compiled.run_rendezvous_fast` — one fresh run gains
    nothing from tracing and keeps its executed registers); the batched
    sweeps, where traces and product configurations are shared, take the
    lowered exact path.
    """

    name = "auto"

    def run(self, tree, prototype, start1, start2, **kwargs) -> RendezvousOutcome:
        return run_rendezvous_fast(tree, prototype, start1, start2, **kwargs)

    def sweep_delays(
        self, tree, prototype, start1, start2, *, max_delay,
        sides=(1, 2), max_rounds=None, faults=None,
    ) -> list[DelayVerdict]:
        if supports_compilation(prototype):
            return _sweep_delays_exact(
                self, tree, prototype, start1, start2, max_delay, sides,
                max_rounds, faults,
            )
        return super().sweep_delays(
            tree, prototype, start1, start2,
            max_delay=max_delay, sides=sides, max_rounds=max_rounds,
            faults=faults,
        )

    def sweep_gathering(
        self, tree, prototype, starts, delay_vectors, *, max_rounds=None,
        faults=None,
    ) -> list[GatheringVerdict]:
        if supports_compilation(prototype):
            return _sweep_gathering_exact(
                self, tree, prototype, starts, delay_vectors, max_rounds, faults
            )
        return super().sweep_gathering(
            tree, prototype, starts, delay_vectors, max_rounds=max_rounds,
            faults=faults,
        )

    def run_pairs(self, tree, prototype, pairs, *, max_rounds):
        return _run_pairs_fast(self, tree, prototype, pairs, max_rounds)


class BatchedBackend(AutoBackend):
    """Auto dispatch per run, multiprocess fan-out for independent grids.

    With ``timeout=`` and/or ``checkpoint=`` set, grids run under the
    supervised pool (:mod:`repro.sim.supervise`): per-job wall-clock
    preemption, ``retries`` bounded retries with backoff, dead-worker
    respawn, and checkpointed resume.  A job that still fails after its
    retries raises :class:`~repro.scenarios.spec.ScenarioError` naming
    every failed slot — a grid result must never silently hold holes.
    """

    name = "batched"

    def __init__(
        self,
        processes: Optional[int] = None,
        *,
        timeout: Optional[float] = None,
        retries: int = 1,
        checkpoint=None,
    ):
        self.processes = processes
        self.timeout = timeout
        self.retries = retries
        self.checkpoint = checkpoint

    @property
    def _supervised(self) -> bool:
        return self.timeout is not None or self.checkpoint is not None

    @staticmethod
    def _settled(results):
        failures = [r for r in results if isinstance(r, JobFailure)]
        if failures:
            detail = "; ".join(
                f"job {f.index}: {f.kind} after {f.attempts} attempt(s) ({f.message})"
                for f in failures
            )
            raise ScenarioError(f"{len(failures)} batch job(s) failed: {detail}")
        return results

    def run_many(self, jobs: Sequence[BatchJob]) -> list[RendezvousOutcome]:
        if self._supervised:
            return self._settled(run_batch_supervised(
                jobs, processes=self.processes, timeout=self.timeout,
                retries=self.retries, checkpoint=self.checkpoint,
            ))
        return run_batch(jobs, processes=self.processes)

    def run_gathering_many(
        self, jobs: Sequence[GatheringJob]
    ) -> list[GatheringOutcome]:
        if self._supervised:
            return self._settled(run_gathering_batch_supervised(
                jobs, processes=self.processes, timeout=self.timeout,
                retries=self.retries, checkpoint=self.checkpoint,
            ))
        return run_gathering_batch(jobs, processes=self.processes)


def select_backend(
    hint: str, *, processes: Optional[int] = None
) -> Backend:
    """Resolve a spec's backend hint to a concrete backend."""
    if hint == "reference":
        return ReferenceBackend()
    if hint == "compiled":
        return CompiledBackend()
    if hint == "batched":
        return BatchedBackend(processes=processes)
    if hint == "auto":
        return AutoBackend()
    raise ScenarioError(f"unknown backend {hint!r}")
