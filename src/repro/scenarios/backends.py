"""The formal simulation-backend protocol the scenario runner targets.

Every rendezvous run a scenario performs goes through a :class:`Backend`:

- :class:`ReferenceBackend` — the readable oracle engine
  (:func:`repro.sim.engine.run_rendezvous`), per-run ``seen``-set
  certification, per-delay sweeps;
- :class:`CompiledBackend` — flat-table execution for finite-state
  agents (:mod:`repro.sim.compiled`), Brent certification, and the
  batched product-configuration-graph solver for delay sweeps;
- :class:`BatchedBackend` — the compiled dispatch fanned out over a
  process pool (:mod:`repro.sim.batch`) for independent-run grids;
- :class:`AutoBackend` — per-call selection via
  :func:`repro.sim.compiled.supports_compilation`: automata ride the
  compiled backend, register programs the reference engine.

The protocol is the seam the ISSUE's acceptance criterion tests:
``scenarios run <name> --backend compiled`` and ``--backend reference``
must produce identical outcome tables.
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence

from ..agents.observations import AgentBase
from ..sim.batch import BatchJob, run_batch
from ..sim.compiled import (
    DelayVerdict,
    run_rendezvous_compiled,
    run_rendezvous_fast,
    solve_all_delays,
    supports_compilation,
)
from ..sim.engine import RendezvousOutcome, run_rendezvous
from ..trees.tree import Tree
from .spec import ScenarioError

__all__ = [
    "Backend",
    "ReferenceBackend",
    "CompiledBackend",
    "BatchedBackend",
    "AutoBackend",
    "select_backend",
]

_SWEEP_BUDGET = 500_000


class Backend(abc.ABC):
    """Uniform execution surface for rendezvous runs and delay sweeps."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        tree: Tree,
        prototype: AgentBase,
        start1: int,
        start2: int,
        *,
        delay: int = 0,
        delayed: int = 2,
        max_rounds: int = 1_000_000,
        certify: bool = False,
    ) -> RendezvousOutcome:
        """Execute one rendezvous instance."""

    def run_many(self, jobs: Sequence[BatchJob]) -> list[RendezvousOutcome]:
        """Execute independent jobs; results in job order.

        Honors ``BatchJob.seed`` exactly like the pool worker does, so
        serial and multiprocess executions of a seeded grid agree.  The
        caller's global RNG state is restored afterwards — only the jobs
        see the deterministic state (pool workers are forked, so theirs
        dies with them).
        """
        seeded = any(job.seed is not None for job in jobs)
        state = random.getstate() if seeded else None
        try:
            out = []
            for job in jobs:
                if job.seed is not None:
                    random.seed(job.seed)
                out.append(
                    self.run(
                        job.tree,
                        job.prototype,
                        job.start1,
                        job.start2,
                        delay=job.delay,
                        delayed=job.delayed,
                        max_rounds=job.max_rounds,
                        certify=job.certify,
                    )
                )
            return out
        finally:
            if state is not None:
                random.setstate(state)

    def sweep_delays(
        self,
        tree: Tree,
        prototype: AgentBase,
        start1: int,
        start2: int,
        *,
        max_delay: int,
        sides: Sequence[int] = (1, 2),
        max_rounds: int = _SWEEP_BUDGET,
    ) -> list[DelayVerdict]:
        """Decide every (θ ≤ max_delay, delayed side) adversary choice.

        The default implementation runs each choice independently with
        certification; backends with a batched solver override it.
        """
        zero_side = 2 if 2 in sides else sides[0]
        verdicts = []
        for theta in range(max_delay + 1):
            for side in sides:
                if theta == 0 and side != zero_side:
                    continue
                out = self.run(
                    tree,
                    prototype,
                    start1,
                    start2,
                    delay=theta,
                    delayed=side,
                    max_rounds=max_rounds,
                    certify=True,
                )
                verdicts.append(
                    DelayVerdict(
                        theta, side, out.met, out.meeting_round, out.certified_never
                    )
                )
        return verdicts


class ReferenceBackend(Backend):
    """The oracle: duck-typed per-round dispatch, ``seen``-set certificates."""

    name = "reference"

    def run(self, tree, prototype, start1, start2, **kwargs) -> RendezvousOutcome:
        return run_rendezvous(tree, prototype, start1, start2, **kwargs)


class CompiledBackend(Backend):
    """Flat-table execution; requires finite-state (Automaton) agents."""

    name = "compiled"

    def run(self, tree, prototype, start1, start2, **kwargs) -> RendezvousOutcome:
        return run_rendezvous_compiled(tree, prototype, start1, start2, **kwargs)

    def sweep_delays(
        self, tree, prototype, start1, start2, *, max_delay,
        sides=(1, 2), max_rounds=_SWEEP_BUDGET,
    ) -> list[DelayVerdict]:
        return solve_all_delays(
            tree, prototype, start1, start2,
            max_delay=max_delay, delayed_sides=tuple(sides),
        )


class AutoBackend(Backend):
    """Per-call selection: compiled for automata, reference otherwise."""

    name = "auto"

    def run(self, tree, prototype, start1, start2, **kwargs) -> RendezvousOutcome:
        return run_rendezvous_fast(tree, prototype, start1, start2, **kwargs)

    def sweep_delays(
        self, tree, prototype, start1, start2, *, max_delay,
        sides=(1, 2), max_rounds=_SWEEP_BUDGET,
    ) -> list[DelayVerdict]:
        if supports_compilation(prototype):
            return solve_all_delays(
                tree, prototype, start1, start2,
                max_delay=max_delay, delayed_sides=tuple(sides),
            )
        return super().sweep_delays(
            tree, prototype, start1, start2,
            max_delay=max_delay, sides=sides, max_rounds=max_rounds,
        )


class BatchedBackend(AutoBackend):
    """Auto dispatch per run, multiprocess fan-out for independent grids."""

    name = "batched"

    def __init__(self, processes: Optional[int] = None):
        self.processes = processes

    def run_many(self, jobs: Sequence[BatchJob]) -> list[RendezvousOutcome]:
        return run_batch(jobs, processes=self.processes)


def select_backend(
    hint: str, *, processes: Optional[int] = None
) -> Backend:
    """Resolve a spec's backend hint to a concrete backend."""
    if hint == "reference":
        return ReferenceBackend()
    if hint == "compiled":
        return CompiledBackend()
    if hint == "batched":
        return BatchedBackend(processes=processes)
    if hint == "auto":
        return AutoBackend()
    raise ScenarioError(f"unknown backend {hint!r}")
