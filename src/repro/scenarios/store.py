"""Structured persistence for scenario results.

Results are JSON documents under ``benchmarks/results/`` with a
versioned schema (``repro.scenario-result/v1``):

.. code-block:: text

    {
      "schema":      "repro.scenario-result/v1",
      "scenario":    registry name,
      "kind":        executor kind,
      "spec":        the full ScenarioSpec (canonical JSON),
      "spec_hash":   16-hex content hash of the spec,
      "backend":     backend that executed the run,
      "rows":        the outcome table (list of flat dicts),
      "summary":     scenario-level aggregates incl. boolean "ok",
      "timings":     {"elapsed_seconds": float},
      "environment": {"python", "implementation", "platform",
                      "numpy", "kernel"},
      "telemetry":   optional repro.telemetry/v1 snapshot
    }

``rows`` + ``spec_hash`` are the *comparable* part; ``timings``,
``environment`` and ``telemetry`` are provenance and excluded from
diffs.  Validation is hand-rolled (no jsonschema dependency in the
image).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Union

from .runner import SCHEMA, ScenarioResult
from .spec import ScenarioError

__all__ = ["ResultStore", "validate_payload", "diff_payloads", "comparable"]

_SCALAR = (str, int, float, bool, type(None))


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise ScenarioError(f"invalid scenario result: {message}")


def validate_payload(payload: dict) -> None:
    """Raise :class:`ScenarioError` unless ``payload`` matches the schema."""
    _check(isinstance(payload, dict), "payload is not an object")
    _check(payload.get("schema") == SCHEMA,
           f"schema is {payload.get('schema')!r}, expected {SCHEMA!r}")
    for key, typ in (
        ("scenario", str),
        ("kind", str),
        ("spec", dict),
        ("spec_hash", str),
        ("backend", str),
        ("rows", list),
        ("summary", dict),
        ("timings", dict),
        ("environment", dict),
    ):
        _check(isinstance(payload.get(key), typ),
               f"field {key!r} missing or not a {typ.__name__}")
    _check(len(payload["spec_hash"]) == 16, "spec_hash is not 16 hex chars")
    telemetry = payload.get("telemetry")
    if telemetry is not None:  # optional provenance, schema-checked when present
        from ..telemetry import SCHEMA as TELEMETRY_SCHEMA

        _check(isinstance(telemetry, dict), "telemetry is not an object")
        _check(telemetry.get("schema") == TELEMETRY_SCHEMA,
               f"telemetry schema is {telemetry.get('schema')!r}, "
               f"expected {TELEMETRY_SCHEMA!r}")
        for key in ("counters", "spans", "phases", "events"):
            _check(isinstance(telemetry.get(key), dict),
                   f"telemetry field {key!r} missing or not an object")
    _check("ok" in payload["summary"] and isinstance(payload["summary"]["ok"], bool),
           "summary lacks a boolean 'ok'")
    for idx, row in enumerate(payload["rows"]):
        _check(isinstance(row, dict), f"row {idx} is not an object")
        for key, value in row.items():
            ok = isinstance(value, _SCALAR) or (
                isinstance(value, list) and all(isinstance(v, _SCALAR) for v in value)
            )
            _check(ok, f"row {idx} field {key!r} is not a scalar or scalar list")


def comparable(payload: dict) -> dict:
    """The part of a payload two runs must agree on (no timings/env)."""
    return {
        "scenario": payload["scenario"],
        "kind": payload["kind"],
        "spec_hash": payload["spec_hash"],
        "rows": payload["rows"],
    }


def diff_payloads(a: dict, b: dict) -> list[str]:
    """Human-readable outcome differences between two result payloads.

    Empty list == equivalent results.  Backend, timings and environment
    are provenance, not outcome, and are never reported.
    """
    diffs: list[str] = []
    if a["scenario"] != b["scenario"]:
        diffs.append(f"scenario: {a['scenario']} != {b['scenario']}")
        return diffs
    if a["spec_hash"] != b["spec_hash"]:
        diffs.append(f"spec_hash: {a['spec_hash']} != {b['spec_hash']} "
                     "(the runs had different inputs)")
    ra, rb = a["rows"], b["rows"]
    if len(ra) != len(rb):
        diffs.append(f"row count: {len(ra)} != {len(rb)}")
    for idx, (x, y) in enumerate(zip(ra, rb)):
        if x == y:
            continue
        keys = [k for k in {**x, **y} if x.get(k) != y.get(k)]
        diffs.append(
            f"row {idx}: " + ", ".join(
                f"{k}: {x.get(k)!r} != {y.get(k)!r}" for k in sorted(keys)
            )
        )
    return diffs


class ResultStore:
    """Reads and writes scenario-result JSON under one directory."""

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)

    def path_for(self, name: str) -> pathlib.Path:
        """The store file for ``name``; the name must be a bare result
        name, never a path (dots are fine — ``thm31.v2`` is a name,
        but a ``.json`` suffix or a path separator is not)."""
        if "/" in name or "\\" in name or name in ("", ".", ".."):
            raise ScenarioError(
                f"result name {name!r} must not contain path separators; "
                f"pass a path to load()/diff() instead"
            )
        if name.endswith(".json"):
            # A name like "runA.json" would save as runA.json.json and
            # then be irretrievable by name (load() strips the suffix).
            raise ScenarioError(
                f"result name {name!r} must not end with '.json'"
            )
        return self.root / f"{name}.json"

    def save(self, result: ScenarioResult) -> pathlib.Path:
        """Write atomically: a reader (or a kill) mid-save must see either
        the old complete file or the new complete file, never a torn one.
        The temp file lives next to the target so ``os.replace`` stays on
        one filesystem (rename atomicity)."""
        payload = result.to_payload()
        validate_payload(payload)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(result.name)
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def load(self, name_or_path: Union[str, pathlib.Path]) -> dict:
        """Load a result by store name or by explicit JSON path.

        A string argument is a *name* unless it is a path: it contains a
        path separator, or it ends in ``.json``.  (The old
        ``suffix == ".json"`` test misrouted dotted names to the
        filesystem.)  Path-like strings resolve to an existing file
        first (the README's ``scenarios diff a.json b.json`` flow) and
        fall back to the store root (so ``golden/thm31-sweep`` finds
        ``<root>/golden/thm31-sweep.json`` from any CWD) — never to the
        CWD-dependent double-suffix path ``<root>/<name>.json.json``.
        """
        if isinstance(name_or_path, pathlib.Path):
            path = name_or_path
        elif "/" in (text := str(name_or_path)) or "\\" in text:
            path = pathlib.Path(text)
            if not path.exists():
                rel = text if text.endswith(".json") else f"{text}.json"
                in_store = self.root / rel
                if in_store.exists():
                    path = in_store
        elif text.endswith(".json"):
            explicit = pathlib.Path(text)
            path = explicit if explicit.exists() else self.path_for(text[: -len(".json")])
        else:
            path = self.path_for(text)
        if not path.exists():
            raise ScenarioError(f"no stored result at {path}")
        try:
            payload = json.loads(path.read_text())
        except ValueError as exc:
            # Corrupt JSON (torn write from a pre-atomic saver, disk
            # trouble, manual edit): quarantine the file so the next
            # save/run is not poisoned by it, and say exactly where it
            # went.  Saves are atomic, so this should never be ours.
            quarantine = path.with_name(path.name + ".corrupt")
            try:
                os.replace(path, quarantine)
                where = f"; quarantined to {quarantine}"
            except OSError:
                where = ""
            raise ScenarioError(
                f"stored result at {path} is not valid JSON ({exc}){where}"
            ) from None
        validate_payload(payload)
        return payload

    def names(self) -> list[str]:
        if not self.root.exists():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def diff(
        self,
        a: Union[str, pathlib.Path],
        b: Union[str, pathlib.Path],
    ) -> list[str]:
        return diff_payloads(self.load(a), self.load(b))
