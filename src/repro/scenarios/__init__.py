"""The unified scenario subsystem.

Experiments are *data*: a :class:`ScenarioSpec` (tree family, agent
family, delay policy, repetitions, seed, backend hint, kind-specific
params) registered under a name.  The :class:`Runner` executes specs
through a formal :class:`Backend` protocol — reference oracle, compiled
tables, or batched multiprocess fan-out, auto-selected per agent via
``supports_compilation`` — and the :class:`ResultStore` persists
schema-versioned JSON outcome tables under ``benchmarks/results/``.

Layers routed through here:

- ``repro.cli`` — ``repro scenarios list|run|diff`` plus the theorem
  subcommands as registry aliases;
- ``benchmarks/`` — every ``bench_*`` script runs a registry entry
  through the shared harness in ``benchmarks/_util.py``;
- future workloads register new specs (and, for new kinds, executors).
"""

from .atlas import ATLAS_SCHEMA_VERSION, DEFAULT_ATLAS_PATH, AtlasStore
from .backends import (
    AutoBackend,
    Backend,
    BatchedBackend,
    CompiledBackend,
    ReferenceBackend,
    select_backend,
)
from .executors import EXECUTORS, execute, executor
from .registry import all_scenarios, get_scenario, register, scenario_names
from .runner import SCHEMA, Runner, ScenarioResult, format_rows
from .spec import (
    BACKEND_HINTS,
    DelayPolicy,
    ScenarioError,
    ScenarioSpec,
    build_agent,
    build_tree,
)
from .store import ResultStore, diff_payloads, validate_payload

__all__ = [
    "ScenarioSpec",
    "DelayPolicy",
    "ScenarioError",
    "BACKEND_HINTS",
    "build_tree",
    "build_agent",
    "Backend",
    "ReferenceBackend",
    "CompiledBackend",
    "BatchedBackend",
    "AutoBackend",
    "select_backend",
    "EXECUTORS",
    "executor",
    "execute",
    "register",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "Runner",
    "ScenarioResult",
    "format_rows",
    "SCHEMA",
    "ResultStore",
    "validate_payload",
    "diff_payloads",
    "AtlasStore",
    "ATLAS_SCHEMA_VERSION",
    "DEFAULT_ATLAS_PATH",
]
